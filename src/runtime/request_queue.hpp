#pragma once
// Per-shard bounded MPSC request queue. Any thread may submit; exactly one
// worker drains, taking the whole pending batch at once so the shard lock
// and wakeup cost amortise over bursts. Backpressure is configurable
// (Block: producers wait for a slot; Reject: QueueFullError), and queued
// same-block writes coalesce — the latest payload wins and every submitted
// future still completes — unless a read of that block was enqueued after
// the pending write (coalescing across it would reorder read-after-write).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/service_config.hpp"
#include "runtime/service_stats.hpp"

namespace spe::runtime {

struct Request {
  enum class Kind : std::uint8_t { Read, Write };

  /// One write submission folded into this request (a fresh write has one;
  /// coalescing appends more).
  struct WriteWaiter {
    std::promise<void> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<OpSummary> summary;  ///< filled before the promise (opt-in)
  };

  Kind kind = Kind::Read;
  std::uint64_t block_addr = 0;
  std::vector<std::uint8_t> data;  ///< write payload (latest wins)
  std::promise<std::vector<std::uint8_t>> read_promise;
  std::chrono::steady_clock::time_point enqueued;  ///< read submission time
  std::shared_ptr<OpSummary> summary;  ///< read summary slot (opt-in)
  std::vector<WriteWaiter> write_waiters;
};

class RequestQueue {
public:
  RequestQueue(unsigned shard_id, std::size_t capacity, BackpressurePolicy policy,
               bool coalesce_writes, ShardCounters& counters);

  /// Producer side. Throws QueueFullError when the Reject policy bounces
  /// the request, ServiceStoppedError once the queue is closed. A non-null
  /// `summary` slot is filled by the executing worker just before the
  /// promise resolves (the traced read/write path).
  [[nodiscard]] std::future<std::vector<std::uint8_t>> push_read(
      std::uint64_t block_addr, std::shared_ptr<OpSummary> summary = nullptr);
  [[nodiscard]] std::future<void> push_write(std::uint64_t block_addr,
                                             std::vector<std::uint8_t> data,
                                             std::shared_ptr<OpSummary> summary = nullptr);

  /// Consumer side: removes and returns everything queued (FIFO order).
  [[nodiscard]] std::vector<Request> drain();

  /// Approximate depth, readable without the lock (worker wait predicates).
  [[nodiscard]] std::size_t depth() const noexcept {
    return depth_.load(std::memory_order_acquire);
  }

  /// Shutdown: wakes blocked producers (they throw ServiceStoppedError) and
  /// makes all later pushes throw it. Already-queued requests stay
  /// drainable.
  void close();

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

private:
  /// Waits for a slot (Block) or throws (Reject / closed). Returns with
  /// mutex_ held via the caller's lock.
  void admit(std::unique_lock<std::mutex>& lock);

  unsigned shard_id_;
  std::size_t capacity_;
  BackpressurePolicy policy_;
  bool coalesce_writes_;
  ShardCounters& counters_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::vector<Request> pending_;  ///< append-only between drains
  std::unordered_map<std::uint64_t, std::size_t> open_writes_;  ///< addr -> pending_ index
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace spe::runtime
