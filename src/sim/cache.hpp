#pragma once
// Set-associative write-back/write-allocate cache with LRU replacement —
// the L1/L2 models of the paper's evaluation platform (Section 7: L1 I/D
// 32KB 8-way 4-cycle; L2 2MB 16-way 16-cycle; 64B lines, LRU).

#include <cstdint>
#include <vector>

namespace spe::sim {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  unsigned line_bytes = 64;
  unsigned latency_cycles = 4;
  const char* name = "L1";
};

class Cache {
public:
  explicit Cache(CacheConfig config);

  struct AccessResult {
    bool hit = false;
    bool evicted_dirty = false;      ///< a dirty victim must be written back
    std::uint64_t writeback_addr = 0;  ///< line address of the dirty victim
  };

  /// Looks up `addr` (byte address); on miss, allocates the line and evicts
  /// the LRU way. Writes mark the line dirty.
  AccessResult access(std::uint64_t addr, bool is_write);

  /// Invalidate everything, writing back nothing (power events).
  void flush();

  /// Dirty lines currently resident (cold-boot drain size).
  [[nodiscard]] std::uint64_t dirty_lines() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< last-use stamp
  };

  CacheConfig config_;
  unsigned sets_;
  std::vector<Line> lines_;  // sets_ * ways
  std::uint64_t use_counter_ = 0;
  Stats stats_;
};

}  // namespace spe::sim
