# Empty dependencies file for spe_xbar.
# This may be replaced when dependencies are built.
