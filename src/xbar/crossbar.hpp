#pragma once
// The 1T1M crossbar array (Section 5.1, Fig. 3). An M x N grid of Cells with
// distributed wire resistance: every row wire and column wire is modelled as
// a chain of resistive segments with one node per crossing, so sneak-path
// voltages (Fig. 3b) fall out of an exact DC nodal solve rather than a
// lumped approximation.
//
// In normal operation only the addressed row's transistors are ON,
// eliminating sneak paths; the SneakPathController switches every gate ON to
// *introduce* sneak paths on demand for SPE (Section 4).

#include <cstdint>
#include <vector>

#include "device/cell.hpp"

namespace spe::xbar {

/// Electrical and geometric parameters of one crossbar unit.
struct CrossbarParams {
  unsigned rows = 8;
  unsigned cols = 8;
  double r_wire_row = 5.0;   ///< Row-wire resistance per segment [Ohm].
  double r_wire_col = 2.5;   ///< Column-wire resistance per segment [Ohm].
  double r_driver = 100.0;   ///< Line-driver source resistance [Ohm].
  spe::device::TeamParams team;
  spe::device::TransistorParams transistor;

  [[nodiscard]] unsigned cell_count() const noexcept { return rows * cols; }
};

/// Row-major cell index helpers (the paper numbers cells 1..64 row-major in
/// Fig. 4; we use 0-based indices everywhere).
struct CellIndex {
  unsigned row = 0;
  unsigned col = 0;
  bool operator==(const CellIndex&) const = default;
};

class Crossbar {
public:
  explicit Crossbar(CrossbarParams params = {});

  [[nodiscard]] const CrossbarParams& params() const noexcept { return params_; }
  [[nodiscard]] unsigned rows() const noexcept { return params_.rows; }
  [[nodiscard]] unsigned cols() const noexcept { return params_.cols; }
  [[nodiscard]] unsigned cell_count() const noexcept { return params_.cell_count(); }

  [[nodiscard]] unsigned index_of(CellIndex idx) const;
  [[nodiscard]] CellIndex position_of(unsigned flat) const;

  [[nodiscard]] spe::device::Cell& cell(CellIndex idx);
  [[nodiscard]] const spe::device::Cell& cell(CellIndex idx) const;
  [[nodiscard]] spe::device::Cell& cell(unsigned flat);
  [[nodiscard]] const spe::device::Cell& cell(unsigned flat) const;

  /// Gate control. select_row() is the normal-operation mode (Fig. 3a);
  /// set_all_gates(true) is the sneak-path mode (Fig. 3b).
  void set_all_gates(bool on);
  void select_row(unsigned row);

  /// Idealised write-verify programming of one cell to an MLC symbol band
  /// centre (the NVMM controller's job; SPE never uses this during
  /// encryption — it perturbs states through pulses only). A cell pinned by
  /// Cell::force_stuck() refuses to move — the spe_fault stuck-at hook.
  void write_symbol(CellIndex idx, unsigned symbol);
  [[nodiscard]] unsigned read_symbol(CellIndex idx) const;

  /// Loads `symbols.size()` cells row-major; size must equal cell_count().
  void load_symbols(const std::vector<unsigned>& symbols);
  [[nodiscard]] std::vector<unsigned> dump_symbols() const;

  [[nodiscard]] const spe::device::MlcCodec& codec() const noexcept { return codec_; }

private:
  CrossbarParams params_;
  spe::device::MlcCodec codec_;
  std::vector<spe::device::Cell> cells_;
};

}  // namespace spe::xbar
