#include "util/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace spe::util {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6, {1.0, 0.0});
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToOnes) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneConcentratesEnergy) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = {std::cos(2.0 * std::numbers::pi * 5.0 * i / n), 0.0};
  fft(data);
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[3]), 0.0, 1e-9);
}

TEST(Fft, ForwardInverseRoundTrip) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n), orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::sin(0.1 * i) + 0.3 * std::cos(0.7 * i), 0.2 * std::sin(0.33 * i)};
    orig[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / n, orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / n, orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 256;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::sin(0.3 * i), 0.0};
    time_energy += std::norm(data[i]);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

TEST(RealMagnitudeSpectrum, SizeAndDc) {
  std::vector<double> ones(16, 1.0);
  const auto mags = real_magnitude_spectrum(ones);
  ASSERT_EQ(mags.size(), 9u);
  EXPECT_NEAR(mags[0], 16.0, 1e-12);
  EXPECT_NEAR(mags[1], 0.0, 1e-12);
}

TEST(RealMagnitudeSpectrum, PadsWhenAsked) {
  std::vector<double> sig(10, 1.0);
  EXPECT_THROW((void)real_magnitude_spectrum(sig, false), std::invalid_argument);
  const auto mags = real_magnitude_spectrum(sig, true);
  EXPECT_EQ(mags.size(), 9u);  // padded to 16
}

}  // namespace
}  // namespace spe::util
