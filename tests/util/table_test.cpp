#include "util/table.hpp"

#include <gtest/gtest.h>

namespace spe::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  // Three cells rendered even though one was given.
  const auto last_line = out.substr(out.rfind("| only"));
  EXPECT_EQ(std::count(last_line.begin(), last_line.end(), '|'), 4);
}

TEST(Table, FmtFormatsPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, PctFormatsFractions) {
  EXPECT_EQ(Table::pct(0.015, 1), "1.5%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace spe::util
