#include "xbar/polyomino.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace spe::xbar {

unsigned Polyomino::count() const noexcept {
  unsigned n = 0;
  for (auto m : mask) n += m;
  return n;
}

Polyomino extract_polyomino(Crossbar& xbar, PoE poe, double voltage) {
  const NodalSolution sol = solve_poe(xbar, poe, voltage);
  const double vt = xbar.params().transistor.v_threshold;

  Polyomino poly;
  poly.poe = poe;
  poly.mask.assign(xbar.cell_count(), 0);
  poly.voltages.assign(xbar.cell_count(), 0.0);
  for (unsigned r = 0; r < xbar.rows(); ++r) {
    for (unsigned c = 0; c < xbar.cols(); ++c) {
      const double v = std::fabs(sol.cell_voltage(r, c));
      const unsigned flat = xbar.index_of({r, c});
      poly.voltages[flat] = v;
      poly.mask[flat] = v >= vt ? 1 : 0;
    }
  }
  return poly;
}

std::string render_polyomino(const Polyomino& poly, unsigned rows, unsigned cols) {
  std::string out;
  char buf[32];
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      const unsigned flat = r * cols + c;
      if (poly.poe.row == r && poly.poe.col == c) {
        std::snprintf(buf, sizeof(buf), "[%4.2f]", poly.voltages[flat]);
      } else if (poly.mask[flat]) {
        std::snprintf(buf, sizeof(buf), " %4.2f ", poly.voltages[flat]);
      } else {
        std::snprintf(buf, sizeof(buf), "  .   ");
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::vector<std::vector<unsigned>> placement_shapes(
    const std::vector<Polyomino>& polyominoes) {
  std::vector<std::vector<unsigned>> shapes;
  shapes.reserve(polyominoes.size());
  for (const Polyomino& poly : polyominoes) {
    std::vector<unsigned> cells;
    for (unsigned flat = 0; flat < poly.mask.size(); ++flat)
      if (poly.mask[flat]) cells.push_back(flat);
    shapes.push_back(std::move(cells));
  }
  return shapes;
}

}  // namespace spe::xbar
