#include "device/mlc.hpp"

#include <algorithm>
#include <stdexcept>

namespace spe::device {

MlcCodec::MlcCodec(TeamParams params) noexcept : params_(params) {}

unsigned MlcCodec::symbol_for_state(double w) const noexcept {
  const double t = std::clamp(w, 0.0, 1.0);
  auto s = static_cast<unsigned>(t * kSymbols);
  return std::min(s, kSymbols - 1);
}

double MlcCodec::state_for_symbol(unsigned symbol) const {
  if (symbol >= kSymbols) throw std::out_of_range("MlcCodec::state_for_symbol");
  return (static_cast<double>(symbol) + 0.5) / kSymbols;
}

unsigned MlcCodec::level_for_state(double w) const noexcept {
  const double t = std::clamp(w, 0.0, 1.0);
  auto level = static_cast<unsigned>(t * kInternalLevels);
  return std::min(level, kInternalLevels - 1);
}

double MlcCodec::state_for_level(unsigned level) const {
  if (level >= kInternalLevels) throw std::out_of_range("MlcCodec::state_for_level");
  return (static_cast<double>(level) + 0.5) / kInternalLevels;
}

double MlcCodec::resistance_for_symbol(unsigned symbol) const {
  return params_.resistance(state_for_symbol(symbol));
}

}  // namespace spe::device
