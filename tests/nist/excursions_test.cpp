// Focused tests for the random-excursions pair (SP 800-22 2.14/2.15) —
// applicability gating, cycle counting, and sensitivity.

#include <gtest/gtest.h>

#include "nist/suite.hpp"
#include "util/rng.hpp"

namespace spe::nist {
namespace {

util::BitVector random_bits(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  util::BitVector v;
  while (v.size() < n) v.append_bits(rng(), 64);
  return v.slice(0, n);
}

TEST(Excursions, ShortWalksAreNotApplicable) {
  // A 2^14-bit random walk has ~sqrt(2n/pi) ~ 100 crossings << 500.
  const auto bits = random_bits(1u << 14, 3);
  EXPECT_FALSE(random_excursions_test(bits).applicable);
  EXPECT_FALSE(random_excursions_variant_test(bits).applicable);
}

TEST(Excursions, AlternatingSequenceIsApplicableAndDegenerate) {
  // 0101...: the walk oscillates -1,0,-1,0..., giving n/2 cycles (applicable)
  // but visiting only state -1 — wildly non-random visit counts.
  util::BitVector v;
  for (int i = 0; i < (1 << 13); ++i) v.push_back(i & 1);
  const auto re = random_excursions_test(v);
  ASSERT_TRUE(re.applicable);
  EXPECT_FALSE(re.passed());
  const auto rev = random_excursions_variant_test(v);
  ASSERT_TRUE(rev.applicable);
  EXPECT_FALSE(rev.passed());
}

TEST(Excursions, LongRandomWalkPasses) {
  const auto bits = random_bits(1u << 20, 11);
  const auto re = random_excursions_test(bits);
  const auto rev = random_excursions_variant_test(bits);
  if (re.applicable) {
    EXPECT_EQ(re.p_values.size(), 8u);  // states -4..-1, 1..4
    EXPECT_TRUE(re.passed(0.0005));
  }
  if (rev.applicable) {
    EXPECT_EQ(rev.p_values.size(), 18u);  // states -9..9 minus 0
    EXPECT_TRUE(rev.passed(0.0005));
  }
}

TEST(Excursions, BiasedWalkFailsVariant) {
  // A drifting walk (p=0.53 ones) rarely returns to zero relative to its
  // excursions; where applicable, the variant statistic blows up.
  util::Xoshiro256ss rng(17);
  util::BitVector v;
  for (int i = 0; i < (1 << 19); ++i) v.push_back(rng.uniform() < 0.53);
  const auto rev = random_excursions_variant_test(v);
  if (rev.applicable) EXPECT_FALSE(rev.passed());
  // Either not applicable (too few returns) or failing: both expose bias.
  const auto re = random_excursions_test(v);
  if (re.applicable) EXPECT_FALSE(re.passed());
}

TEST(Excursions, NamesMatchTable2Rows) {
  const auto bits = random_bits(1u << 12, 1);
  EXPECT_EQ(random_excursions_test(bits).name, "Rnd. Ex.");
  EXPECT_EQ(random_excursions_variant_test(bits).name, "REV");
}

}  // namespace
}  // namespace spe::nist
