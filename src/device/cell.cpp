#include "device/cell.hpp"

#include <cmath>
#include <stdexcept>

namespace spe::device {

Cell::Cell(TeamParams mparams, TransistorParams tparams, double initial_state)
    : memristor_(mparams, initial_state), tparams_(tparams) {}

double Cell::series_resistance() const noexcept {
  const double rt = gate_on_ ? tparams_.r_on : tparams_.r_off;
  return memristor_.resistance() + rt;
}

void Cell::force_stuck(double state) noexcept {
  memristor_.set_state(state);
  stuck_ = true;
}

void Cell::program_state(double w) noexcept {
  if (!stuck_) memristor_.set_state(w);
}

void Cell::apply_cell_voltage(double cell_voltage, double duration, int steps) {
  if (stuck_) return;  // pinned defect: no pulse moves it
  if (std::abs(cell_voltage) < tparams_.v_threshold) return;  // sub-Vt: no write
  // Voltage divider across the series pair; the memristor resistance moves
  // during the pulse, so recompute the divider every step by delegating the
  // integration to the memristor with the divided voltage updated per step.
  const double rt = gate_on_ ? tparams_.r_on : tparams_.r_off;
  if (duration <= 0.0 || steps <= 0) return;
  const double h = duration / steps;
  for (int s = 0; s < steps; ++s) {
    const double rm = memristor_.resistance();
    const double vm = cell_voltage * rm / (rm + rt);
    memristor_.apply_voltage(vm, h, 1);
  }
}

double find_inverse_pulse_width(Cell& cell, double decrypt_voltage, double target_state,
                                double max_width, double tolerance) {
  if (max_width <= 0.0) throw std::invalid_argument("find_inverse_pulse_width: max_width");
  const double start_state = cell.memristor().state();

  // Signed miss distance after applying a candidate pulse width.
  auto miss = [&](double width) {
    cell.memristor().set_state(start_state);
    cell.apply_cell_voltage(decrypt_voltage, width);
    const double err = cell.memristor().state() - target_state;
    return err;
  };

  // The decrypt pulse drives the state monotonically; bracket the root.
  double lo = 0.0;
  double hi = max_width;
  const double m_lo = miss(1e-12);
  const double m_hi = miss(max_width);
  double width = max_width;
  if (m_lo * m_hi > 0.0) {
    // Target unreachable within max_width: return the closer endpoint.
    width = std::abs(m_lo) < std::abs(m_hi) ? 1e-12 : max_width;
  } else {
    for (int iter = 0; iter < 64; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double m = miss(mid);
      if (std::abs(m) < tolerance) {
        width = mid;
        break;
      }
      if (m * m_lo > 0.0)
        lo = mid;
      else
        hi = mid;
      width = 0.5 * (lo + hi);
    }
  }
  cell.memristor().set_state(start_state);
  return width;
}

}  // namespace spe::device
