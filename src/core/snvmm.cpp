#include "core/snvmm.hpp"

#include "device/mlc.hpp"

namespace spe::core {

SnvmmConfig Snvmm::default_config() { return SnvmmConfig{}; }

Snvmm::Snvmm(SnvmmConfig config)
    : config_(config),
      device_params_(with_device_variation(config.base_params, config.device_seed)),
      fingerprint_(fingerprint_of(device_params_)) {}

bool Snvmm::has_block(std::uint64_t block_addr) const { return blocks_.contains(block_addr); }

Snvmm::Block& Snvmm::block(std::uint64_t block_addr) {
  auto it = blocks_.find(block_addr);
  if (it == blocks_.end()) {
    Block b;
    b.levels.assign(static_cast<std::size_t>(config_.units_per_block) *
                        config_.base_params.cell_count(),
                    0);
    it = blocks_.emplace(block_addr, std::move(b)).first;
  }
  return it->second;
}

const Snvmm::Block* Snvmm::find_block(std::uint64_t block_addr) const {
  const auto it = blocks_.find(block_addr);
  return it == blocks_.end() ? nullptr : &it->second;
}

double Snvmm::max_wear() const {
  double peak = 0.0;
  for (const auto& [addr, block] : blocks_)
    if (block.wear > peak) peak = block.wear;
  return peak;
}

std::vector<std::uint8_t> Snvmm::probe_block(std::uint64_t block_addr) const {
  std::vector<std::uint8_t> out(block_bytes(), 0);
  const Block* b = find_block(block_addr);
  if (b == nullptr) return out;
  for (std::size_t i = 0; i < b->levels.size(); ++i) {
    const unsigned symbol = device::MlcCodec::symbol_for_level(b->levels[i]);
    const unsigned logic = device::MlcCodec::logic_bits_for_symbol(symbol);
    out[i / 4] |= static_cast<std::uint8_t>(logic << (6 - 2 * (i % 4)));
  }
  return out;
}

}  // namespace spe::core
