# Empty dependencies file for spe_ilp.
# This may be replaced when dependencies are built.
