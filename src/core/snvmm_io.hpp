#pragma once
// NVMM image persistence. The array is non-volatile: its analog state
// survives power-down *and process restart*. These helpers serialise a
// device image (parameters + every stored cell level + encryption flags)
// so an SNVMM can be saved to disk and reloaded later — the instant-on
// property end-to-end, and a convenient fixture format for experiments.
//
// Format (little-endian, versioned):
//   magic "SPENVMM1" | device_seed | units_per_block | crossbar rows/cols |
//   block count | per block: address, encrypted flag, cell levels.
// The manufactured parameters are re-derived from the device seed, and the
// stored fingerprint is cross-checked on load (a corrupted or mismatched
// image is rejected rather than silently decrypting garbage).

#include <iosfwd>
#include <string>

#include "core/snvmm.hpp"

namespace spe::core {

/// Writes the device image. Throws std::runtime_error on I/O failure.
void save_image(const Snvmm& nvmm, std::ostream& out);
void save_image_file(const Snvmm& nvmm, const std::string& path);

/// Reads a device image back. Throws std::runtime_error on I/O failure,
/// format corruption, or fingerprint mismatch.
[[nodiscard]] Snvmm load_image(std::istream& in);
[[nodiscard]] Snvmm load_image_file(const std::string& path);

}  // namespace spe::core
