#include "runtime/shard.hpp"

#include <chrono>
#include <exception>

namespace spe::runtime {

namespace {
core::SnvmmConfig shard_memory_config(unsigned id, const ServiceConfig& config) {
  core::SnvmmConfig mem = config.shard_memory;
  mem.device_seed = config.device_seed_base + id;  // distinct manufactured instance
  return mem;
}
}  // namespace

BankShard::BankShard(unsigned id, const ServiceConfig& config)
    : id_(id),
      queue_(id, config.queue_capacity, config.backpressure, config.coalesce_writes,
             counters_),
      memory_(shard_memory_config(id, config)),
      specu_(memory_, config.mode) {}

bool BankShard::power_on(const core::Tpm& tpm, std::uint64_t measurement) {
  std::lock_guard lock(state_mutex_);
  return specu_.power_on(tpm, measurement);
}

void BankShard::execute_batch(std::vector<Request> batch) {
  std::lock_guard lock(state_mutex_);
  for (Request& req : batch) {
    // Stats are recorded before the promise is fulfilled so a client that
    // returns from .get() and immediately snapshots sees its own op counted.
    if (req.kind == Request::Kind::Read) {
      try {
        auto data = specu_.read_block(req.block_addr);
        counters_.read_latency.record(std::chrono::steady_clock::now() - req.enqueued);
        counters_.reads_completed.fetch_add(1, std::memory_order_relaxed);
        req.read_promise.set_value(std::move(data));
      } catch (...) {
        req.read_promise.set_exception(std::current_exception());
      }
    } else {
      try {
        specu_.write_block(req.block_addr, req.data);
        const auto done = std::chrono::steady_clock::now();
        counters_.writes_completed.fetch_add(req.write_waiters.size(),
                                             std::memory_order_relaxed);
        for (Request::WriteWaiter& waiter : req.write_waiters) {
          counters_.write_latency.record(done - waiter.enqueued);
          waiter.promise.set_value();
        }
      } catch (...) {
        for (Request::WriteWaiter& waiter : req.write_waiters)
          waiter.promise.set_exception(std::current_exception());
      }
    }
  }
}

unsigned BankShard::scavenge(unsigned max_blocks) {
  unsigned secured = 0;
  for (unsigned i = 0; i < max_blocks; ++i) {
    // One block per lock acquisition so foreground requests never wait for
    // a whole sweep (the paper's engine likewise steps between accesses).
    std::lock_guard lock(state_mutex_);
    const auto start = std::chrono::steady_clock::now();
    if (specu_.background_encrypt(1) == 0) break;
    counters_.background_latency.record(std::chrono::steady_clock::now() - start);
    counters_.background_encrypted.fetch_add(1, std::memory_order_relaxed);
    ++secured;
  }
  return secured;
}

ShardStatsSnapshot BankShard::stats_snapshot() const {
  ShardStatsSnapshot snap = snapshot_counters(id_, counters_);
  std::lock_guard lock(state_mutex_);
  snap.plaintext_blocks = specu_.plaintext_blocks();
  snap.resident_blocks = memory_.block_count();
  return snap;
}

double BankShard::encrypted_fraction() const {
  std::lock_guard lock(state_mutex_);
  return specu_.encrypted_fraction();
}

core::Specu::Stats BankShard::specu_stats() const {
  std::lock_guard lock(state_mutex_);
  return specu_.stats();
}

}  // namespace spe::runtime
