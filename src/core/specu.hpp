#pragma once
// The Sneak-Path Encryption Control Unit (Section 4.1, Fig. 1b). Sits
// between the L2 cache and the NVMM; holds the key in volatile storage
// (obtained from the TPM at power-on, lost at power-down) and orchestrates
// the two-phase read (decrypt + read) and write (write + encrypt)
// operations. Two operating modes (Section 7):
//
//  * SPE-serial:   a decrypted block STAYS decrypted in the array until it
//                  is written back or the background engine re-encrypts it
//                  (cheap reads of hot blocks; a small window of plaintext
//                  exposure — "99.4% of memory encrypted on average").
//  * SPE-parallel: every block is re-encrypted immediately after the read
//                  data leaves for the cache (100% encrypted; each read
//                  pays decrypt + encrypt latency).
//
// The SPECU here is the *functional* controller; cycle costs live in the
// area/latency model and are charged by the architecture simulator.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/snvmm.hpp"
#include "core/spe_cipher.hpp"
#include "core/tpm.hpp"

namespace spe::core {

enum class SpeMode { Serial, Parallel };

class Specu {
public:
  /// Per-pulse ageing relative to a full write (Section 5.2 / wear module).
  /// Shared with the batched fast path so both charge identical wear.
  static constexpr double kPulseWear = 0.02;

  /// Creates the control unit for `memory`. No key yet: reads/writes throw
  /// until power_on() succeeds.
  Specu(Snvmm& memory, SpeMode mode, std::vector<unsigned> poes = {});

  /// Power-on handshake: TPM authenticates the platform and releases the
  /// key. Returns false (and stays locked) on authentication failure.
  bool power_on(const Tpm& tpm, std::uint64_t platform_measurement);

  /// Multi-tenant power-on: same handshake, but against an explicit sealing
  /// handle instead of the device id — tenant key domains seal per-(tenant,
  /// epoch) keys under synthetic handles so several controllers can share
  /// one crossbar, each under its own key.
  bool power_on(const Tpm& tpm, std::uint64_t platform_measurement,
                std::uint64_t key_handle);

  /// Orderly power-down: every plaintext block is encrypted (counted into
  /// stats; the cold-boot analysis uses the count), then the volatile key
  /// is destroyed. Returns the number of blocks that had to be secured.
  unsigned power_down();

  /// Hard power loss (the cold-boot scenario): the key is lost but
  /// plaintext blocks are NOT secured first. Returns how many plaintext
  /// blocks were abandoned in the array.
  unsigned power_loss();

  [[nodiscard]] bool powered() const noexcept { return ciphers_.size() > 0; }
  [[nodiscard]] SpeMode mode() const noexcept { return mode_; }

  /// Key-schedule epoch: a digest of the full per-unit pulse schedule the
  /// current key derives. Journal intents are stamped with it; recovery
  /// refuses to replay pulses recorded under a different schedule (a wrong
  /// key would reconstruct wrong chains and corrupt silently). 0 until the
  /// first successful power_on().
  [[nodiscard]] std::uint64_t schedule_epoch() const noexcept { return epoch_; }

  /// Pulses in one full block encryption (units x schedule length); the
  /// `total` of Encrypt/Decrypt journal intents. 0 when not powered.
  [[nodiscard]] std::uint32_t pulses_per_block() const noexcept;

  /// Cache-block write: stores plaintext and encrypts it (write phase +
  /// encryption phase, Section 4.1).
  void write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data);

  /// Cache-block read: decrypts in the array, reads out, and (parallel
  /// mode) immediately re-encrypts; serial mode leaves the block decrypted
  /// and queues it for the background engine.
  [[nodiscard]] std::vector<std::uint8_t> read_block(std::uint64_t block_addr);

  /// Serial-mode background engine: re-encrypts up to `max_blocks` pending
  /// plaintext blocks; returns how many it secured.
  unsigned background_encrypt(unsigned max_blocks = 1);

  /// One background re-encryption, reporting *which* block it secured so
  /// callers tracking per-block metadata (the runtime's ECC shadows) can
  /// refresh it; nullopt when nothing is pending or the key is gone.
  [[nodiscard]] std::optional<std::uint64_t> background_encrypt_one();

  // --- crash recovery primitives ------------------------------------------
  // Building blocks for the runtime's journal-recovery state machine; both
  // journal themselves, so a crash *during* recovery is itself recoverable.

  /// Finishes an interrupted encryption from pulse index `progress`
  /// (unit-major, as logged by the intent journal). The block ends fully
  /// encrypted and is removed from the plaintext pending set.
  void resume_encrypt(std::uint64_t block_addr, std::uint32_t progress);

  /// Undoes an interrupted decryption by restoring the journaled pre-image:
  /// the block returns to its encrypted resting state and the intent is
  /// committed. The restore is a plain level copy (no pulses), the analog
  /// equivalent of re-programming the saved ciphertext.
  void rollback_decrypt(std::uint64_t block_addr, std::span<const std::uint8_t> pre_image);

  // --- pending-set ownership (multi-tenant key domains) -------------------
  // Several Specus can front one Snvmm, each owning a disjoint address set.
  // The constructor conservatively adopts EVERY unencrypted resident block;
  // the owner partitions the pending sets with these before serving traffic.

  /// Keeps only pending plaintext addresses for which `owned` returns true.
  /// Returns how many addresses were handed off (dropped).
  unsigned retain_plaintext(const std::function<bool(std::uint64_t)>& owned);

  /// Removes one address from the pending set (another controller takes
  /// over its re-encryption). Returns whether it was pending here.
  bool drop_pending(std::uint64_t block_addr) { return plaintext_.erase(block_addr) > 0; }

  /// Adopts responsibility for re-encrypting a plaintext block (rotation
  /// hands blocks decrypted under the old key to the new-key controller).
  void adopt_pending(std::uint64_t block_addr) { plaintext_.insert(block_addr); }

  /// Rotation handoff: decrypts the resting ciphertext in place (journaled,
  /// so a crash mid-way rolls back to the old-key ciphertext) and leaves the
  /// plaintext OUT of this controller's pending set — the new key domain's
  /// controller re-encrypts it under the new key. Works in both modes (no
  /// immediate re-encrypt, unlike a parallel-mode read). A block already
  /// plaintext is just dropped from pending.
  void decrypt_for_handoff(std::uint64_t block_addr);

  /// Blocks currently sitting in the array as plaintext.
  [[nodiscard]] std::size_t plaintext_blocks() const noexcept { return plaintext_.size(); }
  /// Fraction of resident blocks currently encrypted (1.0 for empty array).
  [[nodiscard]] double encrypted_fraction() const;

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t decrypt_ops = 0;   ///< per crossbar-unit decryptions
    std::uint64_t encrypt_ops = 0;   ///< per crossbar-unit encryptions
    std::uint64_t encrypt_pulses = 0;  ///< PoE pulses applied encrypting
    std::uint64_t decrypt_pulses = 0;  ///< reverse pulses applied decrypting
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

private:
  // The batched fast path (specu_batch.cpp) replicates the scalar read/write
  // semantics — spans, journal intents, stats, wear, pending set — against
  // the same private state; the differential suite keeps the two identical.
  friend class SpecuBatch;

  [[nodiscard]] const SpeCipher& cipher(unsigned unit) const { return *ciphers_.at(unit); }
  [[nodiscard]] unsigned schedule_length() const;
  void begin_intent(std::uint64_t addr, JournalOp op, std::uint32_t progress,
                    std::uint32_t total, std::vector<std::uint8_t> pre_image = {});
  /// Applies pulses [progress, pulses_per_block()) forward; commits the
  /// open Encrypt intent. Caller must have begun the intent.
  void encrypt_block_in_place(std::uint64_t addr, Snvmm::Block& block,
                              std::uint32_t progress = 0);
  void decrypt_block_in_place(std::uint64_t addr, Snvmm::Block& block);

  Snvmm& memory_;
  SpeMode mode_;
  std::vector<unsigned> poes_;
  std::shared_ptr<const CipherCalibration> calibration_;
  std::vector<std::unique_ptr<SpeCipher>> ciphers_;  ///< one per unit index
  std::set<std::uint64_t> plaintext_;                ///< serial-mode pending set
  std::uint64_t epoch_ = 0;                          ///< key-schedule digest
  Stats stats_;
};

}  // namespace spe::core
