#include "util/berlekamp.hpp"

#include <stdexcept>
#include <vector>

namespace spe::util {

std::size_t linear_complexity(const BitVector& bits, std::size_t offset, std::size_t len) {
  if (offset + len > bits.size()) throw std::out_of_range("linear_complexity");

  // Standard Berlekamp-Massey over GF(2). c = current connection polynomial,
  // b = polynomial at the last length change.
  std::vector<std::uint8_t> c(len + 1, 0), b(len + 1, 0), t;
  c[0] = b[0] = 1;
  std::size_t L = 0;
  std::size_t m = std::size_t(-1);  // index of last discrepancy (as signed -1)

  for (std::size_t n = 0; n < len; ++n) {
    // Discrepancy d = s_n + sum_{i=1..L} c_i * s_{n-i}
    unsigned d = bits.get(offset + n) ? 1u : 0u;
    for (std::size_t i = 1; i <= L; ++i) {
      if (c[i] && bits.get(offset + n - i)) d ^= 1u;
    }
    if (d == 0) continue;
    t = c;
    const std::size_t shift = n - m;  // well-defined: first discrepancy has m = -1, n - m = n+1
    for (std::size_t i = 0; i + shift <= len; ++i) {
      if (b[i]) c[i + shift] ^= 1u;
    }
    if (2 * L <= n) {
      L = n + 1 - L;
      m = n;
      b = t;
    }
  }
  return L;
}

}  // namespace spe::util
