#pragma once
// Exact DC solution of the crossbar resistive network by dense nodal
// analysis. Every row wire contributes `cols` nodes and every column wire
// `rows` nodes (one per crossing); cells connect a row node to the matching
// column node through their series (memristor + transistor) resistance.
// Line drivers are Thevenin sources (voltage behind r_driver); undriven
// lines float. The node-conductance system G v = b is solved with
// partial-pivot Gaussian elimination (128 unknowns for an 8x8 unit — exact
// and fast).

#include <vector>

#include "xbar/crossbar.hpp"

namespace spe::xbar {

/// Boundary condition for one row or column line.
struct LineDrive {
  enum class Mode { Floating, Driven };
  Mode mode = Mode::Floating;
  double voltage = 0.0;  ///< Thevenin source voltage when driven [V].

  static LineDrive floating() { return {}; }
  static LineDrive driven(double v) { return {Mode::Driven, v}; }
};

/// Node voltages of one DC solve.
class NodalSolution {
public:
  NodalSolution(unsigned rows, unsigned cols, std::vector<double> voltages);

  /// Voltage of the row-wire node at crossing (row, col).
  [[nodiscard]] double row_node(unsigned row, unsigned col) const;
  /// Voltage of the column-wire node at crossing (row, col).
  [[nodiscard]] double col_node(unsigned row, unsigned col) const;
  /// Voltage across the cell (series memristor+transistor) at (row, col).
  [[nodiscard]] double cell_voltage(unsigned row, unsigned col) const;

  [[nodiscard]] unsigned rows() const noexcept { return rows_; }
  [[nodiscard]] unsigned cols() const noexcept { return cols_; }

private:
  unsigned rows_;
  unsigned cols_;
  std::vector<double> v_;
};

/// Solves the crossbar with the given line boundary conditions.
/// `row_drives.size()` must equal rows(), `col_drives.size()` cols().
/// Row drivers attach at the column-0 end of each row wire; column drivers
/// at the row-0 end of each column wire (the decoder side in Fig. 1b).
[[nodiscard]] NodalSolution solve_crossbar(const Crossbar& xbar,
                                           const std::vector<LineDrive>& row_drives,
                                           const std::vector<LineDrive>& col_drives);

/// Total current delivered by a driven row line (positive out of the
/// source). Useful for read-out modelling and Kirchhoff validation tests.
[[nodiscard]] double row_source_current(const Crossbar& xbar, const NodalSolution& sol,
                                        unsigned row, const LineDrive& drive);

/// Dense linear solve A x = b with partial pivoting; A is row-major n*n.
/// Exposed for unit testing. Throws std::runtime_error on singularity.
[[nodiscard]] std::vector<double> solve_dense(std::vector<double> a,
                                              std::vector<double> b);

}  // namespace spe::xbar
