#include "core/spe_cipher.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace spe::core {
namespace {

class SpeCipherTest : public ::testing::Test {
protected:
  std::shared_ptr<const CipherCalibration> cal_ = get_calibration(xbar::CrossbarParams{});
  util::Xoshiro256ss rng_{42};

  SpeCipher make_cipher(const SpeKey& key, unsigned unit = 0) {
    return SpeCipher(key, cal_, {}, unit);
  }

  std::vector<std::uint8_t> random_bytes(unsigned n) {
    std::vector<std::uint8_t> v(n);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng_.below(256));
    return v;
  }
};

TEST_F(SpeCipherTest, ScheduleHasSixteenSteps) {
  const auto cipher = make_cipher(SpeKey{1, 2});
  EXPECT_EQ(cipher.schedule().size(), 16u);
  EXPECT_EQ(cipher.cell_count(), 64u);
  EXPECT_EQ(cipher.block_bytes(), 16u);
}

TEST_F(SpeCipherTest, EncryptDecryptIsExactIdentity) {
  const auto cipher = make_cipher(SpeKey{0xABC, 0xDEF});
  for (int t = 0; t < 100; ++t) {
    const auto pt = random_bytes(16);
    UnitLevels levels = cipher.levels_from_bytes(pt);
    const UnitLevels original = levels;
    cipher.encrypt(levels);
    EXPECT_NE(levels, original);
    cipher.decrypt(levels);
    EXPECT_EQ(levels, original);
  }
}

TEST_F(SpeCipherTest, CiphertextDiffersFromPlaintext) {
  const auto cipher = make_cipher(SpeKey{7, 9});
  const auto pt = random_bytes(16);
  std::vector<std::uint8_t> ct(16);
  cipher.encrypt_bytes(pt, ct);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += __builtin_popcount(pt[i] ^ ct[i]);
  EXPECT_GT(diff, 30);  // well-mixed, ~64 expected
}

TEST_F(SpeCipherTest, WrongKeyFailsToDecrypt) {
  const auto enc = make_cipher(SpeKey{1, 2});
  const auto dec = make_cipher(SpeKey{1, 3});
  const auto pt = random_bytes(16);
  UnitLevels levels = enc.levels_from_bytes(pt);
  const UnitLevels original = levels;
  enc.encrypt(levels);
  dec.decrypt(levels);
  EXPECT_NE(levels, original);
}

TEST_F(SpeCipherTest, WrongPoeOrderFailsToDecrypt) {
  // Fig. 2b: same PoEs, wrong order -> incorrect plaintext.
  const auto cipher = make_cipher(SpeKey{0x42, 0x99});
  const auto pt = random_bytes(16);
  UnitLevels levels = cipher.levels_from_bytes(pt);
  const UnitLevels original = levels;
  cipher.encrypt(levels);
  std::vector<unsigned> order(cipher.schedule().size());
  std::iota(order.begin(), order.end(), 0u);
  std::swap(order[3], order[7]);
  cipher.decrypt_with_order(levels, order);
  EXPECT_NE(levels, original);
}

TEST_F(SpeCipherTest, CorrectOrderViaDecryptWithOrder) {
  const auto cipher = make_cipher(SpeKey{0x42, 0x99});
  const auto pt = random_bytes(16);
  UnitLevels levels = cipher.levels_from_bytes(pt);
  const UnitLevels original = levels;
  cipher.encrypt(levels);
  std::vector<unsigned> order(cipher.schedule().size());
  std::iota(order.begin(), order.end(), 0u);
  cipher.decrypt_with_order(levels, order);
  EXPECT_EQ(levels, original);
}

TEST_F(SpeCipherTest, OtherDeviceCannotDecrypt) {
  // Section 6.2.1: decryption only on the same SNVMM.
  const SpeKey key{5, 6};
  const auto enc = make_cipher(key);
  const auto other_cal = get_calibration(
      with_device_variation(xbar::CrossbarParams{}, /*device_seed=*/777));
  const SpeCipher dec(key, other_cal);
  const auto pt = random_bytes(16);
  UnitLevels levels = enc.levels_from_bytes(pt);
  const UnitLevels original = levels;
  enc.encrypt(levels);
  dec.decrypt(levels);
  EXPECT_NE(levels, original);
}

TEST_F(SpeCipherTest, PlaintextAvalanche) {
  const auto cipher = make_cipher(SpeKey{111, 222});
  double flipped = 0.0;
  const int trials = 64;
  for (int t = 0; t < trials; ++t) {
    auto pt = random_bytes(16);
    std::vector<std::uint8_t> c0(16), c1(16);
    cipher.encrypt_bytes(pt, c0);
    pt[t % 16] ^= static_cast<std::uint8_t>(1u << (t % 8));
    cipher.encrypt_bytes(pt, c1);
    for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(c0[i] ^ c1[i]);
  }
  const double mean_flips = flipped / trials;
  EXPECT_GT(mean_flips, 48.0);  // ideal 64 of 128
  EXPECT_LT(mean_flips, 80.0);
}

TEST_F(SpeCipherTest, KeyAvalanche) {
  const SpeKey base{0x3141592653ull & 0xFFFFFFFFFFFull, 0x2718281828ull};
  std::vector<std::uint8_t> pt(16, 0);
  double flipped = 0.0;
  std::vector<std::uint8_t> c0(16), c1(16);
  make_cipher(base).encrypt_bytes(pt, c0);
  const int trials = 88;
  for (int bit = 0; bit < trials; ++bit) {
    make_cipher(base.with_bit_flipped(bit)).encrypt_bytes(pt, c1);
    for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(c0[i] ^ c1[i]);
  }
  const double mean_flips = flipped / trials;
  EXPECT_GT(mean_flips, 48.0);
  EXPECT_LT(mean_flips, 80.0);
}

TEST_F(SpeCipherTest, TruncatedScheduleLeavesCellsUntouched) {
  // The Section 6.1 ablation: fewer PoEs -> uncovered cells keep plaintext.
  const auto cipher = make_cipher(SpeKey{10, 20});
  const auto pt = random_bytes(16);
  UnitLevels levels = cipher.levels_from_bytes(pt);
  const UnitLevels original = levels;
  cipher.encrypt_truncated(levels, 2);
  unsigned untouched = 0;
  for (unsigned i = 0; i < 64; ++i) untouched += levels[i] == original[i];
  EXPECT_GT(untouched, 16u);  // two polyominoes cannot cover 64 cells
}

TEST_F(SpeCipherTest, TruncatedFullLengthEqualsEncrypt) {
  const auto cipher = make_cipher(SpeKey{10, 20});
  const auto pt = random_bytes(16);
  UnitLevels a = cipher.levels_from_bytes(pt);
  UnitLevels b = a;
  cipher.encrypt(a);
  cipher.encrypt_truncated(b, 16);
  EXPECT_EQ(a, b);
}

TEST_F(SpeCipherTest, UnitsProduceDistinctCiphertext) {
  const SpeKey key{77, 88};
  const auto u0 = make_cipher(key, 0);
  const auto u1 = make_cipher(key, 1);
  const auto pt = random_bytes(16);
  std::vector<std::uint8_t> c0(16), c1(16);
  u0.encrypt_bytes(pt, c0);
  u1.encrypt_bytes(pt, c1);
  EXPECT_NE(c0, c1);
}

TEST_F(SpeCipherTest, ByteLevelConversionRoundTrip) {
  const auto cipher = make_cipher(SpeKey{1, 1});
  for (int t = 0; t < 20; ++t) {
    const auto pt = random_bytes(16);
    std::vector<std::uint8_t> back(16);
    cipher.bytes_from_levels(cipher.levels_from_bytes(pt), back);
    EXPECT_EQ(back, pt);
  }
  EXPECT_THROW((void)cipher.levels_from_bytes(random_bytes(15)), std::invalid_argument);
}

TEST_F(SpeCipherTest, SizeValidation) {
  const auto cipher = make_cipher(SpeKey{1, 1});
  UnitLevels bad(63, 0);
  EXPECT_THROW(cipher.encrypt(bad), std::invalid_argument);
  EXPECT_THROW(cipher.decrypt(bad), std::invalid_argument);
}

TEST_F(SpeCipherTest, DeterministicCiphertext) {
  const auto cipher = make_cipher(SpeKey{123, 456});
  const auto pt = random_bytes(16);
  std::vector<std::uint8_t> c0(16), c1(16);
  cipher.encrypt_bytes(pt, c0);
  cipher.encrypt_bytes(pt, c1);
  EXPECT_EQ(c0, c1);
}

}  // namespace
}  // namespace spe::core
