#pragma once
// Device fingerprint: a digest of the crossbar's physical parameters. The
// SPE transformation tables are derived from the physics of the *specific*
// device, which is what makes ciphertext decryptable only on the NVMM that
// produced it (Section 6.2.1: "data decryption can only be performed on the
// same SNVMM it was encrypted on"). Manufacturing variation gives every
// device instance distinct parameters, hence a distinct fingerprint.

#include <cstdint>

#include "xbar/crossbar.hpp"

namespace spe::core {

using DeviceFingerprint = std::uint64_t;

/// Digest of the electrically relevant parameters. Values are quantised to
/// 1 ppm before hashing so that floating-point noise cannot split devices,
/// while the paper's 5-10% hardware-avalanche perturbations always do.
[[nodiscard]] DeviceFingerprint fingerprint_of(const xbar::CrossbarParams& params);

/// Applies deterministic per-device manufacturing variation (a fraction of
/// a percent on wires and device thresholds) derived from `device_seed`.
/// Distinct seeds model physically distinct NVMM chips.
[[nodiscard]] xbar::CrossbarParams with_device_variation(const xbar::CrossbarParams& base,
                                                         std::uint64_t device_seed,
                                                         double spread = 0.004);

}  // namespace spe::core
