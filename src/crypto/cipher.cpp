#include "crypto/cipher.hpp"

#include <cstring>

namespace spe::crypto {

AesBlockCipher::AesBlockCipher(std::span<const std::uint8_t, Aes128::kKeySize> key)
    : aes_(key) {}

std::array<std::uint8_t, 16> AesBlockCipher::tweak(std::uint64_t block_address,
                                                   unsigned sub_block) const {
  std::array<std::uint8_t, 16> t{};
  for (int i = 0; i < 8; ++i) t[i] = static_cast<std::uint8_t>(block_address >> (8 * i));
  t[8] = static_cast<std::uint8_t>(sub_block);
  aes_.encrypt_block(std::span<std::uint8_t, 16>(t));
  return t;
}

void AesBlockCipher::encrypt(std::uint64_t block_address,
                             std::span<std::uint8_t, kCacheBlockBytes> data) const {
  for (unsigned sb = 0; sb < kCacheBlockBytes / 16; ++sb) {
    const auto t = tweak(block_address, sb);
    auto chunk = data.subspan(sb * 16).first<16>();
    for (int i = 0; i < 16; ++i) chunk[i] ^= t[i];
    aes_.encrypt_block(chunk);
    for (int i = 0; i < 16; ++i) chunk[i] ^= t[i];
  }
}

void AesBlockCipher::decrypt(std::uint64_t block_address,
                             std::span<std::uint8_t, kCacheBlockBytes> data) const {
  for (unsigned sb = 0; sb < kCacheBlockBytes / 16; ++sb) {
    const auto t = tweak(block_address, sb);
    auto chunk = data.subspan(sb * 16).first<16>();
    for (int i = 0; i < 16; ++i) chunk[i] ^= t[i];
    aes_.decrypt_block(chunk);
    for (int i = 0; i < 16; ++i) chunk[i] ^= t[i];
  }
}

StreamBlockCipher::StreamBlockCipher(std::span<const std::uint8_t, Trivium::kKeyBytes> key) {
  std::memcpy(key_.data(), key.data(), key_.size());
}

void StreamBlockCipher::encrypt(std::uint64_t block_address,
                                std::span<std::uint8_t, kCacheBlockBytes> data) const {
  std::array<std::uint8_t, Trivium::kIvBytes> iv{};
  for (int i = 0; i < 8; ++i) iv[i] = static_cast<std::uint8_t>(block_address >> (8 * i));
  Trivium stream(std::span<const std::uint8_t, Trivium::kKeyBytes>(key_), iv);
  stream.apply(data);
}

void StreamBlockCipher::decrypt(std::uint64_t block_address,
                                std::span<std::uint8_t, kCacheBlockBytes> data) const {
  encrypt(block_address, data);  // XOR stream: involution
}

}  // namespace spe::crypto
