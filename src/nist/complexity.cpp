// SP 800-22 2.10 Linear complexity test. Uses a word-packed
// Berlekamp-Massey (discrepancy via AND + popcount over 64-bit words) so the
// O(M^2) inner product runs 64 lanes at a time — the scalar version in
// util/berlekamp.hpp is kept for cross-validation in the tests.

#include <array>
#include <bit>
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

namespace {

/// Linear complexity of `m` bits packed little-endian in `seq`.
unsigned packed_linear_complexity(const std::vector<std::uint64_t>& seq, unsigned m) {
  const unsigned words = m / 64 + 2;  // head-room for degree-m polynomials
  std::vector<std::uint64_t> c(words, 0), b(words, 0), t, rev(words, 0);
  c[0] = b[0] = 1;
  unsigned L = 0;
  int last_n = -1;

  for (unsigned n = 0; n < m; ++n) {
    // rev bit i holds s_{n-i}: shift left by one, insert s_n at bit 0.
    for (unsigned w = words; w-- > 1;) rev[w] = (rev[w] << 1) | (rev[w - 1] >> 63);
    rev[0] = (rev[0] << 1) | ((seq[n / 64] >> (n % 64)) & 1u);

    // Discrepancy d = sum_i c_i * s_{n-i} (mod 2) = parity(c AND rev).
    unsigned d = 0;
    for (unsigned w = 0; w < words; ++w)
      d ^= static_cast<unsigned>(std::popcount(c[w] & rev[w]));
    if ((d & 1u) == 0) continue;

    t = c;
    const auto shift = static_cast<unsigned>(static_cast<int>(n) - last_n);
    const unsigned ws = shift / 64, bs = shift % 64;
    for (unsigned w = words; w-- > 0;) {
      std::uint64_t v = 0;
      if (w >= ws) {
        v = b[w - ws] << bs;
        if (bs != 0 && w > ws) v |= b[w - ws - 1] >> (64 - bs);
      }
      c[w] ^= v;
    }
    if (2 * L <= n) {
      L = n + 1 - L;
      last_n = static_cast<int>(n);
      b = t;
    }
  }
  return L;
}

}  // namespace

TestResult linear_complexity_test(const util::BitVector& bits, unsigned block_len) {
  TestResult r{"Lin. Com.", {}, true};
  const std::size_t n = bits.size();
  const std::size_t blocks = n / block_len;
  if (blocks < 20) {
    r.applicable = false;
    return r;
  }
  constexpr unsigned kK = 6;
  static constexpr std::array<double, 7> kPi = {0.010417, 0.03125, 0.125, 0.5,
                                                0.25, 0.0625, 0.020833};
  const double m = static_cast<double>(block_len);
  const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;
  const double mu = m / 2.0 + (9.0 + sign) / 36.0 - (m / 3.0 + 2.0 / 9.0) / std::pow(2.0, m);

  std::array<double, kK + 1> counts{};
  std::vector<std::uint64_t> seq(block_len / 64 + 1, 0);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (auto& w : seq) w = 0;
    for (unsigned i = 0; i < block_len; ++i)
      if (bits.get(blk * block_len + i)) seq[i / 64] |= std::uint64_t{1} << (i % 64);
    const double L = packed_linear_complexity(seq, block_len);
    // T statistic and its 7-class bucketing (SP 800-22 2.10.4 step 4).
    const double t_stat = sign * (L - mu) + 2.0 / 9.0;
    int cls;
    if (t_stat <= -2.5)
      cls = 0;
    else if (t_stat <= -1.5)
      cls = 1;
    else if (t_stat <= -0.5)
      cls = 2;
    else if (t_stat <= 0.5)
      cls = 3;
    else if (t_stat <= 1.5)
      cls = 4;
    else if (t_stat <= 2.5)
      cls = 5;
    else
      cls = 6;
    counts[static_cast<std::size_t>(cls)] += 1.0;
  }
  double chi2 = 0.0;
  for (unsigned c = 0; c <= kK; ++c) {
    const double expected = static_cast<double>(blocks) * kPi[c];
    const double d = counts[c] - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(util::igamc(kK / 2.0, chi2 / 2.0));
  return r;
}

}  // namespace spe::nist
