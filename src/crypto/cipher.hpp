#pragma once
// Cache-block cipher interface: every NVMM protection scheme in the paper
// encrypts at cache-block (64-byte) granularity, tweaked by the block's
// memory address so identical plaintext blocks at different addresses give
// different ciphertext. Functional layer only — latency/area are charged by
// the architecture simulator and the area model.

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "crypto/aes.hpp"
#include "crypto/stream_cipher.hpp"

namespace spe::crypto {

constexpr std::size_t kCacheBlockBytes = 64;

/// Encrypts/decrypts 64-byte memory blocks in place, tweaked by address.
class CacheBlockCipher {
public:
  virtual ~CacheBlockCipher() = default;
  virtual void encrypt(std::uint64_t block_address,
                       std::span<std::uint8_t, kCacheBlockBytes> data) const = 0;
  virtual void decrypt(std::uint64_t block_address,
                       std::span<std::uint8_t, kCacheBlockBytes> data) const = 0;
};

/// AES-128 in a tweaked ECB mode: each 16-byte sub-block is XORed with an
/// encrypted (address, sub-block index) tweak before and after the block
/// cipher (XEX construction), so the mode is length-preserving as an NVMM
/// encryption must be.
class AesBlockCipher final : public CacheBlockCipher {
public:
  explicit AesBlockCipher(std::span<const std::uint8_t, Aes128::kKeySize> key);

  void encrypt(std::uint64_t block_address,
               std::span<std::uint8_t, kCacheBlockBytes> data) const override;
  void decrypt(std::uint64_t block_address,
               std::span<std::uint8_t, kCacheBlockBytes> data) const override;

private:
  [[nodiscard]] std::array<std::uint8_t, 16> tweak(std::uint64_t block_address,
                                                   unsigned sub_block) const;
  Aes128 aes_;
};

/// Stream-cipher scheme: a per-block Trivium key-stream with the block
/// address as IV (the [5]/[8] one-time-pad-per-location approach; the
/// 6.18 mm^2 area in Table 3 is the pad/counter storage, charged by the
/// area model).
class StreamBlockCipher final : public CacheBlockCipher {
public:
  explicit StreamBlockCipher(std::span<const std::uint8_t, Trivium::kKeyBytes> key);

  void encrypt(std::uint64_t block_address,
               std::span<std::uint8_t, kCacheBlockBytes> data) const override;
  void decrypt(std::uint64_t block_address,
               std::span<std::uint8_t, kCacheBlockBytes> data) const override;

private:
  std::array<std::uint8_t, Trivium::kKeyBytes> key_{};
};

}  // namespace spe::crypto
