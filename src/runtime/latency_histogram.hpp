#pragma once
// Lock-free latency histogram: power-of-two nanosecond buckets with relaxed
// atomic counters, so worker threads record on the hot path without ever
// contending. Percentile queries read a snapshot of the counters; they are
// approximate to within one bucket (~2x resolution), which is all a
// p50/p95/p99 service report needs.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

namespace spe::runtime {

class LatencyHistogram {
public:
  static constexpr unsigned kBuckets = 64;  ///< bucket b covers [2^(b-1), 2^b) ns

  void record(std::chrono::nanoseconds latency) noexcept {
    const auto ns = latency.count() < 0 ? std::uint64_t{0}
                                        : static_cast<std::uint64_t>(latency.count());
    buckets_[bucket_for(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::chrono::nanoseconds mean() const noexcept {
    const auto n = count();
    return std::chrono::nanoseconds(n ? sum_ns_.load(std::memory_order_relaxed) / n : 0);
  }

  /// Plain (non-atomic) copy of the counters for consistent-enough reporting.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;

    /// Upper edge of the bucket holding the q-quantile sample (q in [0,1]).
    [[nodiscard]] std::chrono::nanoseconds quantile(double q) const noexcept {
      if (count == 0) return std::chrono::nanoseconds(0);
      if (q < 0.0) q = 0.0;
      if (q > 1.0) q = 1.0;
      auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
      for (unsigned b = 0; b < kBuckets; ++b) {
        if (rank <= buckets[b]) return std::chrono::nanoseconds(upper_edge_ns(b));
        rank -= buckets[b];
      }
      return std::chrono::nanoseconds(upper_edge_ns(kBuckets - 1));
    }

    [[nodiscard]] std::chrono::nanoseconds p50() const noexcept { return quantile(0.50); }
    [[nodiscard]] std::chrono::nanoseconds p95() const noexcept { return quantile(0.95); }
    [[nodiscard]] std::chrono::nanoseconds p99() const noexcept { return quantile(0.99); }

    [[nodiscard]] std::chrono::nanoseconds mean() const noexcept {
      return std::chrono::nanoseconds(count ? sum_ns / count : 0);
    }

    Snapshot& operator+=(const Snapshot& other) noexcept {
      for (unsigned b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
      count += other.count;
      sum_ns += other.sum_ns;
      return *this;
    }
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    for (unsigned b = 0; b < kBuckets; ++b)
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] static unsigned bucket_for(std::uint64_t ns) noexcept {
    return ns == 0 ? 0 : static_cast<unsigned>(std::bit_width(ns) - 1);
  }

  [[nodiscard]] static std::uint64_t upper_edge_ns(unsigned bucket) noexcept {
    return bucket >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (bucket + 1)) - 1;
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace spe::runtime
