// GRASP backend (BackendKind::Grasp): greedy randomized adaptive search
// with seeded restarts, TCPSPSuite-style construct-then-local-search.
//
// Each restart:
//   1. Construction — lazy-greedy over "raise gains" (how much lower-side
//      violation setting a variable to 1 removes) with a restricted
//      candidate list: every candidate within grasp_rcl_alpha of the best
//      gain is drawn from uniformly. Raises that would break an upper bound
//      are skipped, so the [1,2] coverage cap is respected during
//      construction rather than repaired after.
//   2. Annealing repair — when greedy paints itself into a corner (classic
//      for tight two-sided covers), violation-directed simulated annealing
//      (heuristic_state.cpp) swaps its way out.
//   3. Objective local search — feasibility-preserving flips/swaps.
//
// All randomness flows from SolverOptions::seed mixed with the restart
// index; with time_limit_ms == 0 the work is a fixed function of the
// options, so seeded runs are byte-identical (the determinism contract of
// DESIGN.md §14, pinned by tests/ilp/portfolio_differential_test.cpp).

#include <algorithm>
#include <queue>

#include "ilp/heuristic_state.hpp"
#include "ilp/placement_solver.hpp"

namespace spe::ilp {

namespace {

using detail::Deadline;
using detail::IncrementalEval;
using detail::kHeurEps;

/// Lazy-greedy randomized construction. Gains only shrink as coverage
/// fills (the models' coefficients are nonnegative), so a stale-entry heap
/// re-check is sound: pop, recompute, and only trust a value that is still
/// the best.
void construct(IncrementalEval& eval, util::Xoshiro256ss& rng, double rcl_alpha,
               const Deadline& deadline) {
  const unsigned n = eval.model().num_vars();
  using Entry = std::pair<double, unsigned>;  // (gain, var); max-heap
  std::priority_queue<Entry> heap;
  for (unsigned v = 0; v < n; ++v) {
    const double g = eval.raise_gain(v);
    if (g > kHeurEps) heap.push({g, v});
  }
  unsigned steps = 0;
  std::vector<Entry> rcl;
  while (!heap.empty() && !eval.feasible()) {
    if ((++steps & 0x3FF) == 0x3FF && deadline.expired()) break;
    // Collect up to kRclProbe entries whose gains are fresh.
    constexpr unsigned kRclProbe = 6;
    rcl.clear();
    double best_gain = 0.0;
    while (!heap.empty() && rcl.size() < kRclProbe) {
      const Entry top = heap.top();
      heap.pop();
      const double fresh = eval.raise_gain(top.second);
      if (fresh <= kHeurEps || eval.values()[top.second]) continue;
      if (fresh < top.first - kHeurEps && !heap.empty() &&
          fresh < heap.top().first - kHeurEps) {
        heap.push({fresh, top.second});  // stale: requeue at its real rank
        continue;
      }
      if (eval.raise_breaks_upper(top.second)) continue;  // cap-saturated
      rcl.push_back({fresh, top.second});
      best_gain = std::max(best_gain, fresh);
    }
    if (rcl.empty()) break;  // every remaining raise is blocked or useless
    // Restricted candidate list: keep everything within alpha of the best.
    const double cutoff = best_gain * (1.0 - rcl_alpha);
    std::vector<Entry> eligible;
    for (const Entry& e : rcl)
      if (e.first >= cutoff - kHeurEps) eligible.push_back(e);
    const Entry chosen =
        eligible[static_cast<std::size_t>(rng.below(eligible.size()))];
    eval.flip(chosen.second);
    for (const Entry& e : rcl)
      if (e.second != chosen.second) heap.push(e);
  }
}

class GraspSolver final : public PlacementSolver {
public:
  explicit GraspSolver(SolverOptions options) : options_(options) {}

  [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::Grasp; }

  [[nodiscard]] Solution solve(const Model& model) override {
    const auto t0 = std::chrono::steady_clock::now();
    const Deadline deadline(options_.time_limit_ms);
    Solution out;
    const unsigned n = model.num_vars();
    if (n == 0) {
      // No variables: feasibility is decided by the constant constraints.
      out.status = model.is_feasible({}) ? Solution::Status::Feasible
                                         : Solution::Status::NoSolution;
      return out;
    }

    IncrementalEval eval(model);
    bool cut_off = false;
    const bool minimize = model.sense == Sense::Minimize;
    const unsigned anneal_iters = detail::scaled_iters(options_.grasp_anneal_iters, n);
    const unsigned improve_iters = detail::scaled_iters(options_.grasp_improve_iters, n);
    for (unsigned restart = 0; restart < std::max(1u, options_.grasp_restarts);
         ++restart) {
      if (deadline.expired()) {
        cut_off = true;
        break;
      }
      util::Xoshiro256ss rng(util::mix64(options_.seed ^ (0x6A5Full + restart)));
      eval.reset();
      construct(eval, rng, options_.grasp_rcl_alpha, deadline);
      if (!eval.feasible())
        detail::anneal_repair(eval, rng, anneal_iters, deadline);
      if (!eval.feasible()) continue;
      detail::improve_objective(eval, rng, improve_iters, deadline);
      const double obj = eval.objective();
      if (!out.has_solution() ||
          (minimize ? obj < out.objective - kHeurEps : obj > out.objective + kHeurEps)) {
        out.status = Solution::Status::Feasible;
        out.objective = obj;
        out.values = eval.values();
      }
    }
    if (cut_off && out.has_solution()) out.status = Solution::Status::TimeLimit;
    // A heuristic proves nothing: no bound, and never Optimal.
    out.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return out;
  }

private:
  SolverOptions options_;
};

}  // namespace

std::unique_ptr<PlacementSolver> make_grasp_solver(SolverOptions options) {
  return std::make_unique<GraspSolver>(options);
}

}  // namespace spe::ilp
