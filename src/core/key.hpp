#pragma once
// The SPE secret key (Section 5.4). For an 8x8 crossbar the key is 88 bits:
// a 44-bit seed for the address PRNG (PoE sequence) and a 44-bit seed for
// the voltage PRNG (pulse polarity/width sequence). The TPM releases the key
// to the SPECU at power-on; the SPECU holds it in volatile storage only.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/rng.hpp"

namespace spe::core {

struct SpeKey {
  static constexpr unsigned kBits = 88;
  static constexpr unsigned kSeedBits = 44;
  static constexpr unsigned kBytes = 11;

  std::uint64_t address_seed = 0;  ///< low 44 bits used
  std::uint64_t voltage_seed = 0;  ///< low 44 bits used

  [[nodiscard]] static SpeKey random(util::Xoshiro256ss& rng);
  [[nodiscard]] static SpeKey all_zero() { return {}; }
  [[nodiscard]] static SpeKey all_one();

  /// Big-endian 11-byte serialisation (address seed first).
  [[nodiscard]] std::array<std::uint8_t, kBytes> to_bytes() const;
  [[nodiscard]] static SpeKey from_bytes(std::span<const std::uint8_t, kBytes> bytes);

  /// Key with bit `i` flipped, 0 <= i < 88 (bit 0 = MSB of the address
  /// seed, matching the serialised order) — used by the key-avalanche and
  /// low/high-density-key data sets.
  [[nodiscard]] SpeKey with_bit_flipped(unsigned i) const;

  /// Key whose serialised form has exactly the given bits set.
  [[nodiscard]] static SpeKey with_bits_set(std::span<const unsigned> bit_indices);

  [[nodiscard]] std::string to_hex() const;

  bool operator==(const SpeKey&) const = default;

private:
  static constexpr std::uint64_t kSeedMask = (std::uint64_t{1} << kSeedBits) - 1;
};

}  // namespace spe::core
