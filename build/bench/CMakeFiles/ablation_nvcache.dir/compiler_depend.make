# Empty compiler generated dependencies file for ablation_nvcache.
# This may be replaced when dependencies are built.
