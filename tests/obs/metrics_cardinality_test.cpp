// Label-cardinality guard (DESIGN.md §15): an unbounded label source — a
// tenant id echoed from the wire, say — must not grow the registry without
// bound. Once a family holds series_cap labeled names, new names are
// refused: counted into spe_obs_dropped_series_total, served by a hidden
// sink so cached references stay valid, and kept out of the export.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace spe::obs {
namespace {

std::string series(unsigned i) {
  return "spe_test_family{tenant=\"" + std::to_string(i) + "\"}";
}

TEST(MetricsCardinality, CapRefusesNewSeriesAndCountsDrops) {
  MetricsRegistry reg;
  reg.set_series_cap(4);
  for (unsigned i = 0; i < 4; ++i) reg.counter(series(i)).add(i + 1);
  EXPECT_EQ(reg.dropped_series(), 0u);

  // Over the cap: the call still returns a usable counter (the sink), but
  // the name is not registered and the refusal is counted.
  Counter& sink = reg.counter(series(4));
  sink.add(100);
  EXPECT_EQ(reg.dropped_series(), 1u);
  reg.counter(series(5)).add(1);
  EXPECT_EQ(reg.dropped_series(), 2u);

  const auto names = reg.names();
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_NE(std::find(names.begin(), names.end(), series(i)), names.end()) << i;
  EXPECT_EQ(std::find(names.begin(), names.end(), series(4)), names.end());

  // The sink's writes never reach the export; the drop counter does.
  const std::string out = reg.render(MetricsFormat::Prometheus);
  EXPECT_EQ(out.find("tenant=\"4\""), std::string::npos);
  EXPECT_NE(out.find("spe_obs_dropped_series_total 2"), std::string::npos);
}

TEST(MetricsCardinality, ExistingSeriesAlwaysServedAfterCapLowered) {
  MetricsRegistry reg;
  reg.set_series_cap(8);
  for (unsigned i = 0; i < 6; ++i) reg.counter(series(i)).add();
  reg.set_series_cap(2);  // lowering the cap never evicts existing series
  for (unsigned i = 0; i < 6; ++i) {
    reg.counter(series(i)).add();
    EXPECT_EQ(reg.counter(series(i)).value(), 2u) << i;
  }
  EXPECT_EQ(reg.dropped_series(), 0u);
  reg.counter(series(6)).add();  // but new names are refused
  EXPECT_EQ(reg.dropped_series(), 1u);
}

TEST(MetricsCardinality, UnlabeledNamesAndZeroCapAreExempt) {
  MetricsRegistry reg;
  reg.set_series_cap(1);
  // Unlabeled instruments never count against any family's cap.
  for (unsigned i = 0; i < 8; ++i)
    reg.counter("spe_test_plain_" + std::to_string(i)).add();
  EXPECT_EQ(reg.dropped_series(), 0u);
  // Cap 0 = unlimited.
  MetricsRegistry open;
  open.set_series_cap(0);
  for (unsigned i = 0; i < 64; ++i) open.counter(series(i)).add();
  EXPECT_EQ(open.dropped_series(), 0u);
}

}  // namespace
}  // namespace spe::obs
