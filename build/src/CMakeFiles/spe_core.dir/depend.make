# Empty dependencies file for spe_core.
# This may be replaced when dependencies are built.
