#include "obs/metrics.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spe::obs {

namespace {
/// "family{label=\"v\"}" -> "family"; plain names pass through.
std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Doubles rendered shortest-round-trip so export is deterministic.
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}
}  // namespace

namespace {
constexpr const char* kDroppedSeriesMetric = "spe_obs_dropped_series_total";
}  // namespace

MetricsRegistry::MetricsRegistry() {
  for (unsigned k = 0; k < sinks_.size(); ++k) {
    sinks_[k].kind = static_cast<Kind>(k);
    sinks_[k].counter = std::make_unique<Counter>();
    sinks_[k].gauge = std::make_unique<Gauge>();
    sinks_[k].histogram = std::make_unique<Histogram>();
  }
}

void MetricsRegistry::set_series_cap(std::size_t cap) {
  std::lock_guard lock(mutex_);
  series_cap_ = cap;
}

std::uint64_t MetricsRegistry::dropped_series() const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(kDroppedSeriesMetric);
  return it == entries_.end() ? 0 : it->second.counter->value();
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               const std::string& help, Kind kind) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    const auto brace = name.find('{');
    if (brace != std::string::npos && series_cap_ != 0) {
      std::size_t& series = family_series_[name.substr(0, brace)];
      if (series >= series_cap_) {
        // Over the cardinality cap: count the refusal into an exported
        // overflow counter, then hand back the hidden per-kind sink so the
        // caller's cached reference stays valid and hot-path writes go
        // nowhere instead of growing the registry without bound.
        auto [dit, created] = entries_.try_emplace(kDroppedSeriesMetric);
        if (created) {
          dit->second.kind = Kind::Counter;
          dit->second.help =
              "labeled metric series refused by the per-family cardinality cap";
          dit->second.counter = std::make_unique<Counter>();
        }
        dit->second.counter->add();
        return sinks_[static_cast<unsigned>(kind)];
      }
      ++series;
    }
    Entry e;
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  return *entry(name, help, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  return *entry(name, help, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  return *entry(name, help, Kind::Histogram).histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  std::string last_family;
  for (const auto& [name, e] : entries_) {
    const std::string family = family_of(name);
    if (family != last_family) {
      if (!e.help.empty()) out << "# HELP " << family << " " << e.help << "\n";
      out << "# TYPE " << family << " "
          << (e.kind == Kind::Counter
                  ? "counter"
                  : e.kind == Kind::Gauge ? "gauge" : "histogram")
          << "\n";
      last_family = family;
    }
    switch (e.kind) {
      case Kind::Counter: out << name << " " << e.counter->value() << "\n"; break;
      case Kind::Gauge: out << name << " " << fmt_double(e.gauge->value()) << "\n"; break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        // Cumulative buckets, non-empty edges only (plus +Inf), Prometheus
        // text convention. Labelled histogram names are not supported.
        std::uint64_t cumulative = 0;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          if (s.buckets[b] == 0) continue;
          cumulative += s.buckets[b];
          out << name << "_bucket{le=\"" << Histogram::upper_edge(b) << "\"} "
              << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
        out << name << "_sum " << s.sum << "\n";
        out << name << "_count " << s.count << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << name << "\": ";
    switch (e.kind) {
      case Kind::Counter: out << e.counter->value(); break;
      case Kind::Gauge: out << fmt_double(e.gauge->value()); break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
            << ", \"buckets\": {";
        bool first_bucket = true;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          if (s.buckets[b] == 0) continue;
          if (!first_bucket) out << ", ";
          first_bucket = false;
          out << "\"" << Histogram::upper_edge(b) << "\": " << s.buckets[b];
        }
        out << "}}";
        break;
      }
    }
  }
  out << "\n}\n";
}

void MetricsRegistry::write(std::ostream& out, MetricsFormat format) const {
  format == MetricsFormat::Prometheus ? write_prometheus(out) : write_json(out);
}

std::string MetricsRegistry::render(MetricsFormat format) const {
  std::ostringstream os;
  write(os, format);
  return os.str();
}

void MetricsRegistry::merge_into(MetricsRegistry& dest) const {
  struct Row {
    std::string name;
    std::string help;
    Kind kind;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot histogram;
  };
  // Sampled under our lock, written into dest outside it, so two registries
  // can merge into each other without a lock-order deadlock.
  std::vector<Row> rows;
  {
    std::lock_guard lock(mutex_);
    rows.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      Row row;
      row.name = name;
      row.help = e.help;
      row.kind = e.kind;
      switch (e.kind) {
        case Kind::Counter: row.counter = e.counter->value(); break;
        case Kind::Gauge: row.gauge = e.gauge->value(); break;
        case Kind::Histogram: row.histogram = e.histogram->snapshot(); break;
      }
      rows.push_back(std::move(row));
    }
  }
  for (const Row& row : rows) {
    switch (row.kind) {
      case Kind::Counter: dest.counter(row.name, row.help).add(row.counter); break;
      case Kind::Gauge: dest.gauge(row.name, row.help).set(row.gauge); break;
      case Kind::Histogram:
        dest.histogram(row.name, row.help)
            .merge_buckets(row.histogram.buckets, row.histogram.count,
                           row.histogram.sum);
        break;
    }
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace spe::obs
