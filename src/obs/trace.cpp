#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

namespace spe::obs {

namespace {
std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(TraceConfig config) {
  std::lock_guard lock(registry_mutex_);
  buffer_events_ = config.buffer_events == 0 ? 1 : config.buffer_events;
  deterministic_.store(config.deterministic, std::memory_order_relaxed);
  trace_pulses_.store(config.trace_pulses, std::memory_order_relaxed);
  tick_.store(0, std::memory_order_relaxed);
  wall_epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  // A generation bump logically empties every ring: owner threads re-home
  // their buffer on the next record, so no cross-thread slot mutation here.
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now() noexcept {
  if (deterministic_.load(std::memory_order_relaxed))
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  return steady_ns() - wall_epoch_ns_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() noexcept {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(registry_mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer->slots.resize(buffer_events_);
    buffer->generation.store(generation_.load(std::memory_order_acquire),
                             std::memory_order_release);
    buffers_.push_back(buffer);
  }
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (buffer->generation.load(std::memory_order_relaxed) != gen) {
    // New session since this thread last recorded: restart the ring. Only
    // the owner thread mutates size/slots, so this is race-free; collect()
    // skips buffers whose generation lags.
    buffer->size.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
    {
      std::lock_guard lock(registry_mutex_);
      if (buffer->slots.size() != buffer_events_) buffer->slots.resize(buffer_events_);
    }
    buffer->generation.store(gen, std::memory_order_release);
  }
  return *buffer;
}

void Tracer::record(const char* name, std::uint64_t start, std::uint64_t end,
                    std::uint64_t a0, std::uint64_t a1, std::uint16_t depth) noexcept {
  ThreadBuffer& buffer = local_buffer();
  const std::size_t i = buffer.size.load(std::memory_order_relaxed);
  if (i >= buffer.slots.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = buffer.slots[i];
  e.name = name;
  e.start = start;
  e.end = end;
  e.a0 = a0;
  e.a1 = a1;
  e.tid = buffer.tid;
  e.shard = buffer.shard;
  e.depth = depth;
  buffer.size.store(i + 1, std::memory_order_release);  // publish the slot
}

void Tracer::instant(const char* name, std::uint64_t a0, std::uint64_t a1) noexcept {
  if (!enabled()) return;
  const std::uint64_t t = now();
  record(name, t, t, a0, a1, local_buffer().depth);
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock(registry_mutex_);
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    for (const auto& buffer : buffers_) {
      if (buffer->generation.load(std::memory_order_acquire) != gen) continue;
      const std::size_t n = buffer->size.load(std::memory_order_acquire);
      events.insert(events.end(), buffer->slots.begin(), buffer->slots.begin() + n);
    }
  }
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end > b.end;  // enclosing span first
    return a.tid < b.tid;
  });
  return events;
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : collect()) {
    out << "{\"name\":\"" << e.name << "\",\"ts\":" << e.start
        << ",\"dur\":" << (e.end - e.start) << ",\"tid\":" << e.tid
        << ",\"shard\":" << e.shard << ",\"addr\":" << e.a0 << ",\"n\":" << e.a1
        << ",\"depth\":" << e.depth << "}\n";
  }
}

std::string Tracer::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t total = 0;
  std::lock_guard lock(registry_mutex_);
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  for (const auto& buffer : buffers_)
    if (buffer->generation.load(std::memory_order_acquire) == gen)
      total += buffer->dropped.load(std::memory_order_relaxed);
  return total;
}

std::uint16_t Tracer::thread_depth() noexcept {
  return instance().local_buffer().depth;
}

Span::Span(const char* name, std::uint64_t a0) noexcept : name_(name), a0_(a0) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  Tracer::ThreadBuffer& buffer = tracer.local_buffer();
  depth_ = buffer.depth++;
  start_ = tracer.now();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  Tracer::ThreadBuffer& buffer = tracer.local_buffer();
  --buffer.depth;
  // A span straddling disable() still closes its depth but records only if
  // tracing is still on (the session it started in may have been collected).
  if (tracer.enabled()) tracer.record(name_, start_, tracer.now(), a0_, a1_, depth_);
}

ShardScope::ShardScope(unsigned shard) noexcept {
  Tracer::ThreadBuffer& buffer = Tracer::instance().local_buffer();
  prev_ = buffer.shard;
  buffer.shard = static_cast<std::int32_t>(shard);
}

ShardScope::~ShardScope() { Tracer::instance().local_buffer().shard = prev_; }

std::int32_t ShardScope::current() noexcept {
  return Tracer::instance().local_buffer().shard;
}

}  // namespace spe::obs
