#include "core/key.hpp"

#include <gtest/gtest.h>

namespace spe::core {
namespace {

TEST(SpeKey, DefaultIsAllZero) {
  const SpeKey k = SpeKey::all_zero();
  EXPECT_EQ(k.address_seed, 0u);
  EXPECT_EQ(k.voltage_seed, 0u);
  for (auto b : k.to_bytes()) EXPECT_EQ(b, 0);
}

TEST(SpeKey, AllOneFills88Bits) {
  const SpeKey k = SpeKey::all_one();
  const auto bytes = k.to_bytes();
  for (auto b : bytes) EXPECT_EQ(b, 0xFF);
  EXPECT_EQ(k.address_seed, (std::uint64_t{1} << 44) - 1);
}

TEST(SpeKey, SerialisationRoundTrip) {
  util::Xoshiro256ss rng(1);
  for (int t = 0; t < 50; ++t) {
    const SpeKey k = SpeKey::random(rng);
    const auto bytes = k.to_bytes();
    EXPECT_EQ(SpeKey::from_bytes(bytes), k);
  }
}

TEST(SpeKey, RandomSeedsAreMasked) {
  util::Xoshiro256ss rng(2);
  for (int t = 0; t < 20; ++t) {
    const SpeKey k = SpeKey::random(rng);
    EXPECT_LT(k.address_seed, std::uint64_t{1} << 44);
    EXPECT_LT(k.voltage_seed, std::uint64_t{1} << 44);
  }
}

TEST(SpeKey, BitFlipTouchesExactlyOneBit) {
  util::Xoshiro256ss rng(3);
  const SpeKey k = SpeKey::random(rng);
  for (unsigned i = 0; i < SpeKey::kBits; ++i) {
    const SpeKey flipped = k.with_bit_flipped(i);
    EXPECT_NE(flipped, k);
    const auto a = k.to_bytes();
    const auto b = flipped.to_bytes();
    int diff_bits = 0;
    for (unsigned j = 0; j < SpeKey::kBytes; ++j)
      diff_bits += __builtin_popcount(a[j] ^ b[j]);
    EXPECT_EQ(diff_bits, 1) << "bit " << i;
    EXPECT_EQ(flipped.with_bit_flipped(i), k);  // involution
  }
  EXPECT_THROW((void)k.with_bit_flipped(88), std::out_of_range);
}

TEST(SpeKey, FirstBitIsAddressSeedMsb) {
  const SpeKey k = SpeKey::all_zero().with_bit_flipped(0);
  EXPECT_EQ(k.address_seed, std::uint64_t{1} << 43);
  EXPECT_EQ(k.voltage_seed, 0u);
  const SpeKey v = SpeKey::all_zero().with_bit_flipped(44);
  EXPECT_EQ(v.voltage_seed, std::uint64_t{1} << 43);
}

TEST(SpeKey, WithBitsSet) {
  const unsigned bits[] = {0, 44, 87};
  const SpeKey k = SpeKey::with_bits_set(bits);
  const auto bytes = k.to_bytes();
  EXPECT_EQ(bytes[0], 0x80);
  int total = 0;
  for (auto b : bytes) total += __builtin_popcount(b);
  EXPECT_EQ(total, 3);
}

TEST(SpeKey, HexIs22Chars) {
  util::Xoshiro256ss rng(4);
  const SpeKey k = SpeKey::random(rng);
  EXPECT_EQ(k.to_hex().size(), 22u);
  EXPECT_EQ(SpeKey::all_zero().to_hex(), "0000000000000000000000");
}

}  // namespace
}  // namespace spe::core
