#pragma once
// SEC-DED (single-error-correct, double-error-detect) Hamming code over
// 64-bit words — the standard (72,64) main-memory ECC the paper's threat
// model points to for environmental corruption ("data may also be corrupted
// by ... heat and gamma rays. ... mitigated by error-correction codes",
// Section 3). The NVMM stores one 8-bit check byte per 64-bit word.
//
// Layout: 7 Hamming parity bits (covering bit positions by their index
// binary representation) + 1 overall parity bit for double-error detection.

#include <cstdint>
#include <span>
#include <vector>

namespace spe::ecc {

struct Codeword {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

/// Computes the 8 check bits for a 64-bit word.
[[nodiscard]] std::uint8_t encode_check(std::uint64_t data);

enum class DecodeStatus {
  Clean,             ///< no error
  CorrectedData,     ///< single data-bit error corrected
  CorrectedCheck,    ///< single check-bit error (data already good)
  DoubleError,       ///< uncorrectable: two bits flipped
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::Clean;
  std::uint64_t data = 0;      ///< corrected data
  int corrected_bit = -1;      ///< flipped data-bit index, if CorrectedData
};

/// Decodes a possibly corrupted codeword.
[[nodiscard]] DecodeResult decode(Codeword word);

/// Block convenience layer: protects a 64-byte cache block as eight words
/// (8 check bytes of overhead — the standard 12.5%).
struct ProtectedBlock {
  std::vector<std::uint8_t> data;    ///< 64 bytes
  std::vector<std::uint8_t> checks;  ///< 8 bytes
};

[[nodiscard]] ProtectedBlock protect_block(std::span<const std::uint8_t> block);

struct BlockDecodeResult {
  bool ok = false;                 ///< all words clean or corrected
  unsigned corrected_words = 0;
  unsigned uncorrectable_words = 0;
  std::vector<std::uint8_t> data;  ///< best-effort corrected block
};

[[nodiscard]] BlockDecodeResult recover_block(const ProtectedBlock& stored);

}  // namespace spe::ecc
