#include "nist/suite.hpp"

#include "util/stats.hpp"

namespace spe::nist {

bool TestResult::passed(double alpha) const {
  if (!applicable) return true;
  for (double p : p_values)
    if (p < alpha) return false;
  return true;
}

double TestResult::worst_p() const {
  if (!applicable || p_values.empty()) return 1.0;
  double worst = 1.0;
  for (double p : p_values) worst = p < worst ? p : worst;
  return worst;
}

std::vector<std::string> test_names() {
  return {
      "F-mono",    "F-block",  "Runs",     "LroO",     "BMR",
      "DFT",       "NOTM",     "OTM",      "Maurer",   "Lin. Com.",
      "Ser. Com.", "App. Ent", "Cusums",   "Rnd. Ex.", "REV",
  };
}

std::vector<TestResult> run_all(const util::BitVector& bits) {
  return {
      frequency_test(bits),
      block_frequency_test(bits),
      runs_test(bits),
      longest_run_test(bits),
      matrix_rank_test(bits),
      dft_test(bits),
      non_overlapping_template_test(bits),
      overlapping_template_test(bits),
      universal_test(bits),
      linear_complexity_test(bits),
      serial_test(bits),
      approximate_entropy_test(bits),
      cusum_test(bits),
      random_excursions_test(bits),
      random_excursions_variant_test(bits),
  };
}

bool SuiteSummary::all_accepted() const {
  const unsigned bound = max_allowed();
  for (unsigned f : failures)
    if (f > bound) return false;
  return true;
}

unsigned SuiteSummary::max_allowed() const {
  return util::max_allowed_failures(sequences, alpha);
}

SuiteSummary evaluate_dataset(const std::vector<util::BitVector>& sequences, double alpha) {
  SuiteSummary summary;
  summary.names = test_names();
  summary.failures.assign(summary.names.size(), 0);
  summary.sequences = static_cast<unsigned>(sequences.size());
  summary.alpha = alpha;
  for (const auto& seq : sequences) {
    const auto results = run_all(seq);
    for (std::size_t t = 0; t < results.size(); ++t)
      if (!results[t].passed(alpha)) ++summary.failures[t];
  }
  return summary;
}

}  // namespace spe::nist
