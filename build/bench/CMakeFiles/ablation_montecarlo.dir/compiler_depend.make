# Empty compiler generated dependencies file for ablation_montecarlo.
# This may be replaced when dependencies are built.
