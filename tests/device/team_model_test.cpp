#include "device/team_model.hpp"

#include <gtest/gtest.h>

namespace spe::device {
namespace {

TEST(TeamParams, ResistanceMapIsLinearAndClamped) {
  TeamParams p;
  EXPECT_DOUBLE_EQ(p.resistance(0.0), p.r_on);
  EXPECT_DOUBLE_EQ(p.resistance(1.0), p.r_off);
  EXPECT_DOUBLE_EQ(p.resistance(0.5), 0.5 * (p.r_on + p.r_off));
  EXPECT_DOUBLE_EQ(p.resistance(-1.0), p.r_on);
  EXPECT_DOUBLE_EQ(p.resistance(2.0), p.r_off);
}

TEST(TeamParams, StateForResistanceInverts) {
  TeamParams p;
  for (double w : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(p.state_for_resistance(p.resistance(w)), w, 1e-12);
  }
}

TEST(TeamModel, SubThresholdVoltageDoesNotMove) {
  TeamModel m({}, 0.5);
  // i_off = 1 uA; at R = 105k, 0.05 V gives ~0.5 uA < threshold.
  m.apply_voltage(0.05, 1e-6);
  EXPECT_DOUBLE_EQ(m.state(), 0.5);
}

TEST(TeamModel, PositiveVoltageIncreasesResistance) {
  TeamModel m({}, 0.4);
  const double r0 = m.resistance();
  m.apply_voltage(1.0, 0.05e-6);
  EXPECT_GT(m.resistance(), r0);
}

TEST(TeamModel, NegativeVoltageDecreasesResistance) {
  TeamModel m({}, 0.6);
  const double r0 = m.resistance();
  m.apply_voltage(-1.0, 0.05e-6);
  EXPECT_LT(m.resistance(), r0);
}

TEST(TeamModel, StateStaysInBounds) {
  TeamModel m({}, 0.5);
  m.apply_voltage(1.0, 10e-6);  // very long pulse
  EXPECT_LE(m.state(), 1.0);
  EXPECT_GE(m.state(), 0.0);
  m.apply_voltage(-1.0, 10e-6);
  EXPECT_GE(m.state(), 0.0);
}

TEST(TeamModel, WindowPinsNearBoundary) {
  TeamModel m({}, 0.999);
  const double w0 = m.state();
  m.apply_voltage(1.0, 0.1e-6);
  // Inside the boundary window the drift is (almost) frozen.
  EXPECT_NEAR(m.state(), w0, 5e-3);
}

TEST(TeamModel, LongerPulseMovesFurther) {
  TeamModel a({}, 0.3), b({}, 0.3);
  a.apply_voltage(1.0, 0.02e-6);
  b.apply_voltage(1.0, 0.08e-6);
  EXPECT_GT(b.state(), a.state());
}

TEST(TeamModel, HysteresisAsymmetry) {
  // |k_on| > k_off: returning takes a shorter pulse than going.
  TeamModel m({}, 0.375);
  m.apply_voltage(1.0, 0.071e-6);
  const double up = m.state() - 0.375;
  ASSERT_GT(up, 0.1);
  TeamModel back({}, m.state());
  back.apply_voltage(-1.0, 0.015e-6);
  const double down = m.state() - back.state();
  // The 0.015 us reverse pulse undoes a comparable amount of motion.
  EXPECT_GT(down, 0.5 * up);
}

TEST(TeamModel, Figure5Calibration) {
  // The paper's Fig. 5: a logic-10 cell hit with +1 V for 0.071 us lands in
  // the highest-resistance band (~172 kOhm, logic 00).
  TeamParams p;
  TeamModel m(p, 0.375);  // logic "10" band centre
  m.apply_voltage(1.0, 0.071e-6);
  EXPECT_GT(m.resistance(), 0.75 * p.r_off);  // top band
}

TEST(TeamModel, DwDtZeroBetweenThresholds) {
  TeamModel m({}, 0.5);
  EXPECT_EQ(m.dw_dt(0.5, 0.0), 0.0);
  // Tiny positive voltage below i_off.
  EXPECT_EQ(m.dw_dt(0.5, 0.02), 0.0);
}

TEST(TeamModel, RK4MatchesFineEuler) {
  TeamModel rk({}, 0.4);
  rk.apply_voltage(1.0, 0.05e-6, 100);
  // Brute-force fine Euler for reference.
  TeamModel ref({}, 0.4);
  double w = 0.4;
  const int steps = 200000;
  const double h = 0.05e-6 / steps;
  for (int i = 0; i < steps; ++i) w += h * ref.dw_dt(w, 1.0);
  EXPECT_NEAR(rk.state(), w, 1e-4);
}

}  // namespace
}  // namespace spe::device
