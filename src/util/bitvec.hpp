#pragma once
// Dynamic bit vector tuned for the NIST statistical suite and the SPE data
// paths: append-oriented construction, O(1) random access, XOR combination,
// and byte/word import-export.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace spe::util {

/// A growable sequence of bits. Bit 0 is the first bit appended; storage is
/// little-endian within 64-bit words. All indices are checked in debug builds
/// via assert-like guards (out-of-range access throws std::out_of_range).
class BitVector {
public:
  BitVector() = default;

  /// Constructs a vector of `n` bits, all initialised to `value`.
  explicit BitVector(std::size_t n, bool value = false);

  /// Number of bits stored.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads the bit at `i`. Throws std::out_of_range if `i >= size()`.
  [[nodiscard]] bool get(std::size_t i) const;

  /// Writes the bit at `i`. Throws std::out_of_range if `i >= size()`.
  void set(std::size_t i, bool value);

  /// Appends a single bit.
  void push_back(bool bit);

  /// Appends the `count` low-order bits of `word`, most-significant first
  /// (matching the order a hardware shift register would emit a field).
  void append_bits(std::uint64_t word, unsigned count);

  /// Appends every bit of `bytes`, MSB-first within each byte.
  void append_bytes(std::span<const std::uint8_t> bytes);

  /// Appends all bits of `other`.
  void append(const BitVector& other);

  /// Returns the sub-vector [begin, begin+len). Throws if out of range.
  [[nodiscard]] BitVector slice(std::size_t begin, std::size_t len) const;

  /// Number of one-bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// XORs `other` into this vector. Sizes must match (throws otherwise).
  BitVector& operator^=(const BitVector& other);

  /// Packs the bits back into bytes, MSB-first; the final byte is zero-padded.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Reads `count` bits starting at `pos` as an unsigned value, first bit is
  /// the most significant. `count` must be <= 64.
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, unsigned count) const;

  /// "0101..." rendering, for diagnostics and golden tests.
  [[nodiscard]] std::string to_string() const;

  /// Parses a "0101..." string (throws std::invalid_argument on other chars).
  static BitVector from_string(std::string_view s);

  bool operator==(const BitVector& other) const = default;

private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace spe::util
