#include "device/team_model.hpp"

#include <algorithm>
#include <cmath>

namespace spe::device {

double TeamParams::resistance(double w) const noexcept {
  const double t = std::clamp(w, 0.0, 1.0);
  return r_on + t * (r_off - r_on);
}

double TeamParams::state_for_resistance(double r) const noexcept {
  const double t = (r - r_on) / (r_off - r_on);
  return std::clamp(t, 0.0, 1.0);
}

TeamModel::TeamModel(TeamParams params, double initial_state) noexcept
    : params_(params), w_(std::clamp(initial_state, 0.0, 1.0)) {}

void TeamModel::set_state(double w) noexcept { w_ = std::clamp(w, 0.0, 1.0); }

namespace {
// TEAM exponential window: ~1 in the bulk, decays smoothly to 0 within
// `edge` of the approached boundary. `toward_one` selects which boundary
// pins the motion.
double window(double w, double c, double edge, bool toward_one) noexcept {
  const double dist = toward_one ? (1.0 - w) : w;
  const double x = dist - edge;
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x / c);
}
}  // namespace

double TeamModel::dw_dt(double w, double voltage) const noexcept {
  const double r = params_.resistance(w);
  const double i = voltage / r;
  if (i > params_.i_off && params_.i_off > 0.0) {
    const double drive = std::pow(i / params_.i_off - 1.0, params_.alpha_off);
    return params_.k_off * drive * window(w, params_.window_c, params_.window_edge, true);
  }
  if (i < params_.i_on && params_.i_on < 0.0) {
    const double drive = std::pow(i / params_.i_on - 1.0, params_.alpha_on);
    return params_.k_on * drive * window(w, params_.window_c, params_.window_edge, false);
  }
  return 0.0;
}

void TeamModel::apply_voltage(double voltage, double duration, int steps) {
  if (duration <= 0.0 || steps <= 0) return;
  const double h = duration / steps;
  double w = w_;
  for (int s = 0; s < steps; ++s) {
    const double k1 = dw_dt(w, voltage);
    const double k2 = dw_dt(w + 0.5 * h * k1, voltage);
    const double k3 = dw_dt(w + 0.5 * h * k2, voltage);
    const double k4 = dw_dt(w + h * k3, voltage);
    w += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    w = std::clamp(w, 0.0, 1.0);
  }
  w_ = w;
}

}  // namespace spe::device
