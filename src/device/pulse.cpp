#include "device/pulse.hpp"

#include <cmath>
#include <stdexcept>

namespace spe::device {

PulseLibrary::PulseLibrary(double min_width, double max_width, double amplitude) {
  if (min_width <= 0.0 || max_width <= min_width)
    throw std::invalid_argument("PulseLibrary: need 0 < min_width < max_width");
  pulses_.reserve(kPulses);
  const double ratio = std::pow(max_width / min_width, 1.0 / (kWidths - 1));
  for (unsigned pol = 0; pol < 2; ++pol) {
    const double v = pol == 0 ? amplitude : -amplitude;
    double w = min_width;
    for (unsigned i = 0; i < kWidths; ++i) {
      pulses_.push_back(Pulse{v, w});
      w *= ratio;
    }
  }
}

const Pulse& PulseLibrary::pulse(unsigned code) const {
  if (code >= pulses_.size()) throw std::out_of_range("PulseLibrary::pulse");
  return pulses_[code];
}

unsigned PulseLibrary::nearest_code(double voltage, double width) const {
  const unsigned pol = voltage >= 0.0 ? 0u : 1u;
  unsigned best = pol * kWidths;
  double best_err = std::abs(std::log(pulses_[best].width / width));
  for (unsigned i = 1; i < kWidths; ++i) {
    const unsigned code = pol * kWidths + i;
    const double err = std::abs(std::log(pulses_[code].width / width));
    if (err < best_err) {
      best_err = err;
      best = code;
    }
  }
  return best;
}

}  // namespace spe::device
