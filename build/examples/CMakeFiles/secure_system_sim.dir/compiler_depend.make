# Empty compiler generated dependencies file for secure_system_sim.
# This may be replaced when dependencies are built.
