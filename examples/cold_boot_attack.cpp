// Attack walkthrough: the three threat-model scenarios of Section 3 played
// against a live SNVMM, from the attacker's point of view.
//
//   Attack 1 — steal the powered-down module and probe it.
//   Attack 2 — read/write access: chosen plaintext and insertion attempts.
//   Attack 3 — cold boot: cut power mid-operation and race the SPECU.
//
// Run: ./build/examples/cold_boot_attack

#include <cstdio>
#include <cstring>
#include <string>

#include "core/attacks.hpp"
#include "core/specu.hpp"

namespace {

void hexdump(const char* label, const std::vector<std::uint8_t>& data, unsigned n = 32) {
  std::printf("%s", label);
  for (unsigned i = 0; i < n && i < data.size(); ++i) std::printf("%02x", data[i]);
  std::printf("...\n");
}

double printable_fraction(const std::vector<std::uint8_t>& data) {
  unsigned printable = 0;
  for (auto b : data) printable += (b >= 0x20 && b < 0x7F) ? 1 : 0;
  return static_cast<double>(printable) / static_cast<double>(data.size());
}

}  // namespace

int main() {
  using namespace spe;
  std::printf("== SPE attack walkthrough (Sections 3 & 6) ==\n\n");

  core::Snvmm nvmm;
  core::Tpm tpm;
  util::Xoshiro256ss rng(99);
  const std::uint64_t measurement = 0x5EC0DE;
  tpm.provision(nvmm.device_id(), measurement, core::SpeKey::random(rng));

  core::Specu specu(nvmm, core::SpeMode::Serial);
  specu.power_on(tpm, measurement);

  const std::string secret = "BEGIN RSA PRIVATE KEY: 3082025c02010002818100b4";
  std::vector<std::uint8_t> block(64, ' ');
  std::memcpy(block.data(), secret.data(), secret.size());
  for (std::uint64_t addr = 0; addr < 32; ++addr) specu.write_block(addr * 64, block);
  std::printf("victim wrote a private key into 32 NVMM blocks\n\n");

  // ---- Attack 1: steal the module after orderly power-down --------------
  std::printf("--- Attack 1: module theft after power-down ---\n");
  specu.power_down();
  const auto stolen = nvmm.probe_block(0);
  hexdump("physical probe of block 0: ", stolen);
  std::printf("printable ASCII fraction: %.0f%% (plaintext would be ~100%%)\n",
              100.0 * printable_fraction(stolen));
  const auto bf = core::brute_force_analysis();
  std::printf("brute force on the stolen module: ~1e%.0f years (paper: ~1e32)\n\n",
              bf.log10_years);

  // ---- Attack 2: chosen plaintext with a captive SPECU -------------------
  std::printf("--- Attack 2: chosen-plaintext / insertion access ---\n");
  core::Specu captive(nvmm, core::SpeMode::Serial);
  captive.power_on(tpm, measurement);
  std::vector<std::uint8_t> chosen(64, 0x00);
  captive.write_block(0x8000, chosen);
  const auto ct_zero = nvmm.probe_block(0x8000);
  hexdump("ciphertext of all-zero plaintext: ", ct_zero);
  unsigned ones = 0;
  for (auto b : ct_zero) ones += __builtin_popcount(b);
  std::printf("ciphertext ones density: %.2f (random ~0.5 even for zero PT)\n",
              static_cast<double>(ones) / (ct_zero.size() * 8));

  const auto cal = core::get_calibration(nvmm.device_params());
  const core::SpeCipher probe_cipher(core::SpeKey::random(rng), cal);
  const auto ins = core::insertion_attack(probe_cipher, 200, 7);
  std::printf("insertion attack over 200 probes: flip rate %.3f, max bias %.3f\n\n",
              ins.mean_flip_rate, ins.max_bit_bias);

  // ---- Attack 3: cold boot ------------------------------------------------
  std::printf("--- Attack 3: cold boot during operation ---\n");
  for (std::uint64_t addr = 0; addr < 8; ++addr) (void)captive.read_block(addr * 64);
  std::printf("victim has %zu hot blocks decrypted in the array (SPE-serial)\n",
              captive.plaintext_blocks());
  const auto window = core::cold_boot_analysis(captive.plaintext_blocks() * 64);
  std::printf("window to secure them at power-down: %.2f us (DRAM leaves data ~3.2 s)\n",
              window.spe_window_seconds * 1e6);

  // 3a: the attacker wins the race only if power is CUT (no orderly drain):
  const unsigned abandoned = captive.power_loss();
  const auto leaked = nvmm.probe_block(0);
  std::printf("hard power cut: %u plaintext blocks abandoned\n", abandoned);
  hexdump("attacker probes block 0:  ", leaked);
  std::printf("printable fraction now: %.0f%% -> plaintext leak on HARD loss\n",
              100.0 * printable_fraction(leaked));

  // 3b: with the orderly (capacitor-backed) drain the window closes:
  core::Specu recovered(nvmm, core::SpeMode::Serial);
  recovered.power_on(tpm, measurement);
  for (std::uint64_t addr = 0; addr < 8; ++addr) (void)recovered.read_block(addr * 64);
  const unsigned secured = recovered.power_down();
  std::printf("orderly power-down instead: %u blocks secured in %.2f us; probe:\n",
              secured, core::cold_boot_analysis(secured * 64).spe_window_seconds * 1e6);
  hexdump("attacker probes block 0:  ", nvmm.probe_block(0));
  std::printf("printable fraction: %.0f%% -> nothing to steal\n",
              100.0 * printable_fraction(nvmm.probe_block(0)));
  return 0;
}
