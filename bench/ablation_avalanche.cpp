// Ablation: how many PoE pulses does SPE need before the ciphertext is
// statistically random? Section 6.1: "initial tests using SPE with fewer
// than 16 PoEs fail a large number of tests. Randomness increases with an
// increasing number of overlapping polyominos."
//
// We truncate the 16-pulse schedule and run the NIST battery on the
// plaintext-avalanche and random-plaintext data sets for each prefix
// length, and also report the raw avalanche strength (mean ciphertext bits
// flipped per plaintext bit flip).

#include "bench_util.hpp"
#include "core/datasets.hpp"
#include "nist/suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace spe;
  benchutil::banner("ablation_avalanche — randomness vs number of PoE pulses",
                    "Section 6.1 (PoE-count sensitivity)");

  const auto cal = core::get_calibration(xbar::CrossbarParams{});
  const core::SpeCipher cipher(core::SpeKey{0xACE0FBA5E, 0xBADC0FFEE & 0xFFFFFFFFFFF}, cal);

  core::DatasetConfig cfg;
  cfg.sequences = benchutil::env_or("SPE_NIST_SEQS", 8);
  cfg.bits_per_sequence = benchutil::env_or("SPE_NIST_BITS", 1u << 14);

  util::Table table({"PoE pulses", "avalanche bits/flip (of 128)",
                     "NIST tests failed (PT-avalanche)", "NIST tests failed (rnd PT)"});

  util::Xoshiro256ss rng(31);
  for (unsigned pulses : {2u, 4u, 8u, 12u, 16u}) {
    // Raw avalanche strength.
    double flipped = 0.0;
    const int trials = 100;
    std::vector<std::uint8_t> c0(16), c1(16);
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> pt(16);
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.below(256));
      core::UnitLevels levels = cipher.levels_from_bytes(pt);
      cipher.encrypt_truncated(levels, pulses);
      cipher.bytes_from_levels(levels, c0);
      pt[t % 16] ^= static_cast<std::uint8_t>(1u << (t % 8));
      levels = cipher.levels_from_bytes(pt);
      cipher.encrypt_truncated(levels, pulses);
      cipher.bytes_from_levels(levels, c1);
      for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(c0[i] ^ c1[i]);
    }

    // NIST battery on truncated-schedule data sets.
    cfg.truncate_pulses = pulses == 16 ? 0 : pulses;
    const auto pa = nist::evaluate_dataset(
        core::generate_dataset(core::Dataset::PlaintextAvalanche, cfg));
    const auto rp = nist::evaluate_dataset(
        core::generate_dataset(core::Dataset::RandomPlaintextKey, cfg));
    // +1 slack on the NIST proportion bound: the fast profile runs so few
    // sequences that a single unlucky one would otherwise flag a test.
    const unsigned allowed = pa.max_allowed() + 1;
    auto tests_failed = [allowed](const nist::SuiteSummary& s) {
      unsigned failed = 0;
      for (unsigned f : s.failures) failed += f > allowed ? 1 : 0;
      return failed;
    };
    table.add_row({std::to_string(pulses), util::Table::fmt(flipped / trials, 1),
                   std::to_string(tests_failed(pa)) + " of 15",
                   std::to_string(tests_failed(rp)) + " of 15"});
  }
  table.print();
  std::printf("\nWith few pulses, uncovered cells carry plaintext straight into the\n"
              "ciphertext and the battery fails en masse; at the full 16-PoE\n"
              "schedule (every cell overlapped) everything passes — the paper's\n"
              "observation that 16 PoEs are needed for an 8x8 crossbar.\n");
  return 0;
}
