#pragma once
// One bank shard of the memory service: an independent Snvmm array with its
// own SPECU, request queue, and counters. The state mutex serialises the
// shard's array between its worker thread and the background scavenger —
// shards never share crypto state, so there is no cross-shard locking.

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/snvmm.hpp"
#include "core/specu.hpp"
#include "core/tpm.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/service_config.hpp"
#include "runtime/service_stats.hpp"

namespace spe::runtime {

class BankShard {
public:
  BankShard(unsigned id, const ServiceConfig& config);

  BankShard(const BankShard&) = delete;
  BankShard& operator=(const BankShard&) = delete;

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t device_id() const noexcept { return memory_.device_id(); }
  [[nodiscard]] unsigned block_bytes() const noexcept { return memory_.block_bytes(); }
  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] ShardCounters& counters() noexcept { return counters_; }

  /// Power-on handshake against the service TPM. False = key withheld.
  [[nodiscard]] bool power_on(const core::Tpm& tpm, std::uint64_t measurement);

  /// Worker side: executes a drained batch in FIFO order under the state
  /// lock, fulfilling every promise (value or exception).
  void execute_batch(std::vector<Request> batch);

  /// Scavenger side: re-encrypts up to `max_blocks` plaintext blocks,
  /// timing each one into the background-latency histogram.
  unsigned scavenge(unsigned max_blocks);

  /// Counters plus under-lock occupancy (plaintext / resident blocks).
  [[nodiscard]] ShardStatsSnapshot stats_snapshot() const;

  [[nodiscard]] double encrypted_fraction() const;
  [[nodiscard]] core::Specu::Stats specu_stats() const;

private:
  unsigned id_;
  ShardCounters counters_;
  RequestQueue queue_;
  mutable std::mutex state_mutex_;  ///< guards memory_ + specu_
  core::Snvmm memory_;
  core::Specu specu_;
};

}  // namespace spe::runtime
