// Fig. 6 reproduction: polyomino coverage in an 8x8 crossbar for 10-17
// PoEs, split into cells covered by a single polyomino (the red bars — the
// known-plaintext vulnerabilities of Section 6.2.2) and cells covered by
// two or more (the green bars). Also verifies the Table-1 ILP's headline:
// the minimum PoE count for full-security coverage.
//
// Placements are solved with the branch-and-bound ILP on the Table-1
// stencils; where the strict <=2 saturation cap is infeasible for a count
// (the paper's boundary equations are "customized"; see DESIGN.md) the
// harness retries with the relaxed cap of 3 and flags it.

#include "bench_util.hpp"
#include "core/calibration.hpp"
#include "core/lut.hpp"
#include "ilp/poe_placement.hpp"
#include "util/table.hpp"

namespace {

spe::ilp::PoePlacement solve_relaxed(unsigned count, spe::ilp::SolverOptions opt) {
  using namespace spe::ilp;
  // Strict Table-1 window first; fall back to cap 3 on infeasibility.
  PoePlacement strict = solve_fixed_poes(8, 8, count, opt);
  if (strict.feasible) return strict;

  const auto shapes = all_stencils(8, 8);
  Model m;
  m.sense = Sense::Maximize;
  std::vector<std::vector<unsigned>> cell_to_poes(64);
  for (unsigned p = 0; p < shapes.size(); ++p) {
    m.add_var(static_cast<double>(shapes[p].size()));
    for (unsigned cell : shapes[p]) cell_to_poes[cell].push_back(p);
  }
  for (unsigned cell = 0; cell < 64; ++cell) {
    std::vector<Term> terms;
    for (unsigned p : cell_to_poes[cell]) terms.push_back({p, 1.0});
    m.add_range(std::move(terms), 1.0, 3.0);
  }
  std::vector<Term> all;
  for (unsigned p = 0; p < shapes.size(); ++p) all.push_back({p, 1.0});
  m.add_eq(std::move(all), count);

  Solver solver(opt);
  const Solution sol = solver.solve(m);
  PoePlacement out;
  out.coverage.assign(64, 0);
  if (!sol.has_solution()) return out;
  out.feasible = true;
  for (unsigned p = 0; p < shapes.size(); ++p) {
    if (!sol.values[p]) continue;
    out.poes.push_back(p);
    for (unsigned cell : shapes[p]) ++out.coverage[cell];
  }
  return out;
}

}  // namespace

int main() {
  using namespace spe;
  benchutil::banner("fig6_coverage — overlapped vs single-covered cells per PoE count",
                    "Fig. 6 + Table 1 (Sections 5.5, 6.2.2)");

  ilp::SolverOptions opt;
  opt.node_limit = benchutil::env_or("SPE_ILP_NODES", 2'000'000);

  util::Table table({"PoEs", "overlapped (>=2)", "single-covered", "uncovered",
                     "total coverage", "window"});
  for (unsigned count = 10; count <= 17; ++count) {
    ilp::PoePlacement strict = ilp::solve_fixed_poes(8, 8, count, opt);
    const bool used_strict = strict.feasible;
    const ilp::PoePlacement placement =
        used_strict ? std::move(strict) : solve_relaxed(count, opt);
    if (!placement.feasible) {
      table.add_row({std::to_string(count), "-", "-", "-", "-", "no solution found"});
      continue;
    }
    table.add_row({std::to_string(count), std::to_string(placement.overlapped_cells()),
                   std::to_string(placement.single_covered_cells()),
                   std::to_string(placement.uncovered_cells()),
                   std::to_string(placement.total_coverage()),
                   used_strict ? "strict [1,2]" : "relaxed [1,3]"});
  }
  table.print();
  std::printf("\nPaper's Fig. 6: single-covered cells shrink as PoEs grow and vanish\n"
              "at 16-17 PoEs (all cells overlapped => known-plaintext ambiguity).\n");

  // The operational 16-PoE set actually used by the SPECU, evaluated under
  // the PHYSICAL (calibrated) polyominoes.
  const auto cal = core::get_calibration(xbar::CrossbarParams{});
  std::vector<unsigned> coverage(64, 0);
  for (unsigned p : core::default_poes_8x8())
    for (auto cell : cal->shape(p).cells) ++coverage[cell];
  unsigned single = 0, multi = 0, uncovered = 0;
  for (unsigned c : coverage) {
    uncovered += c == 0;
    single += c == 1;
    multi += c >= 2;
  }
  std::printf("\nDefault SPECU placement (16 PoEs) under physical polyominoes:\n"
              "  overlapped=%u single=%u uncovered=%u (paper: 64/0/0 at 16 PoEs)\n",
              multi, single, uncovered);

  // Minimum-PoE sweep over the security parameter S (Table 1's trade-off).
  util::Table min_table({"S (security margin)", "min PoEs", "proved optimal"});
  for (unsigned s : {0u, 16u, 32u, 48u}) {
    const auto placement = ilp::solve_min_poes(8, 8, s, opt);
    min_table.add_row({std::to_string(s),
                       placement.feasible ? std::to_string(placement.poes.size()) : "-",
                       placement.optimal ? "yes" : "no (node budget)"});
  }
  std::printf("\n");
  min_table.print();
  return 0;
}
