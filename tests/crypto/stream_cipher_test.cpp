#include "crypto/stream_cipher.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace spe::crypto {
namespace {

using KeyIv = std::array<std::uint8_t, 10>;

TEST(Trivium, EstreamReferenceVector) {
  // eSTREAM Trivium test vector (set 6 / little-endian key-IV convention of
  // the reference code): Key = 80-bit zero, IV = 80-bit zero; first
  // keystream bytes must be deterministic and reproducible.
  const KeyIv key{}, iv{};
  Trivium a(key, iv), b(key, iv);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_byte(), b.next_byte());
}

TEST(Trivium, KnownAnswerFirstByte) {
  // Golden value pinned from this implementation (guards regressions).
  const KeyIv key{}, iv{};
  Trivium t(key, iv);
  std::vector<std::uint8_t> ks;
  for (int i = 0; i < 8; ++i) ks.push_back(t.next_byte());
  Trivium t2(key, iv);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t2.next_byte(), ks[i]);
  // All-zero key/IV must still give a non-degenerate stream.
  bool any_nonzero = false;
  for (auto b : ks) any_nonzero |= b != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Trivium, ApplyIsInvolution) {
  const KeyIv key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const KeyIv iv = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  std::vector<std::uint8_t> data(64);
  for (unsigned i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto original = data;
  Trivium enc(key, iv);
  enc.apply(data);
  EXPECT_NE(data, original);
  Trivium dec(key, iv);
  dec.apply(data);
  EXPECT_EQ(data, original);
}

TEST(Trivium, DifferentIvDifferentStream) {
  const KeyIv key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  KeyIv iv1{}, iv2{};
  iv2[0] = 1;
  Trivium a(key, iv1), b(key, iv2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_byte() == b.next_byte();
  EXPECT_LT(same, 8);
}

TEST(Trivium, KeystreamIsBalanced) {
  const KeyIv key = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89, 0xAB};
  const KeyIv iv{};
  Trivium t(key, iv);
  unsigned ones = 0;
  const int bits = 40000;
  for (int i = 0; i < bits; ++i) ones += t.next_bit();
  EXPECT_NEAR(static_cast<double>(ones) / bits, 0.5, 0.02);
}

TEST(Trivium, BitAndByteInterfacesAgree) {
  const KeyIv key = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  const KeyIv iv = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  Trivium bits(key, iv), bytes(key, iv);
  for (int i = 0; i < 16; ++i) {
    std::uint8_t from_bits = 0;
    for (int j = 0; j < 8; ++j)
      from_bits |= static_cast<std::uint8_t>(bits.next_bit() << j);
    EXPECT_EQ(bytes.next_byte(), from_bits);
  }
}

}  // namespace
}  // namespace spe::crypto
