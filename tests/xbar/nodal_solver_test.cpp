#include "xbar/nodal_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spe::xbar {
namespace {

TEST(SolveDense, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
  const auto x = solve_dense({2, 1, 1, 3}, {3, 5});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SolveDense, PivotsZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] requires pivoting.
  const auto x = solve_dense({0, 1, 1, 0}, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveDense, ThrowsOnSingular) {
  EXPECT_THROW((void)solve_dense({1, 1, 1, 1}, {1, 2}), std::runtime_error);
  EXPECT_THROW((void)solve_dense({1, 2, 3}, {1, 2}), std::invalid_argument);
}

TEST(SolveCrossbar, DriveSizesValidated) {
  Crossbar xb;
  std::vector<LineDrive> rows(8), cols(7);
  EXPECT_THROW((void)solve_crossbar(xb, rows, cols), std::invalid_argument);
}

TEST(SolveCrossbar, AddressedCellSeesNearlyFullDrive) {
  Crossbar xb;
  xb.select_row(2);
  std::vector<LineDrive> rows(8), cols(8);
  rows[2] = LineDrive::driven(1.0);
  cols[4] = LineDrive::driven(0.0);
  const auto sol = solve_crossbar(xb, rows, cols);
  // Normal mode: only row 2's transistors are on; the addressed cell gets
  // almost the whole volt, and sneak *currents* are cut off (the floating
  // node voltage of gated-off cells drops across the 1 GOhm transistor, so
  // the current through them is nano-amp noise).
  EXPECT_GT(sol.cell_voltage(2, 4), 0.9);
  for (unsigned r = 0; r < 8; ++r) {
    if (r == 2) continue;
    const double sneak_current =
        std::fabs(sol.cell_voltage(r, 4)) / xb.cell({r, 4}).series_resistance();
    EXPECT_LT(sneak_current, 5e-9) << "row " << r;
  }
}

TEST(SolveCrossbar, SneakModeSpreadsVoltage) {
  Crossbar xb;
  xb.set_all_gates(true);
  std::vector<LineDrive> rows(8), cols(8);
  rows[2] = LineDrive::driven(1.0);
  cols[4] = LineDrive::driven(0.0);
  const auto sol = solve_crossbar(xb, rows, cols);
  // With all gates on, same-row and same-column neighbours see large
  // sneak-path voltage shares (Fig. 3b).
  EXPECT_GT(std::fabs(sol.cell_voltage(2, 0)), 0.3);
  EXPECT_GT(std::fabs(sol.cell_voltage(6, 4)), 0.3);
}

TEST(SolveCrossbar, KirchhoffCurrentBalance) {
  // The current injected by the row driver must equal the current absorbed
  // by the grounded column driver (leakage is ~1e-12).
  Crossbar xb;
  xb.set_all_gates(true);
  std::vector<LineDrive> rows(8), cols(8);
  rows[3] = LineDrive::driven(1.0);
  cols[5] = LineDrive::driven(0.0);
  const auto sol = solve_crossbar(xb, rows, cols);
  const double in = row_source_current(xb, sol, 3, rows[3]);
  // Column sink current: via the driver resistance at the column node.
  const double out = (sol.col_node(0, 5) - 0.0) / xb.params().r_driver;
  EXPECT_NEAR(in, out, 1e-6 * std::max(1.0, std::fabs(in)));
  EXPECT_GT(in, 0.0);
}

TEST(SolveCrossbar, SuperpositionScalesLinearly) {
  // The network is linear for a fixed resistance state: doubling the drive
  // doubles every node voltage.
  Crossbar xb;
  xb.set_all_gates(true);
  std::vector<LineDrive> rows(8), cols(8);
  cols[1] = LineDrive::driven(0.0);
  rows[6] = LineDrive::driven(0.5);
  const auto sol1 = solve_crossbar(xb, rows, cols);
  rows[6] = LineDrive::driven(1.0);
  const auto sol2 = solve_crossbar(xb, rows, cols);
  for (unsigned r = 0; r < 8; ++r)
    for (unsigned c = 0; c < 8; ++c)
      EXPECT_NEAR(sol2.cell_voltage(r, c), 2.0 * sol1.cell_voltage(r, c), 1e-6);
}

TEST(SolveCrossbar, FloatingNetworkIsRegularised) {
  // All lines floating: the leakage regularisation keeps the system
  // solvable and everything sits at ~0 V.
  Crossbar xb;
  xb.set_all_gates(true);
  std::vector<LineDrive> rows(8), cols(8);
  const auto sol = solve_crossbar(xb, rows, cols);
  EXPECT_NEAR(sol.row_node(0, 0), 0.0, 1e-6);
}

TEST(NodalSolution, AccessorsValidateRange) {
  NodalSolution sol(2, 2, std::vector<double>(8, 0.0));
  EXPECT_THROW((void)sol.row_node(2, 0), std::out_of_range);
  EXPECT_THROW((void)sol.col_node(0, 2), std::out_of_range);
  EXPECT_THROW(NodalSolution(2, 2, std::vector<double>(7, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace spe::xbar
