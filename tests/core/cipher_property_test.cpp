// Parameterised property sweep of the SPE cipher across crossbar
// geometries and keys: exact invertibility, ciphertext determinism,
// avalanche strength and schedule-order sensitivity must hold for every
// configuration, not just the paper's 8x8.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/spe_cipher.hpp"
#include "ilp/poe_placement.hpp"

namespace spe::core {
namespace {

struct GeometryCase {
  unsigned rows;
  unsigned cols;
  std::uint64_t key_seed;
};

class CipherProperty : public ::testing::TestWithParam<GeometryCase> {
protected:
  static std::vector<unsigned> poes_for(const CipherCalibration& cal) {
    // Double-cover greedy over the physical shapes (same recipe as the
    // NV-cache ablation) — geometry-independent.
    const unsigned cells = cal.cell_count();
    std::vector<unsigned> coverage(cells, 0);
    std::vector<std::uint8_t> used(cells, 0);
    std::vector<unsigned> poes;
    for (;;) {
      int best = -1;
      unsigned best_gain = 0;
      for (unsigned p = 0; p < cells; ++p) {
        if (used[p]) continue;
        unsigned gain = 0;
        for (auto c : cal.shape(p).cells) gain += coverage[c] < 2 ? 1 : 0;
        if (gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(p);
        }
      }
      if (best < 0 || best_gain == 0) break;
      used[static_cast<unsigned>(best)] = 1;
      poes.push_back(static_cast<unsigned>(best));
      for (auto c : cal.shape(static_cast<unsigned>(best)).cells) ++coverage[c];
      bool done = true;
      for (unsigned c = 0; c < cells; ++c) done = done && coverage[c] >= 2;
      if (done) break;
    }
    return poes;
  }

  void SetUp() override {
    xbar::CrossbarParams params;
    params.rows = GetParam().rows;
    params.cols = GetParam().cols;
    cal_ = get_calibration(params);
    util::Xoshiro256ss rng(GetParam().key_seed);
    key_ = SpeKey::random(rng);
    cipher_ = std::make_unique<SpeCipher>(key_, cal_, poes_for(*cal_));
  }

  std::vector<std::uint8_t> random_pt(std::uint64_t seed) {
    util::Xoshiro256ss rng(seed);
    std::vector<std::uint8_t> v(cipher_->block_bytes());
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
    return v;
  }

  std::shared_ptr<const CipherCalibration> cal_;
  SpeKey key_;
  std::unique_ptr<SpeCipher> cipher_;
};

TEST_P(CipherProperty, RoundTripIsExact) {
  for (std::uint64_t t = 0; t < 30; ++t) {
    const auto pt = random_pt(t);
    UnitLevels levels = cipher_->levels_from_bytes(pt);
    const UnitLevels original = levels;
    cipher_->encrypt(levels);
    cipher_->decrypt(levels);
    ASSERT_EQ(levels, original) << "trial " << t;
  }
}

TEST_P(CipherProperty, CiphertextIsDeterministic) {
  const auto pt = random_pt(99);
  std::vector<std::uint8_t> a(pt.size()), b(pt.size());
  cipher_->encrypt_bytes(pt, a);
  cipher_->encrypt_bytes(pt, b);
  EXPECT_EQ(a, b);
}

TEST_P(CipherProperty, EncryptionChangesMostCells) {
  const auto pt = random_pt(7);
  UnitLevels levels = cipher_->levels_from_bytes(pt);
  const UnitLevels original = levels;
  cipher_->encrypt(levels);
  unsigned changed = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) changed += levels[i] != original[i];
  EXPECT_GT(changed, levels.size() * 3 / 4);
}

TEST_P(CipherProperty, AvalancheNearHalf) {
  const unsigned bits = cipher_->block_bytes() * 8;
  double flipped = 0.0;
  const int trials = 40;
  std::vector<std::uint8_t> c0(cipher_->block_bytes()), c1(cipher_->block_bytes());
  for (int t = 0; t < trials; ++t) {
    auto pt = random_pt(1000 + t);
    cipher_->encrypt_bytes(pt, c0);
    pt[t % pt.size()] ^= static_cast<std::uint8_t>(1u << (t % 8));
    cipher_->encrypt_bytes(pt, c1);
    for (std::size_t i = 0; i < c0.size(); ++i)
      flipped += __builtin_popcount(c0[i] ^ c1[i]);
  }
  const double rate = flipped / (trials * static_cast<double>(bits));
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST_P(CipherProperty, SwappedOrderFails) {
  if (cipher_->schedule().size() < 2) GTEST_SKIP();
  const auto pt = random_pt(5);
  UnitLevels levels = cipher_->levels_from_bytes(pt);
  const UnitLevels original = levels;
  cipher_->encrypt(levels);
  std::vector<unsigned> order(cipher_->schedule().size());
  std::iota(order.begin(), order.end(), 0u);
  std::swap(order.front(), order.back());
  cipher_->decrypt_with_order(levels, order);
  EXPECT_NE(levels, original);
}

TEST_P(CipherProperty, ScheduleUsesEveryPoEOnce) {
  std::set<unsigned> cells;
  for (const auto& step : cipher_->schedule()) cells.insert(step.poe_cell);
  EXPECT_EQ(cells.size(), cipher_->schedule().size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CipherProperty,
    ::testing::Values(GeometryCase{4, 4, 1}, GeometryCase{4, 4, 2},
                      GeometryCase{4, 8, 3}, GeometryCase{8, 4, 4},
                      GeometryCase{8, 8, 5}, GeometryCase{8, 8, 6},
                      GeometryCase{8, 16, 7}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
      return std::to_string(info.param.rows) + "x" + std::to_string(info.param.cols) +
             "_k" + std::to_string(info.param.key_seed);
    });

}  // namespace
}  // namespace spe::core
