// SP 800-22 2.14 Random excursions and 2.15 Random excursions variant tests.

#include <array>
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

namespace {

/// pi_k(x): probability that state x is visited exactly k times in a cycle
/// (k = 0..4, class 5 is ">= 5"). SP 800-22 table 2-12.
double pi_k(unsigned k, int x) {
  const double ax = std::fabs(static_cast<double>(x));
  if (k == 0) return 1.0 - 1.0 / (2.0 * ax);
  const double base = 1.0 / (4.0 * ax * ax);
  const double decay = 1.0 - 1.0 / (2.0 * ax);
  if (k < 5) return base * std::pow(decay, static_cast<double>(k - 1));
  // k >= 5 tail.
  return (1.0 / (2.0 * ax)) * std::pow(decay, 4.0);
}

/// Partial-sum walk S_i and its zero-crossing cycle count J.
struct Walk {
  std::vector<long> s;  ///< S_1 .. S_n (prefix sums of +/-1)
  unsigned cycles = 0;  ///< number of zero crossings (cycles)
};

Walk build_walk(const util::BitVector& bits) {
  Walk w;
  const std::size_t n = bits.size();
  w.s.resize(n);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += bits.get(i) ? 1 : -1;
    w.s[i] = acc;
    if (acc == 0) ++w.cycles;
  }
  // The final partial cycle (if the walk does not end at zero) counts too.
  if (n > 0 && w.s[n - 1] != 0) ++w.cycles;
  return w;
}

}  // namespace

TestResult random_excursions_test(const util::BitVector& bits) {
  TestResult r{"Rnd. Ex.", {}, true};
  const Walk walk = build_walk(bits);
  const unsigned j = walk.cycles;
  if (j < 500) {  // SP 800-22 applicability criterion
    r.applicable = false;
    return r;
  }
  static constexpr std::array<int, 8> kStates = {-4, -3, -2, -1, 1, 2, 3, 4};
  // visits[state][k]: number of cycles in which `state` was hit exactly k
  // times (k capped at 5).
  std::array<std::array<double, 6>, 8> visit_counts{};
  std::array<unsigned, 8> in_cycle{};

  auto flush_cycle = [&]() {
    for (unsigned si = 0; si < kStates.size(); ++si) {
      const unsigned k = in_cycle[si] > 5 ? 5 : in_cycle[si];
      visit_counts[si][k] += 1.0;
      in_cycle[si] = 0;
    }
  };

  for (std::size_t i = 0; i < walk.s.size(); ++i) {
    const long v = walk.s[i];
    for (unsigned si = 0; si < kStates.size(); ++si)
      if (v == kStates[si]) ++in_cycle[si];
    if (v == 0) flush_cycle();
  }
  if (walk.s.back() != 0) flush_cycle();

  for (unsigned si = 0; si < kStates.size(); ++si) {
    double chi2 = 0.0;
    for (unsigned k = 0; k <= 5; ++k) {
      const double expected = static_cast<double>(j) * pi_k(k, kStates[si]);
      const double d = visit_counts[si][k] - expected;
      chi2 += d * d / expected;
    }
    r.p_values.push_back(util::igamc(5.0 / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult random_excursions_variant_test(const util::BitVector& bits) {
  TestResult r{"REV", {}, true};
  const Walk walk = build_walk(bits);
  // J for the variant counts zero crossings *within* the walk (cycles that
  // return to zero); SP 800-22 uses the same J >= 500 criterion.
  unsigned j = 0;
  for (long v : walk.s)
    if (v == 0) ++j;
  if (walk.s.empty() || walk.s.back() != 0) ++j;
  if (j < 500) {
    r.applicable = false;
    return r;
  }
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    double xi = 0.0;
    for (long v : walk.s)
      if (v == x) xi += 1.0;
    const double denom = std::sqrt(2.0 * j * (4.0 * std::fabs(x) - 2.0));
    r.p_values.push_back(util::erfc(std::fabs(xi - static_cast<double>(j)) / denom));
  }
  return r;
}

}  // namespace spe::nist
