#pragma once
// Batched fast path for the SPECU (DESIGN.md §12).
//
// The scalar Specu applies one pulse at a time to a freshly copied unit
// vector and rescans the whole crossbar for every outside-state digest —
// faithful to the paper's per-pulse description, and kept as the reference
// oracle. This engine executes the same key-scheduled pulse sequences
// through SpeCipher's fast step primitives: per-block it seeds one digest
// cache per unit, runs every pulse in place on the block's level storage,
// and replays inverse-pass chains from O(n) prefixes. Everything observable
// is identical to the scalar path — ciphertext/plaintext bytes, journal
// intent/advance/commit sequences (and therefore every crash kill-point
// state), spans, stats, wear, and the serial-mode plaintext pending set.
// tests/core/batch_equivalence_test holds the two paths byte-identical.

#include <cstdint>
#include <span>
#include <vector>

#include "core/specu.hpp"

namespace spe::core {

class SpecuBatch {
public:
  /// Borrows the controller; the batch engine shares all of its state (key,
  /// journal, stats, pending set) and may be used interchangeably with it.
  explicit SpecuBatch(Specu& specu) : specu_(specu) {}

  /// Fast-path equivalents of Specu::write_block / Specu::read_block.
  void write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data);
  [[nodiscard]] std::vector<std::uint8_t> read_block(std::uint64_t block_addr);

  /// N-block batch submits: `data` carries addrs.size() * block_bytes()
  /// plaintext bytes. Blocks are processed in argument order; key-schedule
  /// and calibration lookups are hoisted out of the per-block loop.
  void write_blocks(std::span<const std::uint64_t> addrs,
                    std::span<const std::uint8_t> data);
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> read_blocks(
      std::span<const std::uint64_t> addrs);

private:
  void encrypt_block_fast(std::uint64_t addr, Snvmm::Block& block);
  void decrypt_block_fast(std::uint64_t addr, Snvmm::Block& block);

  Specu& specu_;
  /// One scratch per crossbar unit, reused across every block in a batch so
  /// the digest-cache and chain-prefix buffers are allocated once.
  std::vector<SpeCipher::FastScratch> scratch_;
};

}  // namespace spe::core
