// Fig. 4 reproduction: the polyomino and per-cell voltage map for a 1 V
// pulse applied at a PoE of an 8x8 1T1M crossbar in sneak-path mode.
// Cells whose voltage share stays below the write threshold Vt are
// unaffected (white in the paper's figure).

#include "bench_util.hpp"
#include "core/calibration.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xbar/polyomino.hpp"

int main() {
  using namespace spe;
  benchutil::banner("fig4_polyomino — sneak-path voltage map and polyomino",
                    "Fig. 4 (Section 5.2)");

  xbar::CrossbarParams params;
  xbar::Crossbar xb(params);

  // Mid-band reference data (the calibration pattern).
  for (unsigned i = 0; i < 64; ++i) xb.cell(i).memristor().set_state(0.5);
  const xbar::PoE poe{3, 4};
  auto poly = xbar::extract_polyomino(xb, poe, 1.0);

  std::printf("PoE at (row %u, col %u), +1V drive, Vt = %.2f V\n", poe.row, poe.col,
              params.transistor.v_threshold);
  std::printf("[x.xx] = PoE, bare numbers = polyomino (>= Vt), '.' = untouched:\n\n");
  std::printf("%s\n", xbar::render_polyomino(poly, 8, 8).c_str());
  std::printf("Polyomino size: %u cells (paper's Fig. 4 shows a ~10-cell\n"
              "region; ours is the row/column sneak cross of this geometry).\n\n",
              poly.count());

  // Data-dependence: the same PoE on random data patterns.
  util::Table table({"data pattern", "polyomino size", "same shape as reference?"});
  util::Xoshiro256ss rng(11);
  for (int t = 0; t < 5; ++t) {
    std::vector<unsigned> symbols(64);
    for (auto& s : symbols) s = static_cast<unsigned>(rng.below(4));
    xb.load_symbols(symbols);
    const auto p = xbar::extract_polyomino(xb, poe, 1.0);
    table.add_row({"random #" + std::to_string(t), std::to_string(p.count()),
                   p.mask == poly.mask ? "yes" : "no"});
  }
  table.print();
  std::printf("\nShape varies with stored data (Section 5.2: 'the cells affected\n"
              "are unique to each PoE based on ... the data stored in each cell').\n");

  // Calibrated tier attenuations used by the behavioural cipher.
  const auto cal = core::get_calibration(params);
  std::printf("\nCalibrated mean voltage shares: PoE %.3f V, column arm %.3f V, "
              "row arm %.3f V\n",
              cal->tier_attenuation(0), cal->tier_attenuation(1),
              cal->tier_attenuation(2));
  return 0;
}
