#pragma once
// Trusted Platform Module stub (Section 4.1 / ref [11]). The TPM seals the
// SPE key against (device id, platform measurement). At power-on it
// authenticates the NVMM and the platform and releases the key to the
// SPECU, which keeps it in volatile storage only — on power-down the key is
// gone and only the TPM can restore it on a *measured* platform.

#include <cstdint>
#include <map>
#include <optional>

#include "core/key.hpp"

namespace spe::core {

class Tpm {
public:
  /// Seals `key` for the NVMM `device_id` on a platform whose integrity
  /// measurement is `platform_measurement` (e.g. a boot-chain hash).
  void provision(std::uint64_t device_id, std::uint64_t platform_measurement,
                 const SpeKey& key);

  /// Power-on handshake: returns the key iff the device is known and the
  /// presented measurement matches the sealed one.
  [[nodiscard]] std::optional<SpeKey> authenticate_and_release(
      std::uint64_t device_id, std::uint64_t platform_measurement) const;

  [[nodiscard]] bool knows_device(std::uint64_t device_id) const;

private:
  struct Sealed {
    std::uint64_t measurement = 0;
    SpeKey key;
  };
  std::map<std::uint64_t, Sealed> sealed_;
};

}  // namespace spe::core
