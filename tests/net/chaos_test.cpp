// Chaos injection + wire v3 resilience tests (src/net): ChaosPolicy
// determinism and purity, the v3 deadline extension and BUSY status,
// decoder stream-resync after mid-stream corruption, exhaustive enum
// to_string round-trips, v1/v2 client interop against a v3 server, and an
// end-to-end chaotic storm on loopback asserting every failure surfaces
// typed. Carries both the "net" and "chaos" ctest labels.

#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

namespace spe::net {
namespace {

using namespace std::chrono_literals;

runtime::ServiceConfig small_service_config() {
  runtime::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.worker_threads = 2;
  cfg.queue_capacity = 64;
  cfg.scavenger_enabled = false;
  return cfg;
}

ChaosConfig storm_config(std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.rates = {.drop = 0.2, .delay = 0.2, .corrupt = 0.1, .truncate = 0.1,
               .duplicate = 0.1, .reset = 0.1};
  cfg.delay_max = std::chrono::milliseconds{2};
  return cfg;
}

// --- ChaosPolicy ------------------------------------------------------------

TEST(Chaos, DecisionsAreDeterministicAndPure) {
  ChaosPolicy a(storm_config(7)), b(storm_config(7));
  for (std::uint64_t event = 0; event < 512; ++event) {
    const ChaosSite site{.stream = 3, .event = event, .opcode = 2, .rx = false};
    const ChaosAction first = a.decide(site);
    EXPECT_EQ(first, a.decide(site)) << "decide() must be pure";
    EXPECT_EQ(first, b.decide(site)) << "same seed must replay the schedule";
  }
  // decide() bumps no counters — they belong to the hook owners.
  EXPECT_EQ(a.stats().total(), 0u);
}

TEST(Chaos, SeedAndSiteChangeTheSchedule) {
  ChaosPolicy a(storm_config(7)), b(storm_config(8));
  unsigned diff = 0, tx_rx_diff = 0;
  for (std::uint64_t event = 0; event < 512; ++event) {
    const ChaosSite tx{.stream = 3, .event = event, .opcode = 2, .rx = false};
    const ChaosSite rx{.stream = 3, .event = event, .opcode = 2, .rx = true};
    if (a.decide(tx) != b.decide(tx)) ++diff;
    if (a.decide(tx) != a.decide(rx)) ++tx_rx_diff;
  }
  EXPECT_GT(diff, 0u) << "a different seed must change the schedule";
  EXPECT_GT(tx_rx_diff, 0u) << "direction is part of the site";
}

TEST(Chaos, ZeroRatesDisable) {
  ChaosConfig cfg;
  cfg.seed = 99;  // rates all zero
  ChaosPolicy policy(cfg);
  EXPECT_FALSE(policy.enabled());
  for (std::uint64_t event = 0; event < 64; ++event)
    EXPECT_EQ(policy.decide({.stream = 1, .event = event, .opcode = 2, .rx = false}),
              ChaosAction::None);
}

TEST(Chaos, PerOpcodeOverrideReplacesDefaults) {
  ChaosConfig cfg = storm_config(11);
  cfg.per_opcode[static_cast<std::uint8_t>(Opcode::Ping)] = ChaosRates{};  // clean
  ChaosPolicy policy(cfg);
  for (std::uint64_t event = 0; event < 256; ++event)
    EXPECT_EQ(policy.decide({.stream = 1, .event = event, .opcode = 1, .rx = false}),
              ChaosAction::None);
}

TEST(Chaos, DerivedParametersStayInBounds) {
  ChaosPolicy policy(storm_config(13));
  for (std::uint64_t event = 0; event < 256; ++event) {
    const ChaosSite site{.stream = 5, .event = event, .opcode = 3, .rx = true};
    const auto delay = policy.delay_for(site);
    EXPECT_GE(delay, policy.config().delay_min);
    EXPECT_LE(delay, policy.config().delay_max);
    EXPECT_NE(policy.corrupt_mask(site), 0u) << "a zero mask would flip nothing";
    EXPECT_LT(policy.corrupt_offset(site, 100), 100u);
    EXPECT_LT(policy.truncate_len(site, 100), 100u);
  }
}

TEST(Chaos, FromEnvParsesRatesAndSeed) {
  ::setenv("SPE_CHAOS_SEED", "0xBEEF", 1);
  ::setenv("SPE_CHAOS_DROP", "0.25", 1);
  ::setenv("SPE_CHAOS_RESET", "2.0", 1);  // clamped to 1
  const ChaosConfig cfg = ChaosConfig::from_env();
  EXPECT_EQ(cfg.seed, 0xBEEFu);
  EXPECT_DOUBLE_EQ(cfg.rates.drop, 0.25);
  EXPECT_DOUBLE_EQ(cfg.rates.reset, 1.0);
  EXPECT_TRUE(cfg.enabled());
  ::unsetenv("SPE_CHAOS_SEED");
  ::unsetenv("SPE_CHAOS_DROP");
  ::unsetenv("SPE_CHAOS_RESET");
  EXPECT_FALSE(ChaosConfig::from_env().enabled());
}

TEST(Chaos, StatsNoteAndRender) {
  ChaosStats stats;
  stats.note(ChaosAction::Drop);
  stats.note(ChaosAction::Drop);
  stats.note(ChaosAction::Reset);
  stats.note(ChaosAction::None);  // not counted
  EXPECT_EQ(stats.total(), 3u);
  const std::string render = stats.to_string();
  EXPECT_NE(render.find("drop=2"), std::string::npos) << render;
  EXPECT_NE(render.find("reset=1"), std::string::npos) << render;
}

// --- enum to_string round-trips ---------------------------------------------

TEST(Chaos, ActionToStringCoversEveryEnumerator) {
  for (const ChaosAction action :
       {ChaosAction::None, ChaosAction::Drop, ChaosAction::Delay,
        ChaosAction::Corrupt, ChaosAction::Truncate, ChaosAction::Duplicate,
        ChaosAction::Reset}) {
    const std::string name = to_string(action);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find('?'), std::string::npos) << name;
    EXPECT_EQ(name.find("unknown"), std::string::npos) << name;
  }
}

TEST(Wire, OpcodeToStringCoversEveryValidEnumerator) {
  std::set<std::string> names;
  for (unsigned raw = 0; raw < 256; ++raw) {
    if (!opcode_valid(static_cast<std::uint8_t>(raw))) continue;
    const std::string name = to_string(static_cast<Opcode>(raw));
    EXPECT_EQ(name.find('?'), std::string::npos) << "opcode " << raw << ": " << name;
    EXPECT_EQ(name.find("unknown"), std::string::npos) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_GE(names.size(), 7u);
}

TEST(Wire, StatusToStringCoversEveryValidEnumerator) {
  std::set<std::string> names;
  for (unsigned raw = 0; raw < 256; ++raw) {
    if (!status_valid(static_cast<std::uint8_t>(raw))) continue;
    const std::string name = to_string(static_cast<Status>(raw));
    EXPECT_EQ(name.find('?'), std::string::npos) << "status " << raw << ": " << name;
    EXPECT_EQ(name.find("unknown"), std::string::npos) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_GE(names.size(), 11u) << "v3 must include busy";
}

// --- wire v3: deadline extension + BUSY -------------------------------------

TEST(Wire, DeadlineExtensionRoundTrips) {
  Frame frame = make_read_request(42, 7);
  frame.deadline_ms = 1234;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Ok);
  EXPECT_EQ(out.version, kWireVersion);
  EXPECT_EQ(out.deadline_ms, 1234u);
  std::uint64_t addr = 0;
  WireErrorCode err{};
  ASSERT_TRUE(parse_read_request(out, addr, err)) << "payload must be stripped";
  EXPECT_EQ(addr, 7u);
}

TEST(Wire, V2FrameShedsTheDeadlineSilently) {
  Frame frame = make_read_request(42, 7);
  frame.version = 2;
  frame.deadline_ms = 1234;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  EXPECT_EQ(bytes[7], 0) << "v2 flags byte must stay reserved-zero";

  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Ok);
  EXPECT_EQ(out.deadline_ms, 0u);
}

TEST(Wire, NonzeroFlagsRejectedPreV3AndUnknownBitsInV3) {
  for (const std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    Frame frame = make_ping(1);
    frame.version = version;
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, frame);
    bytes[7] = kFlagDeadline;  // legal bit, illegal version
    FrameDecoder decoder;
    decoder.feed(bytes);
    Frame out;
    ASSERT_EQ(decoder.next(out), DecodeStatus::Error) << unsigned{version};
    EXPECT_EQ(decoder.error(), WireErrorCode::ReservedNonzero);
  }
  {
    Frame frame = make_ping(1);
    frame.version = 3;
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, frame);
    bytes[7] = kFlagTenant;  // v4 bit arriving in a v3 frame
    FrameDecoder decoder;
    decoder.feed(bytes);
    Frame out;
    ASSERT_EQ(decoder.next(out), DecodeStatus::Error);
    EXPECT_EQ(decoder.error(), WireErrorCode::ReservedNonzero);
  }
  Frame frame = make_ping(1);
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  bytes[7] = 0x04;  // unknown even in v4
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Error);
  EXPECT_EQ(decoder.error(), WireErrorCode::ReservedNonzero);
}

TEST(Wire, DeadlineFlagWithShortPayloadIsBadPayload) {
  Frame frame = make_scrub_request(5);  // empty payload
  frame.deadline_ms = 0;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  bytes[7] = kFlagDeadline;  // announces 8 ext bytes the payload lacks
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Error)
      << "flag promises bytes the frame does not carry";
}

TEST(Wire, BusyResponseRoundTripsAndIsV3Only) {
  const Frame request = make_read_request(9, 1);
  const Frame busy = make_busy_response(request, 250, "queue full");
  EXPECT_EQ(busy.status, Status::Busy);
  EXPECT_EQ(busy.request_id, 9u);

  std::vector<std::uint8_t> bytes;
  append_frame(bytes, busy);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Ok);
  std::uint64_t retry_after = 0;
  WireErrorCode err{};
  ASSERT_TRUE(parse_busy_response(out, retry_after, err));
  EXPECT_EQ(retry_after, 250u);

  EXPECT_TRUE(status_valid(static_cast<std::uint8_t>(Status::Busy), 3));
  EXPECT_FALSE(status_valid(static_cast<std::uint8_t>(Status::Busy), 2));
  EXPECT_FALSE(status_valid(static_cast<std::uint8_t>(Status::Moved), 1));
}

// --- decoder stream resync --------------------------------------------------

TEST(Wire, MidStreamCorruptionPoisonsAndReconnectRecovers) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, make_ping(1));
  const std::size_t second_at = stream.size();
  append_frame(stream, make_ping(2));
  append_frame(stream, make_ping(3));
  stream[second_at] ^= 0x40;  // corrupt frame 2's magic

  FrameDecoder decoder;
  decoder.feed(stream);
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::Ok);
  EXPECT_EQ(out.request_id, 1u);
  ASSERT_EQ(decoder.next(out), DecodeStatus::Error);
  const WireErrorCode poisoned = decoder.error();
  EXPECT_NE(poisoned, WireErrorCode::None);
  // Poisoned for good: frame 3 is intact but unreachable on this stream.
  ASSERT_EQ(decoder.next(out), DecodeStatus::Error);
  EXPECT_EQ(decoder.error(), poisoned);

  // A reconnect gets a fresh decoder and a re-sent stream — full recovery.
  FrameDecoder fresh;
  std::vector<std::uint8_t> resent;
  append_frame(resent, make_ping(2));
  append_frame(resent, make_ping(3));
  fresh.feed(resent);
  ASSERT_EQ(fresh.next(out), DecodeStatus::Ok);
  EXPECT_EQ(out.request_id, 2u);
  ASSERT_EQ(fresh.next(out), DecodeStatus::Ok);
  EXPECT_EQ(out.request_id, 3u);
  EXPECT_EQ(fresh.finish(), WireErrorCode::None);
}

// --- v1/v2 interop against the v3 server ------------------------------------

TEST(ChaosServer, V1AndV2ClientsInteropAgainstV3Server) {
  runtime::MemoryService service(small_service_config());
  Server server(service, {});
  const std::uint16_t port = server.start();
  Client client({.port = port});
  client.connect();

  std::vector<std::uint8_t> data(service.block_bytes());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 3 + 1);

  for (const std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    Frame write = make_write_request(0, 5, data);
    write.version = version;
    Frame reply = client.call(write);
    EXPECT_EQ(reply.status, Status::Ok) << unsigned{version};
    EXPECT_EQ(reply.version, version) << "server must echo the request version";

    Frame read = make_read_request(0, 5);
    read.version = version;
    read.deadline_ms = 50;  // sheds silently for v1/v2 — peers can't carry it
    reply = client.call(read);
    EXPECT_EQ(reply.status, Status::Ok) << unsigned{version};
    EXPECT_EQ(reply.version, version);
    EXPECT_EQ(reply.payload, data);
  }

  // A v3 frame with a deadline still round-trips against the same server.
  Frame read = make_read_request(0, 5);
  read.deadline_ms = 5'000;
  const Frame reply = client.call(read);
  EXPECT_EQ(reply.status, Status::Ok);
  EXPECT_EQ(reply.payload, data);
  server.stop();
  service.stop();
}

// --- end-to-end chaotic storm -----------------------------------------------

// Client-side chaos against a clean server: every op must either succeed
// with correct data or fail with a typed NetError — no silent corruption,
// no untyped exceptions, no hangs (io_deadline bounds every wait).
TEST(ChaosServer, ChaoticClientStormSurfacesOnlyTypedErrors) {
  runtime::MemoryService service(small_service_config());
  Server server(service, {});
  const std::uint16_t port = server.start();

  auto chaos = std::make_shared<ChaosPolicy>(storm_config(0xC4A05));
  ClientConfig cfg;
  cfg.port = port;
  cfg.io_deadline = 300ms;
  cfg.connect_retries = 3;
  cfg.connect_retry_backoff = 5ms;
  cfg.chaos = chaos;
  cfg.chaos_stream = 1;
  Client client(cfg);

  std::vector<std::uint8_t> block(service.block_bytes(), 0xAB);
  std::vector<bool> written(8, false);
  unsigned ok = 0, typed = 0;
  for (unsigned i = 0; i < 80; ++i) {
    const std::uint64_t addr = i % written.size();
    try {
      client.connect();  // no-op unless a reset closed the socket
      if (i % 2 == 0) {
        client.write_block(addr, block);
        written[addr] = true;
      } else if (written[addr]) {
        EXPECT_EQ(client.read_block(addr), block) << "silent corruption at " << addr;
      }
      ++ok;
    } catch (const NetError&) {
      ++typed;  // dropped/corrupted/truncated/reset — all fine, all typed
    }
  }
  EXPECT_GT(ok, 0u) << "the storm should let some ops through";
  EXPECT_GT(chaos->stats().total(), 0u) << "the storm should have landed injections";
  server.stop();
  service.stop();
}

// Server-side chaos against a clean client: same taxonomy guarantee from
// the other side of the wire.
TEST(ChaosServer, ChaoticServerStormSurfacesOnlyTypedErrors) {
  runtime::MemoryService service(small_service_config());
  ServerConfig server_cfg;
  auto chaos = std::make_shared<ChaosPolicy>(storm_config(0x5E41));
  server_cfg.chaos = chaos;
  Server server(service, server_cfg);
  const std::uint16_t port = server.start();

  ClientConfig cfg;
  cfg.port = port;
  cfg.io_deadline = 300ms;
  cfg.connect_retries = 3;
  cfg.connect_retry_backoff = 5ms;
  Client client(cfg);

  std::vector<std::uint8_t> block(service.block_bytes(), 0x5C);
  bool written = false;
  unsigned ok = 0;
  for (unsigned i = 0; i < 80; ++i) {
    try {
      client.connect();
      if (i % 2 == 0) {
        client.write_block(3, block);
        written = true;
      } else if (written) {
        EXPECT_EQ(client.read_block(3), block) << "silent corruption";
      }
      ++ok;
    } catch (const NetError&) {
      // typed — expected under the storm
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(chaos->stats().total(), 0u);
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace spe::net
