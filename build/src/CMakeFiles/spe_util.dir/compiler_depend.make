# Empty compiler generated dependencies file for spe_util.
# This may be replaced when dependencies are built.
