#pragma once
// Low-overhead tracing for the whole SPE stack (src/obs, "spe_obs").
//
// The Tracer is a process-wide singleton holding one lock-free ring buffer
// per participating thread. A Span is an RAII scope: its constructor takes
// a start timestamp, its destructor takes the end timestamp and appends one
// completed event to the calling thread's ring — no locks, no allocation on
// the hot path, and a single relaxed atomic load when tracing is disabled.
// Instant events (journal transitions, retries) carry one timestamp.
//
// Two clock domains:
//   * wall      monotonic steady_clock nanoseconds since enable() — what the
//               throughput bench and slow-op logging use.
//   * deterministic  a global logical tick counter: every timestamp is
//               tick++. With a serialised workload (one worker, blocking
//               submits, background threads off) two runs of the same seed
//               produce byte-identical JSONL — the golden-trace regression
//               substrate (tests/obs/golden_trace_test).
//
// Ring buffers drop-new when full (never overwrite): published slots are
// immutable, so collect() can read them with a single acquire load of the
// write index and stay TSan-clean against live writers. Dropped events are
// counted (spe_trace_events_dropped_total).
//
// Shard attribution: the runtime wraps shard-owned work in a ShardScope;
// spans opened anywhere below it (core, ecc, xbar) inherit the shard id
// without those layers depending on src/runtime.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spe::obs {

struct TraceConfig {
  bool deterministic = false;  ///< logical ticks instead of wall-clock ns
  bool trace_pulses = false;   ///< per-pulse journal.advance instants (verbose)
  std::size_t buffer_events = std::size_t{1} << 16;  ///< per-thread ring capacity
};

/// One completed span (start < end) or instant event (start == end).
struct TraceEvent {
  const char* name = nullptr;  ///< static string (span taxonomy, DESIGN.md §9)
  std::uint64_t start = 0;     ///< ns since enable(), or logical tick
  std::uint64_t end = 0;
  std::uint64_t a0 = 0;        ///< primary argument (block address, …)
  std::uint64_t a1 = 0;        ///< secondary argument (pulses, corrections, …)
  std::uint32_t tid = 0;       ///< registration-order thread index
  std::int32_t shard = -1;     ///< enclosing ShardScope, -1 outside any shard
  std::uint16_t depth = 0;     ///< span nesting depth on this thread

  [[nodiscard]] bool instant() const noexcept { return start == end; }
};

class Tracer {
public:
  static Tracer& instance();

  /// Starts a fresh trace session: clears every thread buffer (logically,
  /// via a generation bump), resets the tick counter and the wall-clock
  /// epoch. Safe to call repeatedly; not safe concurrently with live spans.
  void enable(TraceConfig config = {});
  void disable();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool pulses_traced() const noexcept {
    return trace_pulses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool deterministic() const noexcept {
    return deterministic_.load(std::memory_order_relaxed);
  }

  /// Current timestamp in the active clock domain. In deterministic mode
  /// every call consumes one globally-unique tick.
  [[nodiscard]] std::uint64_t now() noexcept;

  /// Appends a completed event to the calling thread's ring (drop-new when
  /// full). `record` is what Span's destructor calls; `instant` stamps one
  /// timestamp itself.
  void record(const char* name, std::uint64_t start, std::uint64_t end,
              std::uint64_t a0, std::uint64_t a1, std::uint16_t depth) noexcept;
  void instant(const char* name, std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept;

  /// Drains every thread buffer of the current session into one list sorted
  /// by (start, end, tid) — a total order in deterministic mode, where every
  /// timestamp is unique. Call at quiescence for a complete trace.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// collect() rendered one JSON object per line, fixed key order:
  /// {"name":…,"ts":…,"dur":…,"tid":…,"shard":…,"addr":…,"n":…,"depth":…}
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] std::string jsonl() const;

  /// Events dropped by full rings in the current session.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Span nesting depth of the calling thread (test hook).
  [[nodiscard]] static std::uint16_t thread_depth() noexcept;

private:
  friend class Span;
  friend class ShardScope;

  struct ThreadBuffer {
    std::vector<TraceEvent> slots;       ///< sized once per session
    std::atomic<std::size_t> size{0};    ///< release-published write index
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> generation{0};  ///< session the slots belong to
    std::uint32_t tid = 0;
    std::uint16_t depth = 0;   ///< owner-thread only (span nesting)
    std::int32_t shard = -1;   ///< owner-thread only (ShardScope)
  };

  Tracer() = default;
  [[nodiscard]] ThreadBuffer& local_buffer() noexcept;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> deterministic_{false};
  std::atomic<bool> trace_pulses_{false};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> wall_epoch_ns_{0};
  std::size_t buffer_events_ = std::size_t{1} << 16;

  mutable std::mutex registry_mutex_;  ///< guards buffers_ (registration + collect)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: one trace event from construction to destruction. A span
/// constructed while tracing is disabled costs one relaxed load and never
/// records. a1 is mutable so the scope can report a result (cells corrected,
/// pulses applied) discovered mid-span.
class Span {
public:
  explicit Span(const char* name, std::uint64_t a0 = 0) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_a1(std::uint64_t v) noexcept { a1_ = v; }
  void add_a1(std::uint64_t v) noexcept { a1_ += v; }
  [[nodiscard]] bool active() const noexcept { return active_; }

private:
  const char* name_;
  std::uint64_t start_ = 0;
  std::uint64_t a0_;
  std::uint64_t a1_ = 0;
  std::uint16_t depth_ = 0;
  bool active_ = false;
};

/// Declares "work on this thread now belongs to shard N" — spans opened
/// inside the scope carry the shard id. Nests (restores the previous id).
class ShardScope {
public:
  explicit ShardScope(unsigned shard) noexcept;
  ~ShardScope();

  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

  [[nodiscard]] static std::int32_t current() noexcept;

private:
  std::int32_t prev_;
};

}  // namespace spe::obs
