file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/area_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/area_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/attacks_test.cpp.o"
  "CMakeFiles/test_core.dir/core/attacks_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/calibration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/calibration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cipher_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cipher_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/datasets_test.cpp.o"
  "CMakeFiles/test_core.dir/core/datasets_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/diffusion_test.cpp.o"
  "CMakeFiles/test_core.dir/core/diffusion_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/key_schedule_test.cpp.o"
  "CMakeFiles/test_core.dir/core/key_schedule_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/key_test.cpp.o"
  "CMakeFiles/test_core.dir/core/key_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/snvmm_io_test.cpp.o"
  "CMakeFiles/test_core.dir/core/snvmm_io_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/snvmm_test.cpp.o"
  "CMakeFiles/test_core.dir/core/snvmm_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/spe_cipher_test.cpp.o"
  "CMakeFiles/test_core.dir/core/spe_cipher_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/specu_test.cpp.o"
  "CMakeFiles/test_core.dir/core/specu_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tpm_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tpm_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
