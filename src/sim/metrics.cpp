#include "sim/metrics.hpp"

#include <stdexcept>

namespace spe::sim {

double mean_overhead(const std::vector<SimResult>& runs,
                     const std::vector<SimResult>& baselines) {
  if (runs.size() != baselines.size() || runs.empty())
    throw std::invalid_argument("mean_overhead: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < runs.size(); ++i) sum += runs[i].overhead_vs(baselines[i]);
  return sum / static_cast<double>(runs.size());
}

double mean_encrypted_fraction(const std::vector<SimResult>& runs) {
  if (runs.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& r : runs) sum += r.mean_encrypted_fraction;
  return sum / static_cast<double>(runs.size());
}

std::vector<SimResult> grid_column(const std::vector<std::vector<SimResult>>& grid,
                                   std::size_t scheme_index) {
  std::vector<SimResult> column;
  column.reserve(grid.size());
  for (const auto& row : grid) column.push_back(row.at(scheme_index));
  return column;
}

}  // namespace spe::sim
