#pragma once
// Full-system trace simulation: workload trace -> L1D -> L2 -> SPECU scheme
// -> NVMM. Reproduces the Section-7 platform: 3.2 GHz 4-issue OoO core,
// 32 KB 8-way L1 (4 cyc), 2 MB 16-way L2 (16 cyc), 64 B lines, LRU, 2 GB
// single-rank 800 MHz NVMM with 8 banks.

#include <string>
#include <vector>

#include "core/area_model.hpp"
#include "sim/cache.hpp"
#include "sim/cpu_model.hpp"
#include "sim/nvmm.hpp"
#include "sim/schemes.hpp"
#include "sim/workloads.hpp"

namespace spe::sim {

struct SimConfig {
  std::uint64_t instructions = 6'000'000;
  CpuConfig cpu{};
  CacheConfig l1{32 * 1024, 8, 64, 4, "L1D"};
  CacheConfig l2{2 * 1024 * 1024, 16, 64, 16, "L2"};
  NvmmConfig nvmm{};
  std::uint64_t seed = 0xC0FFEE;
  std::uint64_t tick_interval_cycles = 50'000;  ///< background-engine cadence
  double coverage_warmup_fraction = 0.33;  ///< skip the init sweep / cold start
                                           ///< when averaging Fig. 8 coverage
};

struct SimResult {
  std::string workload;
  core::Scheme scheme = core::Scheme::None;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t writebacks = 0;
  double mean_encrypted_fraction = 0.0;  ///< time-averaged (Fig. 8)
  double final_encrypted_fraction = 0.0;
  std::uint64_t dirty_l1_lines = 0;  ///< cache state at end of run —
  std::uint64_t dirty_l2_lines = 0;  ///< the Section-6.4 cold-boot drain size

  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
  /// Fig. 7 metric: relative slowdown versus an unprotected run (0.0 when
  /// the baseline never ran, mirroring the ipc() guard).
  [[nodiscard]] double overhead_vs(const SimResult& baseline) const {
    if (baseline.cycles == 0) return 0.0;
    return static_cast<double>(cycles) / static_cast<double>(baseline.cycles) - 1.0;
  }
};

/// Runs one workload under one scheme.
[[nodiscard]] SimResult simulate(const WorkloadSpec& workload, core::Scheme scheme,
                                 const SimConfig& config = {});

/// Runs the whole Fig. 7/8 grid: every suite workload under every scheme in
/// `schemes`, returning results indexed [workload][scheme-order-given].
[[nodiscard]] std::vector<std::vector<SimResult>> run_grid(
    const std::vector<core::Scheme>& schemes, const SimConfig& config = {});

}  // namespace spe::sim
