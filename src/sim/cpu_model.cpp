#include "sim/cpu_model.hpp"

// Header-only model; this translation unit anchors the library target.
namespace spe::sim {}
