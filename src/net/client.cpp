#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "tenant/token.hpp"

namespace spe::net {

Client::Client(ClientConfig config)
    : config_(std::move(config)), decoder_(config_.max_frame_bytes) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : config_(std::move(other.config_)),
      fd_(other.fd_),
      next_id_(other.next_id_),
      tenant_set_(other.tenant_set_),
      tenant_id_(other.tenant_id_),
      tenant_secret_(other.tenant_secret_),
      chaos_tx_events_(other.chaos_tx_events_),
      chaos_rx_events_(other.chaos_rx_events_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    config_ = std::move(other.config_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    tenant_set_ = other.tenant_set_;
    tenant_id_ = other.tenant_id_;
    tenant_secret_ = other.tenant_secret_;
    chaos_tx_events_ = other.chaos_tx_events_;
    chaos_rx_events_ = other.chaos_rx_events_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder(config_.max_frame_bytes);
}

void Client::connect() {
  if (connected()) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
    throw ConnectError("spe::net: bad host address " + config_.host);

  int last_errno = 0;
  std::chrono::milliseconds backoff = config_.connect_retry_backoff;
  for (unsigned attempt = 0; attempt <= config_.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, config_.connect_backoff_max);
    }
    // Non-blocking connect so a black-holed peer (dropped SYNs, dead NAT
    // entry) cannot pin this thread past connect_timeout.
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && (errno == EINPROGRESS || errno == EINTR)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms =
          config_.connect_timeout.count() > 0
              ? static_cast<int>(config_.connect_timeout.count())
              : -1;
      int ready;
      do {
        ready = ::poll(&pfd, 1, timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        last_errno = ETIMEDOUT;
        ::close(fd);
        continue;
      }
      int sock_err = 0;
      socklen_t len = sizeof sock_err;
      if (ready > 0 &&
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &sock_err, &len) == 0 &&
          sock_err == 0) {
        rc = 0;
      } else {
        errno = sock_err != 0 ? sock_err : errno;
      }
    }
    if (rc == 0) {
      // Back to blocking mode: the send path relies on blocking writes.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      fd_ = fd;
      return;
    }
    last_errno = errno;
    ::close(fd);
  }
  const std::string where = config_.host + ":" + std::to_string(config_.port);
  if (last_errno == ETIMEDOUT)
    throw NetTimeoutError("spe::net: connect to " + where + " timed out after " +
                          std::to_string(config_.connect_retries + 1) +
                          " attempts");
  throw ConnectError("spe::net: cannot connect to " + where + ": " +
                     std::strerror(last_errno));
}

std::uint64_t Client::send_frame(const Frame& frame) {
  if (!connected()) throw ConnectError("spe::net: not connected");
  std::vector<std::uint8_t> bytes;
  if (tenant_set_ && frame.version >= 4 && !frame.has_tenant) {
    // Stamp the attached identity: a fresh token per frame, bound to the
    // request id and opcode so a captured frame cannot be replayed as a
    // different operation.
    append_frame_direct(bytes, frame.version, frame.opcode, frame.status,
                        frame.request_id, frame.payload, frame.deadline_ms,
                        /*has_tenant=*/true, tenant_id_,
                        tenant::make_token(tenant_secret_, tenant_id_,
                                           frame.request_id,
                                           static_cast<std::uint8_t>(frame.opcode)));
  } else {
    bytes = encode_frame(frame);
  }
  std::size_t send_len = bytes.size();
  unsigned copies = 1;
  if (ChaosPolicy* chaos = config_.chaos.get(); chaos != nullptr && chaos->enabled()) {
    const ChaosSite site{config_.chaos_stream, chaos_tx_events_++,
                         static_cast<std::uint8_t>(frame.opcode), false};
    const ChaosAction action = chaos->decide(site);
    switch (action) {
      case ChaosAction::None:
        break;
      case ChaosAction::Drop:
        // Swallow the frame whole; the peer never sees it and the caller's
        // receive deadline is what eventually notices.
        chaos->stats().note(action);
        return frame.request_id;
      case ChaosAction::Delay:
        chaos->stats().note(action);
        std::this_thread::sleep_for(chaos->delay_for(site));
        break;
      case ChaosAction::Corrupt:
        chaos->stats().note(action);
        bytes[chaos->corrupt_offset(site, bytes.size())] ^= chaos->corrupt_mask(site);
        break;
      case ChaosAction::Truncate:
        // The stream stalls mid-frame; this connection is unusable for
        // further requests until the peer drops it.
        chaos->stats().note(action);
        send_len = chaos->truncate_len(site, bytes.size());
        break;
      case ChaosAction::Duplicate:
        chaos->stats().note(action);
        copies = 2;
        break;
      case ChaosAction::Reset:
        chaos->stats().note(action);
        close();
        throw ProtocolError("spe::net: connection reset (chaos)");
    }
  }
  for (unsigned copy = 0; copy < copies; ++copy) {
    std::size_t sent = 0;
    while (sent < send_len) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, send_len - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      const int err = errno;
      close();
      throw ProtocolError(std::string("spe::net: send failed: ") +
                          std::strerror(err));
    }
  }
  return frame.request_id;
}

Frame Client::recv_response(std::chrono::milliseconds deadline_override) {
  if (!connected()) throw ConnectError("spe::net: not connected");
  std::chrono::milliseconds budget = config_.io_deadline;
  if (deadline_override.count() > 0 &&
      (budget.count() <= 0 || deadline_override < budget)) {
    budget = deadline_override;
  }
  const auto deadline = std::chrono::steady_clock::now() + budget;
  const bool has_deadline = budget.count() > 0;
  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder_.next(frame);
    if (status == DecodeStatus::Ok) {
      if (ChaosPolicy* chaos = config_.chaos.get();
          chaos != nullptr && chaos->enabled()) {
        const ChaosSite site{config_.chaos_stream, chaos_rx_events_++,
                             static_cast<std::uint8_t>(frame.opcode), true};
        const ChaosAction action = chaos->decide(site);
        // Only Drop and Delay make sense at post-decode granularity; the
        // byte-mangling actions already happened on the sender's side.
        if (action == ChaosAction::Drop) {
          chaos->stats().note(action);
          continue;
        }
        if (action == ChaosAction::Delay) {
          chaos->stats().note(action);
          std::this_thread::sleep_for(chaos->delay_for(site));
        }
      }
      return frame;
    }
    if (status == DecodeStatus::Error) {
      const WireErrorCode code = decoder_.error();
      close();
      throw ProtocolError(std::string("spe::net: bad response stream: ") +
                          to_string(code));
    }
    // NeedMore: wait for readable within the deadline, then pull bytes.
    int timeout_ms = -1;
    if (has_deadline) {
      const auto left = deadline - std::chrono::steady_clock::now();
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
      if (timeout_ms <= 0) throw TimeoutError("spe::net: response deadline expired");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) throw TimeoutError("spe::net: response deadline expired");
    if (ready < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw ProtocolError(std::string("spe::net: poll failed: ") +
                          std::strerror(err));
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    close();
    throw ProtocolError("spe::net: connection closed by peer");
  }
}

std::uint64_t Client::send_read(std::uint64_t block_addr) {
  return send_frame(make_read_request(next_id_++, block_addr));
}

std::uint64_t Client::send_write(std::uint64_t block_addr,
                                 std::span<const std::uint8_t> data) {
  return send_frame(make_write_request(next_id_++, block_addr, data));
}

std::uint64_t Client::send_ping(std::span<const std::uint8_t> echo) {
  return send_frame(make_ping(next_id_++, echo));
}

std::uint64_t Client::send_scrub() {
  return send_frame(make_scrub_request(next_id_++));
}

std::uint64_t Client::send_metrics(obs::MetricsFormat format) {
  return send_frame(make_metrics_request(next_id_++, format));
}

Frame Client::await(std::uint64_t id) {
  Frame frame = await_matching(id, std::chrono::milliseconds{0});
  if (frame.status != Status::Ok)
    throw RemoteError(frame.status,
                      std::string(frame.payload.begin(), frame.payload.end()));
  return frame;
}

std::vector<std::uint8_t> Client::read_block(std::uint64_t block_addr) {
  return await(send_read(block_addr)).payload;
}

void Client::write_block(std::uint64_t block_addr,
                         std::span<const std::uint8_t> data) {
  (void)await(send_write(block_addr, data));
}

std::uint64_t Client::scrub() {
  const Frame frame = await(send_scrub());
  std::uint64_t blocks = 0;
  WireErrorCode err = WireErrorCode::None;
  if (!parse_scrub_response(frame, blocks, err))
    throw ProtocolError(std::string("spe::net: bad scrub response: ") +
                        to_string(err));
  return blocks;
}

std::string Client::metrics(obs::MetricsFormat format) {
  const Frame frame = await(send_metrics(format));
  return {frame.payload.begin(), frame.payload.end()};
}

void Client::ping() { (void)await(send_ping()); }

std::uint64_t Client::send_rotate(std::uint32_t tenant) {
  return send_frame(make_rotate_request(next_id_++, tenant));
}

Client::RotationInfo Client::rotate_key(std::uint32_t tenant) {
  const Frame frame = await(send_rotate(tenant));
  RotationInfo info;
  WireErrorCode err = WireErrorCode::None;
  if (!parse_rotate_response(frame, info.epoch, info.scheduled, err))
    throw ProtocolError(std::string("spe::net: bad rotate response: ") +
                        to_string(err));
  return info;
}

Frame Client::await_matching(std::uint64_t id,
                             std::chrono::milliseconds deadline_override) {
  // A duplicated request (chaos, or a retry racing its original) makes the
  // server answer the same id twice, and an abandoned attempt can leave its
  // response in the pipe — stale ids below `id` are skipped, bounded so a
  // babbling peer still fails typed.
  for (unsigned skips = 0; skips < 64; ++skips) {
    Frame resp = recv_response(deadline_override);
    if (resp.request_id == id) return resp;
    if (resp.request_id < id) continue;
    break;
  }
  close();
  throw ProtocolError("spe::net: response id mismatch (pipelining mixed with "
                      "blocking RPCs?)");
}

Frame Client::call(Frame frame, std::chrono::milliseconds io_deadline_override) {
  frame.request_id = next_id_++;
  send_frame(frame);
  return await_matching(frame.request_id, io_deadline_override);
}

}  // namespace spe::net
