#include "core/datasets.hpp"

#include <gtest/gtest.h>

#include "nist/suite.hpp"

namespace spe::core {
namespace {

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.sequences = 2;
  cfg.bits_per_sequence = 1u << 13;  // 8 kbit: fast smoke profile
  return cfg;
}

TEST(Datasets, NamesAndEnumeration) {
  EXPECT_EQ(all_datasets().size(), 9u);  // the nine Section-6.1 data sets
  std::set<std::string> names;
  for (Dataset d : all_datasets()) names.insert(dataset_name(d));
  EXPECT_EQ(names.size(), 9u);
}

class DatasetParam : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetParam, ProducesRequestedShape) {
  const auto cfg = small_config();
  const auto sequences = generate_dataset(GetParam(), cfg);
  ASSERT_EQ(sequences.size(), cfg.sequences);
  for (const auto& seq : sequences) EXPECT_EQ(seq.size(), cfg.bits_per_sequence);
}

TEST_P(DatasetParam, IsDeterministicInSeed) {
  const auto cfg = small_config();
  const auto a = generate_dataset(GetParam(), cfg);
  const auto b = generate_dataset(GetParam(), cfg);
  EXPECT_EQ(a, b);
}

TEST_P(DatasetParam, SequencesAreDistinct) {
  const auto cfg = small_config();
  const auto sequences = generate_dataset(GetParam(), cfg);
  EXPECT_NE(sequences[0], sequences[1]);
}

TEST_P(DatasetParam, BitsAreRoughlyBalanced) {
  // Every Section-6.1 data set should look random; a crude balance check
  // keeps this fast (the full NIST sweep lives in bench/table2_nist).
  const auto cfg = small_config();
  const auto sequences = generate_dataset(GetParam(), cfg);
  for (const auto& seq : sequences) {
    const double ones =
        static_cast<double>(seq.popcount()) / static_cast<double>(seq.size());
    EXPECT_NEAR(ones, 0.5, 0.05) << dataset_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllNine, DatasetParam,
                         ::testing::ValuesIn(all_datasets()),
                         [](const ::testing::TestParamInfo<Dataset>& info) {
                           std::string name = dataset_name(info.param);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(Datasets, RandomPtKeyPassesNistQuickProfile) {
  DatasetConfig cfg;
  cfg.sequences = 4;
  cfg.bits_per_sequence = 1u << 14;
  const auto sequences = generate_dataset(Dataset::RandomPlaintextKey, cfg);
  const auto summary = nist::evaluate_dataset(sequences, 0.01);
  // At 4 sequences the NIST proportion bound is 0, so allow the single
  // statistically expected unlucky sequence per test.
  for (std::size_t t = 0; t < summary.failures.size(); ++t)
    EXPECT_LE(summary.failures[t], 1u) << summary.names[t];
}

TEST(Datasets, TruncatedScheduleFailsNist) {
  // Section 6.1: "initial tests using SPE with fewer than 16 PoEs fail a
  // large number of tests". Two pulses leave most plaintext in place.
  DatasetConfig cfg;
  cfg.sequences = 2;
  cfg.bits_per_sequence = 1u << 14;
  cfg.truncate_pulses = 2;
  const auto sequences = generate_dataset(Dataset::PlaintextAvalanche, cfg);
  const auto summary = nist::evaluate_dataset(sequences, 0.01);
  EXPECT_FALSE(summary.all_accepted());
}

}  // namespace
}  // namespace spe::core
