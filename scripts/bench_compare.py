#!/usr/bin/env python3
"""Perf-trajectory gate for the bench JSON files (DESIGN.md §12).

Validates BENCH_throughput.json / BENCH_latency.json against their checked-in
schemas (scripts/bench_*.schema.json) and fails when the current run's
throughput regresses more than the tolerance against the checked-in baseline:

    bench_compare.py --current build/BENCH_throughput.json \
                     --baseline BENCH_throughput.json \
                     --schema scripts/bench_throughput.schema.json \
                     [--tolerance 10] [--validate-only]

Exit codes: 0 ok (improvement, within tolerance, or baseline missing — a new
checkout has nothing to regress against), 1 regression or invalid file,
2 usage error. Tolerance is percent (default 10, env SPE_BENCH_TOLERANCE).

Stdlib only. The schema validator is a deliberate subset of JSON Schema —
type / required / properties / items / minimum / const / enum — exactly what
the two bench schemas use; unknown keywords are rejected so a schema edit
cannot silently stop validating.
"""

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}

_KNOWN_KEYWORDS = {
    "$schema", "title", "description", "type", "required", "properties",
    "items", "minimum", "const", "enum", "additionalProperties",
}


def validate(instance, schema, path="$"):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        return ["%s: schema uses unsupported keywords %s" % (path, sorted(unknown))]

    if "const" in schema and instance != schema["const"]:
        errors.append("%s: expected %r, got %r" % (path, schema["const"], instance))
    if "enum" in schema and instance not in schema["enum"]:
        errors.append("%s: %r not one of %r" % (path, instance, schema["enum"]))

    expected = schema.get("type")
    if expected is not None:
        py = _TYPES.get(expected)
        if py is None:
            return ["%s: schema names unknown type %r" % (path, expected)]
        # bool is an int subclass in Python; never accept it for numbers.
        if isinstance(instance, bool) and expected in ("number", "integer"):
            errors.append("%s: expected %s, got boolean" % (path, expected))
            return errors
        if not isinstance(instance, py):
            errors.append(
                "%s: expected %s, got %s" % (path, expected, type(instance).__name__))
            return errors

    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append("%s: %r below minimum %r" % (path, instance, schema["minimum"]))

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append("%s: missing required key %r" % (path, key))
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in instance:
                errors.extend(validate(instance[key], sub, "%s.%s" % (path, key)))
        if schema.get("additionalProperties") is False:
            for key in instance:
                if key not in props:
                    errors.append("%s: unexpected key %r" % (path, key))

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], "%s[%d]" % (path, i)))

    return errors


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise SystemExit("bench_compare: cannot read %s %s: %s" % (what, path, e))
    except ValueError as e:
        print("bench_compare: %s %s is not valid JSON: %s" % (what, path, e))
        raise SystemExit(1)


def compare_throughput(current, baseline, tolerance_pct):
    """Returns (ok, message) for the ops_per_sec trajectory."""
    base = baseline.get("ops_per_sec", 0.0)
    cur = current.get("ops_per_sec", 0.0)
    if not isinstance(base, (int, float)) or base <= 0:
        return True, "baseline has no usable ops_per_sec; skipping comparison"
    delta_pct = (cur - base) / base * 100.0
    msg = "ops_per_sec %.1f -> %.1f (%+.1f%%, tolerance -%g%%)" % (
        base, cur, delta_pct, tolerance_pct)
    if delta_pct < -tolerance_pct:
        return False, "REGRESSION: " + msg
    return True, msg


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="JSON produced by this run")
    parser.add_argument("--baseline",
                        help="checked-in reference JSON (throughput compare)")
    parser.add_argument("--schema", required=True,
                        help="schema to validate --current (and --baseline) against")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("SPE_BENCH_TOLERANCE", "10")),
                        help="max allowed ops_per_sec drop, percent (default 10)")
    parser.add_argument("--validate-only", action="store_true",
                        help="schema-check --current and exit (no baseline diff)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    schema = load_json(args.schema, "schema")
    current = load_json(args.current, "current report")

    errors = validate(current, schema)
    if errors:
        print("bench_compare: %s fails %s:" % (args.current, args.schema))
        for err in errors:
            print("  " + err)
        return 1
    print("bench_compare: %s matches %s" % (args.current, args.schema))
    if args.validate_only:
        return 0

    if not args.baseline:
        parser.error("--baseline is required unless --validate-only")
    if not os.path.exists(args.baseline):
        # A fresh checkout / first run has nothing to regress against.
        print("bench_compare: baseline %s missing; nothing to compare (ok)"
              % args.baseline)
        return 0
    baseline = load_json(args.baseline, "baseline")
    errors = validate(baseline, schema)
    if errors:
        print("bench_compare: baseline %s fails schema; skipping comparison (ok)"
              % args.baseline)
        for err in errors:
            print("  " + err)
        return 0

    ok, message = compare_throughput(current, baseline, args.tolerance)
    print("bench_compare: " + message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
