#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/rng.hpp"

namespace spe::crypto {
namespace {

using Block = std::array<std::uint8_t, 16>;
using Key = std::array<std::uint8_t, 16>;

TEST(Aes128, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: plaintext 3243f6a8885a308d313198a2e0370734,
  // key 2b7e151628aed2a6abf7158809cf4f3c ->
  // ciphertext 3925841d02dc09fbdc118597196a0b32.
  const Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const Block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                    0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                          0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  Block ct{};
  aes.encrypt_block(pt, ct);
  EXPECT_EQ(ct, expected);
}

TEST(Aes128, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: PLAINTEXT 00112233445566778899aabbccddeeff,
  // KEY 000102030405060708090a0b0c0d0e0f ->
  // 69c4e0d86a7b0430d8cdb78070b4c55a.
  Key key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  Block pt{};
  for (int i = 0; i < 16; ++i)
    pt[i] = static_cast<std::uint8_t>((i << 4) | i);
  const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  Block ct{};
  aes.encrypt_block(pt, ct);
  EXPECT_EQ(ct, expected);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  util::Xoshiro256ss rng(1);
  Key key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  Aes128 aes(key);
  for (int t = 0; t < 100; ++t) {
    Block pt{}, ct{}, back{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.below(256));
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST(Aes128, InPlaceOverloadsMatch) {
  const Key key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  Aes128 aes(key);
  Block a = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  Block b = a, out{};
  aes.encrypt_block(b, out);
  aes.encrypt_block(std::span<std::uint8_t, 16>(a));
  EXPECT_EQ(a, out);
  aes.decrypt_block(std::span<std::uint8_t, 16>(a));
  EXPECT_EQ(a, b);
}

TEST(Aes128, KeyAvalanche) {
  // Flipping one key bit flips ~half the ciphertext bits.
  Key key{};
  Block pt{};
  Aes128 a(key);
  key[0] ^= 0x01;
  Aes128 b(key);
  Block ca{}, cb{};
  a.encrypt_block(pt, ca);
  b.encrypt_block(pt, cb);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += __builtin_popcount(ca[i] ^ cb[i]);
  EXPECT_GT(diff, 40);
  EXPECT_LT(diff, 88);
}

}  // namespace
}  // namespace spe::crypto
