#include "core/intent_journal.hpp"

#include <stdexcept>
#include <string>

namespace spe::core {

void IntentJournal::begin(JournalEntry entry) {
  entries_[entry.block_addr] = std::move(entry);
  notify();
}

void IntentJournal::advance(std::uint64_t block_addr) {
  const auto it = entries_.find(block_addr);
  if (it == entries_.end())
    throw std::logic_error("IntentJournal::advance: no open intent for block " +
                           std::to_string(block_addr));
  ++it->second.progress;
  notify();
}

void IntentJournal::commit(std::uint64_t block_addr) {
  entries_.erase(block_addr);
  notify();
}

const JournalEntry* IntentJournal::find(std::uint64_t block_addr) const {
  const auto it = entries_.find(block_addr);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace spe::core
