// Differential suite pinning the batched fast path (SpecuBatch) to the
// scalar Specu reference oracle: for randomized seeds x key epochs x batch
// sizes (including 0, 1, and non-multiple-of-width tails), every observable
// — ciphertext levels, plaintext read bytes, wear, stats, the serial-mode
// pending set, and the journal state at every mid-batch kill point — must
// be byte-identical between the two paths, including on fault-corrupted
// blocks. DESIGN.md §12 explains why the scalar path stays the oracle.
#include "core/specu_batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace spe::core {
namespace {

constexpr std::uint64_t kMeasurement = 0xB007C0DE;

/// One powered device instance. Equivalence tests build identical twins and
/// drive one through the scalar path, the other through SpecuBatch.
struct Rig {
  Rig(std::uint64_t device_seed, SpeKey key, SpeMode mode) {
    SnvmmConfig cfg = Snvmm::default_config();
    cfg.device_seed = device_seed;
    memory = std::make_unique<Snvmm>(cfg);
    tpm.provision(memory->device_id(), kMeasurement, key);
    specu = std::make_unique<Specu>(*memory, mode);
    batch = std::make_unique<SpecuBatch>(*specu);
    EXPECT_TRUE(specu->power_on(tpm, kMeasurement));
  }

  void rotate_key(SpeKey key) {
    tpm.provision(memory->device_id(), kMeasurement, key);
    EXPECT_TRUE(specu->power_on(tpm, kMeasurement));
  }

  std::unique_ptr<Snvmm> memory;
  Tpm tpm;
  std::unique_ptr<Specu> specu;
  std::unique_ptr<SpecuBatch> batch;
};

std::vector<std::uint8_t> random_block(std::uint64_t& rng, std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(util::splitmix64(rng));
  return data;
}

void expect_identical(const Rig& a, const Rig& b) {
  const auto& blocks_a = std::as_const(*a.memory).blocks();
  const auto& blocks_b = std::as_const(*b.memory).blocks();
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (const auto& [addr, block] : blocks_a) {
    const auto it = blocks_b.find(addr);
    ASSERT_NE(it, blocks_b.end()) << "addr " << addr;
    EXPECT_EQ(block.levels, it->second.levels) << "addr " << addr;
    EXPECT_EQ(block.encrypted, it->second.encrypted) << "addr " << addr;
    EXPECT_DOUBLE_EQ(block.wear, it->second.wear) << "addr " << addr;
  }
  const auto& sa = a.specu->stats();
  const auto& sb = b.specu->stats();
  EXPECT_EQ(sa.reads, sb.reads);
  EXPECT_EQ(sa.writes, sb.writes);
  EXPECT_EQ(sa.encrypt_ops, sb.encrypt_ops);
  EXPECT_EQ(sa.decrypt_ops, sb.decrypt_ops);
  EXPECT_EQ(sa.encrypt_pulses, sb.encrypt_pulses);
  EXPECT_EQ(sa.decrypt_pulses, sb.decrypt_pulses);
  EXPECT_EQ(a.specu->plaintext_blocks(), b.specu->plaintext_blocks());
  EXPECT_TRUE(a.memory->journal().empty());
  EXPECT_TRUE(b.memory->journal().empty());
}

/// Write `count` random blocks: rig A one block at a time through the scalar
/// path, rig B in one write_blocks submit. Returns the addresses used.
std::vector<std::uint64_t> write_pair(Rig& a, Rig& b, std::uint64_t& rng,
                                      unsigned count, std::uint64_t addr_base) {
  const std::size_t bytes = a.memory->block_bytes();
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint8_t> flat;
  for (unsigned i = 0; i < count; ++i) {
    addrs.push_back(addr_base + (util::splitmix64(rng) % (count * 2 + 1)) * 0x40);
    const auto data = random_block(rng, bytes);
    flat.insert(flat.end(), data.begin(), data.end());
  }
  for (unsigned i = 0; i < count; ++i)
    a.specu->write_block(addrs[i],
                         std::span(flat).subspan(i * bytes, bytes));
  b.batch->write_blocks(addrs, flat);
  return addrs;
}

TEST(BatchEquivalence, RandomizedCorpusMatchesScalarAcrossBatchSizes) {
  std::uint64_t rng = 0x5EEDBA7C4ull;
  // Batch sizes: empty, single, odd tails, and a full width.
  const unsigned kBatchSizes[] = {0, 1, 3, 8, 13};
  for (const SpeMode mode : {SpeMode::Parallel, SpeMode::Serial}) {
    const SpeKey key{0x1357 + static_cast<unsigned>(mode), 0x2468};
    Rig a(7, key, mode);
    Rig b(7, key, mode);
    std::uint64_t addr_base = 0;
    for (const unsigned n : kBatchSizes) {
      const auto addrs = write_pair(a, b, rng, n, addr_base);
      addr_base += 0x10000;
      expect_identical(a, b);
      // Read back: scalar loop vs one read_blocks submit. Repeated addresses
      // in the batch exercise read-after-write within the same submit.
      std::vector<std::uint64_t> read_addrs = addrs;
      read_addrs.insert(read_addrs.end(), addrs.begin(), addrs.end());
      std::vector<std::vector<std::uint8_t>> scalar_out;
      scalar_out.reserve(read_addrs.size());
      for (const auto addr : read_addrs) scalar_out.push_back(a.specu->read_block(addr));
      const auto batch_out = b.batch->read_blocks(read_addrs);
      EXPECT_EQ(scalar_out, batch_out);
      expect_identical(a, b);
    }
  }
}

TEST(BatchEquivalence, KeyEpochRotationStaysIdentical) {
  std::uint64_t rng = 0xE99ull;
  Rig a(9, SpeKey{0xAAAA, 0xBBBB}, SpeMode::Parallel);
  Rig b(9, SpeKey{0xAAAA, 0xBBBB}, SpeMode::Parallel);
  write_pair(a, b, rng, 5, 0);
  expect_identical(a, b);
  const std::uint64_t epoch_before = a.specu->schedule_epoch();
  // New key epoch: both rigs rotate to the same fresh key; intents recorded
  // from here on carry the new schedule epoch on both paths.
  a.rotate_key(SpeKey{0xCCCC, 0xDDDD});
  b.rotate_key(SpeKey{0xCCCC, 0xDDDD});
  ASSERT_EQ(a.specu->schedule_epoch(), b.specu->schedule_epoch());
  ASSERT_NE(a.specu->schedule_epoch(), epoch_before);
  const auto addrs = write_pair(a, b, rng, 6, 0x40000);
  for (const auto addr : addrs) EXPECT_EQ(a.specu->read_block(addr), b.batch->read_block(addr));
  expect_identical(a, b);
}

TEST(BatchEquivalence, InjectedFaultsProduceIdenticalGarbage) {
  std::uint64_t rng = 0xFA017ull;
  Rig a(3, SpeKey{0x1111, 0x2222}, SpeMode::Parallel);
  Rig b(3, SpeKey{0x1111, 0x2222}, SpeMode::Parallel);
  const auto addrs = write_pair(a, b, rng, 4, 0);
  // Identical injected faults on both twins: flip level state in the
  // encrypted resting blocks, as a stuck-cell / drift fault would. The two
  // paths must then decrypt the damage into the same garbage.
  for (const auto addr : addrs) {
    auto& block_a = a.memory->block(addr);
    auto& block_b = b.memory->block(addr);
    for (unsigned i = 0; i < 5; ++i) {
      const auto cell = util::splitmix64(rng) % block_a.levels.size();
      const auto delta = static_cast<std::uint8_t>(1 + util::splitmix64(rng) % 63);
      block_a.levels[cell] = static_cast<std::uint8_t>((block_a.levels[cell] + delta) % 64);
      block_b.levels[cell] = block_a.levels[cell];
    }
  }
  for (const auto addr : addrs) EXPECT_EQ(a.specu->read_block(addr), b.batch->read_block(addr));
  expect_identical(a, b);
}

/// The array state a power loss would freeze at one journal kill point.
struct KillPointState {
  std::map<std::uint64_t, std::vector<std::uint8_t>> levels;  ///< addr -> levels
  std::size_t journal_size = 0;
  std::uint64_t intent_addr = 0;
  JournalOp op = JournalOp::Encrypt;
  std::uint32_t progress = 0;
  std::uint32_t total = 0;
  std::uint64_t epoch = 0;
  std::vector<std::uint8_t> pre_image;

  bool operator==(const KillPointState&) const = default;
};

std::vector<KillPointState> record_kill_points(Rig& rig,
                                               const std::function<void()>& run) {
  std::vector<KillPointState> states;
  rig.memory->journal().set_observer([&] {
    KillPointState s;
    for (const auto& [addr, block] : std::as_const(*rig.memory).blocks())
      s.levels.emplace(addr, block.levels);
    const auto& entries = rig.memory->journal().entries();
    s.journal_size = entries.size();
    if (!entries.empty()) {
      const auto& [addr, entry] = *entries.begin();
      s.intent_addr = addr;
      s.op = entry.op;
      s.progress = entry.progress;
      s.total = entry.total;
      s.epoch = entry.epoch;
      s.pre_image = entry.pre_image;
    }
    states.push_back(std::move(s));
  });
  run();
  rig.memory->journal().set_observer({});
  return states;
}

TEST(BatchEquivalence, MidBatchJournalKillPointsMatchScalar) {
  std::uint64_t rng = 0x0B17D1Eull;
  Rig a(5, SpeKey{0x7777, 0x8888}, SpeMode::Parallel);
  Rig b(5, SpeKey{0x7777, 0x8888}, SpeMode::Parallel);
  const std::size_t bytes = a.memory->block_bytes();
  const std::vector<std::uint64_t> addrs = {0x40, 0x80, 0xC0};
  std::vector<std::uint8_t> flat;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto data = random_block(rng, bytes);
    flat.insert(flat.end(), data.begin(), data.end());
  }

  // Every begin/advance/commit during the batched 3-block write must freeze
  // the same array + journal state as the scalar write sequence: a crash at
  // any mid-batch pulse recovers exactly like a crash in the scalar path.
  const auto scalar_states = record_kill_points(a, [&] {
    for (std::size_t i = 0; i < addrs.size(); ++i)
      a.specu->write_block(addrs[i], std::span(flat).subspan(i * bytes, bytes));
  });
  const auto batch_states =
      record_kill_points(b, [&] { b.batch->write_blocks(addrs, flat); });
  ASSERT_EQ(scalar_states.size(), batch_states.size());
  for (std::size_t i = 0; i < scalar_states.size(); ++i)
    EXPECT_EQ(scalar_states[i], batch_states[i]) << "kill point " << i;

  // And the same for a batched read (decrypt + re-encrypt per block).
  const auto scalar_reads = record_kill_points(a, [&] {
    for (const auto addr : addrs) (void)a.specu->read_block(addr);
  });
  const auto batch_reads =
      record_kill_points(b, [&] { (void)b.batch->read_blocks(addrs); });
  ASSERT_EQ(scalar_reads.size(), batch_reads.size());
  for (std::size_t i = 0; i < scalar_reads.size(); ++i)
    EXPECT_EQ(scalar_reads[i], batch_reads[i]) << "kill point " << i;
}

TEST(BatchEquivalence, UnpoweredAndBadSizesThrowLikeScalar) {
  Rig b(11, SpeKey{0x1, 0x2}, SpeMode::Parallel);
  const std::vector<std::uint64_t> addrs = {0x40};
  EXPECT_THROW(b.batch->write_blocks(addrs, std::vector<std::uint8_t>(7)),
               std::invalid_argument);
  b.specu->power_down();
  EXPECT_THROW((void)b.batch->read_block(0x40), std::logic_error);
  EXPECT_THROW(
      b.batch->write_block(0x40, std::vector<std::uint8_t>(b.memory->block_bytes())),
      std::logic_error);
}

}  // namespace
}  // namespace spe::core
