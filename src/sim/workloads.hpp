#pragma once
// Synthetic SPEC-CPU2006-like workloads (replacing the paper's SPEC runs on
// Zesto — see DESIGN.md substitution 3). Each spec is an address-stream
// generator parameterised to match the published locality character of the
// benchmark it is named for; what matters for the Fig. 7/8 reproduction is
// the L2 miss intensity (MPKI) and the *page-lifetime* distribution —
// bzip2 revisits its few live pages far inside any inertness window
// (i-NVMM's best case, SPE's worst relative showing), sjeng's live set is
// wide enough that pages go inert between touches (SPE's best case), and
// mcf / libquantum are the memory-bound outliers that push AES past 30%.
//
// The trace begins with an initialisation sweep (one line-write per
// allocated page — the program-load phase), after which each memory
// operation is:
//   stream_prob  -> sequential walk with an 8-byte stride over the full
//                   allocation (one L2 miss per fresh 64B line),
//   cold_prob    -> a uniformly random page of the LIVE region
//                   (capacity misses with the workload's revisit interval),
//   otherwise    -> the drifting hot set (L1/L2 resident).
// Pages outside the live region are touched only by the init sweep and the
// streaming walk: they are the "dead" majority an incremental-encryption
// scheme can safely encrypt.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace spe::sim {

struct WorkloadSpec {
  std::string name;
  double mem_ratio = 0.3;     ///< memory ops per instruction
  double write_ratio = 0.3;   ///< stores among memory ops
  unsigned pages = 4096;      ///< allocated footprint, 4 KB pages
  unsigned live_pages = 1024; ///< actively revisited region (cold target)
  unsigned hot_pages = 64;    ///< hot set (L2 resident), inside live region
  double cold_prob = 0.005;   ///< random live-page accesses
  double stream_prob = 0.05;  ///< sequential-stride component
  double base_cpi = 0.7;      ///< core CPI excluding memory stalls (4-issue)
};

/// One memory reference with the instruction gap since the previous one.
struct MemAccess {
  std::uint64_t addr = 0;
  bool is_write = false;
  unsigned instruction_gap = 1;  ///< instructions retired since last access
};

/// The ten benchmarks of the Fig. 7/8 evaluation.
[[nodiscard]] const std::vector<WorkloadSpec>& spec2006_suite();
[[nodiscard]] const WorkloadSpec& workload_by_name(const std::string& name);

/// Deterministic trace generator for one workload.
class TraceGenerator {
public:
  explicit TraceGenerator(const WorkloadSpec& spec, std::uint64_t seed = 0);

  [[nodiscard]] MemAccess next();

  /// True while the generator is still emitting the init sweep.
  [[nodiscard]] bool in_init_phase() const noexcept { return init_page_ < spec_.pages; }

private:
  const WorkloadSpec spec_;
  util::Xoshiro256ss rng_;
  std::uint64_t stream_pos_ = 0;
  std::uint64_t hot_base_ = 0;
  unsigned init_page_ = 0;
};

}  // namespace spe::sim
