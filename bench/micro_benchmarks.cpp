// Google-benchmark microbenchmarks: throughput of the building blocks —
// SPE encrypt/decrypt, the key-stream PRNG, AES and Trivium baselines, the
// crossbar nodal solve, calibration, and the placement ILP.

#include <benchmark/benchmark.h>

#include "core/datasets.hpp"
#include "crypto/cipher.hpp"
#include "ilp/poe_placement.hpp"
#include "nist/suite.hpp"
#include "sim/system.hpp"
#include "xbar/sneak_path.hpp"

namespace {

using namespace spe;

const std::shared_ptr<const core::CipherCalibration>& shared_cal() {
  static const auto cal = core::get_calibration(xbar::CrossbarParams{});
  return cal;
}

void BM_SpeEncryptUnit(benchmark::State& state) {
  const core::SpeCipher cipher(core::SpeKey{0x1234, 0x5678}, shared_cal());
  std::vector<std::uint8_t> pt(16, 0xA5), ct(16);
  for (auto _ : state) {
    pt[0] = static_cast<std::uint8_t>(state.iterations());
    cipher.encrypt_bytes(pt, ct);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeEncryptUnit);

void BM_SpeRoundTripUnit(benchmark::State& state) {
  const core::SpeCipher cipher(core::SpeKey{0x1234, 0x5678}, shared_cal());
  std::vector<std::uint8_t> pt(16, 0x3C);
  core::UnitLevels levels = cipher.levels_from_bytes(pt);
  for (auto _ : state) {
    cipher.encrypt(levels);
    cipher.decrypt(levels);
    benchmark::DoNotOptimize(levels);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeRoundTripUnit);

void BM_CoupledLcg(benchmark::State& state) {
  util::CoupledLcg prng(0xBEEF);
  for (auto _ : state) benchmark::DoNotOptimize(prng.next_bits(32));
}
BENCHMARK(BM_CoupledLcg);

void BM_KeySchedule(benchmark::State& state) {
  const core::AddressLut lut(core::default_poes_8x8(), 8, 8);
  const core::VoltageLut volts;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const core::KeySchedule schedule(core::SpeKey{seed++, 7}, lut, volts);
    benchmark::DoNotOptimize(schedule.steps().data());
  }
}
BENCHMARK(BM_KeySchedule);

void BM_Aes128Block(benchmark::State& state) {
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8};
  const crypto::Aes128 aes(key);
  std::array<std::uint8_t, 16> block{};
  for (auto _ : state) {
    aes.encrypt_block(std::span<std::uint8_t, 16>(block));
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_TriviumByte(benchmark::State& state) {
  const std::array<std::uint8_t, 10> key{1, 2, 3}, iv{4, 5, 6};
  crypto::Trivium trivium(key, iv);
  for (auto _ : state) benchmark::DoNotOptimize(trivium.next_byte());
  state.SetBytesProcessed(state.iterations());
}
BENCHMARK(BM_TriviumByte);

void BM_NodalSolve8x8(benchmark::State& state) {
  xbar::Crossbar xb;
  xb.set_all_gates(true);
  for (auto _ : state) {
    const auto sol = xbar::solve_poe(xb, {3, 4}, 1.0);
    benchmark::DoNotOptimize(sol.cell_voltage(0, 0));
  }
}
BENCHMARK(BM_NodalSolve8x8);

void BM_PhysicalPoePulse(benchmark::State& state) {
  xbar::Crossbar xb;
  for (unsigned i = 0; i < 64; ++i) xb.cell(i).memristor().set_state(0.5);
  const device::Pulse pulse{1.0, 0.05e-6};
  for (auto _ : state) {
    const auto sol = xbar::apply_poe_pulse(xb, {3, 4}, pulse);
    benchmark::DoNotOptimize(sol.cell_voltage(3, 4));
  }
}
BENCHMARK(BM_PhysicalPoePulse);

void BM_Calibration(benchmark::State& state) {
  xbar::CrossbarParams params;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    // Unique params per iteration to defeat the cache.
    const auto p = core::with_device_variation(params, ++seed);
    const core::CipherCalibration cal(p);
    benchmark::DoNotOptimize(cal.fingerprint());
  }
}
BENCHMARK(BM_Calibration)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_IlpFixedPlacement(benchmark::State& state) {
  ilp::SolverOptions opt;
  opt.node_limit = 500'000;
  for (auto _ : state) {
    const auto placement = ilp::solve_fixed_poes(8, 8, 12, opt);
    benchmark::DoNotOptimize(placement.feasible);
  }
}
BENCHMARK(BM_IlpFixedPlacement)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_NistSuite64k(benchmark::State& state) {
  util::Xoshiro256ss rng(1);
  util::BitVector bits;
  for (int i = 0; i < 1024; ++i) bits.append_bits(rng(), 64);
  for (auto _ : state) {
    const auto results = nist::run_all(bits);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_NistSuite64k)->Unit(benchmark::kMillisecond);

void BM_SimulateWorkload(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.instructions = 200'000;
  for (auto _ : state) {
    const auto result =
        sim::simulate(sim::workload_by_name("bzip2"), core::Scheme::SpeSerial, cfg);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_SimulateWorkload)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
