#include "core/lut.hpp"

#include <stdexcept>

namespace spe::core {

const std::vector<unsigned>& default_poes_8x8() {
  // 16 PoEs, two per column, rows staggered so every cell is covered by the
  // physically-calibrated polyominoes and polyomino overlap stays small.
  // Derived from solve_fixed_poes(8, 8, 16) with the relaxed boundary rule;
  // regenerated and validated by bench/fig6_coverage and the ilp tests.
  static const std::vector<unsigned> kPoes = {
      1 * 8 + 0, 6 * 8 + 0,  // column 0: rows 1, 6
      3 * 8 + 1, 4 * 8 + 1,  // column 1: rows 3, 4
      0 * 8 + 2, 5 * 8 + 2,  // column 2: rows 0, 5
      2 * 8 + 3, 7 * 8 + 3,  // column 3: rows 2, 7
      1 * 8 + 4, 6 * 8 + 4,  // column 4: rows 1, 6
      3 * 8 + 5, 4 * 8 + 5,  // column 5: rows 3, 4
      0 * 8 + 6, 5 * 8 + 6,  // column 6: rows 0, 5
      2 * 8 + 7, 7 * 8 + 7,  // column 7: rows 2, 7
  };
  return kPoes;
}

AddressLut::AddressLut(std::vector<unsigned> poe_cells, unsigned rows, unsigned cols)
    : cells_(std::move(poe_cells)), rows_(rows), cols_(cols) {
  if (cells_.empty()) throw std::invalid_argument("AddressLut: empty PoE set");
  for (unsigned c : cells_)
    if (c >= rows_ * cols_) throw std::out_of_range("AddressLut: PoE outside crossbar");
}

unsigned AddressLut::cell(unsigned idx) const {
  if (idx >= cells_.size()) throw std::out_of_range("AddressLut::cell");
  return cells_[idx];
}

xbar::PoE AddressLut::poe(unsigned idx) const {
  const unsigned flat = cell(idx);
  return {flat / cols_, flat % cols_};
}

std::vector<unsigned> AddressLut::permuted_order(util::CoupledLcg& prng) const {
  std::vector<unsigned> order(cells_.size());
  for (unsigned i = 0; i < order.size(); ++i) order[i] = i;
  for (unsigned i = static_cast<unsigned>(order.size()); i-- > 1;) {
    const unsigned j = prng.below(i + 1);
    std::swap(order[i], order[j]);
  }
  return order;
}

VoltageLut::VoltageLut(device::PulseLibrary library) : library_(std::move(library)) {}

unsigned VoltageLut::next_code(util::CoupledLcg& prng) const {
  return prng.next_bits(5) % library_.size();
}

}  // namespace spe::core
