#pragma once
// Sneak-path control (Section 4 / Fig. 3b) and PoE pulse application
// (Section 5.2). A Point of Encryption (PoE) pulse drives the PoE's row at
// +/-1 V, grounds the PoE's column, floats every other line, and turns ALL
// access transistors ON so sneak currents spread the disturbance to the
// surrounding polyomino. The crossbar states are advanced quasi-statically:
// the resistive network is re-solved between integration sub-steps because
// every state change reshapes the voltage distribution (this is exactly the
// data-dependence Section 5.3 relies on).

#include "device/pulse.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/nodal_solver.hpp"

namespace spe::xbar {

/// A Point of Encryption: the addressed crossing for one SPE pulse.
struct PoE {
  unsigned row = 0;
  unsigned col = 0;
  bool operator==(const PoE&) const = default;
};

/// Solves the network in sneak-path mode for a PoE drive without modifying
/// any state. Gate state of the crossbar is set to all-ON and left that way.
[[nodiscard]] NodalSolution solve_poe(Crossbar& xbar, PoE poe, double voltage);

/// Applies one SPE pulse at the PoE: re-solves the network `substeps` times
/// across the pulse width and advances every cell with its instantaneous
/// voltage share. Cells below the write threshold are untouched (Fig. 4's
/// white cells). Returns the final network solution for inspection.
NodalSolution apply_poe_pulse(Crossbar& xbar, PoE poe, const spe::device::Pulse& pulse,
                              int substeps = 4);

/// Restores normal read/write operation: selects `row` and returns the
/// solution for a read drive of `voltage` on that row with `col` grounded
/// (all other lines floating).
[[nodiscard]] NodalSolution solve_normal_read(Crossbar& xbar, unsigned row, unsigned col,
                                              double voltage);

}  // namespace spe::xbar
