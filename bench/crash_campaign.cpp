// Kill-point crash campaign for the crash-consistency machinery (intent
// journal + checkpoint/restore + journal recovery). A scripted workload
// runs on a live MemoryService; the crash hook captures the target shard's
// durable state after EVERY intent-journal transition — exactly what a
// power loss at that instant would leave in the non-volatile array. The
// campaign then restores a fresh service from each snapshot (combined with
// the other shards' pre-op quiescent state) and audits every block:
//
//   * a block not touched by the interrupted op must read back bit-exactly
//     as its last acknowledged payload — anything else is SILENT CORRUPTION;
//   * the in-flight block must read as its old payload (rolled back), the
//     new payload (replayed forward), or throw the typed TornBlockError —
//     a torn loss is bounded to that one block and is loudly typed, never
//     silent.
//
// Determinism: no background threads, blocking ops in script order, no
// timing in the report — identical seeds produce byte-identical reports.
// Exit status is the acceptance check: nonzero on any silent corruption or
// any data loss outside the single in-flight block.
//
// Overrides: SPE_CRASH_BLOCKS (working set), SPE_CRASH_STRIDE (restore
//            every Nth kill point; CI smoke uses a large stride),
//            SPE_CRASH_SEED (device/key seed variation).

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/memory_service.hpp"
#include "util/table.hpp"

namespace {

using spe::runtime::MemoryService;
using spe::runtime::RecoveryReport;
using spe::runtime::ServiceConfig;
using spe::runtime::TornBlockError;

struct ScriptOp {
  bool is_write;
  std::uint64_t addr;
  unsigned version;  // writes only
};

struct CampaignResult {
  std::uint64_t ops = 0;
  std::uint64_t kill_points = 0;
  std::uint64_t restores = 0;
  std::uint64_t replayed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t torn = 0;
  std::uint64_t clean_restores = 0;
  std::uint64_t silent = 0;      ///< wrong data without an error (must be 0)
  std::uint64_t stray_loss = 0;  ///< loss outside the in-flight block (must be 0)
};

std::vector<std::uint8_t> payload(std::uint64_t addr, unsigned version,
                                  unsigned block_bytes) {
  std::vector<std::uint8_t> data(block_bytes);
  for (unsigned i = 0; i < block_bytes; ++i)
    data[i] = static_cast<std::uint8_t>(7 * addr + 37 * version + 31 * i);
  return data;
}

CampaignResult run_campaign(spe::core::SpeMode mode, unsigned blocks,
                            unsigned stride, std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.worker_threads = 2;
  cfg.mode = mode;
  // Determinism: the scripted op is the only journal activity on its shard.
  cfg.scavenger_enabled = false;
  cfg.scrub_enabled = false;
  cfg.retry_backoff_base = std::chrono::microseconds{0};
  cfg.device_seed_base = 1 + seed;
  cfg.key_seed = 0x5EC0DE ^ seed;

  MemoryService service(cfg);
  const unsigned block_bytes = service.block_bytes();

  std::vector<unsigned> acked(blocks, 0);
  for (std::uint64_t addr = 0; addr < blocks; ++addr)
    service.write(addr, payload(addr, 0, block_bytes));

  // Writes hit fresh and dirty blocks on several shards; reads decrypt in
  // place (serial) or decrypt + re-encrypt (parallel) — every journal op
  // class appears as an interruption candidate.
  const std::vector<ScriptOp> script = {
      {true, 3 % blocks, 1},  {true, 7 % blocks, 2}, {false, 3 % blocks, 0},
      {true, 3 % blocks, 3},  {false, 7 % blocks, 0}, {true, 11 % blocks, 4},
  };

  CampaignResult result;
  for (const ScriptOp& op : script) {
    ++result.ops;
    // Quiescent durable state of every shard as of just before this op.
    std::vector<std::string> quiescent(service.shard_count());
    for (unsigned s = 0; s < service.shard_count(); ++s) {
      std::ostringstream out;
      service.shard(s).save_state(out);
      quiescent[s] = out.str();
    }

    const unsigned target = service.shard_of(op.addr);
    std::vector<std::string> snapshots;
    service.shard(target).set_crash_hook(
        [&snapshots](unsigned, const std::string& blob) {
          snapshots.push_back(blob);
        });
    if (op.is_write)
      service.write(op.addr, payload(op.addr, op.version, block_bytes));
    else
      (void)service.read(op.addr);
    service.shard(target).set_crash_hook(nullptr);
    result.kill_points += snapshots.size();

    const auto old_payload = payload(op.addr, acked[op.addr], block_bytes);
    const auto new_payload =
        op.is_write ? payload(op.addr, op.version, block_bytes) : old_payload;

    for (std::size_t k = 0; k < snapshots.size(); k += stride) {
      ++result.restores;
      std::vector<std::string> blobs = quiescent;
      blobs[target] = snapshots[k];
      std::ostringstream ck;
      MemoryService::write_checkpoint(ck, blobs);
      std::istringstream in(ck.str());
      MemoryService restored(cfg, in);

      const auto totals = restored.recovery_report().totals();
      result.replayed += totals.replayed_forward;
      result.rolled_back += totals.rolled_back;
      result.torn += totals.torn_quarantined;
      if (restored.recovery_report().clean()) ++result.clean_restores;

      for (std::uint64_t addr = 0; addr < blocks; ++addr) {
        const bool in_flight = addr == op.addr;
        try {
          const auto got = restored.read(addr);
          const bool ok = got == payload(addr, acked[addr], block_bytes) ||
                          (in_flight && (got == old_payload || got == new_payload));
          if (!ok) ++result.silent;
        } catch (const TornBlockError&) {
          // Bounded loss: only the block the crash interrupted may be torn,
          // and only while a write (destructive program) was in flight.
          if (!in_flight || !op.is_write) ++result.stray_loss;
        } catch (const std::exception&) {
          ++result.stray_loss;
        }
      }
    }
    if (op.is_write) acked[op.addr] = op.version;
  }
  service.stop();
  return result;
}

}  // namespace

int main() {
  const unsigned blocks = std::max(4u, spe::benchutil::env_or("SPE_CRASH_BLOCKS", 16));
  const unsigned stride = std::max(1u, spe::benchutil::env_or("SPE_CRASH_STRIDE", 1));
  const std::uint64_t seed = spe::benchutil::env_or("SPE_CRASH_SEED", 0);

  spe::benchutil::banner(
      "Kill-point crash campaign (" + std::to_string(blocks) +
          " blocks, stride " + std::to_string(stride) + ", seed " +
          std::to_string(seed) + ")",
      "crash-consistency acceptance sweep (not a paper figure)");

  spe::util::Table table({"workload", "ops", "kill_pts", "restores", "replayed",
                          "rolledbk", "torn", "clean", "silent", "stray"});
  std::uint64_t silent_total = 0;
  std::uint64_t stray_total = 0;
  const struct {
    const char* label;
    spe::core::SpeMode mode;
  } workloads[] = {
      {"serial", spe::core::SpeMode::Serial},
      {"parallel", spe::core::SpeMode::Parallel},
  };
  for (const auto& w : workloads) {
    const CampaignResult r = run_campaign(w.mode, blocks, stride, seed);
    silent_total += r.silent;
    stray_total += r.stray_loss;
    table.add_row({w.label, std::to_string(r.ops), std::to_string(r.kill_points),
                   std::to_string(r.restores), std::to_string(r.replayed),
                   std::to_string(r.rolled_back), std::to_string(r.torn),
                   std::to_string(r.clean_restores), std::to_string(r.silent),
                   std::to_string(r.stray_loss)});
  }
  table.print();

  std::printf(
      "\nEvery restore is a simulated power loss at one journal transition.\n"
      "silent = a block that read back as data nobody acknowledged writing;\n"
      "stray = data loss outside the single in-flight block. replayed/\n"
      "rolledbk/torn count the recovery classifications across all restores\n"
      "(clean = the kill point landed outside any open intent).\n");
  std::printf("\nsilent corruption events: %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(silent_total));
  std::printf("stray data-loss events:   %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(stray_total));
  if (silent_total > 0 || stray_total > 0) {
    std::fprintf(stderr, "crash_campaign: FAIL — recovery lost or corrupted data\n");
    return 1;
  }
  return 0;
}
