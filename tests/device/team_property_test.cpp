// Parameterised property sweep of the TEAM model: physical invariants that
// must hold across the device corner space (the same corners the
// hardware-avalanche evaluation perturbs).

#include <gtest/gtest.h>

#include "device/team_model.hpp"

namespace spe::device {
namespace {

struct Corner {
  const char* name;
  double k_scale;
  double r_scale;
  double i_scale;
};

class TeamProperty : public ::testing::TestWithParam<Corner> {
protected:
  TeamParams params() const {
    TeamParams p;
    p.k_off *= GetParam().k_scale;
    p.k_on *= GetParam().k_scale;
    p.r_on *= GetParam().r_scale;
    p.r_off *= GetParam().r_scale;
    p.i_off *= GetParam().i_scale;
    p.i_on *= GetParam().i_scale;
    return p;
  }
};

TEST_P(TeamProperty, TrajectoriesDoNotCross) {
  // Order preservation: a higher starting state stays higher under the
  // same pulse — the property the calibration's level tables rely on.
  // Near the window attractor, saturating pulses squeeze all trajectories
  // into one point and fixed-step RK4 leaves ~1e-4 residuals; the
  // tolerance admits that convergence while rejecting real crossings.
  const TeamParams p = params();
  for (double v : {1.0, -1.0, 0.6, -0.6}) {
    double prev_end = -1.0;
    bool first = true;
    for (double w0 = 0.05; w0 <= 0.96; w0 += 0.1) {
      TeamModel m(p, w0);
      m.apply_voltage(v, 0.05e-6);
      if (!first) EXPECT_GE(m.state() + 5e-3, prev_end) << "v=" << v << " w0=" << w0;
      prev_end = m.state();
      first = false;
    }
  }
}

TEST_P(TeamProperty, MotionIsMonotoneInTime) {
  const TeamParams p = params();
  TeamModel m(p, 0.4);
  double prev = m.state();
  for (int step = 0; step < 10; ++step) {
    m.apply_voltage(1.0, 0.01e-6);
    EXPECT_GE(m.state() + 1e-12, prev);
    prev = m.state();
  }
}

TEST_P(TeamProperty, PolarityIsRespected) {
  const TeamParams p = params();
  TeamModel up(p, 0.5), down(p, 0.5);
  up.apply_voltage(1.0, 0.05e-6);
  down.apply_voltage(-1.0, 0.05e-6);
  EXPECT_GE(up.state(), 0.5);
  EXPECT_LE(down.state(), 0.5);
}

TEST_P(TeamProperty, StateAlwaysBounded) {
  const TeamParams p = params();
  for (double v : {2.0, -2.0}) {
    TeamModel m(p, 0.5);
    m.apply_voltage(v, 5e-6);  // grossly over-long pulse
    EXPECT_GE(m.state(), 0.0);
    EXPECT_LE(m.state(), 1.0);
  }
}

TEST_P(TeamProperty, ResistanceMapMonotone) {
  const TeamParams p = params();
  double prev = 0.0;
  for (double w = 0.0; w <= 1.0; w += 0.05) {
    const double r = p.resistance(w);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, TeamProperty,
    ::testing::Values(Corner{"nominal", 1.0, 1.0, 1.0},
                      Corner{"fast", 1.5, 0.9, 1.1},
                      Corner{"slow", 0.6, 1.1, 0.9},
                      Corner{"high_r", 1.0, 1.5, 1.0},
                      Corner{"low_thresh", 1.0, 1.0, 0.5}),
    [](const ::testing::TestParamInfo<Corner>& info) { return info.param.name; });

}  // namespace
}  // namespace spe::device
