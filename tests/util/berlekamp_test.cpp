#include "util/berlekamp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::util {
namespace {

TEST(LinearComplexity, AllZerosIsZero) {
  BitVector v(64, false);
  EXPECT_EQ(linear_complexity(v, 0, 64), 0u);
}

TEST(LinearComplexity, SingleOneAtEnd) {
  // 0...01: the shortest LFSR generating n-1 zeros then a one has length n.
  BitVector v(8, false);
  v.set(7, true);
  EXPECT_EQ(linear_complexity(v, 0, 8), 8u);
}

TEST(LinearComplexity, AlternatingSequenceIsTwo) {
  BitVector v = BitVector::from_string("10101010101010");
  EXPECT_EQ(linear_complexity(v, 0, v.size()), 2u);
}

TEST(LinearComplexity, ConstantOnesIsOne) {
  BitVector v(32, true);
  EXPECT_EQ(linear_complexity(v, 0, 32), 1u);
}

TEST(LinearComplexity, NistWorkedExample) {
  // SP 800-22 2.10: the 13-bit sequence 1101011110001 has L = 4.
  BitVector v = BitVector::from_string("1101011110001");
  EXPECT_EQ(linear_complexity(v, 0, v.size()), 4u);
}

TEST(LinearComplexity, KnownLfsrIsRecovered) {
  // x^5 + x^2 + 1 LFSR: complexity of its output must be 5.
  BitVector v;
  unsigned state = 0b00001;
  for (int i = 0; i < 64; ++i) {
    v.push_back(state & 1u);
    const unsigned fb = ((state >> 0) ^ (state >> 3)) & 1u;  // taps 5,2
    state = (state >> 1) | (fb << 4);
  }
  EXPECT_EQ(linear_complexity(v, 0, v.size()), 5u);
}

TEST(LinearComplexity, RandomSequenceNearHalfLength) {
  Xoshiro256ss rng(3);
  BitVector v;
  for (int w = 0; w < 8; ++w) v.append_bits(rng(), 64);
  const auto L = linear_complexity(v, 0, v.size());
  // E[L] ~ n/2 for random bits.
  EXPECT_NEAR(static_cast<double>(L), 256.0, 8.0);
}

TEST(LinearComplexity, OffsetWindows) {
  BitVector v = BitVector::from_string("0000" "10101010");
  EXPECT_EQ(linear_complexity(v, 4, 8), 2u);
}

TEST(LinearComplexity, OutOfRangeThrows) {
  BitVector v(16, false);
  EXPECT_THROW((void)linear_complexity(v, 8, 16), std::out_of_range);
}

}  // namespace
}  // namespace spe::util
