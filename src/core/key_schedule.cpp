#include "core/key_schedule.hpp"

namespace spe::core {

KeySchedule::KeySchedule(const SpeKey& key, const AddressLut& addresses,
                         const VoltageLut& voltages, unsigned unit_index) {
  // Fold the crossbar-unit index into both seeds (44-bit masked) so the four
  // units of a cache block run distinct sequences from one key.
  const std::uint64_t mask = (std::uint64_t{1} << SpeKey::kSeedBits) - 1;
  const std::uint64_t tweak = util::mix64(0x5BE0CD19137E2179ull + unit_index);
  util::CoupledLcg addr_prng((key.address_seed ^ (tweak & mask)) & mask);
  util::CoupledLcg volt_prng((key.voltage_seed ^ ((tweak >> 20) & mask)) & mask);

  const std::vector<unsigned> order = addresses.permuted_order(addr_prng);
  steps_.reserve(order.size());
  for (unsigned idx : order) {
    PulseStep step;
    step.poe_cell = addresses.cell(idx);
    step.pulse_code = voltages.next_code(volt_prng);
    steps_.push_back(step);
  }
}

}  // namespace spe::core
