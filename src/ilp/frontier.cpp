#include "ilp/frontier.hpp"

#include <algorithm>
#include <cstdio>

namespace spe::ilp {

FrontierPoint frontier_point(unsigned size, int security_s, const SolverOptions& base) {
  const unsigned cells = size * size;
  const unsigned s =
      security_s >= 0 ? static_cast<unsigned>(security_s) : cells / 16;

  PortfolioOptions opts;
  opts.base = base;
  const PoePlacement placement =
      solve_min_poes_portfolio(size, size, std::min(s, cells - 1), opts);

  FrontierPoint pt;
  pt.rows = size;
  pt.cols = size;
  pt.security_s = std::min(s, cells - 1);
  pt.feasible = placement.feasible;
  pt.optimal = placement.optimal;
  pt.status = placement.status;
  pt.backend = placement.backend;
  pt.poes = static_cast<unsigned>(placement.poes.size());
  pt.total_coverage = placement.total_coverage();
  pt.overlapped_cells = placement.overlapped_cells();
  pt.uncovered_cells = placement.uncovered_cells();
  pt.best_bound = placement.best_bound;
  pt.has_bound = placement.has_bound;
  pt.elapsed_ms = placement.elapsed_ms;
  return pt;
}

std::vector<FrontierPoint> placement_frontier(const std::vector<unsigned>& sizes,
                                              int security_s, const SolverOptions& base) {
  std::vector<FrontierPoint> points;
  points.reserve(sizes.size());
  for (const unsigned size : sizes)
    points.push_back(frontier_point(size, security_s, base));
  return points;
}

std::string frontier_json(const std::vector<FrontierPoint>& points,
                          const FrontierMeta& meta) {
  std::string out;
  out += "{\"schema\": \"";
  out += kFrontierSchema;
  out += "\", \"source\": \"" + meta.source + "\", \"git_sha\": \"" + meta.git_sha +
         "\", \"config\": \"" + meta.config + "\", \"rows\": [";
  char buf[512];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& p = points[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"rows\": %u, \"cols\": %u, \"security_s\": %u, "
                  "\"feasible\": %s, \"optimal\": %s, \"status\": \"%s\", "
                  "\"backend\": \"%s\", \"poes\": %u, \"total_coverage\": %u, "
                  "\"overlapped_cells\": %u, \"uncovered_cells\": %u, "
                  "\"best_bound\": %.1f, \"has_bound\": %s",
                  i == 0 ? "" : ",", p.rows, p.cols, p.security_s,
                  p.feasible ? "true" : "false", p.optimal ? "true" : "false",
                  to_string(p.status), to_string(p.backend), p.poes,
                  p.total_coverage, p.overlapped_cells, p.uncovered_cells,
                  p.best_bound, p.has_bound ? "true" : "false");
    out += buf;
    if (meta.include_timing) {
      std::snprintf(buf, sizeof buf, ", \"elapsed_ms\": %.3f", p.elapsed_ms);
      out += buf;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace spe::ilp
