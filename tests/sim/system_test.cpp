#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace spe::sim {
namespace {

SimConfig quick_config() {
  SimConfig cfg;
  cfg.instructions = 400'000;
  return cfg;
}

TEST(Simulate, RunsToCompletion) {
  const auto result = simulate(workload_by_name("hmmer"), core::Scheme::None, quick_config());
  EXPECT_GE(result.instructions, 400'000u);
  EXPECT_GT(result.cycles, result.instructions / 4);  // 4-issue bound
  EXPECT_GT(result.ipc(), 0.0);
  EXPECT_EQ(result.scheme, core::Scheme::None);
  EXPECT_EQ(result.workload, "hmmer");
}

TEST(Simulate, DeterministicAcrossRuns) {
  const auto a = simulate(workload_by_name("gcc"), core::Scheme::Aes, quick_config());
  const auto b = simulate(workload_by_name("gcc"), core::Scheme::Aes, quick_config());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.mean_encrypted_fraction, b.mean_encrypted_fraction);
}

TEST(Simulate, MissesFlowDownTheHierarchy) {
  const auto r = simulate(workload_by_name("mcf"), core::Scheme::None, quick_config());
  EXPECT_GT(r.l1_misses, r.l2_misses);
  EXPECT_GT(r.l2_misses, 0u);
}

TEST(Simulate, EncryptionAddsCycles) {
  const SimConfig cfg = quick_config();
  const auto& wl = workload_by_name("mcf");
  const auto base = simulate(wl, core::Scheme::None, cfg);
  const auto aes = simulate(wl, core::Scheme::Aes, cfg);
  const auto spe_s = simulate(wl, core::Scheme::SpeSerial, cfg);
  const auto spe_p = simulate(wl, core::Scheme::SpeParallel, cfg);
  const auto stream = simulate(wl, core::Scheme::StreamCipher, cfg);

  EXPECT_GT(aes.cycles, base.cycles);
  EXPECT_GT(spe_p.cycles, base.cycles);
  // Ordering of Table 3: AES slowest, stream cheapest, SPE in between.
  EXPECT_GT(aes.overhead_vs(base), spe_p.overhead_vs(base));
  EXPECT_GE(spe_p.overhead_vs(base), spe_s.overhead_vs(base) * 0.99);
  EXPECT_LT(stream.overhead_vs(base), spe_s.overhead_vs(base));
}

TEST(Simulate, CoverageOrdering) {
  // Longer run so the background engines reach steady state.
  SimConfig cfg;
  cfg.instructions = 1'500'000;
  const auto& wl = workload_by_name("bzip2");
  const auto aes = simulate(wl, core::Scheme::Aes, cfg);
  const auto spe_p = simulate(wl, core::Scheme::SpeParallel, cfg);
  const auto spe_s = simulate(wl, core::Scheme::SpeSerial, cfg);
  EXPECT_DOUBLE_EQ(aes.mean_encrypted_fraction, 1.0);
  EXPECT_DOUBLE_EQ(spe_p.mean_encrypted_fraction, 1.0);
  EXPECT_GT(spe_s.mean_encrypted_fraction, 0.8);
  EXPECT_LT(spe_s.mean_encrypted_fraction, 1.0);
}

TEST(RunGrid, ShapeAndMetrics) {
  SimConfig cfg;
  cfg.instructions = 150'000;
  const std::vector<core::Scheme> schemes = {core::Scheme::None, core::Scheme::Aes};
  const auto grid = run_grid(schemes, cfg);
  ASSERT_EQ(grid.size(), spec2006_suite().size());
  for (const auto& row : grid) ASSERT_EQ(row.size(), 2u);

  const auto base = grid_column(grid, 0);
  const auto aes = grid_column(grid, 1);
  EXPECT_GT(mean_overhead(aes, base), 0.0);
  EXPECT_DOUBLE_EQ(mean_encrypted_fraction(aes), 1.0);
}

TEST(Simulate, ReportsDirtyCacheState) {
  // The Section-6.4 cold-boot drain size: a running workload leaves dirty
  // lines in both caches, bounded by their capacities.
  const auto r = simulate(workload_by_name("bzip2"), core::Scheme::None, quick_config());
  EXPECT_GT(r.dirty_l2_lines, 0u);
  EXPECT_LE(r.dirty_l1_lines, 32u * 1024 / 64);
  EXPECT_LE(r.dirty_l2_lines, 2u * 1024 * 1024 / 64);
}

TEST(Metrics, ValidateInputs) {
  EXPECT_THROW((void)mean_overhead({}, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean_encrypted_fraction({}), 1.0);
}

}  // namespace
}  // namespace spe::sim
