#include "core/snvmm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/specu.hpp"

namespace spe::core {
namespace {

class SnvmmIoTest : public ::testing::Test {
protected:
  static constexpr std::uint64_t kMeasurement = 0x1234;

  SnvmmIoTest() { tpm_.provision(nvmm_.device_id(), kMeasurement, SpeKey{7, 8}); }

  std::vector<std::uint8_t> pattern(std::uint8_t seed) {
    std::vector<std::uint8_t> v(64);
    for (unsigned i = 0; i < 64; ++i) v[i] = static_cast<std::uint8_t>(seed ^ (i * 7));
    return v;
  }

  Snvmm nvmm_;
  Tpm tpm_;
};

TEST_F(SnvmmIoTest, EmptyImageRoundTrip) {
  std::stringstream stream;
  save_image(nvmm_, stream);
  const Snvmm loaded = load_image(stream);
  EXPECT_EQ(loaded.block_count(), 0u);
  EXPECT_EQ(loaded.fingerprint(), nvmm_.fingerprint());
  EXPECT_EQ(loaded.device_id(), nvmm_.device_id());
}

TEST_F(SnvmmIoTest, EncryptedContentSurvivesSerialisation) {
  Specu specu(nvmm_, SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  specu.write_block(0x40, pattern(1));
  specu.write_block(0x80, pattern(2));
  specu.power_down();

  std::stringstream stream;
  save_image(nvmm_, stream);
  Snvmm loaded = load_image(stream);
  ASSERT_EQ(loaded.block_count(), 2u);
  // The probe view (ciphertext) is byte-identical.
  EXPECT_EQ(loaded.probe_block(0x40), nvmm_.probe_block(0x40));

  // Instant-on against the reloaded image: the original TPM key decrypts.
  Specu revived(loaded, SpeMode::Parallel);
  ASSERT_TRUE(revived.power_on(tpm_, kMeasurement));
  EXPECT_EQ(revived.read_block(0x40), pattern(1));
  EXPECT_EQ(revived.read_block(0x80), pattern(2));
}

TEST_F(SnvmmIoTest, WearAndFlagsArePreserved) {
  Specu specu(nvmm_, SpeMode::Serial);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  specu.write_block(0, pattern(3));
  (void)specu.read_block(0);  // serial: leaves the block decrypted
  const double wear_before = nvmm_.max_wear();
  ASSERT_GT(wear_before, 0.0);

  std::stringstream stream;
  save_image(nvmm_, stream);
  const Snvmm loaded = load_image(stream);
  EXPECT_DOUBLE_EQ(loaded.max_wear(), wear_before);
  EXPECT_FALSE(loaded.find_block(0)->encrypted);  // plaintext flag survives
}

TEST_F(SnvmmIoTest, RejectsBadMagic) {
  std::stringstream stream("not an image at all");
  EXPECT_THROW((void)load_image(stream), std::runtime_error);
}

TEST_F(SnvmmIoTest, RejectsTruncatedImage) {
  Specu specu(nvmm_, SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  specu.write_block(0, pattern(4));
  std::stringstream stream;
  save_image(nvmm_, stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 40));
  EXPECT_THROW((void)load_image(truncated), std::runtime_error);
}

TEST_F(SnvmmIoTest, RejectsFingerprintTamper) {
  std::stringstream stream;
  save_image(nvmm_, stream);
  std::string image = stream.str();
  image[40] ^= 0x01;  // flip a bit inside the stored fingerprint field
  std::stringstream tampered(image);
  EXPECT_THROW((void)load_image(tampered), std::runtime_error);
}

TEST_F(SnvmmIoTest, FileRoundTrip) {
  Specu specu(nvmm_, SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  specu.write_block(0x1000, pattern(9));
  const std::string path = ::testing::TempDir() + "/snvmm_image.bin";
  save_image_file(nvmm_, path);
  Snvmm loaded = load_image_file(path);
  Specu revived(loaded, SpeMode::Parallel);
  ASSERT_TRUE(revived.power_on(tpm_, kMeasurement));
  EXPECT_EQ(revived.read_block(0x1000), pattern(9));
  EXPECT_THROW((void)load_image_file(path + ".missing"), std::runtime_error);
}

TEST_F(SnvmmIoTest, SpeWearAccumulatesGently) {
  // Section 5.2 in the data path: 100 parallel-mode reads (decrypt +
  // re-encrypt each) age the block like ~64 writes-equivalents, far below
  // any endurance limit.
  Specu specu(nvmm_, SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  specu.write_block(0, pattern(5));
  const double after_write = nvmm_.max_wear();
  for (int i = 0; i < 100; ++i) (void)specu.read_block(0);
  const double per_read = (nvmm_.max_wear() - after_write) / 100.0;
  // 4 units x 16 pulses x 0.02 for decrypt, same again for re-encrypt.
  EXPECT_NEAR(per_read, 2 * 4 * 16 * 0.02, 1e-9);
  EXPECT_LT(nvmm_.max_wear(), 1e8);  // nowhere near the endurance limit
}

}  // namespace
}  // namespace spe::core
