#include "runtime/memory_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

namespace spe::runtime {
namespace {

using namespace std::chrono_literals;

// Block payloads carry their identity in every byte: data[i] - data[0] must
// equal 31*i (mod 256) for any (addr, version) pair, so a single corrupted
// or torn decrypt is detected without knowing which version a racing read
// observed.
std::vector<std::uint8_t> tagged_block(std::uint64_t addr, unsigned version,
                                       unsigned block_bytes) {
  std::vector<std::uint8_t> data(block_bytes);
  for (unsigned i = 0; i < block_bytes; ++i)
    data[i] = static_cast<std::uint8_t>(7 * addr + 37 * version + 31 * i);
  return data;
}

bool block_is_well_formed(const std::vector<std::uint8_t>& data) {
  for (unsigned i = 0; i < data.size(); ++i)
    if (static_cast<std::uint8_t>(data[i] - data[0]) !=
        static_cast<std::uint8_t>(31 * i))
      return false;
  return true;
}

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.worker_threads = 2;
  cfg.queue_capacity = 64;
  cfg.scavenger_interval = 200us;
  return cfg;
}

TEST(MemoryService, SyncRoundTripBothModes) {
  for (const core::SpeMode mode : {core::SpeMode::Serial, core::SpeMode::Parallel}) {
    ServiceConfig cfg = small_config();
    cfg.mode = mode;
    MemoryService service(cfg);
    for (std::uint64_t addr = 0; addr < 16; ++addr) {
      const auto data = tagged_block(addr, 0, service.block_bytes());
      service.write(addr, data);
      EXPECT_EQ(service.read(addr), data) << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(MemoryService, FutureApiCompletesOutOfOrderSubmissions) {
  MemoryService service(small_config());
  std::vector<std::future<void>> writes;
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    writes.push_back(
        service.submit_write(addr, tagged_block(addr, 1, service.block_bytes())));
  for (auto& f : writes) f.get();
  std::vector<std::future<std::vector<std::uint8_t>>> reads;
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    reads.push_back(service.submit_read(addr));
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    EXPECT_EQ(reads[addr].get(), tagged_block(addr, 1, service.block_bytes()));
}

TEST(MemoryService, AddressShardingCoversAllShards) {
  MemoryService service(small_config());
  std::vector<bool> hit(service.shard_count(), false);
  for (std::uint64_t addr = 0; addr < 256; ++addr) {
    const unsigned s = service.shard_of(addr);
    ASSERT_LT(s, service.shard_count());
    hit[s] = true;
  }
  for (unsigned s = 0; s < service.shard_count(); ++s) EXPECT_TRUE(hit[s]) << s;
}

// The satellite stress test: >=4 client threads, mixed reads/writes on a
// small overlapping block set; every read must decrypt to a well-formed
// (bit-exact) payload written by someone.
TEST(MemoryService, ConcurrentMixedTrafficStaysBitExact) {
  ServiceConfig cfg = small_config();
  cfg.shards = 8;
  cfg.worker_threads = 4;
  MemoryService service(cfg);
  constexpr std::uint64_t kBlocks = 24;
  constexpr unsigned kClients = 4;
  constexpr unsigned kOpsPerClient = 150;

  for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
    service.write(addr, tagged_block(addr, 0, service.block_bytes()));

  std::atomic<unsigned> malformed{0};
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      std::uint64_t state = 0x9E3779B9u * (c + 1);
      for (unsigned op = 0; op < kOpsPerClient; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t addr = (state >> 33) % kBlocks;
        if ((state >> 13) & 1) {
          service.write(addr,
                        tagged_block(addr, static_cast<unsigned>(state & 0xFF),
                                     service.block_bytes()));
        } else {
          if (!block_is_well_formed(service.read(addr))) malformed.fetch_add(1);
        }
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(malformed.load(), 0u);

  // After quiescing, every block must still decrypt bit-exactly.
  for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
    EXPECT_TRUE(block_is_well_formed(service.read(addr))) << "block " << addr;

  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.totals.rejected, 0u);  // Block policy never bounces
  // Every submitted op completed: initial fills + client ops + quiesce reads.
  EXPECT_EQ(stats.total_ops(),
            2 * kBlocks + static_cast<std::uint64_t>(kClients) * kOpsPerClient);
}

TEST(MemoryService, TinyQueuesWithBlockPolicyStayLive) {
  ServiceConfig cfg = small_config();
  cfg.queue_capacity = 1;
  cfg.coalesce_writes = false;
  MemoryService service(cfg);
  std::vector<std::thread> clients;
  std::atomic<unsigned> completed{0};
  for (unsigned c = 0; c < 4; ++c)
    clients.emplace_back([&, c] {
      for (unsigned i = 0; i < 50; ++i) {
        const std::uint64_t addr = (c * 50 + i) % 16;
        service.write(addr, tagged_block(addr, i, service.block_bytes()));
        completed.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), 200u);
}

TEST(MemoryService, RejectPolicySurfacesQueueFullToSubmitter) {
  ServiceConfig cfg = small_config();
  cfg.shards = 1;
  cfg.worker_threads = 1;
  cfg.queue_capacity = 2;
  cfg.coalesce_writes = false;
  cfg.backpressure = BackpressurePolicy::Reject;
  MemoryService service(cfg);
  // Flood one shard faster than its worker can drain; with depth 2 some
  // submission must bounce, and every accepted future must still complete.
  unsigned rejected = 0;
  std::vector<std::future<void>> accepted;
  for (unsigned i = 0; i < 400; ++i) {
    try {
      accepted.push_back(
          service.submit_write(i % 8, tagged_block(i % 8, i, service.block_bytes())));
    } catch (const QueueFullError& e) {
      EXPECT_EQ(e.shard(), 0u);
      ++rejected;
    }
  }
  for (auto& f : accepted) f.get();
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service.stats().totals.rejected, rejected);
}

TEST(MemoryService, SerialScavengerReencryptsEverything) {
  ServiceConfig cfg = small_config();
  cfg.mode = core::SpeMode::Serial;
  cfg.scavenger_interval = 100us;
  cfg.scavenger_blocks_per_pass = 8;
  MemoryService service(cfg);
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    service.write(addr, tagged_block(addr, 2, service.block_bytes()));
  for (std::uint64_t addr = 0; addr < 32; ++addr) (void)service.read(addr);

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (service.encrypted_fraction() < 1.0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_DOUBLE_EQ(service.encrypted_fraction(), 1.0);
  EXPECT_GT(service.stats().totals.background_encrypted, 0u);

  // The re-encrypted blocks must still decrypt bit-exactly.
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    EXPECT_EQ(service.read(addr), tagged_block(addr, 2, service.block_bytes()));
}

TEST(MemoryService, ParallelModeNeverLeavesPlaintext) {
  ServiceConfig cfg = small_config();
  cfg.mode = core::SpeMode::Parallel;
  MemoryService service(cfg);
  for (std::uint64_t addr = 0; addr < 16; ++addr)
    service.write(addr, tagged_block(addr, 3, service.block_bytes()));
  for (std::uint64_t addr = 0; addr < 16; ++addr) (void)service.read(addr);
  EXPECT_DOUBLE_EQ(service.encrypted_fraction(), 1.0);
  EXPECT_EQ(service.stats().totals.plaintext_blocks, 0u);
}

TEST(MemoryService, StopIsIdempotentAndSubmitsAfterStopThrow) {
  MemoryService service(small_config());
  service.write(1, tagged_block(1, 0, service.block_bytes()));
  service.stop();
  service.stop();
  EXPECT_THROW((void)service.submit_read(1), ServiceStoppedError);
  EXPECT_THROW(service.write(1, tagged_block(1, 1, service.block_bytes())),
               ServiceStoppedError);
  // Stats remain readable after shutdown.
  EXPECT_EQ(service.stats().totals.writes_completed, 1u);
}

// Two threads racing into stop(): exactly one runs the shutdown, the other
// must block until it is fully done — not return early, not double-join.
// Regression test for the concurrent-stop contract (the net server calls
// stop() from its own threads while a destructor may race it).
TEST(MemoryService, ConcurrentStopFromTwoThreadsIsSafe) {
  for (unsigned round = 0; round < 8; ++round) {
    MemoryService service(small_config());
    service.write(1, tagged_block(1, 0, service.block_bytes()));
    std::atomic<bool> go{false};
    auto stopper = [&] {
      while (!go.load()) std::this_thread::yield();
      service.stop();
      // Whoever returns first, the shutdown must already be complete.
      EXPECT_THROW((void)service.submit_read(1), ServiceStoppedError);
    };
    std::thread a(stopper);
    std::thread b(stopper);
    go.store(true);
    a.join();
    b.join();
    EXPECT_EQ(service.stats().totals.writes_completed, 1u) << "round " << round;
  }
}

// Shutdown racing live traffic: every future obtained before stop() must
// settle — either with its value or with the typed ServiceStoppedError —
// and never with a std::future_error from an abandoned promise.
TEST(MemoryService, RacingShutdownSettlesEveryFutureTyped) {
  for (unsigned round = 0; round < 4; ++round) {
    ServiceConfig cfg = small_config();
    cfg.queue_capacity = 8;
    MemoryService service(cfg);
    std::atomic<bool> go{false};
    std::atomic<unsigned> completed{0}, stopped{0}, broken{0};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < 4; ++c)
      clients.emplace_back([&, c] {
        while (!go.load()) std::this_thread::yield();
        for (unsigned i = 0; i < 64; ++i) {
          const std::uint64_t addr = c * 64 + i;
          try {
            auto f = service.submit_write(
                addr, tagged_block(addr, i, service.block_bytes()));
            f.get();
            completed.fetch_add(1);
          } catch (const ServiceStoppedError&) {
            stopped.fetch_add(1);
          } catch (const std::future_error&) {
            broken.fetch_add(1);
          }
        }
      });
    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    service.stop();
    for (auto& t : clients) t.join();
    EXPECT_EQ(broken.load(), 0u) << "round " << round;
    EXPECT_EQ(completed.load() + stopped.load(), 4u * 64u) << "round " << round;
  }
}

TEST(MemoryService, LatencyHistogramsPopulate) {
  MemoryService service(small_config());
  for (std::uint64_t addr = 0; addr < 8; ++addr)
    service.write(addr, tagged_block(addr, 0, service.block_bytes()));
  for (std::uint64_t addr = 0; addr < 8; ++addr) (void)service.read(addr);
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.totals.write_latency.count, 8u);
  EXPECT_EQ(stats.totals.read_latency.count, 8u);
  EXPECT_GT(stats.totals.read_latency.p99().count(), 0);
  EXPECT_LE(stats.totals.read_latency.p50().count(),
            stats.totals.read_latency.p99().count());
}

}  // namespace
}  // namespace spe::runtime
