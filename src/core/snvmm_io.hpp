#pragma once
// NVMM image persistence. The array is non-volatile: its analog state
// survives power-down *and process restart*. These helpers serialise a
// device image (parameters + every stored cell level + encryption flags +
// the crash-consistency intent journal) so an SNVMM can be saved to disk
// and reloaded later — the instant-on property end-to-end, and a
// convenient fixture format for experiments.
//
// Format v2 (little-endian, magic "SPENVMM2"):
//   magic | device_seed | units_per_block | crossbar rows | crossbar cols |
//   fingerprint | block count |
//   per block:   record { address, encrypted flag, wear bits, level count,
//                cell levels } followed by a CRC32 of the record bytes |
//   journal:     entry count, then per entry record { block address, op,
//                epoch, progress, total, pre-image length, pre-image } and
//                its CRC32.
// Format v1 ("SPENVMM1", no CRCs, no journal) is still loadable; saving
// always writes v2, so a v1 image re-saved gains per-block CRCs.
//
// The manufactured parameters are re-derived from the device seed, and the
// stored fingerprint is cross-checked on load (a corrupted or mismatched
// image is rejected rather than silently decrypting garbage). Truncated or
// short-read images are rejected with a message naming the field that was
// being read.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/snvmm.hpp"

namespace spe::core {

/// Writes the device image (always format v2). Throws std::runtime_error
/// on I/O failure.
void save_image(const Snvmm& nvmm, std::ostream& out);
void save_image_file(const Snvmm& nvmm, const std::string& path);

/// Reads a device image back (v1 or v2). Throws std::runtime_error on I/O
/// failure, truncation, format corruption, fingerprint mismatch, or — for
/// v2 — any per-block / journal CRC mismatch.
[[nodiscard]] Snvmm load_image(std::istream& in);
[[nodiscard]] Snvmm load_image_file(const std::string& path);

/// Tolerant load for recovery paths: structural damage (bad magic,
/// truncation, fingerprint mismatch) still throws, but per-record CRC
/// failures are collected instead. A CRC-failed block is loaded with the
/// bytes as read (the caller is expected to quarantine it); a CRC-failed
/// journal entry is dropped and its block address reported.
struct ImageLoadResult {
  Snvmm nvmm;
  std::vector<std::uint64_t> corrupt_blocks;  ///< addresses failing their CRC
};
[[nodiscard]] ImageLoadResult load_image_checked(std::istream& in);
[[nodiscard]] ImageLoadResult load_image_checked_file(const std::string& path);

}  // namespace spe::core
