// Loopback integration tests for the epoll server + blocking client
// (src/net): request round-trips, admission control, protocol-error
// handling, abrupt client death, graceful stop under load, and idle
// sweeping. Everything binds 127.0.0.1 on an ephemeral port; the suite is
// part of the "net" ctest label, which CI also runs under TSan.

#include "net/client.hpp"
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

namespace spe::net {
namespace {

using namespace std::chrono_literals;

runtime::ServiceConfig small_service_config() {
  runtime::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.worker_threads = 2;
  cfg.queue_capacity = 64;
  cfg.scavenger_enabled = false;  // keep tests deterministic and quick
  return cfg;
}

struct Loopback {
  explicit Loopback(ServerConfig server_cfg = {},
                    runtime::ServiceConfig service_cfg = small_service_config())
      : service(service_cfg), server(service, server_cfg) {
    port = server.start();
  }

  Client make_client() {
    Client client({.port = port});
    client.connect();
    return client;
  }

  std::vector<std::uint8_t> block_pattern(std::uint8_t tag) const {
    std::vector<std::uint8_t> data(service.block_bytes());
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::uint8_t>(tag * 31 + i);
    return data;
  }

  runtime::MemoryService service;
  Server server;
  std::uint16_t port = 0;
};

TEST(NetServer, ReadWriteRoundTrip) {
  Loopback net;
  Client client = net.make_client();
  for (std::uint8_t tag = 0; tag < 4; ++tag) {
    const auto data = net.block_pattern(tag);
    client.write_block(tag, data);
    EXPECT_EQ(client.read_block(tag), data) << "block " << int(tag);
  }
  const ServerCountersSnapshot c = net.server.counters();
  EXPECT_EQ(c.connections_accepted, 1u);
  EXPECT_EQ(c.frames_rx, 8u);
  EXPECT_EQ(c.requests_completed, 8u);
  EXPECT_EQ(c.protocol_errors, 0u);
}

TEST(NetServer, PingEchoesPayload) {
  Loopback net;
  Client client = net.make_client();
  const std::vector<std::uint8_t> echo = {1, 2, 3, 5, 8, 13};
  const std::uint64_t id = client.send_ping(echo);
  const Frame reply = client.recv_response();
  EXPECT_EQ(reply.request_id, id);
  EXPECT_EQ(reply.status, Status::Ok);
  EXPECT_EQ(reply.payload, echo);
}

TEST(NetServer, MetricsOpcodeReturnsCombinedExport) {
  Loopback net;
  Client client = net.make_client();
  client.write_block(1, net.block_pattern(1));
  (void)client.read_block(1);
  const std::string text = client.metrics();
  // Service-side and net-side metrics ride in one export.
  EXPECT_NE(text.find("spe_reads_total"), std::string::npos);
  EXPECT_NE(text.find("spe_net_frames_rx_total"), std::string::npos);
  EXPECT_NE(text.find("spe_net_protocol_errors_total 0"), std::string::npos);
}

TEST(NetServer, ScrubReportsBlocksTouched) {
  Loopback net;
  Client client = net.make_client();
  for (std::uint8_t tag = 0; tag < 3; ++tag)
    client.write_block(tag, net.block_pattern(tag));
  EXPECT_GE(client.scrub(), 3u);
}

TEST(NetServer, WrongSizeWriteRejectedAsBadRequest) {
  Loopback net;
  Client client = net.make_client();
  const std::vector<std::uint8_t> runt(10, 0xEE);
  try {
    client.write_block(0, runt);
    FAIL() << "runt write was accepted";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), Status::BadRequest);
  }
  // The connection survives a BadRequest (unlike a protocol error).
  client.write_block(0, net.block_pattern(0));
}

TEST(NetServer, InflightCapRejectsWithOverloaded) {
  ServerConfig cfg;
  cfg.max_inflight_per_conn = 0;  // documented test hook: reject everything
  Loopback net(cfg);
  Client client = net.make_client();
  try {
    (void)client.read_block(0);
    FAIL() << "request was accepted with a zero in-flight cap";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), Status::Overloaded);
  }
  EXPECT_GE(net.server.counters().overload_rejected, 1u);
}

TEST(NetServer, GarbageBytesGetErrorFrameThenClose) {
  Loopback net;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net.port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);

  // Expect one decodable error frame (BadRequest + reason) and then EOF.
  FrameDecoder decoder;
  Frame reply;
  bool got_reply = false;
  for (;;) {
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (decoder.next(reply) == DecodeStatus::Ok) got_reply = true;
  }
  ::close(fd);
  ASSERT_TRUE(got_reply);
  EXPECT_EQ(reply.status, Status::BadRequest);
  EXPECT_GE(net.server.counters().protocol_errors, 1u);
}

TEST(NetServer, OversizedFrameIsRejectedAndConnectionCloses) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 256;
  Loopback net(cfg);
  Client client = net.make_client();
  Frame big = make_ping(1);
  big.payload.assign(4096, 0xAA);
  // send_frame is private; PING with a fat echo goes through send_ping.
  (void)client.send_ping(big.payload);
  const Frame reply = client.recv_response();
  EXPECT_EQ(reply.status, Status::BadRequest);
  // The server closed the poisoned connection; the next RPC fails.
  EXPECT_THROW((void)client.read_block(0), NetError);
}

TEST(NetServer, SurvivesAbruptClientDeathMidLoad) {
  Loopback net;
  {
    Client doomed = net.make_client();
    const auto data = net.block_pattern(9);
    // Pipeline a burst, then vanish without reading a single response.
    for (int i = 0; i < 16; ++i) (void)doomed.send_write(100 + i, data);
    doomed.close();
  }
  // The server must absorb the orphaned completions and keep serving.
  Client client = net.make_client();
  const auto data = net.block_pattern(3);
  client.write_block(3, data);
  EXPECT_EQ(client.read_block(3), data);
  EXPECT_TRUE(net.server.running());
}

TEST(NetServer, GracefulStopDrainsInflightLoad) {
  Loopback net;
  Client client = net.make_client();
  const auto data = net.block_pattern(5);
  for (int i = 0; i < 12; ++i) (void)client.send_write(200 + i, data);
  net.server.stop();  // must answer or drop the burst, never hang
  EXPECT_FALSE(net.server.running());

  // Whatever responses were flushed before the close are well-formed.
  unsigned ok = 0;
  try {
    for (int i = 0; i < 12; ++i) {
      const Frame f = client.recv_response();
      if (f.status == Status::Ok || f.status == Status::Stopped) ++ok;
    }
  } catch (const NetError&) {
    // EOF once the server closed the socket — expected.
  }
  EXPECT_LE(ok, 12u);
  // The service itself is untouched by a server stop.
  net.service.write(1, data);
  EXPECT_EQ(net.service.read(1), data);
}

TEST(NetServer, StopIsIdempotentAndConcurrent) {
  Loopback net;
  std::thread a([&] { net.server.stop(); });
  std::thread b([&] { net.server.stop(); });
  a.join();
  b.join();
  net.server.stop();  // and again, after it is already fully stopped
  EXPECT_FALSE(net.server.running());
}

TEST(NetServer, IdleConnectionsAreSwept) {
  ServerConfig cfg;
  cfg.idle_timeout = 200ms;
  Loopback net(cfg);
  Client client = net.make_client();
  client.ping();  // prove liveness first
  std::this_thread::sleep_for(800ms);
  EXPECT_THROW(client.ping(), NetError);
  EXPECT_GE(net.server.counters().idle_closed, 1u);
}

TEST(NetServer, RejectsConnectionsOverTheCap) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  Loopback net(cfg);
  Client first = net.make_client();
  first.ping();
  Client second({.port = net.port, .connect_retries = 0, .io_deadline = 2000ms});
  // The TCP connect may succeed before the server closes the excess socket,
  // so the rejection surfaces at connect or on the first RPC.
  try {
    second.connect();
    second.ping();
    FAIL() << "second connection served beyond max_connections=1";
  } catch (const NetError&) {
  }
  EXPECT_GE(net.server.counters().connections_rejected, 1u);
  first.ping();  // the admitted connection is unaffected
}

}  // namespace
}  // namespace spe::net
