#include "core/specu.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace spe::core {

namespace {
constexpr std::uint64_t kEpochInit = 0x243F6A8885A308D3ull;
}  // namespace

Specu::Specu(Snvmm& memory, SpeMode mode, std::vector<unsigned> poes)
    : memory_(memory), mode_(mode), poes_(std::move(poes)) {
  calibration_ = get_calibration(memory_.device_params());
  // A restored image may carry plaintext resident blocks (SPE-serial resting
  // state at the checkpoint); rebuild the pending set so power_down and the
  // background engine keep securing them.
  for (const auto& [addr, block] : std::as_const(memory_).blocks())
    if (!block.encrypted) plaintext_.insert(addr);
}

bool Specu::power_on(const Tpm& tpm, std::uint64_t platform_measurement) {
  return power_on(tpm, platform_measurement, memory_.device_id());
}

bool Specu::power_on(const Tpm& tpm, std::uint64_t platform_measurement,
                     std::uint64_t key_handle) {
  const auto key = tpm.authenticate_and_release(key_handle, platform_measurement);
  if (!key) return false;
  ciphers_.clear();
  for (unsigned unit = 0; unit < memory_.config().units_per_block; ++unit)
    ciphers_.push_back(std::make_unique<SpeCipher>(*key, calibration_, poes_, unit));
  // Key-schedule epoch: fold every unit's pulse sequence into one digest so
  // journal intents recorded now are bound to exactly these pulses.
  std::uint64_t e = kEpochInit;
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit)
    for (const PulseStep& step : ciphers_[unit]->schedule())
      e = util::mix64(e ^ (std::uint64_t{unit} << 48) ^
                      (std::uint64_t{step.poe_cell} << 16) ^ step.pulse_code);
  epoch_ = e;
  return true;
}

unsigned Specu::power_down() {
  if (!powered()) return 0;
  unsigned secured = 0;
  for (std::uint64_t addr : plaintext_) {
    Snvmm::Block& block = memory_.block(addr);
    begin_intent(addr, JournalOp::Encrypt, 0, pulses_per_block());
    encrypt_block_in_place(addr, block);
    ++secured;
  }
  plaintext_.clear();
  ciphers_.clear();  // volatile key storage wiped
  return secured;
}

unsigned Specu::power_loss() {
  const auto abandoned = static_cast<unsigned>(plaintext_.size());
  ciphers_.clear();
  // plaintext_ intentionally kept: those blocks really are plaintext in the
  // array now, with no powered controller to know it.
  return abandoned;
}

unsigned Specu::schedule_length() const {
  return ciphers_.empty() ? 0 : static_cast<unsigned>(ciphers_[0]->schedule().size());
}

std::uint32_t Specu::pulses_per_block() const noexcept {
  return ciphers_.empty()
             ? 0
             : static_cast<std::uint32_t>(ciphers_.size() * ciphers_[0]->schedule().size());
}

void Specu::begin_intent(std::uint64_t addr, JournalOp op, std::uint32_t progress,
                         std::uint32_t total, std::vector<std::uint8_t> pre_image) {
  JournalEntry entry;
  entry.block_addr = addr;
  entry.op = op;
  entry.epoch = epoch_;
  entry.progress = progress;
  entry.total = total;
  entry.pre_image = std::move(pre_image);
  memory_.journal().begin(std::move(entry));
}

void Specu::encrypt_block_in_place(std::uint64_t addr, Snvmm::Block& block,
                                   std::uint32_t progress) {
  const unsigned cells = calibration_->cell_count();
  const unsigned sched = schedule_length();
  obs::Span span("specu.encrypt", addr);
  span.set_a1(pulses_per_block() - progress);  // pulses this span applies
  stats_.encrypt_pulses += pulses_per_block() - progress;
  IntentJournal& journal = memory_.journal();
  for (unsigned unit = progress / sched; unit < ciphers_.size(); ++unit) {
    const unsigned first = unit == progress / sched ? progress % sched : 0;
    UnitLevels levels(block.levels.begin() + unit * cells,
                      block.levels.begin() + (unit + 1) * cells);
    for (unsigned s = first; s < sched; ++s) {
      // One PoE pulse, then the journal index — the array state between any
      // two advances is exactly what a power loss there would leave behind.
      cipher(unit).encrypt_step(levels, s);
      std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
      journal.advance(addr);
    }
    ++stats_.encrypt_ops;
    // Section 5.2: each PoE pulse ages the cells by ~2% of a full write.
    block.wear += kPulseWear * static_cast<double>(sched - first);
  }
  block.encrypted = true;
  journal.commit(addr);
}

void Specu::decrypt_block_in_place(std::uint64_t addr, Snvmm::Block& block) {
  const unsigned cells = calibration_->cell_count();
  const unsigned sched = schedule_length();
  obs::Span span("specu.decrypt", addr);
  span.set_a1(pulses_per_block());
  stats_.decrypt_pulses += pulses_per_block();
  IntentJournal& journal = memory_.journal();
  // The pre-image (the encrypted resting state) rides in the intent: an
  // interrupted decrypt is rolled back, never resumed, because the paper's
  // reverse replay has no mid-sequence resting states an ECC check could
  // distinguish from garbage.
  begin_intent(addr, JournalOp::Decrypt, 0, pulses_per_block(), block.levels);
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    UnitLevels levels(block.levels.begin() + unit * cells,
                      block.levels.begin() + (unit + 1) * cells);
    for (unsigned s = sched; s-- > 0;) {
      cipher(unit).decrypt_step(levels, s);
      std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
      journal.advance(addr);
    }
    ++stats_.decrypt_ops;
    block.wear += kPulseWear * static_cast<double>(sched);
  }
  block.encrypted = false;
  journal.commit(addr);
}

void Specu::write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data) {
  if (!powered()) throw std::logic_error("Specu::write_block: not powered / no key");
  if (data.size() != memory_.block_bytes())
    throw std::invalid_argument("Specu::write_block: bad block size");

  obs::Span span("specu.write", block_addr);
  Snvmm::Block& block = memory_.block(block_addr);
  const auto units = static_cast<std::uint32_t>(ciphers_.size());
  // Intent first: once the first band centre lands the old contents are
  // gone, so an interrupted write phase is torn by construction.
  begin_intent(block_addr, JournalOp::Program, 0, units);
  block.wear += 1.0;  // full write: one RESET/SET-class cycle per cell
  const unsigned cells = calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  // Write phase: program plaintext band centres.
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    const UnitLevels levels =
        cipher(unit).levels_from_bytes(data.subspan(unit * unit_bytes, unit_bytes));
    std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
    memory_.journal().advance(block_addr);
  }
  block.encrypted = false;
  plaintext_.erase(block_addr);
  // Encryption phase (all transistors ON, PoE pulses applied). Re-begins the
  // intent as a resumable Encrypt: the plaintext is fully programmed now.
  begin_intent(block_addr, JournalOp::Encrypt, 0, pulses_per_block());
  encrypt_block_in_place(block_addr, block);
  ++stats_.writes;
}

std::vector<std::uint8_t> Specu::read_block(std::uint64_t block_addr) {
  if (!powered()) throw std::logic_error("Specu::read_block: not powered / no key");
  obs::Span span("specu.read", block_addr);
  Snvmm::Block& block = memory_.block(block_addr);
  if (block.encrypted) decrypt_block_in_place(block_addr, block);

  const unsigned cells = calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  std::vector<std::uint8_t> out(memory_.block_bytes(), 0);
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    const UnitLevels levels(block.levels.begin() + unit * cells,
                            block.levels.begin() + (unit + 1) * cells);
    cipher(unit).bytes_from_levels(levels,
                                   std::span(out).subspan(unit * unit_bytes, unit_bytes));
  }
  ++stats_.reads;

  if (mode_ == SpeMode::Parallel) {
    begin_intent(block_addr, JournalOp::Encrypt, 0, pulses_per_block());
    encrypt_block_in_place(block_addr, block);
  } else {
    plaintext_.insert(block_addr);
  }
  return out;
}

unsigned Specu::background_encrypt(unsigned max_blocks) {
  unsigned secured = 0;
  while (secured < max_blocks && background_encrypt_one()) ++secured;
  return secured;
}

unsigned Specu::retain_plaintext(const std::function<bool(std::uint64_t)>& owned) {
  unsigned dropped = 0;
  for (auto it = plaintext_.begin(); it != plaintext_.end();) {
    if (owned(*it)) {
      ++it;
    } else {
      it = plaintext_.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

void Specu::decrypt_for_handoff(std::uint64_t block_addr) {
  if (!powered())
    throw std::logic_error("Specu::decrypt_for_handoff: not powered / no key");
  Snvmm::Block& block = memory_.block(block_addr);
  if (block.encrypted) decrypt_block_in_place(block_addr, block);
  plaintext_.erase(block_addr);
}

std::optional<std::uint64_t> Specu::background_encrypt_one() {
  if (!powered() || plaintext_.empty()) return std::nullopt;
  const std::uint64_t addr = *plaintext_.begin();
  plaintext_.erase(plaintext_.begin());
  begin_intent(addr, JournalOp::Encrypt, 0, pulses_per_block());
  encrypt_block_in_place(addr, memory_.block(addr));
  return addr;
}

void Specu::resume_encrypt(std::uint64_t block_addr, std::uint32_t progress) {
  if (!powered()) throw std::logic_error("Specu::resume_encrypt: not powered / no key");
  if (progress > pulses_per_block())
    throw std::invalid_argument("Specu::resume_encrypt: progress past schedule end");
  Snvmm::Block& block = memory_.block(block_addr);
  begin_intent(block_addr, JournalOp::Encrypt, progress, pulses_per_block());
  encrypt_block_in_place(block_addr, block, progress);
  plaintext_.erase(block_addr);
}

void Specu::rollback_decrypt(std::uint64_t block_addr,
                             std::span<const std::uint8_t> pre_image) {
  if (!powered()) throw std::logic_error("Specu::rollback_decrypt: not powered / no key");
  Snvmm::Block& block = memory_.block(block_addr);
  if (pre_image.size() != block.levels.size())
    throw std::invalid_argument("Specu::rollback_decrypt: pre-image size mismatch");
  block.levels.assign(pre_image.begin(), pre_image.end());
  block.encrypted = true;
  plaintext_.erase(block_addr);
  memory_.journal().commit(block_addr);
}

double Specu::encrypted_fraction() const {
  if (memory_.block_count() == 0) return 1.0;
  std::size_t encrypted = 0;
  for (const auto& [addr, block] : memory_.blocks()) encrypted += block.encrypted ? 1 : 0;
  return static_cast<double>(encrypted) / static_cast<double>(memory_.block_count());
}

}  // namespace spe::core
