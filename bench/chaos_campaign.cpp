// End-to-end failure-resilience campaign (DESIGN.md §13): a deterministic
// kill/drop/delay storm over an in-process multi-node cluster, driven by a
// single resilient ClusterClient. Every frame the client sends or receives
// passes through a seeded net::ChaosPolicy (drops, delays, corruption,
// truncation, duplication, connection resets), and at scheduled op indices
// a whole node is stopped, checkpointed, and rebooted — so the storm covers
// both lossy links and crashing peers.
//
// Acceptance invariants (exit status is the check):
//   * zero silent corruption — every successful read returns the last
//     acknowledged payload (or, for a write whose outcome the client
//     reported as ambiguous, one of {old, new}; the read reconciles it);
//   * zero untyped errors — every failed op throws a typed error from the
//     net/cluster taxonomy, never a raw runtime_error or a hang;
//   * every op resolves within its deadline budget (plus bounded slack for
//     the failover machinery), success or failure;
//   * zero stuck futures — after the final drain every server's in-flight
//     count is zero;
//   * a final chaos-free verification pass reads every block back
//     bit-exactly.
//
// Determinism: the driver is single-threaded and synchronous (one op in
// flight), the chaos schedule is a pure function of (seed, stream, event),
// and pooled-client streams key off endpoint hashes + reconnect epochs —
// so a fixed SPE_CHAOS_SEED replays the identical injection schedule and
// the stdout report is byte-identical across runs. Timing diagnostics go
// to stderr, never stdout.
//
// Overrides: SPE_CHAOS_SEED (schedule), SPE_CHAOS_OPS (storm length),
//            SPE_CHAOS_BLOCKS (working set), SPE_CHAOS_KILLS (node
//            restarts), SPE_CHAOS_DEADLINE_MS (per-op budget).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/topology.hpp"
#include "net/chaos.hpp"
#include "net/resilience.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"

namespace {

using spe::cluster::ClusterClient;
using spe::cluster::ClusterClientConfig;
using spe::cluster::ClusterTopology;
using spe::cluster::NodeInfo;

spe::runtime::ServiceConfig small_service_config() {
  spe::runtime::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.worker_threads = 2;
  cfg.queue_capacity = 64;
  cfg.scavenger_enabled = false;
  return cfg;
}

/// Reserves an ephemeral loopback port: bind, read it back, close.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::vector<std::uint8_t> payload_for(std::uint64_t addr, unsigned block_bytes,
                                      unsigned generation) {
  std::vector<std::uint8_t> data(block_bytes);
  for (unsigned i = 0; i < block_bytes; ++i)
    data[i] = static_cast<std::uint8_t>(addr * 13 + i * 7 + generation * 101);
  return data;
}

/// One cluster node, restartable in place. A kill stops the server (which
/// drains in-flight work with typed errors), checkpoints the quiescent
/// service, tears everything down, and boots from the checkpoint — the
/// client sees connection resets and rejoins via failover.
struct Node {
  Node(std::string name_, std::uint16_t port_, ClusterTopology topo)
      : name(std::move(name_)), port(port_), topology(std::move(topo)) {
    config.node_name = name;
    const char* tmp = std::getenv("TMPDIR");
    checkpoint = std::string(tmp && *tmp ? tmp : "/tmp") + "/spe_chaos_" + name +
                 "_" + std::to_string(::getpid()) + ".ckpt";
    std::remove(checkpoint.c_str());
    boot();
  }

  ~Node() {
    shutdown();
    std::remove(checkpoint.c_str());
  }

  void boot() {
    if (have_checkpoint)
      service = std::make_unique<spe::runtime::MemoryService>(small_service_config(),
                                                              checkpoint);
    else
      service = std::make_unique<spe::runtime::MemoryService>(small_service_config());
    coordinator.emplace(*service, topology, config);
    (void)coordinator->recover();
    spe::net::ServerConfig server_cfg;
    server_cfg.port = port;
    // Short enough that a drain resolves queued ops well inside the
    // client's op deadline, long enough to flush in-flight completions.
    server_cfg.drain_timeout = std::chrono::milliseconds{250};
    server = std::make_unique<spe::net::Server>(*service, server_cfg);
    server->set_cluster_handler(&*coordinator);
    if (server->start() != port)
      throw std::runtime_error("chaos_campaign: node " + name + " failed to bind");
  }

  /// Graceful-drain stop; returns the server's post-drain in-flight count
  /// (the "no stuck futures" probe).
  std::uint64_t shutdown() {
    std::uint64_t stuck = 0;
    if (server) {
      server->stop();
      stuck = server->pending_requests();
    }
    server.reset();
    coordinator.reset();
    if (service) {
      service->checkpoint_file(checkpoint);
      have_checkpoint = true;
      service->stop();
    }
    service.reset();
    return stuck;
  }

  std::uint64_t kill_and_restart() {
    const std::uint64_t stuck = shutdown();
    boot();
    return stuck;
  }

  NodeInfo info() const { return NodeInfo{name, "127.0.0.1", port, 1}; }

  std::string name;
  std::uint16_t port;
  ClusterTopology topology;
  std::string checkpoint;
  bool have_checkpoint = false;
  spe::cluster::CoordinatorConfig config;
  std::unique_ptr<spe::runtime::MemoryService> service;
  std::optional<spe::cluster::ClusterCoordinator> coordinator;
  std::unique_ptr<spe::net::Server> server;
};

struct CampaignResult {
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t ambiguous = 0;
  std::uint64_t kills = 0;
  std::uint64_t silent = 0;            ///< wrong data without an error (must be 0)
  std::uint64_t untyped = 0;           ///< non-taxonomy exceptions (must be 0)
  std::uint64_t deadline_violations = 0;  ///< ops that outran budget + slack
  std::uint64_t stuck_futures = 0;     ///< unresolved server futures (must be 0)
  std::uint64_t verify_mismatches = 0;
};

}  // namespace

int main() {
  const std::uint64_t seed = spe::benchutil::env_or_u64("SPE_CHAOS_SEED", 0xC4A05u);
  const unsigned ops = std::max(1u, spe::benchutil::env_or("SPE_CHAOS_OPS", 300));
  const unsigned blocks = std::max(4u, spe::benchutil::env_or("SPE_CHAOS_BLOCKS", 24));
  const unsigned kills = spe::benchutil::env_or("SPE_CHAOS_KILLS", 2);
  const std::uint64_t deadline_ms =
      std::max<std::uint64_t>(100, spe::benchutil::env_or("SPE_CHAOS_DEADLINE_MS", 2'000));

  spe::benchutil::banner(
      "Network chaos campaign (seed " + std::to_string(seed) + ", " +
          std::to_string(ops) + " ops, " + std::to_string(kills) + " kills)",
      "failure-resilience acceptance sweep (not a paper figure)");

  const std::uint16_t pa = reserve_port(), pb = reserve_port(), pc = reserve_port();
  if (pa == 0 || pb == 0 || pc == 0) {
    std::fprintf(stderr, "chaos_campaign: could not reserve loopback ports\n");
    return 2;
  }
  ClusterTopology topo{1,
                       {{"a", "127.0.0.1", pa, 1},
                        {"b", "127.0.0.1", pb, 1},
                        {"c", "127.0.0.1", pc, 1}}};
  Node a("a", pa, topo), b("b", pb, topo), c("c", pc, topo);
  const std::array<Node*, 3> nodes = {&a, &b, &c};

  // All injection is client-side: tx chaos mangles requests before the
  // servers see them, rx chaos mangles/drops the responses — both
  // directions of every link get the full taxonomy while the servers stay
  // deterministic. Node crashes supply the server-side failure modes.
  spe::net::ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed;
  chaos_cfg.rates = {.drop = 0.03,
                     .delay = 0.05,
                     .corrupt = 0.02,
                     .truncate = 0.01,
                     .duplicate = 0.02,
                     .reset = 0.015};
  chaos_cfg.delay_max = std::chrono::milliseconds{10};
  auto chaos = std::make_shared<spe::net::ChaosPolicy>(chaos_cfg);

  ClusterClientConfig ccfg;
  ccfg.seeds = {a.info(), b.info(), c.info()};
  ccfg.op_retries = 64;  // the deadline, not the hop count, bounds the op
  ccfg.op_deadline = std::chrono::milliseconds{static_cast<long>(deadline_ms)};
  ccfg.net.chaos = chaos;
  ccfg.net.io_deadline = std::chrono::milliseconds{150};
  ccfg.net.connect_retries = 3;
  ccfg.net.connect_retry_backoff = std::chrono::milliseconds{10};
  ccfg.net.connect_backoff_max = std::chrono::milliseconds{80};
  ccfg.retry.backoff_base = std::chrono::milliseconds{1};
  ccfg.retry.backoff_max = std::chrono::milliseconds{20};
  ccfg.breaker.open_timeout = std::chrono::milliseconds{100};
  ClusterClient client(ccfg);
  client.connect();

  const unsigned block_bytes = a.service->block_bytes();

  // Seed every block at generation 0 through a clean client, so the storm
  // starts from a known state; the shadow map then tracks what the cluster
  // acknowledged (or may hold, for ambiguous writes).
  {
    ClusterClientConfig scfg;
    scfg.seeds = {a.info(), b.info(), c.info()};
    ClusterClient seeder(scfg);
    seeder.connect();
    for (std::uint64_t addr = 0; addr < blocks; ++addr)
      seeder.write_block(addr, payload_for(addr, block_bytes, 0));
  }
  std::vector<unsigned> acked(blocks, 0);
  std::vector<std::optional<unsigned>> maybe(blocks);  // ambiguous new generation
  CampaignResult result;

  // Kill schedule: evenly spaced op indices, node picked by the seed.
  std::map<unsigned, unsigned> kill_at;
  for (unsigned k = 0; k < kills; ++k) {
    const unsigned at = (ops * (k + 1)) / (kills + 1);
    kill_at[at] = static_cast<unsigned>(spe::util::mix64(seed ^ 0x5EEDC1DEull ^ k) % 3);
  }

  std::uint64_t rng = spe::util::mix64(seed ^ 0x0B5C4EDull);
  std::vector<unsigned> next_gen(blocks, 1);

  const auto slack = std::chrono::milliseconds{static_cast<long>(deadline_ms) * 4 + 2'000};
  for (unsigned i = 0; i < ops; ++i) {
    if (const auto kill = kill_at.find(i); kill != kill_at.end()) {
      ++result.kills;
      result.stuck_futures += nodes[kill->second]->kill_and_restart();
    }
    const std::uint64_t h = spe::util::splitmix64(rng);
    const bool is_write = (h & 1) != 0;
    const std::uint64_t addr = (h >> 1) % blocks;
    ++result.ops;
    const auto start = std::chrono::steady_clock::now();
    try {
      if (is_write) {
        const unsigned gen = next_gen[addr]++;
        client.write_block(addr, payload_for(addr, block_bytes, gen));
        acked[addr] = gen;
        maybe[addr].reset();
        ++result.ok;
      } else {
        const std::vector<std::uint8_t> got = client.read_block(addr);
        bool match = got == payload_for(addr, block_bytes, acked[addr]);
        if (!match && maybe[addr] &&
            got == payload_for(addr, block_bytes, *maybe[addr])) {
          // The ambiguous write did land; the read reconciles the shadow.
          acked[addr] = *maybe[addr];
          maybe[addr].reset();
          match = true;
        }
        if (!match) {
          ++result.silent;
          int found = -1;
          for (unsigned g = 0; g < next_gen[addr]; ++g)
            if (got == payload_for(addr, block_bytes, g)) found = static_cast<int>(g);
          std::fprintf(stderr,
                       "chaos_campaign: SILENT op %u addr %llu acked gen %u maybe %d "
                       "read-back matches gen %d\n",
                       i, static_cast<unsigned long long>(addr), acked[addr],
                       maybe[addr] ? static_cast<int>(*maybe[addr]) : -1, found);
        } else {
          ++result.ok;
        }
      }
    } catch (const spe::net::AmbiguousResultError&) {
      // Only writes are ambiguous: the block may hold either generation
      // until a later read reconciles it.
      ++result.typed_errors;
      ++result.ambiguous;
      if (is_write) maybe[addr] = next_gen[addr] - 1;
    } catch (const spe::net::RemoteError& e) {
      ++result.typed_errors;
      // Timeout abandons the response, not the op — the shard may still
      // execute the write; a drain-time Stopped is equally inconclusive.
      // Same ambiguity as a mid-flight send.
      if (is_write && (e.status() == spe::net::Status::Timeout ||
                       e.status() == spe::net::Status::Stopped))
        maybe[addr] = next_gen[addr] - 1;
    } catch (const spe::net::DeadlineExceededError&) {
      ++result.typed_errors;
    } catch (const spe::net::CircuitOpenError&) {
      ++result.typed_errors;
    } catch (const spe::net::NetError&) {
      ++result.typed_errors;  // Connect/Timeout/Protocol/ClusterRouting
    } catch (const std::exception& e) {
      ++result.untyped;
      std::fprintf(stderr, "chaos_campaign: UNTYPED error on op %u: %s\n", i, e.what());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed > slack) {
      ++result.deadline_violations;
      std::fprintf(stderr, "chaos_campaign: op %u took %lld ms (budget %llu ms)\n", i,
                   static_cast<long long>(
                       std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                           .count()),
                   static_cast<unsigned long long>(deadline_ms));
    }
  }

  // Final verification: a fresh chaos-free client reads every block back.
  // Ambiguous blocks reconcile to whichever generation actually landed.
  ClusterClientConfig vcfg;
  vcfg.seeds = {a.info(), b.info(), c.info()};
  vcfg.op_deadline = std::chrono::milliseconds{10'000};
  ClusterClient verifier(vcfg);
  verifier.connect();
  for (std::uint64_t addr = 0; addr < blocks; ++addr) {
    try {
      const std::vector<std::uint8_t> got = verifier.read_block(addr);
      const bool ok = got == payload_for(addr, block_bytes, acked[addr]) ||
                      (maybe[addr] && got == payload_for(addr, block_bytes, *maybe[addr]));
      if (!ok) ++result.verify_mismatches;
    } catch (const std::exception& e) {
      ++result.verify_mismatches;
      std::fprintf(stderr, "chaos_campaign: verify read %llu failed: %s\n",
                   static_cast<unsigned long long>(addr), e.what());
    }
  }

  // Drain every node and probe for stuck futures.
  for (Node* node : nodes) result.stuck_futures += node->shutdown();

  // Deterministic report (stdout): schedule-derived fields only. Retry /
  // breaker / chaos diagnostics are timing-coloured, so they go to stderr.
  std::printf("seed:                %llu\n", static_cast<unsigned long long>(seed));
  std::printf("ops:                 %llu\n", static_cast<unsigned long long>(result.ops));
  std::printf("node kills:          %llu\n", static_cast<unsigned long long>(result.kills));
  std::printf("silent corruptions:  %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(result.silent));
  std::printf("untyped errors:      %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(result.untyped));
  std::printf("deadline violations: %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(result.deadline_violations));
  std::printf("stuck futures:       %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(result.stuck_futures));
  std::printf("verify mismatches:   %llu (acceptance: 0)\n",
              static_cast<unsigned long long>(result.verify_mismatches));

  const auto stats = client.stats();
  std::fprintf(stderr,
               "\ndiagnostics (timing-coloured, excluded from the determinism gate):\n"
               "  ok %llu  typed_errors %llu  ambiguous %llu\n"
               "  retries %llu  busy_backoffs %llu  failovers %llu  moved %llu\n"
               "  breaker trips %llu  skips %llu  deadline_exceeded %llu\n"
               "  chaos: %s\n",
               static_cast<unsigned long long>(result.ok),
               static_cast<unsigned long long>(result.typed_errors),
               static_cast<unsigned long long>(result.ambiguous),
               static_cast<unsigned long long>(stats.retries),
               static_cast<unsigned long long>(stats.busy_backoffs),
               static_cast<unsigned long long>(stats.failovers),
               static_cast<unsigned long long>(stats.moved_redirects),
               static_cast<unsigned long long>(stats.breaker_trips),
               static_cast<unsigned long long>(stats.breaker_skips),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               chaos->stats().to_string().c_str());

  const bool failed = result.silent > 0 || result.untyped > 0 ||
                      result.deadline_violations > 0 || result.stuck_futures > 0 ||
                      result.verify_mismatches > 0;
  if (failed) {
    std::fprintf(stderr, "chaos_campaign: FAIL — a resilience invariant broke\n");
    return 1;
  }
  return 0;
}
