file(REMOVE_RECURSE
  "CMakeFiles/test_device.dir/device/cell_test.cpp.o"
  "CMakeFiles/test_device.dir/device/cell_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/mlc_test.cpp.o"
  "CMakeFiles/test_device.dir/device/mlc_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/pulse_test.cpp.o"
  "CMakeFiles/test_device.dir/device/pulse_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/team_model_test.cpp.o"
  "CMakeFiles/test_device.dir/device/team_model_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/team_property_test.cpp.o"
  "CMakeFiles/test_device.dir/device/team_property_test.cpp.o.d"
  "test_device"
  "test_device.pdb"
  "test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
