#pragma once
// Shared helpers for the table/figure reproduction harnesses and the
// serving-layer binaries (spe_server, loadgen): env overrides, a banner,
// one tiny argv parser so every bench spells flags the same way — and the
// single JSON emitter for the perf-trajectory files (BENCH_throughput.json,
// BENCH_latency.json). Every harness that writes those files goes through
// write_throughput_json() / write_latency_json() so the schema (see
// scripts/bench_throughput.schema.json) cannot fork per binary: one schema
// tag, harness name in `source`, run shape in `config`, plus the git SHA
// the numbers were measured at.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace spe::benchutil {

/// Reads an unsigned environment override (e.g. SPE_NIST_SEQS) or returns
/// the default. All benches run with sensible fast defaults; the paper-scale
/// profile is selected by exporting the documented variables.
inline unsigned env_or(const char* name, unsigned fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

/// 64-bit variant for seed overrides (base 0: accepts decimal or 0x hex).
inline std::uint64_t env_or_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

/// Minimal argv parser shared by the bench binaries. Supports boolean
/// `--name` flags and `--name value` / `--name=value` options; unknown
/// tokens are collected so a bench can reject typos with a one-line error.
///
///   Args args(argc, argv);
///   const bool smoke = args.flag("smoke");
///   const unsigned ops = args.uns("ops", env_or("SPE_SVC_OPS", 2000));
///   if (!args.ok(stderr)) return 2;
class Args {
public:
  Args(int argc, char** argv) {
    tokens_.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
    used_.assign(tokens_.size(), false);
  }

  /// True when `--name` appears (as a bare flag).
  [[nodiscard]] bool flag(const std::string& name) {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == key) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  /// Value of `--name value` or `--name=value`, else `fallback`.
  [[nodiscard]] std::string str(const std::string& name, std::string fallback) {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind(key + "=", 0) == 0) {
        used_[i] = true;
        return tokens_[i].substr(key.size() + 1);
      }
      if (tokens_[i] == key && i + 1 < tokens_.size()) {
        used_[i] = used_[i + 1] = true;
        return tokens_[i + 1];
      }
    }
    return fallback;
  }

  [[nodiscard]] unsigned uns(const std::string& name, unsigned fallback) {
    const std::string v = str(name, "");
    if (v.empty()) return fallback;
    return static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
  }

  /// After all lookups: prints one line per unrecognised token to `err` and
  /// returns false if any exist. Call last so every valid flag is marked.
  [[nodiscard]] bool ok(std::FILE* err) const {
    bool clean = true;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!used_[i]) {
        std::fprintf(err, "unknown argument: %s\n", tokens_[i].c_str());
        clean = false;
      }
    }
    return clean;
  }

private:
  std::vector<std::string> tokens_;
  std::vector<bool> used_;
};

// --- perf-trajectory JSON emitter -------------------------------------------

inline constexpr const char* kThroughputSchema = "spe.bench.throughput.v2";
inline constexpr const char* kLatencySchema = "spe.bench.latency.v2";

/// The git SHA stamped into every bench report: SPE_GIT_SHA when set (CI can
/// pin it), else `git rev-parse --short HEAD`, else "unknown" (tarball
/// builds). Never throws.
inline std::string git_sha() {
  if (const char* env = std::getenv("SPE_GIT_SHA"); env && *env) return env;
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, pipe)) sha = buf;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  for (const char c : sha)
    if (!std::isxdigit(static_cast<unsigned char>(c))) return "unknown";
  return sha.empty() ? "unknown" : sha;
}

/// Bytes moved per cycle at the 1 GHz nominal clock the perf docs quote
/// (bytes/s / 1e9) — keeps the trajectory comparable across hosts whose
/// real clocks differ but whose relative regressions matter.
inline double bytes_per_cycle(double ops_per_sec, unsigned bytes_per_op) {
  return ops_per_sec * static_cast<double>(bytes_per_op) / 1e9;
}

struct ThroughputReport {
  std::string source;  ///< which harness produced it ("loadgen", ...)
  std::string config;  ///< run-shape fingerprint ("4w/8s window=256 ...")
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  double bytes_per_cycle = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// One row of the batch-size sweep (BENCH_latency.json). batch == 1 is the
/// scalar reference configuration.
struct LatencyRow {
  unsigned batch = 1;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct LatencyReport {
  std::string source;
  std::string config;
  std::vector<LatencyRow> rows;
};

/// Scans `text` for `"key": <number>`; false when absent/malformed.
inline bool json_number(const std::string& text, const std::string& key,
                        double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

/// Prints the delta against the previous file (if readable), then writes
/// the new report. Returns false when the file cannot be written.
inline bool write_throughput_json(const std::string& path,
                                  const ThroughputReport& report) {
  {
    std::ifstream in(path);
    std::stringstream buf;
    if (in) buf << in.rdbuf();
    double prev_ops_per_sec = 0.0, prev_p99 = 0.0;
    if (json_number(buf.str(), "ops_per_sec", prev_ops_per_sec) &&
        prev_ops_per_sec > 0.0) {
      const double pct =
          (report.ops_per_sec - prev_ops_per_sec) / prev_ops_per_sec * 100.0;
      std::printf("bench delta vs %s: %.1f -> %.1f kops/s (%+.1f%%)",
                  path.c_str(), prev_ops_per_sec / 1000.0,
                  report.ops_per_sec / 1000.0, pct);
      if (json_number(buf.str(), "p99_us", prev_p99) && prev_p99 > 0.0)
        std::printf(", p99 %.1f -> %.1f us", prev_p99, report.p99_us);
      std::printf("\n");
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_util: cannot write %s\n", path.c_str());
    return false;
  }
  char line[768];
  std::snprintf(line, sizeof line,
                "{\"schema\": \"%s\", \"source\": \"%s\", \"git_sha\": \"%s\", "
                "\"config\": \"%s\", \"ops\": %llu, \"ops_per_sec\": %.1f, "
                "\"bytes_per_cycle\": %.6f, "
                "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}\n",
                kThroughputSchema, report.source.c_str(), git_sha().c_str(),
                report.config.c_str(),
                static_cast<unsigned long long>(report.ops), report.ops_per_sec,
                report.bytes_per_cycle, report.p50_us, report.p95_us,
                report.p99_us);
  out << line;
  return static_cast<bool>(out);
}

/// Writes the batch-size sweep. Same overwrite discipline as the throughput
/// file; no delta line (the compare script reasons about rows).
inline bool write_latency_json(const std::string& path,
                               const LatencyReport& report) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_util: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\"schema\": \"" << kLatencySchema << "\", \"source\": \""
      << report.source << "\", \"git_sha\": \"" << git_sha()
      << "\", \"config\": \"" << report.config << "\", \"rows\": [";
  char row[256];
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const LatencyRow& r = report.rows[i];
    std::snprintf(row, sizeof row,
                  "%s\n  {\"batch\": %u, \"ops_per_sec\": %.1f, \"p50_us\": %.1f, "
                  "\"p95_us\": %.1f, \"p99_us\": %.1f}",
                  i == 0 ? "" : ",", r.batch, r.ops_per_sec, r.p50_us, r.p95_us,
                  r.p99_us);
    out << row;
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace spe::benchutil
