file(REMOVE_RECURSE
  "CMakeFiles/spe_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/cpu_model.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/cpu_model.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/nvmm.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/nvmm.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/schemes.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/schemes.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/system.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/system.cpp.o.d"
  "CMakeFiles/spe_sim.dir/sim/workloads.cpp.o"
  "CMakeFiles/spe_sim.dir/sim/workloads.cpp.o.d"
  "libspe_sim.a"
  "libspe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
