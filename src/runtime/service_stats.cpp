#include "runtime/service_stats.hpp"

#include <limits>
#include <sstream>

namespace spe::runtime {

namespace {
/// a += b, clamping at the type's max (totals must stay monotonic, never wrap).
template <typename T>
void sat_add(T& a, T b) noexcept {
  a = b > std::numeric_limits<T>::max() - a ? std::numeric_limits<T>::max() : a + b;
}
}  // namespace

ShardStatsSnapshot snapshot_counters(unsigned shard, const ShardCounters& c) {
  ShardStatsSnapshot s;
  s.shard = shard;
  s.reads_completed = c.reads_completed.load(std::memory_order_relaxed);
  s.writes_completed = c.writes_completed.load(std::memory_order_relaxed);
  s.writes_coalesced = c.writes_coalesced.load(std::memory_order_relaxed);
  s.rejected = c.rejected.load(std::memory_order_relaxed);
  s.background_encrypted = c.background_encrypted.load(std::memory_order_relaxed);
  s.queue_high_water = c.queue_high_water.load(std::memory_order_relaxed);
  s.faults_detected = c.faults_detected.load(std::memory_order_relaxed);
  s.faults_corrected = c.faults_corrected.load(std::memory_order_relaxed);
  s.faults_uncorrectable = c.faults_uncorrectable.load(std::memory_order_relaxed);
  s.blocks_quarantined = c.blocks_quarantined.load(std::memory_order_relaxed);
  s.read_retries = c.read_retries.load(std::memory_order_relaxed);
  s.write_retries = c.write_retries.load(std::memory_order_relaxed);
  s.blocks_remapped = c.blocks_remapped.load(std::memory_order_relaxed);
  s.blocks_scrubbed = c.blocks_scrubbed.load(std::memory_order_relaxed);
  s.slow_ops = c.slow_ops.load(std::memory_order_relaxed);
  s.cipher_batched = c.cipher_batched.load(std::memory_order_relaxed);
  s.read_latency = c.read_latency.snapshot();
  s.write_latency = c.write_latency.snapshot();
  s.background_latency = c.background_latency.snapshot();
  return s;
}

ServiceStatsSnapshot aggregate(std::vector<ShardStatsSnapshot> shards) {
  ServiceStatsSnapshot out;
  for (const ShardStatsSnapshot& s : shards) {
    sat_add(out.totals.reads_completed, s.reads_completed);
    sat_add(out.totals.writes_completed, s.writes_completed);
    sat_add(out.totals.writes_coalesced, s.writes_coalesced);
    sat_add(out.totals.rejected, s.rejected);
    sat_add(out.totals.background_encrypted, s.background_encrypted);
    if (s.queue_high_water > out.totals.queue_high_water)
      out.totals.queue_high_water = s.queue_high_water;
    sat_add(out.totals.faults_detected, s.faults_detected);
    sat_add(out.totals.faults_corrected, s.faults_corrected);
    sat_add(out.totals.faults_uncorrectable, s.faults_uncorrectable);
    sat_add(out.totals.blocks_quarantined, s.blocks_quarantined);
    sat_add(out.totals.read_retries, s.read_retries);
    sat_add(out.totals.write_retries, s.write_retries);
    sat_add(out.totals.blocks_remapped, s.blocks_remapped);
    sat_add(out.totals.blocks_scrubbed, s.blocks_scrubbed);
    sat_add(out.totals.slow_ops, s.slow_ops);
    sat_add(out.totals.cipher_batched, s.cipher_batched);
    sat_add(out.totals.injected_faults, s.injected_faults);
    sat_add(out.totals.quarantined_now, s.quarantined_now);
    sat_add(out.totals.plaintext_blocks, s.plaintext_blocks);
    sat_add(out.totals.resident_blocks, s.resident_blocks);
    out.totals.read_latency += s.read_latency;
    out.totals.write_latency += s.write_latency;
    out.totals.background_latency += s.background_latency;
  }
  out.shards = std::move(shards);
  return out;
}

namespace {
void print_latency_row(std::ostringstream& os, const char* name,
                       const LatencyHistogram::Snapshot& h) {
  os << "  " << name << ": n=" << h.count;
  if (h.count > 0) {
    os << " mean=" << h.mean().count() / 1000.0 << "us"
       << " p50=" << h.p50().count() / 1000.0 << "us"
       << " p95=" << h.p95().count() / 1000.0 << "us"
       << " p99=" << h.p99().count() / 1000.0 << "us";
  }
  os << "\n";
}
}  // namespace

std::string ServiceStatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "service totals: reads=" << totals.reads_completed
     << " writes=" << totals.writes_completed
     << " coalesced=" << totals.writes_coalesced << " rejected=" << totals.rejected
     << " bg_encrypted=" << totals.background_encrypted
     << " queue_hwm=" << totals.queue_high_water
     << " plaintext=" << totals.plaintext_blocks << "/" << totals.resident_blocks
     << " blocks\n";
  os << "  resilience: detected=" << totals.faults_detected
     << " corrected=" << totals.faults_corrected
     << " uncorrectable=" << totals.faults_uncorrectable
     << " quarantined=" << totals.blocks_quarantined << " (now "
     << totals.quarantined_now << ")"
     << " remapped=" << totals.blocks_remapped
     << " retries=r" << totals.read_retries << "/w" << totals.write_retries
     << " scrubbed=" << totals.blocks_scrubbed
     << " injected=" << totals.injected_faults
     << " slow=" << totals.slow_ops
     << " batched=" << totals.cipher_batched << "\n";
  print_latency_row(os, "read ", totals.read_latency);
  print_latency_row(os, "write", totals.write_latency);
  print_latency_row(os, "bgenc", totals.background_latency);
  for (const ShardStatsSnapshot& s : shards) {
    os << "  shard " << s.shard << ": r=" << s.reads_completed
       << " w=" << s.writes_completed << " coal=" << s.writes_coalesced
       << " rej=" << s.rejected << " bg=" << s.background_encrypted
       << " hwm=" << s.queue_high_water << " pt=" << s.plaintext_blocks << "/"
       << s.resident_blocks << "\n";
  }
  return os.str();
}

}  // namespace spe::runtime
