#include "runtime/recovery.hpp"

#include <sstream>

namespace spe::runtime {

ShardRecovery RecoveryReport::totals() const {
  ShardRecovery t;
  for (const ShardRecovery& s : shards) {
    t.journal_entries += s.journal_entries;
    t.clean_blocks += s.clean_blocks;
    t.replayed_forward += s.replayed_forward;
    t.rolled_back += s.rolled_back;
    t.torn_quarantined += s.torn_quarantined;
    t.crc_quarantined += s.crc_quarantined;
  }
  return t;
}

bool RecoveryReport::clean() const {
  for (const ShardRecovery& s : shards)
    if (!s.clean()) return false;
  return true;
}

std::string RecoveryReport::to_string() const {
  std::ostringstream out;
  const ShardRecovery t = totals();
  out << "recovery: " << t.journal_entries << " open intents over " << shards.size()
      << " shards: " << t.replayed_forward << " replayed forward, " << t.rolled_back
      << " rolled back, " << t.torn_quarantined << " torn, " << t.crc_quarantined
      << " CRC-quarantined, " << t.clean_blocks << " clean\n";
  for (const ShardRecovery& s : shards) {
    if (s.clean() && s.journal_entries == 0) continue;
    out << "  shard " << s.shard << ": intents=" << s.journal_entries
        << " replay=" << s.replayed_forward << " rollback=" << s.rolled_back
        << " torn=" << s.torn_quarantined << " crc=" << s.crc_quarantined << "\n";
  }
  return out.str();
}

}  // namespace spe::runtime
