#pragma once
// Applies a FaultPlan to live state. One injector per bank shard (or per
// crossbar under test): it carries the per-block event counters (senses,
// programs, scrub ticks, remap epoch) that index into the plan's
// deterministic schedule, so it must be externally serialised — in the
// runtime it lives under the shard's state mutex.
//
// Two families of hooks:
//  * level-domain (the runtime datapath, which stores fine levels in
//    Snvmm::Block): corrupt_program / corrupt_sense / age_block;
//  * physics-domain (spe_device / spe_xbar): pin_unit force-sticks the
//    plan's defective cells in a real Crossbar, and program_symbol is the
//    dropped-pulse-aware write-verify entry.
//
// A disabled injector is a strict no-op: it neither mutates state nor
// advances event counters, so toggling it off and back on replays exactly
// the schedule an always-enabled injector would have produced for the same
// sequence of enabled calls.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>

#include "fault/fault_plan.hpp"
#include "xbar/crossbar.hpp"

namespace spe::fault {

class FaultInjector {
public:
  FaultInjector(std::shared_ptr<const FaultPlan> plan, std::uint64_t device_id,
                bool enabled = true);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::uint64_t device_id() const noexcept { return device_id_; }

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Remap epoch of a block (0 until the first remap). Bumping it moves the
  /// block to a spare physical location with fresh fault draws.
  [[nodiscard]] std::uint32_t remap_epoch(std::uint64_t block_addr) const;
  void remap(std::uint64_t block_addr);

  /// The spare-remap table: every block with a nonzero remap epoch, in
  /// address order (deterministic, for checkpoint serialisation).
  [[nodiscard]] std::map<std::uint64_t, std::uint32_t> remap_table() const;
  /// Restores one remap entry from a checkpoint (the event counters restart
  /// at zero: fresh draws for the spare location, matching a fresh remap).
  void set_remap_epoch(std::uint64_t block_addr, std::uint32_t epoch);

  // --- level-domain hooks (runtime datapath) ------------------------------

  /// Write/program phase: corrupts freshly programmed levels in place
  /// (stuck cells pin, dropped pulses leave stale levels). Advances the
  /// block's program counter, so a retried write re-rolls the drops.
  void corrupt_program(std::uint64_t block_addr, std::span<std::uint8_t> levels);

  /// Read/sense phase: corrupts the *sensed copy* (stuck cells pin,
  /// transient noise flips bits); the stored array is untouched. Advances
  /// the block's sense counter, so a retried read re-rolls the noise.
  void corrupt_sense(std::uint64_t block_addr, std::span<std::uint8_t> sensed);

  /// Scrub/aging tick: accumulates drift into the stored levels and
  /// re-pins stuck cells. Advances the block's tick counter.
  void age_block(std::uint64_t block_addr, std::span<std::uint8_t> levels);

  // --- physics-domain hooks (spe_device / spe_xbar) -----------------------

  /// Force-sticks this plan's defective cells of one crossbar unit (cells
  /// [unit * n, unit * n + n) in block-flat numbering) at their pinned
  /// state. Returns how many cells were pinned.
  unsigned pin_unit(xbar::Crossbar& xbar, std::uint64_t block_addr, unsigned unit);

  /// Dropped-pulse-aware write-verify programming of one physical cell.
  /// Returns false when the plan dropped this cell's pulse (the cell keeps
  /// its previous state); stuck cells also refuse to move.
  bool program_symbol(xbar::Crossbar& xbar, unsigned flat, unsigned symbol,
                      std::uint64_t block_addr, unsigned unit);

  /// Totals of faults actually materialised (a pinned cell whose level
  /// already matched the pin, or a zero-rounded drift, does not count).
  struct Counts {
    std::uint64_t stuck_hits = 0;      ///< stuck-cell pins that changed a value
    std::uint64_t drift_events = 0;    ///< nonzero drift deltas applied
    std::uint64_t noise_events = 0;    ///< transient sense bit flips
    std::uint64_t dropped_pulses = 0;  ///< programming pulses that failed

    [[nodiscard]] std::uint64_t total() const noexcept {
      return stuck_hits + drift_events + noise_events + dropped_pulses;
    }
  };
  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }

private:
  struct BlockState {
    std::uint32_t epoch = 0;
    std::uint64_t programs = 0;
    std::uint64_t senses = 0;
    std::uint64_t ticks = 0;
  };

  [[nodiscard]] CellSite site(std::uint64_t block_addr, std::uint32_t epoch,
                              unsigned cell) const noexcept {
    return {device_id_, block_addr, epoch, cell};
  }

  std::shared_ptr<const FaultPlan> plan_;
  std::uint64_t device_id_;
  bool enabled_;
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  Counts counts_;
};

}  // namespace spe::fault
