// In-process multi-node cluster integration (src/cluster + src/net): three
// MemoryService + Server + ClusterCoordinator stacks on loopback, driven by
// a ClusterClient. Covers ownership routing with MOVED bounces, topology
// fetch/propose/adopt, a full join migration with end-to-end payload
// verification, and the acceptance scenario: a destination crash at a
// deterministic journal kill point mid-pull, recovery from checkpoint +
// journal, a retried pull, and zero silent corruption afterwards.
//
// Part of the "cluster" ctest label, which CI runs under ASan and TSan.

#include "cluster/cluster_client.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/migration.hpp"
#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace spe::cluster {
namespace {

runtime::ServiceConfig small_service_config() {
  runtime::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.worker_threads = 2;
  cfg.queue_capacity = 64;
  cfg.scavenger_enabled = false;
  return cfg;
}

/// Reserves an ephemeral loopback port: bind, read it back, close. The tiny
/// reuse window is fine for a test that rebinds immediately.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::vector<std::uint8_t> payload_for(std::uint64_t addr, unsigned block_bytes,
                                      std::uint8_t generation = 1) {
  std::vector<std::uint8_t> data(block_bytes);
  for (unsigned i = 0; i < block_bytes; ++i)
    data[i] = static_cast<std::uint8_t>(addr * 13 + i * 7 + generation * 101);
  return data;
}

/// One cluster node: service + coordinator + server, restartable in place
/// (the crash test tears the stack down and rebuilds it from the same
/// journal/checkpoint paths, like a process restart would).
struct Node {
  Node(std::string name_, std::uint16_t port_, ClusterTopology topo,
       std::string journal_path = "", std::string checkpoint_path = "",
       std::size_t pull_batch = 2)
      : name(std::move(name_)),
        port(port_),
        topology(std::move(topo)),
        journal(std::move(journal_path)),
        checkpoint(std::move(checkpoint_path)) {
    config.node_name = name;
    config.journal_path = journal;
    config.checkpoint_path = checkpoint;
    config.pull_batch = pull_batch;
    boot();
  }

  ~Node() { shutdown(); }

  void boot() {
    std::ifstream probe(checkpoint);
    if (!checkpoint.empty() && probe.good())
      service = std::make_unique<runtime::MemoryService>(small_service_config(),
                                                         checkpoint);
    else
      service = std::make_unique<runtime::MemoryService>(small_service_config());
    coordinator.emplace(*service, topology, config);
    recovery = coordinator->recover();
    // Installed before the server threads spawn, so no synchronization is
    // needed between the test thread and the completion threads.
    coordinator->journal().set_kill_hook(kill_hook);
    net::ServerConfig server_cfg;
    server_cfg.port = port;
    server = std::make_unique<net::Server>(*service, server_cfg);
    server->set_cluster_handler(&*coordinator);
    ASSERT_EQ(server->start(), port);
  }

  void shutdown() {
    if (server) server->stop();
    server.reset();
    coordinator.reset();
    if (service) service->stop();
    service.reset();
  }

  /// Simulated kill -9 + restart: everything volatile is discarded; only
  /// the journal and checkpoint files survive.
  void crash_and_restart() {
    shutdown();
    boot();
  }

  NodeInfo info(unsigned weight = 1) const {
    return NodeInfo{name, "127.0.0.1", port, weight};
  }

  std::string name;
  std::uint16_t port;
  ClusterTopology topology;
  std::string journal;
  std::string checkpoint;
  CoordinatorConfig config;
  MigrationRecovery recovery;
  std::function<void()> kill_hook;
  std::unique_ptr<runtime::MemoryService> service;
  std::optional<ClusterCoordinator> coordinator;
  std::unique_ptr<net::Server> server;
};

ClusterClientConfig seeded(const NodeInfo& seed) {
  ClusterClientConfig cfg;
  cfg.seeds = {seed};
  return cfg;
}

net::Frame migrate_rpc(std::uint16_t port, const MigrateSpec& spec) {
  net::Client client({.port = port});
  client.connect();
  return client.call(net::make_migrate_request(1, encode_migrate_spec(spec)));
}

TEST(ClusterE2E, RoutingMovedBounceAndClientChase) {
  const std::uint16_t pa = reserve_port(), pb = reserve_port(), pc = reserve_port();
  ClusterTopology topo{1,
                       {{"a", "127.0.0.1", pa, 1},
                        {"b", "127.0.0.1", pb, 1},
                        {"c", "127.0.0.1", pc, 1}}};
  Node a("a", pa, topo), b("b", pb, topo), c("c", pc, topo);

  ClusterClient client(seeded(a.info()));
  client.connect();
  EXPECT_EQ(client.topology().epoch, 1u);
  EXPECT_EQ(client.topology().nodes.size(), 3u);

  const unsigned block_bytes = a.service->block_bytes();
  for (std::uint64_t addr = 0; addr < 64; ++addr)
    client.write_block(addr, payload_for(addr, block_bytes));
  for (std::uint64_t addr = 0; addr < 64; ++addr)
    EXPECT_EQ(client.read_block(addr), payload_for(addr, block_bytes)) << addr;

  // Every node must hold at least one block (balance at this tiny scale).
  EXPECT_FALSE(a.service->resident_blocks().empty());
  EXPECT_FALSE(b.service->resident_blocks().empty());
  EXPECT_FALSE(c.service->resident_blocks().empty());

  // A misdirected direct request bounces with the owner's NodeInfo.
  const HashRing ring = topo.ring();
  std::uint64_t foreign = 0;
  while (ring.owner(foreign) == "a") ++foreign;
  net::Client direct({.port = pa});
  direct.connect();
  const net::Frame bounced = direct.call(net::make_read_request(9, foreign));
  ASSERT_EQ(bounced.status, net::Status::Moved);
  NodeInfo owner;
  ASSERT_TRUE(decode_node(bounced.payload, owner));
  EXPECT_EQ(owner.name, ring.owner(foreign));

  // Non-cluster opcodes still work through the coordinator hook.
  EXPECT_NO_THROW(direct.ping());
  EXPECT_NE(direct.metrics().find("spe_cluster_moved_total"), std::string::npos);
}

TEST(ClusterE2E, TopologyProposeAdoptsNewerOnly) {
  const std::uint16_t pa = reserve_port(), pb = reserve_port();
  ClusterTopology topo{3, {{"a", "127.0.0.1", pa, 1}, {"b", "127.0.0.1", pb, 1}}};
  Node a("a", pa, topo), b("b", pb, topo);

  net::Client direct({.port = pa});
  direct.connect();

  // Stale epoch: rejected, response carries the node's current truth.
  ClusterTopology stale = topo;
  stale.epoch = 2;
  net::Frame reply = direct.call(net::make_topology_request(1, encode_topology(stale)));
  ASSERT_EQ(reply.status, net::Status::Ok);
  ClusterTopology echoed;
  ASSERT_TRUE(decode_topology(reply.payload, echoed));
  EXPECT_EQ(echoed.epoch, 3u);

  // Newer epoch: adopted and journaled.
  ClusterTopology newer = topo;
  newer.epoch = 4;
  newer.nodes[1].weight = 2;
  reply = direct.call(net::make_topology_request(2, encode_topology(newer)));
  ASSERT_EQ(reply.status, net::Status::Ok);
  ASSERT_TRUE(decode_topology(reply.payload, echoed));
  EXPECT_EQ(echoed.epoch, 4u);
  EXPECT_EQ(a.coordinator->topology().epoch, 4u);
  EXPECT_EQ(b.coordinator->topology().epoch, 3u);  // b was never told
}

TEST(ClusterE2E, JoinMigrationMovesOwnershipWithoutCorruption) {
  const std::uint16_t pa = reserve_port(), pb = reserve_port(), pd = reserve_port();
  ClusterTopology topo{1, {{"a", "127.0.0.1", pa, 1}, {"b", "127.0.0.1", pb, 1}}};
  // d boots as a weight-0 member: in the topology, no ring arcs yet.
  ClusterTopology topo_with_d = topo;
  topo_with_d.nodes.push_back({"d", "127.0.0.1", pd, 0});
  Node a("a", pa, topo), b("b", pb, topo), d("d", pd, topo_with_d);

  ClusterClient client(seeded(a.info()));
  client.connect();
  const unsigned block_bytes = a.service->block_bytes();
  constexpr std::uint64_t kBlocks = 48;
  for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
    client.write_block(addr, payload_for(addr, block_bytes));

  // Target: d joins at weight 1, epoch 2. Diff the rings, freeze + pull.
  ClusterTopology target = topo;
  target.epoch = 2;
  target.nodes.push_back({"d", "127.0.0.1", pd, 1});
  const HashRing before = topo.ring();
  const HashRing after = target.ring();
  std::vector<std::uint64_t> from_a, from_b;
  for (std::uint64_t addr = 0; addr < kBlocks; ++addr) {
    if (before.owner(addr) == after.owner(addr)) continue;
    ASSERT_EQ(after.owner(addr), "d");  // minimal disruption
    (before.owner(addr) == "a" ? from_a : from_b).push_back(addr);
  }
  ASSERT_FALSE(from_a.empty());
  ASSERT_FALSE(from_b.empty());

  for (const auto& [src, addrs] :
       {std::pair{&a, &from_a}, std::pair{&b, &from_b}}) {
    net::Frame reply = migrate_rpc(
        src->port, {MigrateSpec::Mode::Freeze, 2, target.nodes.back(), *addrs});
    ASSERT_EQ(reply.status, net::Status::Ok);
    reply = migrate_rpc(d.port, {MigrateSpec::Mode::Pull, 2, src->info(), *addrs});
    ASSERT_EQ(reply.status, net::Status::Ok);
    std::uint64_t migrated = 0, skipped = 0, failed = 0;
    net::WireErrorCode err = net::WireErrorCode::None;
    ASSERT_TRUE(net::parse_migrate_response(reply, migrated, skipped, failed, err));
    EXPECT_EQ(migrated + skipped, addrs->size());
    EXPECT_EQ(failed, 0u);
  }

  // Committed-but-unadopted: d serves the pulled blocks already.
  EXPECT_EQ(client.propose_topology(target), 3u);
  for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
    EXPECT_EQ(client.read_block(addr), payload_for(addr, block_bytes)) << addr;

  // d now owns its arcs for real: re-written data lands and reads back.
  for (const std::uint64_t addr : from_a) {
    client.write_block(addr, payload_for(addr, block_bytes, 2));
    EXPECT_EQ(client.read_block(addr), payload_for(addr, block_bytes, 2));
  }
  const std::vector<std::uint64_t> d_resident = d.service->resident_blocks();
  const std::set<std::uint64_t> on_d(d_resident.begin(), d_resident.end());
  for (const std::uint64_t addr : from_a) EXPECT_TRUE(on_d.contains(addr)) << addr;
}

// Acceptance scenario: kill -9 the DESTINATION mid-pull at a deterministic
// journal kill point, restart it from checkpoint + journal, re-run the
// pull, adopt, and verify every block end to end.
TEST(ClusterE2E, KillPointMidPullRecoversWithoutTornOwnership) {
  for (const unsigned kill_after : {1u, 3u, 6u}) {
    const std::uint16_t ps = reserve_port(), pd = reserve_port();
    const std::string tag = std::to_string(kill_after);
    const std::string journal = ::testing::TempDir() + "spe_e2e_dj_" + tag + ".bin";
    const std::string checkpoint = ::testing::TempDir() + "spe_e2e_dc_" + tag + ".bin";
    std::remove(journal.c_str());
    std::remove(checkpoint.c_str());

    ClusterTopology topo{1,
                         {{"s", "127.0.0.1", ps, 1}, {"d", "127.0.0.1", pd, 0}}};
    Node s("s", ps, topo);
    Node d("d", pd, topo, journal, checkpoint, /*pull_batch=*/2);

    ClusterClient client(seeded(s.info()));
    client.connect();
    const unsigned block_bytes = s.service->block_bytes();
    constexpr std::uint64_t kBlocks = 16;
    for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
      client.write_block(addr, payload_for(addr, block_bytes));

    ClusterTopology target = topo;
    target.epoch = 2;
    target.nodes[1].weight = 1;
    std::vector<std::uint64_t> moving;
    for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
      if (target.ring().owner(addr) == "d") moving.push_back(addr);
    ASSERT_GE(moving.size(), 3u) << "need enough moving blocks to kill mid-pull";

    ASSERT_EQ(migrate_rpc(ps, {MigrateSpec::Mode::Freeze, 2, d.info(1), moving})
                  .status,
              net::Status::Ok);

    // Crash the destination: restart it with a journal kill hook that throws
    // after N durable appends, aborting the pull exactly where a kill -9
    // would leave the file. The restart installs the hook before the server
    // threads spawn, so the test thread never races the completion threads.
    unsigned appends = 0;
    d.kill_hook = [&appends, kill_after] {
      if (++appends == kill_after) throw std::runtime_error("injected crash");
    };
    d.crash_and_restart();
    const net::Frame crashed =
        migrate_rpc(pd, {MigrateSpec::Mode::Pull, 2, s.info(), moving});
    EXPECT_EQ(crashed.status, net::Status::Internal);
    d.kill_hook = nullptr;
    d.crash_and_restart();

    // Recovery must classify every moving block fully: committed blocks are
    // in the checkpoint, in-flight ones rolled back (still frozen on s).
    const std::set<std::uint64_t> moving_set(moving.begin(), moving.end());
    const std::vector<std::uint64_t> d_resident = d.service->resident_blocks();
    const std::set<std::uint64_t> resident(d_resident.begin(), d_resident.end());
    for (const std::uint64_t addr : d.recovery.forward) {
      EXPECT_TRUE(moving_set.contains(addr));
      EXPECT_TRUE(resident.contains(addr))
          << "committed block " << addr << " missing from the checkpoint";
    }
    EXPECT_TRUE(d.recovery.rollback.empty() || d.recovery.forward.empty())
        << "a single pull commits atomically: forward and rollback cannot mix";

    // Retry the pull (idempotent), adopt, verify everything.
    const net::Frame retried =
        migrate_rpc(pd, {MigrateSpec::Mode::Pull, 2, s.info(), moving});
    ASSERT_EQ(retried.status, net::Status::Ok);
    ASSERT_EQ(client.propose_topology(target), 2u);
    for (std::uint64_t addr = 0; addr < kBlocks; ++addr)
      EXPECT_EQ(client.read_block(addr), payload_for(addr, block_bytes))
          << "addr " << addr << " after kill point " << kill_after;

    std::remove(journal.c_str());
    std::remove(checkpoint.c_str());
  }
}

}  // namespace
}  // namespace spe::cluster
