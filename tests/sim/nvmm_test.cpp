#include "sim/nvmm.hpp"

#include <gtest/gtest.h>

namespace spe::sim {
namespace {

TEST(NvmmTiming, BaseLatencies) {
  NvmmTiming nvmm;
  // 30 mem cycles * 4 = 120 CPU cycles for an uncontended read.
  EXPECT_EQ(nvmm.access(0, 0, false), 120u);
  EXPECT_EQ(nvmm.access(10'000, 64, true), 160u);
  EXPECT_EQ(nvmm.stats().reads, 1u);
  EXPECT_EQ(nvmm.stats().writes, 1u);
}

TEST(NvmmTiming, BankConflictQueues) {
  NvmmTiming nvmm;
  // Two immediate accesses to the same bank (same 64B-block modulo banks).
  const auto first = nvmm.access(0, 0, false);
  const auto second = nvmm.access(0, 8 * 64, false);  // same bank 0
  EXPECT_EQ(first, 120u);
  EXPECT_EQ(second, 240u);  // waited for the first
  EXPECT_EQ(nvmm.stats().bank_conflict_cycles, 120u);
}

TEST(NvmmTiming, DifferentBanksOverlap) {
  NvmmTiming nvmm;
  (void)nvmm.access(0, 0, false);
  EXPECT_EQ(nvmm.access(0, 64, false), 120u);  // bank 1: no queueing
  EXPECT_EQ(nvmm.stats().bank_conflict_cycles, 0u);
}

TEST(NvmmTiming, ExtraBusyExtendsOccupancy) {
  NvmmTiming nvmm;
  // SPE-parallel style: the re-encryption holds the bank after the read.
  (void)nvmm.access(0, 0, false, /*extra_busy_cycles=*/64);
  const auto second = nvmm.access(120, 8 * 64, false);
  EXPECT_EQ(second, 64u + 120u);  // waits out the busy tail
}

TEST(NvmmTiming, BankFreesAfterService) {
  NvmmTiming nvmm;
  (void)nvmm.access(0, 0, false);
  EXPECT_EQ(nvmm.access(500, 8 * 64, false), 120u);  // long after: no queue
}

}  // namespace
}  // namespace spe::sim
