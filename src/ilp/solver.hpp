#pragma once
// Depth-first branch-and-bound solver for binary ILPs with interval
// constraint propagation. Replaces the FICO Xpress solver the paper used
// (ref [16]). Designed for the Table-1 PoE-placement models: tens of
// variables, tight two-sided covering constraints — propagation does most of
// the work; the objective bound prunes the rest.
//
// Since the solver-portfolio PR this is the *exact reference backend* of the
// placement portfolio (ilp/placement_solver.hpp). Larger crossbars go to the
// heuristic backends; the shared SolverOptions carries both the exact
// solver's budgets and the heuristics' knobs so one options struct can
// parameterise any portfolio member.

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"

namespace spe::ilp {

struct SolverOptions {
  std::uint64_t node_limit = 50'000'000;  ///< Hard cap on explored nodes.
  bool use_greedy_start = true;           ///< Seed the incumbent greedily.

  /// Cooperative wall-clock deadline in milliseconds; 0 = unbounded. The
  /// B&B checks it inside the recursion (every kDeadlineCheckNodes nodes) so
  /// a portfolio member can be cut off and report TimeLimit with its best
  /// incumbent instead of running unbounded. Heuristic backends check it
  /// between restarts/sweeps and inside their annealing loops. NOTE: wall
  /// clocks make *which* incumbent a run ends with machine-dependent; the
  /// determinism contract (DESIGN.md §14) therefore only covers runs whose
  /// limits are the work-based budgets below.
  double time_limit_ms = 0.0;

  /// Seed for the heuristic backends' RNG streams (ignored by the exact
  /// B&B). Same seed + same work budgets => byte-identical solutions.
  std::uint64_t seed = 0x51EED;

  // --- GRASP backend (ilp/grasp.cpp) ---------------------------------------
  unsigned grasp_restarts = 8;      ///< seeded construct+improve restarts
  double grasp_rcl_alpha = 0.3;     ///< RCL width: accept gain >= best*(1-a)
  unsigned grasp_anneal_iters = 20'000;  ///< repair-annealing moves/restart
  unsigned grasp_improve_iters = 4'000;  ///< objective local-search moves

  // --- LP-relaxation rounding backend (ilp/lp_rounding.cpp) ----------------
  unsigned lp_sweeps = 128;  ///< projection sweeps for the fractional guide
};

struct Solution {
  enum class Status {
    Optimal,     ///< Proven optimal (bound meets the incumbent).
    Feasible,    ///< Incumbent found but search hit the node limit, or a
                 ///< heuristic produced it (no optimality proof).
    TimeLimit,   ///< Cooperative deadline fired with an incumbent in hand.
    Infeasible,  ///< Proven infeasible.
    NoSolution,  ///< A limit fired with no incumbent (feasibility unknown).
  };

  Status status = Status::NoSolution;
  double objective = 0.0;
  std::vector<std::uint8_t> values;
  std::uint64_t nodes_explored = 0;

  /// Proven bound on the optimum: a lower bound when minimising, an upper
  /// bound when maximising. The exact backend always reports one (the root
  /// relaxation bound, or the objective itself once optimality is proven);
  /// heuristics cannot prove bounds and report +/-infinity ("no bound").
  /// Status is never Optimal unless best_bound == objective.
  double best_bound = 0.0;
  bool has_bound = false;  ///< best_bound is a proven (finite) bound

  double elapsed_ms = 0.0;  ///< wall-clock spent producing this solution

  [[nodiscard]] bool has_solution() const noexcept {
    // TimeLimit is only ever reported with an incumbent in hand; a deadline
    // that fires with nothing found reports NoSolution instead.
    return status == Status::Optimal || status == Status::Feasible ||
           status == Status::TimeLimit;
  }
};

const char* to_string(Solution::Status status) noexcept;

class Solver {
public:
  explicit Solver(SolverOptions options = {}) : options_(options) {}

  [[nodiscard]] Solution solve(const Model& model);

private:
  SolverOptions options_;
};

}  // namespace spe::ilp
