#pragma once
// Shared helpers for the table/figure reproduction harnesses and the
// serving-layer binaries (spe_server, loadgen): env overrides, a banner,
// and one tiny argv parser so every bench spells flags the same way.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace spe::benchutil {

/// Reads an unsigned environment override (e.g. SPE_NIST_SEQS) or returns
/// the default. All benches run with sensible fast defaults; the paper-scale
/// profile is selected by exporting the documented variables.
inline unsigned env_or(const char* name, unsigned fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

/// Minimal argv parser shared by the bench binaries. Supports boolean
/// `--name` flags and `--name value` / `--name=value` options; unknown
/// tokens are collected so a bench can reject typos with a one-line error.
///
///   Args args(argc, argv);
///   const bool smoke = args.flag("smoke");
///   const unsigned ops = args.uns("ops", env_or("SPE_SVC_OPS", 2000));
///   if (!args.ok(stderr)) return 2;
class Args {
public:
  Args(int argc, char** argv) {
    tokens_.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
    used_.assign(tokens_.size(), false);
  }

  /// True when `--name` appears (as a bare flag).
  [[nodiscard]] bool flag(const std::string& name) {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == key) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  /// Value of `--name value` or `--name=value`, else `fallback`.
  [[nodiscard]] std::string str(const std::string& name, std::string fallback) {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind(key + "=", 0) == 0) {
        used_[i] = true;
        return tokens_[i].substr(key.size() + 1);
      }
      if (tokens_[i] == key && i + 1 < tokens_.size()) {
        used_[i] = used_[i + 1] = true;
        return tokens_[i + 1];
      }
    }
    return fallback;
  }

  [[nodiscard]] unsigned uns(const std::string& name, unsigned fallback) {
    const std::string v = str(name, "");
    if (v.empty()) return fallback;
    return static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
  }

  /// After all lookups: prints one line per unrecognised token to `err` and
  /// returns false if any exist. Call last so every valid flag is marked.
  [[nodiscard]] bool ok(std::FILE* err) const {
    bool clean = true;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!used_[i]) {
        std::fprintf(err, "unknown argument: %s\n", tokens_[i].c_str());
        clean = false;
      }
    }
    return clean;
  }

private:
  std::vector<std::string> tokens_;
  std::vector<bool> used_;
};

}  // namespace spe::benchutil
