#pragma once
// The nine randomness data sets of Section 6.1, feeding the NIST suite for
// Table 2. Each generator produces `sequences` bit sequences of
// `bits_per_sequence` bits by concatenating 128-bit blocks derived from the
// SPE cipher (one 8x8 crossbar unit = 64 cells x 2 bits = 128 ciphertext
// bits). The paper uses 150 sequences of ~120 kbit; defaults here are
// overridable so the bench can run a fast profile by default and the full
// paper profile via environment switches.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/spe_cipher.hpp"
#include "util/bitvec.hpp"

namespace spe::core {

struct DatasetConfig {
  unsigned sequences = 150;
  std::size_t bits_per_sequence = 1u << 17;  ///< 131072 ~ the paper's 120 kbit
  std::uint64_t seed = 0x5BE5C0DE;
  xbar::CrossbarParams params;                ///< device under evaluation
  std::vector<unsigned> poes;                 ///< empty = default 16-PoE set
  unsigned truncate_pulses = 0;               ///< 0 = full schedule (ablation hook)
};

/// Identifiers in Table-2 column order.
enum class Dataset {
  KeyAvalanche,
  PlaintextAvalanche,
  HardwareAvalanche,
  PlaintextCiphertextCorrelation,
  RandomPlaintextKey,
  LowDensityKey,
  LowDensityPlaintext,
  HighDensityKey,
  HighDensityPlaintext,
};

[[nodiscard]] std::string dataset_name(Dataset d);
[[nodiscard]] const std::vector<Dataset>& all_datasets();

/// Generates the sequences of one data set.
[[nodiscard]] std::vector<util::BitVector> generate_dataset(Dataset which,
                                                            const DatasetConfig& config);

}  // namespace spe::core
