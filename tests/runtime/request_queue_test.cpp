#include "runtime/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace spe::runtime {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t fill) { return std::vector<std::uint8_t>(64, fill); }

TEST(RequestQueue, RejectPolicyThrowsTypedErrorWhenFull) {
  ShardCounters counters;
  RequestQueue q(3, 2, BackpressurePolicy::Reject, /*coalesce=*/false, counters);
  auto f1 = q.push_write(1, payload(1));
  auto f2 = q.push_write(2, payload(2));
  try {
    auto f3 = q.push_read(3);
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.shard(), 3u);
    EXPECT_EQ(e.depth(), 2u);
  }
  EXPECT_EQ(counters.rejected.load(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  (void)q.drain();  // settle futures' promises (dropped => broken_promise is fine here)
}

TEST(RequestQueue, BlockPolicyWaitsForDrain) {
  ShardCounters counters;
  RequestQueue q(0, 1, BackpressurePolicy::Block, /*coalesce=*/false, counters);
  auto f1 = q.push_write(1, payload(1));
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    auto f2 = q.push_write(2, payload(2));
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());  // still parked on the full queue
  EXPECT_EQ(q.drain().size(), 1u);       // frees the slot
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(q.drain().size(), 1u);
  EXPECT_EQ(counters.rejected.load(), 0u);
}

TEST(RequestQueue, SameBlockWritesCoalesceLatestWins) {
  ShardCounters counters;
  RequestQueue q(0, 8, BackpressurePolicy::Reject, /*coalesce=*/true, counters);
  auto f1 = q.push_write(7, payload(0xAA));
  auto f2 = q.push_write(7, payload(0xBB));
  auto f3 = q.push_write(9, payload(0xCC));
  EXPECT_EQ(q.depth(), 2u);  // the merge consumed no slot
  EXPECT_EQ(counters.writes_coalesced.load(), 1u);
  auto batch = q.drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].block_addr, 7u);
  EXPECT_EQ(batch[0].data, payload(0xBB));  // latest payload won
  EXPECT_EQ(batch[0].write_waiters.size(), 2u);  // both futures still pending
  EXPECT_EQ(batch[1].block_addr, 9u);
}

TEST(RequestQueue, CoalescingBypassesBackpressure) {
  ShardCounters counters;
  RequestQueue q(0, 1, BackpressurePolicy::Reject, /*coalesce=*/true, counters);
  auto f1 = q.push_write(5, payload(1));
  auto f2 = q.push_write(5, payload(2));  // full queue, but merges in place
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_THROW((void)q.push_write(6, payload(3)), QueueFullError);
  (void)q.drain();
}

TEST(RequestQueue, InterveningReadStopsCoalescing) {
  ShardCounters counters;
  RequestQueue q(0, 8, BackpressurePolicy::Reject, /*coalesce=*/true, counters);
  auto w1 = q.push_write(7, payload(0xAA));
  auto r = q.push_read(7);
  auto w2 = q.push_write(7, payload(0xBB));  // must NOT merge across the read
  auto batch = q.drain();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].kind, Request::Kind::Write);
  EXPECT_EQ(batch[0].data, payload(0xAA));  // the read still sees 0xAA
  EXPECT_EQ(batch[1].kind, Request::Kind::Read);
  EXPECT_EQ(batch[2].kind, Request::Kind::Write);
  EXPECT_EQ(batch[2].data, payload(0xBB));
  EXPECT_EQ(counters.writes_coalesced.load(), 0u);
}

TEST(RequestQueue, DrainResetsCoalescingWindow) {
  ShardCounters counters;
  RequestQueue q(0, 8, BackpressurePolicy::Reject, /*coalesce=*/true, counters);
  auto f1 = q.push_write(7, payload(1));
  EXPECT_EQ(q.drain().size(), 1u);
  auto f2 = q.push_write(7, payload(2));  // earlier write already executing
  EXPECT_EQ(counters.writes_coalesced.load(), 0u);
  EXPECT_EQ(q.drain().size(), 1u);
}

TEST(RequestQueue, CloseWakesBlockedProducerWithStoppedError) {
  ShardCounters counters;
  RequestQueue q(4, 1, BackpressurePolicy::Block, /*coalesce=*/false, counters);
  auto f1 = q.push_write(1, payload(1));
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      auto f2 = q.push_write(2, payload(2));
    } catch (const ServiceStoppedError& e) {
      if (e.shard() == 4u) threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW((void)q.push_read(9), ServiceStoppedError);
  EXPECT_EQ(q.drain().size(), 1u);  // queued work survives close for the final drain
}

TEST(RequestQueue, CloseDoesNotCountAsQueueRejection) {
  ShardCounters counters;
  RequestQueue q(0, 4, BackpressurePolicy::Reject, /*coalesce=*/false, counters);
  q.close();
  EXPECT_THROW((void)q.push_write(1, payload(1)), ServiceStoppedError);
  EXPECT_EQ(counters.rejected.load(), 0u);  // stopped, not backpressured
}

TEST(RequestQueue, TracksQueueHighWaterMark) {
  ShardCounters counters;
  RequestQueue q(0, 16, BackpressurePolicy::Block, /*coalesce=*/false, counters);
  std::vector<std::future<std::vector<std::uint8_t>>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(q.push_read(static_cast<std::uint64_t>(i)));
  EXPECT_EQ(counters.queue_high_water.load(), 5u);
  (void)q.drain();
  futures.clear();
  auto f = q.push_read(99);
  EXPECT_EQ(counters.queue_high_water.load(), 5u);  // high-water mark sticks
  (void)q.drain();
}

}  // namespace
}  // namespace spe::runtime
