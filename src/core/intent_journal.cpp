#include "core/intent_journal.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spe::core {

namespace {
// Cross-layer journal transition counters (process-global; exported by
// MemoryService::export_metrics alongside the per-service snapshot).
obs::Counter& begin_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "spe_journal_begin_total", "intent journal begin transitions");
  return c;
}
obs::Counter& advance_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "spe_journal_advance_total", "intent journal pulse advances");
  return c;
}
obs::Counter& commit_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "spe_journal_commit_total", "intent journal commits");
  return c;
}
}  // namespace

void IntentJournal::begin(JournalEntry entry) {
  const std::uint64_t addr = entry.block_addr;
  const auto op = static_cast<std::uint64_t>(entry.op);
  entries_[addr] = std::move(entry);
  begin_counter().add(1);
  obs::Tracer::instance().instant("journal.begin", addr, op);
  notify();
}

void IntentJournal::advance(std::uint64_t block_addr) {
  const auto it = entries_.find(block_addr);
  if (it == entries_.end())
    throw std::logic_error("IntentJournal::advance: no open intent for block " +
                           std::to_string(block_addr));
  ++it->second.progress;
  advance_counter().add(1);
  // Per-pulse instants are the verbose tier: only when the tracer was
  // enabled with trace_pulses (golden traces, side-channel studies).
  obs::Tracer& tracer = obs::Tracer::instance();
  if (tracer.enabled() && tracer.pulses_traced())
    tracer.instant("journal.advance", block_addr, it->second.progress);
  notify();
}

void IntentJournal::commit(std::uint64_t block_addr) {
  if (entries_.erase(block_addr) > 0) {
    commit_counter().add(1);
    obs::Tracer::instance().instant("journal.commit", block_addr);
  }
  notify();
}

const JournalEntry* IntentJournal::find(std::uint64_t block_addr) const {
  const auto it = entries_.find(block_addr);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace spe::core
