#include "runtime/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spe::runtime {
namespace {

using std::chrono::nanoseconds;

TEST(LatencyHistogram, BucketEdges) {
  EXPECT_EQ(LatencyHistogram::bucket_for(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_for(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_for(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_for(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_for(~std::uint64_t{0}), 63u);
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean().count(), 0);
  EXPECT_EQ(h.snapshot().p50().count(), 0);
}

TEST(LatencyHistogram, QuantilesAreMonotonicAndBracketSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(nanoseconds(100));    // bucket [64,128)
  for (int i = 0; i < 9; ++i) h.record(nanoseconds(10'000));  // [8192,16384)
  h.record(nanoseconds(1'000'000));                           // [2^19,2^20)
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_LE(s.p50().count(), s.p95().count());
  EXPECT_LE(s.p95().count(), s.p99().count());
  // p50 lands in the 100ns bucket; p95 and p99 (ranks 95 and 99 of 100) in
  // the 10us bucket; only the max reaches the 1ms outlier.
  EXPECT_GE(s.p50().count(), 100);
  EXPECT_LT(s.p50().count(), 256);
  EXPECT_GE(s.p95().count(), 10'000);
  EXPECT_LT(s.p95().count(), 20'000);
  EXPECT_GE(s.p99().count(), 10'000);
  EXPECT_LT(s.p99().count(), 20'000);
  EXPECT_GE(s.quantile(1.0).count(), 1'000'000);
  EXPECT_EQ(s.mean().count(), (90 * 100 + 9 * 10'000 + 1'000'000) / 100);
}

TEST(LatencyHistogram, NegativeDurationClampsToZeroBucket) {
  LatencyHistogram h;
  h.record(nanoseconds(-5));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
}

TEST(LatencyHistogram, SnapshotMergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(nanoseconds(10));
  b.record(nanoseconds(10));
  b.record(nanoseconds(1000));
  auto s = a.snapshot();
  s += b.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum_ns, 1020u);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(nanoseconds(1 + (i % 4096)));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spe::runtime
