file(REMOVE_RECURSE
  "libspe_util.a"
)
