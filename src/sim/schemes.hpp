#pragma once
// NVMM protection-scheme timing/coverage models (Section 7). Each model
// charges the scheme's extra cycles on NVMM traffic and tracks which part
// of memory currently sits encrypted, so the simulator can reproduce both
// Fig. 7 (performance overhead) and Fig. 8 (% memory kept encrypted).
//
// These are timing models: the functional ciphers live in spe_core /
// spe_crypto and are exercised by the examples and integration tests.

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "core/area_model.hpp"

namespace spe::sim {

/// Extra cycles a scheme adds to one NVMM access.
struct SchemeCharge {
  std::uint64_t critical_cycles = 0;  ///< on the CPU-visible critical path
  std::uint64_t bank_busy_cycles = 0; ///< additional bank occupancy only
};

class SchemeModel {
public:
  virtual ~SchemeModel() = default;

  [[nodiscard]] virtual core::Scheme scheme() const = 0;

  /// NVMM read of `block_addr` (64B-aligned) at CPU-cycle `now`.
  virtual SchemeCharge on_read(std::uint64_t now, std::uint64_t block_addr) = 0;
  /// NVMM write (cache writeback) of `block_addr`.
  virtual SchemeCharge on_write(std::uint64_t now, std::uint64_t block_addr) = 0;

  /// Background work (inert-page scanning, serial re-encryption engines).
  virtual void tick(std::uint64_t now) = 0;

  /// Fraction of the *touched* memory footprint currently encrypted.
  [[nodiscard]] virtual double encrypted_fraction() const = 0;
};

/// Factory for the Table-3 schemes.
[[nodiscard]] std::unique_ptr<SchemeModel> make_scheme(core::Scheme scheme);

}  // namespace spe::sim
