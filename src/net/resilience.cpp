#include "net/resilience.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace spe::net {

namespace {

constexpr std::uint64_t kJitterTag = 0xB0FF0FF5E72417EDull;

double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::chrono::milliseconds retry_backoff(const RetryConfig& config,
                                        std::uint64_t stream,
                                        unsigned attempt) noexcept {
  if (config.backoff_base.count() <= 0) return std::chrono::milliseconds{0};
  // Exponential doubling without overflow: stop shifting once past the cap.
  std::int64_t ms = config.backoff_base.count();
  for (unsigned i = 0; i < attempt && ms < config.backoff_max.count(); ++i) ms *= 2;
  ms = std::min<std::int64_t>(ms, config.backoff_max.count());
  if (config.jitter > 0.0) {
    std::uint64_t h = util::mix64(config.jitter_seed ^ kJitterTag);
    h = util::mix64(h ^ stream);
    h = util::mix64(h ^ attempt);
    const double jitter = std::clamp(config.jitter, 0.0, 1.0);
    const double scale = 1.0 - jitter * unit_interval(h);
    ms = std::max<std::int64_t>(0, static_cast<std::int64_t>(
                                       static_cast<double>(ms) * scale));
  }
  return std::chrono::milliseconds{ms};
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {}

void CircuitBreaker::trip_locked(Clock::time_point now) {
  state_ = State::Open;
  opened_at_ = now;
  half_open_inflight_ = 0;
  trips_.fetch_add(1, std::memory_order_relaxed);
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open: {
      const auto now = Clock::now();
      if (now - opened_at_ < config_.open_timeout) return false;
      state_ = State::HalfOpen;
      half_open_inflight_ = 0;
      [[fallthrough]];
    }
    case State::HalfOpen:
      if (half_open_inflight_ >= config_.half_open_probes) return false;
      ++half_open_inflight_;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  std::lock_guard lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ != State::Closed) {
    state_ = State::Closed;
    half_open_inflight_ = 0;
  }
}

void CircuitBreaker::on_failure() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case State::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        trip_locked(Clock::now());
      }
      break;
    case State::HalfOpen:
      // A failed probe re-opens immediately; the timer restarts.
      trip_locked(Clock::now());
      break;
    case State::Open:
      // Late failure report from a call admitted before the trip; the
      // breaker is already open — just keep the failure streak honest.
      ++consecutive_failures_;
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

const char* to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "closed";
}

}  // namespace spe::net
