// MetricsRegistry property tests: counter monotonicity under concurrency,
// histogram merge associativity, registry aggregation invariants, and the
// deterministic Prometheus/JSON export formats (DESIGN.md §9).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace spe::obs {
namespace {

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(Counter, SampledValueNeverGoesBackwards) {
  Counter c;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.add(3);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = c.value();
    ASSERT_GE(v, last);
    last = v;
  }
  stop.store(true);
  writer.join();
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(0.994);
  EXPECT_DOUBLE_EQ(g.value(), 0.994);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket b covers [2^(b-1), 2^b): the same power-of-two layout as the
  // runtime's LatencyHistogram.
  EXPECT_EQ(Histogram::bucket_for(0), 0u);
  EXPECT_EQ(Histogram::bucket_for(1), 0u);
  EXPECT_EQ(Histogram::bucket_for(2), 1u);
  EXPECT_EQ(Histogram::bucket_for(3), 1u);
  EXPECT_EQ(Histogram::bucket_for(4), 2u);
  EXPECT_EQ(Histogram::bucket_for(1023), 9u);
  EXPECT_EQ(Histogram::bucket_for(1024), 10u);
  EXPECT_EQ(Histogram::bucket_for(~std::uint64_t{0}), 63u);
  EXPECT_EQ(Histogram::upper_edge(0), 1u);
  EXPECT_EQ(Histogram::upper_edge(1), 3u);
  EXPECT_EQ(Histogram::upper_edge(10), 2047u);
  EXPECT_EQ(Histogram::upper_edge(63), ~std::uint64_t{0});
}

Histogram::Snapshot sample(std::uint64_t seed, unsigned n) {
  Histogram h;
  std::uint64_t x = seed;
  for (unsigned i = 0; i < n; ++i) {
    // xorshift64: arbitrary but reproducible values across the full range.
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(x >> (x % 48));
  }
  return h.snapshot();
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const Histogram::Snapshot a = sample(1, 500);
  const Histogram::Snapshot b = sample(2, 300);
  const Histogram::Snapshot c = sample(3, 700);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + b, b + a);
  const Histogram::Snapshot zero;
  EXPECT_EQ(a + zero, a);
}

TEST(Histogram, MergeBucketsMatchesIndividualRecords) {
  Histogram individual;
  Histogram merged;
  Histogram source;
  for (std::uint64_t v : {0u, 1u, 2u, 100u, 4096u, 1u << 30}) {
    individual.record(v);
    source.record(v);
  }
  const Histogram::Snapshot s = source.snapshot();
  merged.merge_buckets(s.buckets, s.count, s.sum);
  EXPECT_EQ(merged.snapshot(), individual.snapshot());
}

TEST(MetricsRegistry, AggregateOfShardsEqualsSumOfShardSnapshots) {
  // The per-shard labelled counters and the unlabelled total are registered
  // independently; the invariant the exporter relies on is that the total
  // equals the sum over shards when both are fed the same figures.
  MetricsRegistry registry;
  const std::uint64_t per_shard[] = {7, 0, 191, 23};
  std::uint64_t sum = 0;
  for (unsigned s = 0; s < 4; ++s) {
    registry.counter("spe_reads_total{shard=\"" + std::to_string(s) + "\"}")
        .add(per_shard[s]);
    sum += per_shard[s];
  }
  registry.counter("spe_reads_total", "total").add(sum);
  std::uint64_t labelled = 0;
  for (unsigned s = 0; s < 4; ++s)
    labelled +=
        registry.counter("spe_reads_total{shard=\"" + std::to_string(s) + "\"}").value();
  EXPECT_EQ(labelled, registry.counter("spe_reads_total").value());
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.counter("spe_reads_total");
  EXPECT_THROW((void)registry.gauge("spe_reads_total"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("spe_reads_total"), std::logic_error);
  (void)registry.gauge("spe_queue_depth");
  EXPECT_THROW((void)registry.counter("spe_queue_depth"), std::logic_error);
}

TEST(MetricsRegistry, PrometheusExportIsSortedWithOneHeaderPerFamily) {
  MetricsRegistry registry;
  registry.counter("spe_reads_total{shard=\"1\"}").add(5);
  registry.counter("spe_reads_total{shard=\"0\"}", "completed reads").add(2);
  registry.counter("spe_reads_total", "completed reads").add(7);
  registry.gauge("spe_queue_depth", "queued requests").set(3);
  const std::string text = registry.render(MetricsFormat::Prometheus);
  // One TYPE header for the whole spe_reads_total family, bare name first
  // (map order), then the labelled variants sorted.
  EXPECT_NE(text.find("# TYPE spe_reads_total counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE spe_reads_total counter"),
            text.rfind("# TYPE spe_reads_total counter"));
  EXPECT_NE(text.find("spe_reads_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("spe_reads_total{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("spe_reads_total{shard=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spe_queue_depth gauge"), std::string::npos);
  EXPECT_LT(text.find("spe_queue_depth"), text.find("spe_reads_total"));
}

TEST(MetricsRegistry, HistogramExportsCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("spe_read_latency_ns", "read latency");
  h.record(1);    // bucket 0, le=1
  h.record(3);    // bucket 1, le=3
  h.record(3);    // bucket 1
  h.record(100);  // bucket 6, le=127
  const std::string text = registry.render(MetricsFormat::Prometheus);
  EXPECT_NE(text.find("spe_read_latency_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("spe_read_latency_ns_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("spe_read_latency_ns_bucket{le=\"127\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("spe_read_latency_ns_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("spe_read_latency_ns_sum 107\n"), std::string::npos);
  EXPECT_NE(text.find("spe_read_latency_ns_count 4\n"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportIsOneSortedObject) {
  MetricsRegistry registry;
  registry.counter("spe_writes_total").add(11);
  registry.gauge("spe_encrypted_fraction").set(0.5);
  registry.histogram("spe_write_latency_ns").record(2);
  const std::string json = registry.render(MetricsFormat::Json);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"spe_writes_total\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"spe_encrypted_fraction\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"spe_write_latency_ns\": {\"count\": 1, \"sum\": 2"),
            std::string::npos);
  // Sorted keys: fraction before latency before writes.
  EXPECT_LT(json.find("spe_encrypted_fraction"), json.find("spe_write_latency_ns"));
  EXPECT_LT(json.find("spe_write_latency_ns"), json.find("spe_writes_total"));
}

TEST(MetricsRegistry, MergeIntoCopiesEveryInstrumentKind) {
  MetricsRegistry src;
  src.counter("spe_journal_begin_total", "begins").add(9);
  src.gauge("spe_shards").set(4);
  src.histogram("spe_read_latency_ns").record(100);
  MetricsRegistry dest;
  dest.counter("spe_journal_begin_total").add(1);  // merge adds, not overwrites
  src.merge_into(dest);
  EXPECT_EQ(dest.counter("spe_journal_begin_total").value(), 10u);
  EXPECT_DOUBLE_EQ(dest.gauge("spe_shards").value(), 4.0);
  EXPECT_EQ(dest.histogram("spe_read_latency_ns").snapshot().count, 1u);
  EXPECT_EQ(dest.names().size(), 3u);
}

}  // namespace
}  // namespace spe::obs
