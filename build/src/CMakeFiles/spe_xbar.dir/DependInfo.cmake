
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xbar/crossbar.cpp" "src/CMakeFiles/spe_xbar.dir/xbar/crossbar.cpp.o" "gcc" "src/CMakeFiles/spe_xbar.dir/xbar/crossbar.cpp.o.d"
  "/root/repo/src/xbar/monte_carlo.cpp" "src/CMakeFiles/spe_xbar.dir/xbar/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/spe_xbar.dir/xbar/monte_carlo.cpp.o.d"
  "/root/repo/src/xbar/nodal_solver.cpp" "src/CMakeFiles/spe_xbar.dir/xbar/nodal_solver.cpp.o" "gcc" "src/CMakeFiles/spe_xbar.dir/xbar/nodal_solver.cpp.o.d"
  "/root/repo/src/xbar/polyomino.cpp" "src/CMakeFiles/spe_xbar.dir/xbar/polyomino.cpp.o" "gcc" "src/CMakeFiles/spe_xbar.dir/xbar/polyomino.cpp.o.d"
  "/root/repo/src/xbar/sneak_path.cpp" "src/CMakeFiles/spe_xbar.dir/xbar/sneak_path.cpp.o" "gcc" "src/CMakeFiles/spe_xbar.dir/xbar/sneak_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spe_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
