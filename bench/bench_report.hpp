#pragma once
// BENCH_throughput.json emission + baseline comparison, shared by loadgen
// and throughput_service. The file is a single flat JSON object so CI can
// diff runs and the repo can check in a reference point:
//
//   {"source": "loadgen", "ops": 120000, "ops_per_sec": 61234.5,
//    "p50_us": 71.0, "p95_us": 180.2, "p99_us": 411.9}
//
// write_throughput_json() first reads any existing file at the same path
// (the checked-in baseline or the previous run) and prints a one-line
// throughput delta, then overwrites it with the new numbers. Parsing is a
// deliberately tiny key scanner — the format is exactly what we write, and
// a malformed baseline only suppresses the delta line, never the write.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace spe::benchutil {

struct ThroughputReport {
  std::string source;  ///< which harness produced it ("loadgen", ...)
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Scans `text` for `"key": <number>`; false when absent/malformed.
inline bool json_number(const std::string& text, const std::string& key,
                        double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

/// Prints the delta against the previous file (if readable), then writes
/// the new report. Returns false when the file cannot be written.
inline bool write_throughput_json(const std::string& path,
                                  const ThroughputReport& report) {
  {
    std::ifstream in(path);
    std::stringstream buf;
    if (in) buf << in.rdbuf();
    double prev_ops_per_sec = 0.0, prev_p99 = 0.0;
    if (json_number(buf.str(), "ops_per_sec", prev_ops_per_sec) &&
        prev_ops_per_sec > 0.0) {
      const double pct =
          (report.ops_per_sec - prev_ops_per_sec) / prev_ops_per_sec * 100.0;
      std::printf("bench delta vs %s: %.1f -> %.1f kops/s (%+.1f%%)",
                  path.c_str(), prev_ops_per_sec / 1000.0,
                  report.ops_per_sec / 1000.0, pct);
      if (json_number(buf.str(), "p99_us", prev_p99) && prev_p99 > 0.0)
        std::printf(", p99 %.1f -> %.1f us", prev_p99, report.p99_us);
      std::printf("\n");
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return false;
  }
  char line[512];
  std::snprintf(line, sizeof line,
                "{\"source\": \"%s\", \"ops\": %llu, \"ops_per_sec\": %.1f, "
                "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}\n",
                report.source.c_str(),
                static_cast<unsigned long long>(report.ops), report.ops_per_sec,
                report.p50_us, report.p95_us, report.p99_us);
  out << line;
  return static_cast<bool>(out);
}

}  // namespace spe::benchutil
