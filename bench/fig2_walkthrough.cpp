// Fig. 2 reproduction: step-by-step encryption/decryption of a 4x4
// crossbar (Fig. 2a) and the wrong-PoE-order decryption failure (Fig. 2b).
// The paper uses a 10-bit key and 4 PoEs for the 4x4 illustration; we run
// the same walkthrough with the behavioural cipher on a 4x4 calibration.

#include <algorithm>
#include <numeric>

#include "bench_util.hpp"
#include "core/spe_cipher.hpp"
#include "ilp/poe_placement.hpp"

namespace {

void print_grid(const char* title, const spe::core::UnitLevels& levels, unsigned cols) {
  std::printf("%s\n", title);
  for (unsigned i = 0; i < levels.size(); ++i) {
    const unsigned logic = spe::device::MlcCodec::logic_bits_for_symbol(
        spe::device::MlcCodec::symbol_for_level(levels[i]));
    std::printf(" %u%u", (logic >> 1) & 1, logic & 1);
    if ((i + 1) % cols == 0) std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace spe;
  benchutil::banner("fig2_walkthrough — 4x4 crossbar encryption/decryption",
                    "Fig. 2a/2b (Section 5)");

  xbar::CrossbarParams params;
  params.rows = 4;
  params.cols = 4;
  const auto cal = core::get_calibration(params);

  // PoE set for the 4x4 from the placement ILP (the paper uses 4 PoEs).
  auto placement = ilp::solve_min_poes(4, 4, 0);
  if (!placement.feasible || placement.poes.size() < 4) {
    // Pad to the paper's 4 PoEs if the optimum is smaller.
    for (unsigned cell = 0; placement.poes.size() < 4 && cell < 16; ++cell) {
      if (std::find(placement.poes.begin(), placement.poes.end(), cell) ==
          placement.poes.end())
        placement.poes.push_back(cell);
    }
  }
  std::printf("ILP PoE set (%zu PoEs): ", placement.poes.size());
  for (unsigned p : placement.poes) std::printf("(%u,%u) ", p / 4 + 1, p % 4 + 1);
  std::printf("  [1-based, matching Fig. 2a's (row,col) labels]\n\n");

  const core::SpeKey key{0x2B5, 0x0DD};  // the illustrative "10-bit class" key
  const core::SpeCipher cipher(key, cal, placement.poes);

  // Fig. 2a plaintext (row-major logic values).
  const std::vector<std::uint8_t> plaintext = {
      0b01111000 /* 01 11 10 00 */, 0b11010110 /* 11 01 01 10 */,
      0b01101110 /* 01 10 11 10 */, 0b11010110 /* 11 01 01 10 */};

  core::UnitLevels levels = cipher.levels_from_bytes(plaintext);
  const core::UnitLevels original = levels;
  print_grid("Plaintext:", levels, 4);

  // Encrypt step by step, printing the array after each PoE pulse.
  for (unsigned steps = 1; steps <= cipher.schedule().size(); ++steps) {
    core::UnitLevels partial = cipher.levels_from_bytes(plaintext);
    cipher.encrypt_truncated(partial, steps);
    const auto& step = cipher.schedule()[steps - 1];
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Encrypt step %u: PoE (%u,%u), pulse code %u:", steps,
                  step.poe_cell / 4 + 1, step.poe_cell % 4 + 1, step.pulse_code);
    print_grid(title, partial, 4);
    if (steps == cipher.schedule().size()) levels = partial;
  }
  print_grid("Ciphertext:", levels, 4);

  // Correct decryption (reverse PoE order).
  core::UnitLevels decrypted = levels;
  cipher.decrypt(decrypted);
  print_grid("Decrypt (reverse order) ->", decrypted, 4);
  std::printf("Correct-order decryption restores plaintext: %s\n\n",
              decrypted == original ? "YES" : "NO");

  // Fig. 2b: same PoEs, wrong order.
  core::UnitLevels wrong = levels;
  std::vector<unsigned> order(cipher.schedule().size());
  std::iota(order.begin(), order.end(), 0u);
  std::rotate(order.begin(), order.begin() + 1, order.end());  // 2,3,4,1 style
  cipher.decrypt_with_order(wrong, order);
  print_grid("Decrypt with rotated PoE order (Fig. 2b) ->", wrong, 4);
  std::printf("Wrong-order decryption restores plaintext: %s (paper: incorrect plaintext)\n",
              wrong == original ? "YES" : "NO");
  return wrong == original ? 1 : 0;
}
