#include "runtime/shard.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "ecc/level_ecc.hpp"

namespace spe::runtime {

namespace {
core::SnvmmConfig shard_memory_config(unsigned id, const ServiceConfig& config) {
  core::SnvmmConfig mem = config.shard_memory;
  mem.device_seed = config.device_seed_base + id;  // distinct manufactured instance
  return mem;
}
}  // namespace

BankShard::BankShard(unsigned id, const ServiceConfig& config,
                     std::shared_ptr<const fault::FaultPlan> fault_plan)
    : id_(id),
      config_(config),
      queue_(id, config.queue_capacity, config.backpressure, config.coalesce_writes,
             counters_),
      memory_(shard_memory_config(id, config)),
      specu_(memory_, config.mode) {
  if (fault_plan)
    injector_ = std::make_unique<fault::FaultInjector>(std::move(fault_plan),
                                                       memory_.device_id());
}

bool BankShard::power_on(const core::Tpm& tpm, std::uint64_t measurement) {
  std::lock_guard lock(state_mutex_);
  return specu_.power_on(tpm, measurement);
}

void BankShard::backoff(unsigned attempt) const {
  if (config_.retry_backoff_base.count() <= 0) return;
  // Exponential: base, 2*base, 4*base ... for attempt 1, 2, 3 ...
  const unsigned shift = attempt > 0 ? attempt - 1 : 0;
  std::this_thread::sleep_for(config_.retry_backoff_base * (1u << std::min(shift, 10u)));
}

void BankShard::refresh_checks(std::uint64_t addr) {
  checks_[addr] = ecc::level_checks(memory_.block(addr).levels);
}

void BankShard::quarantine(std::uint64_t addr) {
  if (quarantined_.insert(addr).second)
    counters_.blocks_quarantined.fetch_add(1, std::memory_order_relaxed);
}

bool BankShard::verify_block(std::uint64_t addr, core::Snvmm::Block& block,
                             const std::vector<std::uint8_t>& checks) {
  for (unsigned attempt = 0; attempt <= config_.max_read_retries; ++attempt) {
    if (attempt > 0) {
      counters_.read_retries.fetch_add(1, std::memory_order_relaxed);
      backoff(attempt);
    }
    // Sense a copy: transient noise lives only in the read-out, so a
    // re-sense of the untouched array can succeed where the first failed.
    std::vector<std::uint8_t> sensed = block.levels;
    if (injector_ && injector_->enabled()) injector_->corrupt_sense(addr, sensed);
    const ecc::LevelDecodeResult result = ecc::verify_levels(sensed, checks);
    if (!result.ok || result.corrected_cells > 0)
      counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
    if (result.ok) {
      counters_.faults_corrected.fetch_add(result.corrected_cells,
                                           std::memory_order_relaxed);
      // Scrub-on-read: the verified copy is the ground truth; writing it
      // back heals drift accumulated in the array (stuck cells re-pin at
      // the next sense and are re-corrected then).
      block.levels = std::move(sensed);
      return true;
    }
  }
  return false;
}

std::vector<std::uint8_t> BankShard::read_block_guarded(std::uint64_t addr) {
  if (quarantined_.contains(addr)) throw QuarantinedBlockError(id_, addr);
  if (config_.ecc_enabled && memory_.has_block(addr)) {
    const auto shadow = checks_.find(addr);
    if (shadow != checks_.end() &&
        !verify_block(addr, memory_.block(addr), shadow->second)) {
      counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
      quarantine(addr);
      throw UncorrectableFaultError(id_, addr);
    }
  }
  auto data = specu_.read_block(addr);
  // The read changed the resting state (decrypted in serial mode,
  // re-encrypted in parallel mode); re-shadow it.
  if (config_.ecc_enabled) refresh_checks(addr);
  return data;
}

void BankShard::write_block_guarded(std::uint64_t addr,
                                    std::span<const std::uint8_t> data) {
  // A rewrite lifts quarantine by remapping the block to a spare physical
  // location (fresh fault draws under the bumped epoch).
  if (quarantined_.erase(addr) > 0 && injector_) {
    injector_->remap(addr);
    counters_.blocks_remapped.fetch_add(1, std::memory_order_relaxed);
  }

  for (unsigned round = 0;; ++round) {
    for (unsigned attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
      if (attempt > 0) {
        counters_.write_retries.fetch_add(1, std::memory_order_relaxed);
        backoff(attempt);
      }
      specu_.write_block(addr, data);
      core::Snvmm::Block& block = memory_.block(addr);
      if (config_.ecc_enabled) refresh_checks(addr);
      if (!injector_ || !injector_->enabled()) return;
      injector_->corrupt_program(addr, block.levels);
      if (!config_.ecc_enabled || !config_.verify_writes) return;  // faults stay latent
      // Program-verify: correcting in place models re-programming the
      // cells that missed their target.
      const ecc::LevelDecodeResult result =
          ecc::verify_levels(block.levels, checks_.at(addr));
      if (!result.ok || result.corrected_cells > 0)
        counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
      if (result.ok) {
        counters_.faults_corrected.fetch_add(result.corrected_cells,
                                             std::memory_order_relaxed);
        return;
      }
    }
    if (round > 0 || !injector_) break;  // one remap round, then give up
    injector_->remap(addr);
    counters_.blocks_remapped.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
  quarantine(addr);
  throw UncorrectableFaultError(id_, addr);
}

void BankShard::execute_batch(std::vector<Request> batch) {
  std::lock_guard lock(state_mutex_);
  for (Request& req : batch) {
    // Stats are recorded before the promise is fulfilled so a client that
    // returns from .get() and immediately snapshots sees its own op counted.
    if (req.kind == Request::Kind::Read) {
      try {
        auto data = read_block_guarded(req.block_addr);
        counters_.read_latency.record(std::chrono::steady_clock::now() - req.enqueued);
        counters_.reads_completed.fetch_add(1, std::memory_order_relaxed);
        req.read_promise.set_value(std::move(data));
      } catch (...) {
        req.read_promise.set_exception(std::current_exception());
      }
    } else {
      try {
        write_block_guarded(req.block_addr, req.data);
        const auto done = std::chrono::steady_clock::now();
        counters_.writes_completed.fetch_add(req.write_waiters.size(),
                                             std::memory_order_relaxed);
        for (Request::WriteWaiter& waiter : req.write_waiters) {
          counters_.write_latency.record(done - waiter.enqueued);
          waiter.promise.set_value();
        }
      } catch (...) {
        for (Request::WriteWaiter& waiter : req.write_waiters)
          waiter.promise.set_exception(std::current_exception());
      }
    }
  }
}

unsigned BankShard::scavenge(unsigned max_blocks) {
  unsigned secured = 0;
  for (unsigned i = 0; i < max_blocks; ++i) {
    // One block per lock acquisition so foreground requests never wait for
    // a whole sweep (the paper's engine likewise steps between accesses).
    std::lock_guard lock(state_mutex_);
    const auto start = std::chrono::steady_clock::now();
    const std::optional<std::uint64_t> addr = specu_.background_encrypt_one();
    if (!addr) break;
    if (config_.ecc_enabled) refresh_checks(*addr);
    counters_.background_latency.record(std::chrono::steady_clock::now() - start);
    counters_.background_encrypted.fetch_add(1, std::memory_order_relaxed);
    ++secured;
  }
  return secured;
}

unsigned BankShard::scrub(unsigned max_blocks) {
  std::lock_guard lock(state_mutex_);
  if (!config_.ecc_enabled) return 0;
  auto& blocks = memory_.blocks();
  const std::size_t resident = blocks.size();
  if (resident == 0) return 0;

  unsigned scrubbed = 0;
  auto it = blocks.lower_bound(scrub_cursor_);
  const std::size_t visits = std::min<std::size_t>(max_blocks, resident);
  for (std::size_t v = 0; v < visits; ++v) {
    if (it == blocks.end()) it = blocks.begin();
    const std::uint64_t addr = it->first;
    core::Snvmm::Block& block = it->second;
    ++it;
    const auto shadow = checks_.find(addr);
    if (quarantined_.contains(addr) || shadow == checks_.end()) continue;
    // One scrub tick: time passes for this block (drift accumulates, stuck
    // cells re-pin), then the code repairs what it can.
    if (injector_ && injector_->enabled()) injector_->age_block(addr, block.levels);
    const ecc::LevelDecodeResult result =
        ecc::verify_levels(block.levels, shadow->second);
    counters_.blocks_scrubbed.fetch_add(1, std::memory_order_relaxed);
    ++scrubbed;
    if (!result.ok || result.corrected_cells > 0)
      counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
    if (result.ok) {
      counters_.faults_corrected.fetch_add(result.corrected_cells,
                                           std::memory_order_relaxed);
    } else {
      counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
      quarantine(addr);
    }
  }
  scrub_cursor_ = it == blocks.end() ? 0 : it->first;
  return scrubbed;
}

ShardStatsSnapshot BankShard::stats_snapshot() const {
  ShardStatsSnapshot snap = snapshot_counters(id_, counters_);
  std::lock_guard lock(state_mutex_);
  snap.plaintext_blocks = specu_.plaintext_blocks();
  snap.resident_blocks = memory_.block_count();
  snap.quarantined_now = quarantined_.size();
  snap.injected_faults = injector_ ? injector_->counts().total() : 0;
  return snap;
}

double BankShard::encrypted_fraction() const {
  std::lock_guard lock(state_mutex_);
  return specu_.encrypted_fraction();
}

core::Specu::Stats BankShard::specu_stats() const {
  std::lock_guard lock(state_mutex_);
  return specu_.stats();
}

}  // namespace spe::runtime
