file(REMOVE_RECURSE
  "libspe_crypto.a"
)
