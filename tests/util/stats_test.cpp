#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spe::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(MeanStddev, VectorHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(mean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 1.0, 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> yneg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
  EXPECT_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(ChiSquare, MatchesHandComputation) {
  const std::vector<double> obs = {12, 8};
  const std::vector<double> exp = {10, 10};
  EXPECT_NEAR(chi_square(obs, exp), 0.4 + 0.4, 1e-12);
  EXPECT_THROW((void)chi_square({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)chi_square({1.0}, {0.0}), std::invalid_argument);
}

TEST(MaxAllowedFailures, NistTableValues) {
  // The paper: "with a significance level of 0.01, not more than 5
  // sequences (of 150) are allowed to fail a test."
  EXPECT_EQ(max_allowed_failures(150, 0.01), 5u);
  // SP 800-22 canonical: 1000 sequences at alpha 0.01 -> <= 19.
  EXPECT_EQ(max_allowed_failures(1000, 0.01), 19u);
  EXPECT_EQ(max_allowed_failures(0, 0.01), 0u);
}

}  // namespace
}  // namespace spe::util
