file(REMOVE_RECURSE
  "libspe_wear.a"
)
