#pragma once
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over byte ranges.
// Used by the versioned NVMM image format (core/snvmm_io v2) to detect
// per-block and journal-entry corruption on load. Incremental: feed the
// previous return value back as `seed` to extend a running checksum.

#include <cstddef>
#include <cstdint>

namespace spe::util {

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace spe::util
