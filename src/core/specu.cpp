#include "core/specu.hpp"

#include <stdexcept>

namespace spe::core {

namespace {
// Per-pulse ageing relative to a full write (Section 5.2 / wear module).
constexpr double kSpePulseWear = 0.02;
}  // namespace

Specu::Specu(Snvmm& memory, SpeMode mode, std::vector<unsigned> poes)
    : memory_(memory), mode_(mode), poes_(std::move(poes)) {
  calibration_ = get_calibration(memory_.device_params());
}

bool Specu::power_on(const Tpm& tpm, std::uint64_t platform_measurement) {
  const auto key = tpm.authenticate_and_release(memory_.device_id(), platform_measurement);
  if (!key) return false;
  ciphers_.clear();
  for (unsigned unit = 0; unit < memory_.config().units_per_block; ++unit)
    ciphers_.push_back(std::make_unique<SpeCipher>(*key, calibration_, poes_, unit));
  return true;
}

unsigned Specu::power_down() {
  if (!powered()) return 0;
  unsigned secured = 0;
  for (std::uint64_t addr : plaintext_) {
    encrypt_block_in_place(memory_.block(addr));
    ++secured;
  }
  plaintext_.clear();
  ciphers_.clear();  // volatile key storage wiped
  return secured;
}

unsigned Specu::power_loss() {
  const auto abandoned = static_cast<unsigned>(plaintext_.size());
  ciphers_.clear();
  // plaintext_ intentionally kept: those blocks really are plaintext in the
  // array now, with no powered controller to know it.
  return abandoned;
}

void Specu::encrypt_block_in_place(Snvmm::Block& block) {
  const unsigned cells = calibration_->cell_count();
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    UnitLevels levels(block.levels.begin() + unit * cells,
                      block.levels.begin() + (unit + 1) * cells);
    cipher(unit).encrypt(levels);
    std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
    ++stats_.encrypt_ops;
    // Section 5.2: each PoE pulse ages the cells by ~2% of a full write.
    block.wear += kSpePulseWear * static_cast<double>(cipher(unit).schedule().size());
  }
  block.encrypted = true;
}

void Specu::decrypt_block_in_place(Snvmm::Block& block) {
  const unsigned cells = calibration_->cell_count();
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    UnitLevels levels(block.levels.begin() + unit * cells,
                      block.levels.begin() + (unit + 1) * cells);
    cipher(unit).decrypt(levels);
    std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
    ++stats_.decrypt_ops;
    block.wear += kSpePulseWear * static_cast<double>(cipher(unit).schedule().size());
  }
  block.encrypted = false;
}

void Specu::write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data) {
  if (!powered()) throw std::logic_error("Specu::write_block: not powered / no key");
  if (data.size() != memory_.block_bytes())
    throw std::invalid_argument("Specu::write_block: bad block size");

  Snvmm::Block& block = memory_.block(block_addr);
  block.wear += 1.0;  // full write: one RESET/SET-class cycle per cell
  const unsigned cells = calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  // Write phase: program plaintext band centres.
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    const UnitLevels levels =
        cipher(unit).levels_from_bytes(data.subspan(unit * unit_bytes, unit_bytes));
    std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
  }
  block.encrypted = false;
  plaintext_.erase(block_addr);
  // Encryption phase (all transistors ON, PoE pulses applied).
  encrypt_block_in_place(block);
  ++stats_.writes;
}

std::vector<std::uint8_t> Specu::read_block(std::uint64_t block_addr) {
  if (!powered()) throw std::logic_error("Specu::read_block: not powered / no key");
  Snvmm::Block& block = memory_.block(block_addr);
  if (block.encrypted) decrypt_block_in_place(block);

  const unsigned cells = calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  std::vector<std::uint8_t> out(memory_.block_bytes(), 0);
  for (unsigned unit = 0; unit < ciphers_.size(); ++unit) {
    const UnitLevels levels(block.levels.begin() + unit * cells,
                            block.levels.begin() + (unit + 1) * cells);
    cipher(unit).bytes_from_levels(levels,
                                   std::span(out).subspan(unit * unit_bytes, unit_bytes));
  }
  ++stats_.reads;

  if (mode_ == SpeMode::Parallel) {
    encrypt_block_in_place(block);
  } else {
    plaintext_.insert(block_addr);
  }
  return out;
}

unsigned Specu::background_encrypt(unsigned max_blocks) {
  unsigned secured = 0;
  while (secured < max_blocks && background_encrypt_one()) ++secured;
  return secured;
}

std::optional<std::uint64_t> Specu::background_encrypt_one() {
  if (!powered() || plaintext_.empty()) return std::nullopt;
  const std::uint64_t addr = *plaintext_.begin();
  plaintext_.erase(plaintext_.begin());
  encrypt_block_in_place(memory_.block(addr));
  return addr;
}

double Specu::encrypted_fraction() const {
  if (memory_.block_count() == 0) return 1.0;
  std::size_t encrypted = 0;
  for (const auto& [addr, block] : memory_.blocks()) encrypted += block.encrypted ? 1 : 0;
  return static_cast<double>(encrypted) / static_cast<double>(memory_.block_count());
}

}  // namespace spe::core
