#pragma once
// ThrEshold Adaptive Memristor (TEAM) model — Kvatinsky et al., IEEE TCAS-I
// 2013 (the paper's ref [15]). The device state w is normalised to [0, 1]
// (w = 0 is the fully-ON, low-resistance state). The state moves only when
// the device current exceeds the polarity-specific threshold:
//
//   dw/dt = k_off * (i/i_off - 1)^alpha_off * f_off(w)   for i >  i_off > 0
//   dw/dt = k_on  * (i/i_on  - 1)^alpha_on  * f_on(w)    for i <  i_on  < 0
//   dw/dt = 0                                            otherwise
//
// with k_off > 0 (drives w toward 1 / high resistance) and k_on < 0. The
// window functions are the TEAM exponential windows, which softly pin w at
// the boundaries. The resistance map is linear in w between R_on and R_off.
//
// Default parameters are calibrated so a +1 V pulse of ~0.07 us moves a cell
// from the MLC-2 "10" band to the "00" band (~172 kOhm), and the reverse
// -1 V pulse needs a much shorter width (~0.015 us), reproducing the
// hysteresis asymmetry of the paper's Fig. 5.

#include <cstdint>

namespace spe::device {

/// Physical/fitting parameters of a TEAM memristor.
struct TeamParams {
  double r_on = 10e3;      ///< Resistance at w = 0 [Ohm].
  double r_off = 200e3;    ///< Resistance at w = 1 [Ohm].
  double i_off = 1e-6;     ///< Positive current threshold [A].
  double i_on = -1e-6;     ///< Negative current threshold [A].
  double k_off = 1.15e6;   ///< OFF-switching rate [1/s].
  double k_on = -5.5e6;    ///< ON-switching rate [1/s] (faster: hysteresis).
  double alpha_off = 1.0;  ///< OFF-switching nonlinearity exponent.
  double alpha_on = 1.0;   ///< ON-switching nonlinearity exponent.
  double window_c = 0.06;  ///< Exponential window decay constant.
  double window_edge = 0.02;  ///< Window pinning distance from each boundary.

  /// Resistance for a given normalised state (linear ion-drift map).
  [[nodiscard]] double resistance(double w) const noexcept;

  /// Inverse of resistance(): the state that produces resistance r
  /// (clamped to [0, 1]).
  [[nodiscard]] double state_for_resistance(double r) const noexcept;
};

/// A single TEAM memristor with explicit state. Integration is RK4 with a
/// fixed step chosen as a fraction of the pulse width.
class TeamModel {
public:
  explicit TeamModel(TeamParams params = {}, double initial_state = 0.5) noexcept;

  [[nodiscard]] const TeamParams& params() const noexcept { return params_; }
  [[nodiscard]] double state() const noexcept { return w_; }
  void set_state(double w) noexcept;

  [[nodiscard]] double resistance() const noexcept { return params_.resistance(w_); }
  void set_resistance(double r) noexcept { w_ = params_.state_for_resistance(r); }

  /// State derivative for a given applied device voltage (current computed
  /// through the instantaneous resistance).
  [[nodiscard]] double dw_dt(double w, double voltage) const noexcept;

  /// Applies `voltage` across the device for `duration` seconds, advancing
  /// the state with `steps` RK4 steps (default resolves 0.1 us pulses well).
  void apply_voltage(double voltage, double duration, int steps = 200);

  /// Device current at the present state for an applied voltage.
  [[nodiscard]] double current(double voltage) const noexcept {
    return voltage / resistance();
  }

private:
  TeamParams params_;
  double w_;
};

}  // namespace spe::device
