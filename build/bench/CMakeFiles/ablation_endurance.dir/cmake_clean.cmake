file(REMOVE_RECURSE
  "CMakeFiles/ablation_endurance.dir/ablation_endurance.cpp.o"
  "CMakeFiles/ablation_endurance.dir/ablation_endurance.cpp.o.d"
  "ablation_endurance"
  "ablation_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
