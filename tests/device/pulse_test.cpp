#include "device/pulse.hpp"

#include <gtest/gtest.h>

namespace spe::device {
namespace {

TEST(PulseLibrary, HasThirtyTwoPulses) {
  PulseLibrary lib;
  EXPECT_EQ(lib.size(), 32u);
  EXPECT_EQ(lib.all().size(), 32u);
}

TEST(PulseLibrary, PolarityLayout) {
  // Codes 0..15 are +1V, 16..31 are -1V (5-bit code = polarity * 16 + width).
  PulseLibrary lib;
  for (unsigned code = 0; code < 16; ++code) EXPECT_GT(lib.pulse(code).voltage, 0.0);
  for (unsigned code = 16; code < 32; ++code) EXPECT_LT(lib.pulse(code).voltage, 0.0);
}

TEST(PulseLibrary, WidthsAreLogSpacedAndMonotone) {
  PulseLibrary lib(0.01e-6, 0.1e-6);
  for (unsigned i = 1; i < 16; ++i)
    EXPECT_GT(lib.pulse(i).width, lib.pulse(i - 1).width);
  EXPECT_NEAR(lib.pulse(0).width, 0.01e-6, 1e-12);
  EXPECT_NEAR(lib.pulse(15).width, 0.1e-6, 1e-12);
  // Log spacing: constant ratio between neighbours.
  const double ratio = lib.pulse(1).width / lib.pulse(0).width;
  for (unsigned i = 2; i < 16; ++i)
    EXPECT_NEAR(lib.pulse(i).width / lib.pulse(i - 1).width, ratio, 1e-9);
}

TEST(PulseLibrary, CoversPaperFig2Widths) {
  // Fig. 2a uses 0.04/0.07/0.1 us pulses — all within the library range.
  PulseLibrary lib;
  for (double w : {0.04e-6, 0.07e-6, 0.1e-6}) {
    const unsigned code = lib.nearest_code(1.0, w);
    EXPECT_NEAR(lib.pulse(code).width, w, 0.2 * w);
  }
}

TEST(PulseLibrary, NearestCodeRespectsPolarity) {
  PulseLibrary lib;
  const unsigned pos = lib.nearest_code(1.0, 0.05e-6);
  const unsigned neg = lib.nearest_code(-1.0, 0.05e-6);
  EXPECT_LT(pos, 16u);
  EXPECT_GE(neg, 16u);
  EXPECT_NEAR(lib.pulse(pos).width, lib.pulse(neg).width, 1e-12);
}

TEST(PulseLibrary, RejectsBadRange) {
  EXPECT_THROW(PulseLibrary(0.0, 0.1e-6), std::invalid_argument);
  EXPECT_THROW(PulseLibrary(0.1e-6, 0.1e-6), std::invalid_argument);
}

TEST(PulseLibrary, OutOfRangeCodeThrows) {
  PulseLibrary lib;
  EXPECT_THROW((void)lib.pulse(32), std::out_of_range);
}

}  // namespace
}  // namespace spe::device
