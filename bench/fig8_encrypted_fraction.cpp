// Fig. 8 reproduction: percentage of memory kept in encrypted form over
// time, per workload and scheme. Paper: AES and SPE-parallel 100%,
// SPE-serial 99.4% on average, i-NVMM ~73% (27% of the footprint sits
// decrypted in its working pool).

#include "bench_util.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace spe;
  benchutil::banner("fig8_encrypted_fraction — % of memory kept encrypted",
                    "Fig. 8 (Section 7)");

  sim::SimConfig cfg;
  cfg.instructions = benchutil::env_or("SPE_SIM_INSTR", 6'000'000);

  const std::vector<core::Scheme> schemes = {
      core::Scheme::None, core::Scheme::Aes, core::Scheme::INvmm,
      core::Scheme::SpeSerial, core::Scheme::SpeParallel};
  const auto grid = sim::run_grid(schemes, cfg);

  util::Table table({"workload", "AES", "i-NVMM", "SPE-serial", "SPE-parallel"});
  for (const auto& row : grid) {
    table.add_row({row[0].workload,
                   util::Table::pct(row[1].mean_encrypted_fraction),
                   util::Table::pct(row[2].mean_encrypted_fraction),
                   util::Table::pct(row[3].mean_encrypted_fraction),
                   util::Table::pct(row[4].mean_encrypted_fraction)});
  }
  table.print();

  std::printf("\nAverages (paper in parentheses):\n");
  const char* paper[] = {"", "100%", "73%", "99.4%", "100%"};
  for (std::size_t s = 1; s < schemes.size(); ++s) {
    const auto column = sim::grid_column(grid, s);
    std::printf("  %-13s %6.1f%%   (%s)\n", core::scheme_name(schemes[s]).c_str(),
                100.0 * sim::mean_encrypted_fraction(column), paper[s]);
  }
  std::printf("\nbzip2-style tight-reuse workloads keep i-NVMM's working pool\n"
              "plaintext (its best case); SPE-serial's plaintext pool is bounded\n"
              "by the idle window, keeping coverage near 100%% everywhere.\n");
  return 0;
}
