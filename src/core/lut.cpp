#include "core/lut.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>

#include "ilp/poe_placement.hpp"

namespace spe::core {

const std::vector<unsigned>& default_poes_8x8() {
  // 16 PoEs, two per column, rows staggered so every cell is covered by the
  // physically-calibrated polyominoes and polyomino overlap stays small.
  // Derived from solve_fixed_poes(8, 8, 16) with the relaxed boundary rule;
  // regenerated and validated by bench/fig6_coverage and the ilp tests.
  static const std::vector<unsigned> kPoes = {
      1 * 8 + 0, 6 * 8 + 0,  // column 0: rows 1, 6
      3 * 8 + 1, 4 * 8 + 1,  // column 1: rows 3, 4
      0 * 8 + 2, 5 * 8 + 2,  // column 2: rows 0, 5
      2 * 8 + 3, 7 * 8 + 3,  // column 3: rows 2, 7
      1 * 8 + 4, 6 * 8 + 4,  // column 4: rows 1, 6
      3 * 8 + 5, 4 * 8 + 5,  // column 5: rows 3, 4
      0 * 8 + 6, 5 * 8 + 6,  // column 6: rows 0, 5
      2 * 8 + 7, 7 * 8 + 7,  // column 7: rows 2, 7
  };
  return kPoes;
}

std::vector<unsigned> poes_for_crossbar(unsigned rows, unsigned cols, std::uint64_t seed,
                                        double time_limit_ms) {
  if (rows == 8 && cols == 8) return default_poes_8x8();
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("poes_for_crossbar: empty crossbar");

  using Key = std::tuple<unsigned, unsigned, std::uint64_t>;
  static std::mutex mutex;
  static std::map<Key, std::vector<unsigned>> cache;

  const Key key{rows, cols, seed};
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }

  // Solve outside the lock (seconds-scale for big crossbars); a racing
  // duplicate solve is deterministic per seed, so last-write-wins is safe.
  ilp::PortfolioOptions options;
  options.base.seed = seed;
  options.base.time_limit_ms = time_limit_ms;
  // Bounded exact-search budget (same cap as bench/placement_frontier):
  // with the 50M-node default a 16x16 service construction would burn ~10
  // minutes proving nothing before the heuristics get a turn.
  options.base.node_limit = 200'000;
  const unsigned cells = rows * cols;
  const auto placement =
      ilp::solve_min_poes_portfolio(rows, cols, cells / 16, options);
  if (!placement.feasible)
    throw std::runtime_error("poes_for_crossbar: no feasible PoE placement for " +
                             std::to_string(rows) + "x" + std::to_string(cols));

  std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(key, placement.poes).first->second;
}

AddressLut::AddressLut(std::vector<unsigned> poe_cells, unsigned rows, unsigned cols)
    : cells_(std::move(poe_cells)), rows_(rows), cols_(cols) {
  if (cells_.empty()) throw std::invalid_argument("AddressLut: empty PoE set");
  for (unsigned c : cells_)
    if (c >= rows_ * cols_) throw std::out_of_range("AddressLut: PoE outside crossbar");
}

unsigned AddressLut::cell(unsigned idx) const {
  if (idx >= cells_.size()) throw std::out_of_range("AddressLut::cell");
  return cells_[idx];
}

xbar::PoE AddressLut::poe(unsigned idx) const {
  const unsigned flat = cell(idx);
  return {flat / cols_, flat % cols_};
}

std::vector<unsigned> AddressLut::permuted_order(util::CoupledLcg& prng) const {
  std::vector<unsigned> order(cells_.size());
  for (unsigned i = 0; i < order.size(); ++i) order[i] = i;
  for (unsigned i = static_cast<unsigned>(order.size()); i-- > 1;) {
    const unsigned j = prng.below(i + 1);
    std::swap(order[i], order[j]);
  }
  return order;
}

VoltageLut::VoltageLut(device::PulseLibrary library) : library_(std::move(library)) {}

unsigned VoltageLut::next_code(util::CoupledLcg& prng) const {
  return prng.next_bits(5) % library_.size();
}

}  // namespace spe::core
