#include "sim/nvmm.hpp"

#include <algorithm>

namespace spe::sim {

NvmmTiming::NvmmTiming(NvmmConfig config) : config_(config) {
  bank_free_at_.assign(config_.banks, 0);
}

std::uint64_t NvmmTiming::access(std::uint64_t now, std::uint64_t addr, bool is_write,
                                 std::uint64_t extra_busy_cycles) {
  // Block-interleaved bank mapping (64B granularity).
  const unsigned bank = static_cast<unsigned>((addr / 64) % config_.banks);
  const std::uint64_t service =
      static_cast<std::uint64_t>(is_write ? config_.write_mem_cycles
                                          : config_.read_mem_cycles) *
      config_.cpu_cycles_per_mem_cycle;

  const std::uint64_t start = std::max(now, bank_free_at_[bank]);
  const std::uint64_t queue = start - now;
  stats_.bank_conflict_cycles += queue;
  bank_free_at_[bank] = start + service + extra_busy_cycles;
  if (is_write)
    ++stats_.writes;
  else
    ++stats_.reads;
  return queue + service;
}

}  // namespace spe::sim
