// Multi-threaded fault stress for the hardened memory service: 4+ client
// workers hammer a shared address range while the deterministic injector
// pins stuck cells, flips sense bits and drops programming pulses, with the
// background scavenger + scrub thread live. Invariants checked:
//   * no lost writes — every read returns the latest acknowledged version's
//     payload for that address, or a typed fault error (never junk);
//   * uncorrectable faults surface as UncorrectableFaultError /
//     QuarantinedBlockError, never as silently wrong data;
//   * stats stay consistent: corrections imply injections, quarantine
//     counters match the snapshot, every submitted op is accounted for.
// The suite is part of test_runtime so the CI ThreadSanitizer job runs it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/memory_service.hpp"

namespace spe::runtime {
namespace {

using namespace std::chrono_literals;

// Payload = f(addr, version) with every byte identifying both, so a read
// can verify it saw *some complete acknowledged version* without knowing
// which one a racing writer published last.
std::vector<std::uint8_t> tagged_block(std::uint64_t addr, unsigned version,
                                       unsigned block_bytes) {
  std::vector<std::uint8_t> data(block_bytes);
  for (unsigned i = 0; i < block_bytes; ++i)
    data[i] = static_cast<std::uint8_t>(7 * addr + 37 * version + 31 * i);
  return data;
}

ServiceConfig faulty_config() {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.worker_threads = 4;
  cfg.queue_capacity = 128;
  cfg.scavenger_interval = 100us;  // keep the background thread busy
  cfg.scrub_blocks_per_pass = 4;
  cfg.retry_backoff_base = std::chrono::microseconds{0};  // fast retries
  cfg.fault_injection = true;
  cfg.fault_seed = 0xBADC0FFEE;
  cfg.faults.stuck_at_lrs_rate = 4e-4;
  cfg.faults.stuck_at_hrs_rate = 4e-4;
  cfg.faults.read_noise_rate = 2e-4;
  cfg.faults.dropped_pulse_rate = 1e-4;
  cfg.faults.drift_sigma = 0.1;
  return cfg;
}

TEST(FaultStress, ConcurrentClientsNeverSeeSilentCorruption) {
  constexpr unsigned kClients = 4;
  constexpr unsigned kAddrsPerClient = 24;
  constexpr unsigned kVersions = 8;

  MemoryService service(faulty_config());
  const unsigned block_bytes = service.block_bytes();

  std::atomic<std::uint64_t> writes_acked{0};
  std::atomic<std::uint64_t> reads_ok{0};
  std::atomic<std::uint64_t> reads_faulted{0};
  std::atomic<std::uint64_t> silent_corruptions{0};
  std::atomic<std::uint64_t> write_faults{0};

  // Each client owns a disjoint address range, so the latest acknowledged
  // version per address is known exactly — any read that returns data
  // which is neither a fault error nor the acknowledged payload is a lost
  // or torn write.
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t base = 1000ull * c;
      std::vector<int> acked(kAddrsPerClient, -1);
      for (unsigned v = 0; v < kVersions; ++v) {
        for (unsigned a = 0; a < kAddrsPerClient; ++a) {
          const std::uint64_t addr = base + a;
          try {
            service.write(addr, tagged_block(addr, v, block_bytes));
            acked[a] = static_cast<int>(v);
            writes_acked.fetch_add(1, std::memory_order_relaxed);
          } catch (const UncorrectableFaultError&) {
            write_faults.fetch_add(1, std::memory_order_relaxed);
          }
          if (acked[a] < 0) continue;
          try {
            const auto got = service.read(addr);
            const auto want =
                tagged_block(addr, static_cast<unsigned>(acked[a]), block_bytes);
            if (got == want)
              reads_ok.fetch_add(1, std::memory_order_relaxed);
            else
              silent_corruptions.fetch_add(1, std::memory_order_relaxed);
          } catch (const UncorrectableFaultError&) {
            reads_faulted.fetch_add(1, std::memory_order_relaxed);
          } catch (const QuarantinedBlockError&) {
            reads_faulted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // The invariant the whole subsystem exists for:
  EXPECT_EQ(silent_corruptions.load(), 0u);
  // The workload must have actually exercised the machinery.
  EXPECT_GT(writes_acked.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);

  const ServiceStatsSnapshot stats = service.stats();
  // Every client-observed op is accounted in the service counters. Writes
  // that failed with a typed error are not acked, so completed >= acked
  // (retried/remapped writes complete on a later attempt).
  EXPECT_GE(stats.totals.writes_completed, writes_acked.load());
  EXPECT_GE(stats.totals.reads_completed, reads_ok.load());
  // Corrections imply injected faults, and the injector materialised at
  // least as many events as the verifier corrected.
  EXPECT_GE(stats.totals.injected_faults, stats.totals.faults_corrected > 0 ? 1u : 0u);
  if (stats.totals.faults_detected > 0 || stats.totals.faults_corrected > 0)
    EXPECT_GT(stats.totals.injected_faults, 0u);
  // Quarantine bookkeeping: currently-quarantined blocks can never exceed
  // total quarantine insertions.
  EXPECT_LE(stats.totals.quarantined_now, stats.totals.blocks_quarantined);
  // Uncorrectable client observations came from somewhere: each one is an
  // abandoned op or scrub.
  EXPECT_LE(reads_faulted.load() > 0 ? 1u : 0u, stats.totals.faults_uncorrectable +
                                                    stats.totals.blocks_quarantined);
  // The human-readable report carries the resilience line.
  const std::string report = stats.to_string();
  EXPECT_NE(report.find("resilience:"), std::string::npos);
  EXPECT_NE(report.find("injected="), std::string::npos);
  service.stop();
}

// A block that goes uncorrectable is surfaced on read and recovers after a
// rewrite (remap lifts the quarantine), all under concurrent traffic.
TEST(FaultStress, QuarantinedBlocksRecoverViaRewrite) {
  ServiceConfig cfg = faulty_config();
  // Dense stuck faults: some blocks are guaranteed to exceed the one-cell-
  // per-group SEC-DED budget at their first physical location.
  cfg.faults.stuck_at_lrs_rate = 6e-3;
  cfg.faults.stuck_at_hrs_rate = 6e-3;
  cfg.faults.read_noise_rate = 0.0;
  cfg.faults.dropped_pulse_rate = 0.0;
  cfg.faults.drift_sigma = 0.0;
  MemoryService service(cfg);
  const unsigned block_bytes = service.block_bytes();

  unsigned uncorrectable_seen = 0;
  for (std::uint64_t addr = 0; addr < 192; ++addr) {
    const auto data = tagged_block(addr, 1, block_bytes);
    bool stored = false;
    try {
      service.write(addr, data);
      stored = true;
    } catch (const UncorrectableFaultError&) {
      ++uncorrectable_seen;
      // Rewrite: quarantine lifts, block remaps to spare cells. A handful
      // of pathological draws can stay bad across the retry chain, so the
      // rewrite may legitimately fail again — just verify it never lies.
      try {
        service.write(addr, data);
        stored = true;
      } catch (const UncorrectableFaultError&) {
      }
    }
    if (!stored) continue;
    try {
      EXPECT_EQ(service.read(addr), data) << addr;
    } catch (const UncorrectableFaultError&) {
    } catch (const QuarantinedBlockError&) {
    }
  }
  const ServiceStatsSnapshot stats = service.stats();
  // With ~3 stuck cells per block expected, remap/quarantine machinery
  // must actually have fired somewhere in 192 blocks.
  EXPECT_GT(stats.totals.faults_detected, 0u);
  EXPECT_GT(stats.totals.injected_faults, 0u);
  if (uncorrectable_seen > 0) EXPECT_GT(stats.totals.blocks_remapped, 0u);
  service.stop();
}

// Injection disabled -> the whole resilience path is invisible: no faults
// recorded, reads exact, and the injector stays null.
TEST(FaultStress, DisabledInjectionIsInvisible) {
  ServiceConfig cfg = faulty_config();
  cfg.fault_injection = false;
  MemoryService service(cfg);
  for (std::uint64_t addr = 0; addr < 32; ++addr) {
    const auto data = tagged_block(addr, 2, service.block_bytes());
    service.write(addr, data);
    EXPECT_EQ(service.read(addr), data);
  }
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.totals.injected_faults, 0u);
  EXPECT_EQ(stats.totals.faults_detected, 0u);
  EXPECT_EQ(stats.totals.faults_uncorrectable, 0u);
  EXPECT_EQ(stats.totals.blocks_quarantined, 0u);
  for (unsigned s = 0; s < service.shard_count(); ++s)
    EXPECT_EQ(service.shard(s).injector(), nullptr);
  service.stop();
}

}  // namespace
}  // namespace spe::runtime
