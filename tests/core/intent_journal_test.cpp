#include "core/intent_journal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace spe::core {
namespace {

JournalEntry entry(std::uint64_t addr, JournalOp op, std::uint32_t total) {
  JournalEntry e;
  e.block_addr = addr;
  e.op = op;
  e.epoch = 0xE70C;
  e.total = total;
  return e;
}

TEST(IntentJournal, BeginAdvanceCommitLifecycle) {
  IntentJournal journal;
  EXPECT_TRUE(journal.empty());
  journal.begin(entry(7, JournalOp::Encrypt, 64));
  ASSERT_NE(journal.find(7), nullptr);
  EXPECT_EQ(journal.find(7)->progress, 0u);
  journal.advance(7);
  journal.advance(7);
  EXPECT_EQ(journal.find(7)->progress, 2u);
  journal.commit(7);
  EXPECT_EQ(journal.find(7), nullptr);
  EXPECT_TRUE(journal.empty());
}

TEST(IntentJournal, BeginReplacesOpenIntent) {
  IntentJournal journal;
  journal.begin(entry(7, JournalOp::Program, 4));
  journal.advance(7);
  journal.begin(entry(7, JournalOp::Encrypt, 64));
  ASSERT_NE(journal.find(7), nullptr);
  EXPECT_EQ(journal.find(7)->op, JournalOp::Encrypt);
  EXPECT_EQ(journal.find(7)->progress, 0u);  // progress restarts with the new intent
  EXPECT_EQ(journal.size(), 1u);
}

TEST(IntentJournal, AdvanceWithoutOpenIntentThrows) {
  IntentJournal journal;
  EXPECT_THROW(journal.advance(9), std::logic_error);
  journal.begin(entry(9, JournalOp::Decrypt, 64));
  journal.commit(9);
  EXPECT_THROW(journal.advance(9), std::logic_error);
}

TEST(IntentJournal, CommitWithoutIntentIsNoOp) {
  IntentJournal journal;
  EXPECT_NO_THROW(journal.commit(1234));
}

TEST(IntentJournal, TracksIndependentBlocks) {
  IntentJournal journal;
  journal.begin(entry(1, JournalOp::Encrypt, 64));
  journal.begin(entry(2, JournalOp::Decrypt, 64));
  journal.advance(1);
  EXPECT_EQ(journal.find(1)->progress, 1u);
  EXPECT_EQ(journal.find(2)->progress, 0u);
  EXPECT_EQ(journal.size(), 2u);
  journal.commit(1);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_NE(journal.find(2), nullptr);
}

TEST(IntentJournal, ObserverFiresAtEveryKillPoint) {
  IntentJournal journal;
  unsigned fired = 0;
  journal.set_observer([&fired] { ++fired; });
  journal.begin(entry(3, JournalOp::Encrypt, 64));  // 1
  journal.advance(3);                               // 2
  journal.advance(3);                               // 3
  journal.commit(3);                                // 4
  EXPECT_EQ(fired, 4u);
  journal.set_observer(nullptr);
  journal.begin(entry(3, JournalOp::Encrypt, 64));
  EXPECT_EQ(fired, 4u);
}

TEST(IntentJournal, ClearDoesNotNotify) {
  IntentJournal journal;
  unsigned fired = 0;
  journal.begin(entry(3, JournalOp::Encrypt, 64));
  journal.set_observer([&fired] { ++fired; });
  journal.clear();  // deserialisation plumbing, not an operation step
  EXPECT_EQ(fired, 0u);
  EXPECT_TRUE(journal.empty());
}

TEST(IntentJournal, PreImageRidesTheEntry) {
  IntentJournal journal;
  JournalEntry e = entry(5, JournalOp::Decrypt, 64);
  e.pre_image = {1, 2, 3, 4};
  journal.begin(std::move(e));
  ASSERT_NE(journal.find(5), nullptr);
  EXPECT_EQ(journal.find(5)->pre_image, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace spe::core
