#pragma once
// Blocking TCP client for the SPE wire protocol (src/net). One socket, one
// owner thread: the convenience RPCs (read_block / write_block / scrub /
// metrics / ping) send a frame and wait for its response; the pipelined
// send_* / recv_response pair is what the load generator uses to keep
// `depth` requests outstanding per connection.
//
// connect() retries with bounded exponential backoff (a freshly exec'd
// server may not be listening yet, and a cluster node mid-restart comes back
// within a few doublings); each attempt is itself bounded by
// connect_timeout, and every receive honours io_deadline via poll(). All
// failures are typed: ConnectError, NetTimeoutError (connect attempt or
// response deadline expired), ProtocolError (malformed or unexpected bytes,
// peer close), and RemoteError carrying the response Status plus the
// server's reason string. After a transport error the client closes its
// socket; calling connect() again reconnects with the same backoff budget.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/chaos.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace spe::net {

class NetError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class ConnectError : public NetError {
public:
  using NetError::NetError;
};

/// A deadline expired: a single connect attempt outran connect_timeout, or
/// no response arrived within io_deadline.
class NetTimeoutError : public NetError {
public:
  using NetError::NetError;
};
using TimeoutError = NetTimeoutError;  ///< pre-cluster name, kept for callers

class ProtocolError : public NetError {
public:
  using NetError::NetError;
};

/// The server answered with a non-Ok status; the payload (reason) rides in
/// what().
class RemoteError : public NetError {
public:
  RemoteError(Status status, const std::string& reason)
      : NetError(std::string("spe::net: remote error: ") + to_string(status) +
                 (reason.empty() ? "" : " (" + reason + ")")),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

private:
  Status status_;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned connect_retries = 20;
  /// First retry delay; doubled per retry up to connect_backoff_max.
  std::chrono::milliseconds connect_retry_backoff{50};
  std::chrono::milliseconds connect_backoff_max{2'000};
  std::chrono::milliseconds connect_timeout{1'000};  ///< per attempt; 0 = block
  std::chrono::milliseconds io_deadline{5'000};      ///< 0 = block forever
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Chaos injection on this client's I/O (nullptr = clean). Shared so one
  /// policy (one seed, one stats block) can cover a whole fleet of clients.
  std::shared_ptr<ChaosPolicy> chaos;
  /// Stable stream id for chaos decisions — pick something reproducible
  /// across runs (an endpoint hash, a worker index), NOT a pointer or fd.
  std::uint64_t chaos_stream = 0;
};

class Client {
public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  /// Movable: the moved-from client is disconnected and reusable only via
  /// connect().
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (with retry/backoff). Throws ConnectError when every attempt
  /// fails. No-op when already connected.
  void connect();
  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // --- multi-tenant identity (wire v4) --------------------------------------
  /// Attaches an authenticated tenant identity: every subsequent v4 frame
  /// carries the tenant extension with a per-frame token MAC'd from
  /// `token_secret` (see src/tenant/token.hpp). The server denies forged or
  /// cross-tenant requests with Status::AccessDenied. Clearing reverts to
  /// the default domain (the v1–v3 behaviour).
  void set_tenant(std::uint32_t tenant_id, std::uint64_t token_secret) noexcept {
    tenant_set_ = true;
    tenant_id_ = tenant_id;
    tenant_secret_ = token_secret;
  }
  void clear_tenant() noexcept { tenant_set_ = false; }

  // --- pipelined API (load generator) --------------------------------------
  // Each send returns the request id; responses arrive via recv_response()
  // in server completion order (which is NOT submission order across
  // shards) — match on Frame::request_id.
  std::uint64_t send_read(std::uint64_t block_addr);
  std::uint64_t send_write(std::uint64_t block_addr, std::span<const std::uint8_t> data);
  std::uint64_t send_ping(std::span<const std::uint8_t> echo = {});
  std::uint64_t send_scrub();
  std::uint64_t send_metrics(obs::MetricsFormat format = obs::MetricsFormat::Prometheus);
  /// `deadline_override` > 0 caps this receive below config io_deadline —
  /// the deadline-aware retry loop passes its remaining budget here so one
  /// dropped response cannot eat the whole op deadline.
  [[nodiscard]] Frame recv_response(
      std::chrono::milliseconds deadline_override = std::chrono::milliseconds{0});

  // --- blocking RPC conveniences (single outstanding request) --------------
  [[nodiscard]] std::vector<std::uint8_t> read_block(std::uint64_t block_addr);
  void write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data);
  std::uint64_t scrub();
  [[nodiscard]] std::string metrics(
      obs::MetricsFormat format = obs::MetricsFormat::Prometheus);
  void ping();

  /// ROTATE_KEY RPC: asks the server to rotate `tenant`'s key domain.
  /// Requires an attached tenant identity (set_tenant) — the server answers
  /// BadRequest for tokenless frames and AccessDenied when the caller is
  /// neither `tenant` itself nor the admin (default) domain.
  struct RotationInfo {
    std::uint64_t epoch = 0;
    std::uint64_t scheduled = 0;
  };
  RotationInfo rotate_key(std::uint32_t tenant);
  std::uint64_t send_rotate(std::uint32_t tenant);

  /// Sends `frame` (assigning the next request id) and returns the matching
  /// response WITHOUT interpreting its status byte — cluster-aware callers
  /// route on Status::Moved themselves, so unlike the conveniences above a
  /// non-Ok status is returned, not thrown. Throws only on transport
  /// failures. Stale responses to earlier (duplicated / abandoned) request
  /// ids are skipped, not treated as protocol errors. `io_deadline_override`
  /// > 0 caps the receive below config io_deadline.
  [[nodiscard]] Frame call(Frame frame,
                           std::chrono::milliseconds io_deadline_override =
                               std::chrono::milliseconds{0});

private:
  std::uint64_t send_frame(const Frame& frame);
  /// recv_response() that must match `id` (convenience RPC path).
  Frame await(std::uint64_t id);
  /// recv_response() skipping stale ids below `id` (bounded), for call().
  Frame await_matching(std::uint64_t id, std::chrono::milliseconds deadline_override);

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  bool tenant_set_ = false;
  std::uint32_t tenant_id_ = 0;
  std::uint64_t tenant_secret_ = 0;
  std::uint64_t chaos_tx_events_ = 0;  ///< frames offered to tx chaos
  std::uint64_t chaos_rx_events_ = 0;  ///< frames offered to rx chaos
  FrameDecoder decoder_;
};

}  // namespace spe::net
