# Empty dependencies file for spe_nist.
# This may be replaced when dependencies are built.
