#include "crypto/stream_cipher.hpp"

namespace spe::crypto {

Trivium::Trivium(std::span<const std::uint8_t, kKeyBytes> key,
                 std::span<const std::uint8_t, kIvBytes> iv) {
  s_.fill(0);
  // Load key into s1..s80 and IV into s94..s173 (1-based spec indices),
  // bit i of byte b = bit (8b + i), LSB-first per the reference code.
  for (unsigned i = 0; i < 80; ++i) s_[i] = (key[i / 8] >> (i % 8)) & 1u;
  for (unsigned i = 0; i < 80; ++i) s_[93 + i] = (iv[i / 8] >> (i % 8)) & 1u;
  // s286, s287, s288 = 1.
  s_[285] = s_[286] = s_[287] = 1;
  // 4 * 288 warm-up rounds, discarding output.
  for (int i = 0; i < 4 * 288; ++i) (void)next_bit();
}

unsigned Trivium::next_bit() {
  const unsigned t1 = s_[65] ^ s_[92];
  const unsigned t2 = s_[161] ^ s_[176];
  const unsigned t3 = s_[242] ^ s_[287];
  const unsigned z = t1 ^ t2 ^ t3;
  const unsigned n1 = t1 ^ (s_[90] & s_[91]) ^ s_[170];
  const unsigned n2 = t2 ^ (s_[174] & s_[175]) ^ s_[263];
  const unsigned n3 = t3 ^ (s_[285] & s_[286]) ^ s_[68];
  // Shift the three registers toward higher indices.
  for (int i = 92; i > 0; --i) s_[i] = s_[i - 1];     // reg 1: s0..s92
  s_[0] = static_cast<std::uint8_t>(n3);
  for (int i = 176; i > 93; --i) s_[i] = s_[i - 1];   // reg 2: s93..s176
  s_[93] = static_cast<std::uint8_t>(n1);
  for (int i = 287; i > 177; --i) s_[i] = s_[i - 1];  // reg 3: s177..s287
  s_[177] = static_cast<std::uint8_t>(n2);
  return z;
}

std::uint8_t Trivium::next_byte() {
  std::uint8_t b = 0;
  for (int i = 0; i < 8; ++i) b |= static_cast<std::uint8_t>(next_bit() << i);
  return b;
}

void Trivium::apply(std::span<std::uint8_t> data) {
  for (auto& byte : data) byte ^= next_byte();
}

}  // namespace spe::crypto
