#pragma once
// Trusted Platform Module stub (Section 4.1 / ref [11]). The TPM seals the
// SPE key against (device id, platform measurement). At power-on it
// authenticates the NVMM and the platform and releases the key to the
// SPECU, which keeps it in volatile storage only — on power-down the key is
// gone and only the TPM can restore it on a *measured* platform.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>

#include "core/key.hpp"

namespace spe::core {

class Tpm {
public:
  /// Seals `key` for the NVMM `device_id` on a platform whose integrity
  /// measurement is `platform_measurement` (e.g. a boot-chain hash).
  void provision(std::uint64_t device_id, std::uint64_t platform_measurement,
                 const SpeKey& key);

  /// Power-on handshake: returns the key iff the device is known and the
  /// presented measurement matches the sealed one. The measurement compare
  /// is constant-time (a mismatched boot hash must not leak which bits were
  /// wrong through timing), and every refusal — unknown device or wrong
  /// measurement — is counted into the failed-release audit trail.
  [[nodiscard]] std::optional<SpeKey> authenticate_and_release(
      std::uint64_t device_id, std::uint64_t platform_measurement) const;

  [[nodiscard]] bool knows_device(std::uint64_t device_id) const;

  /// Audit counter: refused release attempts since construction. Also
  /// exported as `spe_tpm_failed_releases_total` via the global metrics
  /// registry so operators see authentication pressure without polling.
  [[nodiscard]] std::uint64_t failed_releases() const noexcept {
    return failed_releases_.load(std::memory_order_relaxed);
  }

private:
  struct Sealed {
    std::uint64_t measurement = 0;
    SpeKey key;
  };
  std::map<std::uint64_t, Sealed> sealed_;
  mutable std::atomic<std::uint64_t> failed_releases_{0};
};

}  // namespace spe::core
