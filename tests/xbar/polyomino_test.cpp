#include "xbar/polyomino.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::xbar {
namespace {

std::vector<unsigned> random_symbols(std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  std::vector<unsigned> s(64);
  for (auto& v : s) v = static_cast<unsigned>(rng.below(4));
  return s;
}

TEST(ExtractPolyomino, ContainsThePoE) {
  Crossbar xb;
  xb.load_symbols(random_symbols(1));
  const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
  EXPECT_TRUE(poly.covers(3 * 8 + 4));
  EXPECT_GE(poly.count(), 1u);
}

TEST(ExtractPolyomino, CoversMultipleCellsAtNominalVt) {
  // Fig. 4: a 1 V PoE pulse covers a whole neighbourhood, not just the PoE.
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
  EXPECT_GE(poly.count(), 8u);
  EXPECT_LE(poly.count(), 24u);
}

TEST(ExtractPolyomino, ShapeIsCrossLike) {
  // Covered cells must share the PoE's row or column (sneak arms).
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
  for (unsigned flat = 0; flat < 64; ++flat) {
    if (!poly.covers(flat)) continue;
    const unsigned r = flat / 8, c = flat % 8;
    EXPECT_TRUE(r == 3 || c == 4) << "cell (" << r << "," << c << ")";
  }
}

TEST(ExtractPolyomino, DoesNotChangeState) {
  Crossbar xb;
  const auto symbols = random_symbols(2);
  xb.load_symbols(symbols);
  (void)extract_polyomino(xb, {2, 6}, 1.0);
  EXPECT_EQ(xb.dump_symbols(), symbols);
}

TEST(ExtractPolyomino, DataDependentShape) {
  // Section 5.2: "the cells affected are unique to each PoE based on ...
  // the data stored in each cell". Find two data patterns with different
  // polyomino shapes for the same PoE.
  Crossbar xb;
  bool found_difference = false;
  std::vector<std::uint8_t> reference;
  for (std::uint64_t seed = 0; seed < 8 && !found_difference; ++seed) {
    xb.load_symbols(random_symbols(seed));
    const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
    if (seed == 0)
      reference = poly.mask;
    else if (poly.mask != reference)
      found_difference = true;
  }
  EXPECT_TRUE(found_difference);
}

TEST(ExtractPolyomino, VoltagesDecayAwayFromPoe) {
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
  const double at_poe = poly.voltages[3 * 8 + 4];
  for (unsigned flat = 0; flat < 64; ++flat) {
    if (flat == 3 * 8 + 4) continue;
    EXPECT_LT(poly.voltages[flat], at_poe);
  }
}

TEST(RenderPolyomino, MarksPoEAndCoveredCells) {
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const auto poly = extract_polyomino(xb, {3, 4}, 1.0);
  const std::string art = render_polyomino(poly, 8, 8);
  EXPECT_NE(art.find('['), std::string::npos);  // PoE marker
  EXPECT_NE(art.find('.'), std::string::npos);  // untouched cells
}

}  // namespace
}  // namespace spe::xbar
