// Topology and migration payload codecs (src/cluster): round-trips for
// NodeInfo / ClusterTopology / MigrateSpec / export batches, rejection of
// malformed and truncated bytes (these parsers face the same trust boundary
// as the frame decoder), and the "name=host:port[*weight]" spec grammar
// used by spe_server --cluster-nodes and cluster_ctl.

#include "cluster/migration.hpp"
#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace spe::cluster {
namespace {

NodeInfo node(const std::string& name, std::uint16_t port, unsigned weight = 1) {
  return NodeInfo{name, "127.0.0.1", port, weight};
}

ClusterTopology three_nodes(std::uint64_t epoch = 7) {
  return ClusterTopology{epoch, {node("a", 1001), node("b", 1002), node("c", 1003, 2)}};
}

TEST(TopologyCodec, NodeRoundTrip) {
  const NodeInfo original = node("shard-7", 48123, 3);
  NodeInfo decoded;
  ASSERT_TRUE(decode_node(encode_node(original), decoded));
  EXPECT_EQ(decoded, original);
}

TEST(TopologyCodec, TopologyRoundTrip) {
  const ClusterTopology original = three_nodes();
  ClusterTopology decoded;
  ASSERT_TRUE(decode_topology(encode_topology(original), decoded));
  EXPECT_EQ(decoded, original);
}

TEST(TopologyCodec, RejectsTruncationAtEveryLength) {
  const std::vector<std::uint8_t> bytes = encode_topology(three_nodes());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ClusterTopology decoded;
    EXPECT_FALSE(decode_topology(
        std::span<const std::uint8_t>(bytes.data(), len), decoded))
        << "accepted a " << len << "-byte prefix of " << bytes.size();
  }
}

TEST(TopologyCodec, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = encode_node(node("a", 1));
  bytes.push_back(0);
  NodeInfo decoded;
  EXPECT_FALSE(decode_node(bytes, decoded));
}

TEST(TopologyCodec, RejectsDuplicateNames) {
  const ClusterTopology dup{1, {node("a", 1001), node("a", 1002)}};
  ClusterTopology decoded;
  EXPECT_FALSE(decode_topology(encode_topology(dup), decoded));
}

TEST(TopologyCodec, RejectsEmptyName) {
  NodeInfo anon = node("", 5);
  NodeInfo decoded;
  EXPECT_FALSE(decode_node(encode_node(anon), decoded));
}

TEST(Topology, FindAndOwner) {
  const ClusterTopology topo = three_nodes();
  ASSERT_NE(topo.find("b"), nullptr);
  EXPECT_EQ(topo.find("b")->port, 1002);
  EXPECT_EQ(topo.find("nope"), nullptr);
  // owner() must return a NodeInfo that lives in the topology (regression:
  // it used to bind a reference into the temporary ring).
  for (std::uint64_t addr = 0; addr < 256; ++addr) {
    const NodeInfo& owner = topo.owner(addr);
    EXPECT_NE(topo.find(owner.name), nullptr);
    EXPECT_EQ(topo.ring().owner(addr), owner.name);
  }
}

TEST(Topology, ZeroWeightMemberHasNoArcs) {
  ClusterTopology topo = three_nodes();
  topo.nodes.push_back(node("joining", 1004, 0));
  const HashRing ring = topo.ring();
  EXPECT_FALSE(ring.contains("joining"));
  // ...but it is still a findable member (join starts this way).
  EXPECT_NE(topo.find("joining"), nullptr);
}

TEST(NodeSpec, ParsesNameHostPortWeight) {
  NodeInfo parsed;
  ASSERT_TRUE(parse_node_spec("a=10.0.0.1:48123", parsed));
  EXPECT_EQ(parsed, (NodeInfo{"a", "10.0.0.1", 48123, 1}));
  ASSERT_TRUE(parse_node_spec("big=127.0.0.1:9*4", parsed));
  EXPECT_EQ(parsed.weight, 4u);
  EXPECT_EQ(parsed.port, 9);
}

TEST(NodeSpec, RejectsMalformed) {
  NodeInfo parsed;
  for (const char* bad : {"", "a=", "=1.2.3.4:5", "a=host", "a=host:", "a=h:0",
                          "a=h:70000", "a=h:12x", "a=h:12*"})
    EXPECT_FALSE(parse_node_spec(bad, parsed)) << "accepted '" << bad << "'";
}

TEST(NodeSpec, TopologySpecList) {
  ClusterTopology topo;
  ASSERT_TRUE(parse_topology_spec("a=h1:1,b=h2:2*2,c=h3:3", 9, topo));
  EXPECT_EQ(topo.epoch, 9u);
  ASSERT_EQ(topo.nodes.size(), 3u);
  EXPECT_EQ(topo.nodes[1].weight, 2u);
  EXPECT_FALSE(parse_topology_spec("a=h:1,a=h:2", 1, topo));  // dup name
  EXPECT_FALSE(parse_topology_spec("", 1, topo));
  EXPECT_FALSE(parse_topology_spec("a=h:1,", 1, topo));
}

TEST(MigrateCodec, SpecRoundTrip) {
  MigrateSpec original;
  original.mode = MigrateSpec::Mode::Pull;
  original.epoch = 42;
  original.peer = node("src", 48001);
  original.addrs = {0, 7, 123456789, std::uint64_t{1} << 40};
  MigrateSpec decoded;
  ASSERT_TRUE(decode_migrate_spec(encode_migrate_spec(original), decoded));
  EXPECT_EQ(decoded.mode, original.mode);
  EXPECT_EQ(decoded.epoch, original.epoch);
  EXPECT_EQ(decoded.peer, original.peer);
  EXPECT_EQ(decoded.addrs, original.addrs);
}

TEST(MigrateCodec, RejectsBadModeAndEmptyAddrs) {
  MigrateSpec spec;
  spec.peer = node("p", 1);
  spec.addrs = {1};
  std::vector<std::uint8_t> bytes = encode_migrate_spec(spec);
  bytes[0] = 0;  // below Freeze
  MigrateSpec decoded;
  EXPECT_FALSE(decode_migrate_spec(bytes, decoded));
  bytes[0] = 99;  // above Checkpoint
  EXPECT_FALSE(decode_migrate_spec(bytes, decoded));

  // Data-moving modes need at least one address...
  spec.addrs.clear();
  EXPECT_FALSE(decode_migrate_spec(encode_migrate_spec(spec), decoded));
  // ...but the admin Checkpoint ping does not.
  spec.mode = MigrateSpec::Mode::Checkpoint;
  EXPECT_TRUE(decode_migrate_spec(encode_migrate_spec(spec), decoded));
}

TEST(MigrateCodec, SpecRejectsTruncation) {
  MigrateSpec spec;
  spec.mode = MigrateSpec::Mode::Freeze;
  spec.peer = node("p", 1);
  spec.addrs = {1, 2, 3};
  const std::vector<std::uint8_t> bytes = encode_migrate_spec(spec);
  MigrateSpec decoded;
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_FALSE(decode_migrate_spec(
        std::span<const std::uint8_t>(bytes.data(), len), decoded))
        << "accepted a " << len << "-byte prefix";
}

TEST(MigrateCodec, ExportRoundTrip) {
  constexpr std::size_t kBlock = 16;
  std::vector<ExportedBlock> original(3);
  original[0] = {5, true, std::vector<std::uint8_t>(kBlock, 0xAB)};
  original[1] = {6, false, {}};  // absent on the source
  original[2] = {9, true, std::vector<std::uint8_t>(kBlock, 0x01)};
  std::vector<ExportedBlock> decoded;
  ASSERT_TRUE(decode_export(encode_export(original), kBlock, decoded));
  ASSERT_EQ(decoded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded[i].addr, original[i].addr);
    EXPECT_EQ(decoded[i].present, original[i].present);
    EXPECT_EQ(decoded[i].data, original[i].data);
  }
}

TEST(MigrateCodec, ExportPinsBlockSize) {
  std::vector<ExportedBlock> blocks(1);
  blocks[0] = {1, true, std::vector<std::uint8_t>(16, 0xCD)};
  const std::vector<std::uint8_t> bytes = encode_export(blocks);
  std::vector<ExportedBlock> decoded;
  // Length confusion on this path would write a wrong-sized block into the
  // destination: a 16-byte image must not decode as any other size.
  EXPECT_TRUE(decode_export(bytes, 16, decoded));
  EXPECT_FALSE(decode_export(bytes, 32, decoded));
  EXPECT_FALSE(decode_export(bytes, 8, decoded));
}

}  // namespace
}  // namespace spe::cluster
