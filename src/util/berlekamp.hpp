#pragma once
// Berlekamp-Massey algorithm over GF(2): computes the linear complexity of a
// binary sequence (the length of the shortest LFSR that generates it). Used
// by the NIST linear-complexity test and the stream-cipher security tests.

#include <cstddef>

#include "util/bitvec.hpp"

namespace spe::util {

/// Returns the linear complexity of bits[offset, offset+len).
[[nodiscard]] std::size_t linear_complexity(const BitVector& bits,
                                            std::size_t offset, std::size_t len);

}  // namespace spe::util
