#include "util/gf2.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::util {
namespace {

TEST(Gf2Matrix, RejectsBadShapes) {
  EXPECT_THROW(Gf2Matrix(0, 4), std::invalid_argument);
  EXPECT_THROW(Gf2Matrix(4, 65), std::invalid_argument);
}

TEST(Gf2Matrix, IdentityHasFullRank) {
  for (unsigned n : {1u, 4u, 32u, 64u}) {
    Gf2Matrix m(n, n);
    for (unsigned i = 0; i < n; ++i) m.set(i, i, true);
    EXPECT_EQ(m.rank(), n);
  }
}

TEST(Gf2Matrix, ZeroMatrixHasRankZero) {
  Gf2Matrix m(8, 8);
  EXPECT_EQ(m.rank(), 0u);
}

TEST(Gf2Matrix, DuplicateRowsReduceRank) {
  Gf2Matrix m(3, 3);
  // rows: 110, 110, 001 -> rank 2
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 0, true);
  m.set(1, 1, true);
  m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, LinearlyDependentCombination) {
  Gf2Matrix m(3, 4);
  // r0=1100, r1=0110, r2=1010 = r0^r1 -> rank 2
  m.set(0, 0, true); m.set(0, 1, true);
  m.set(1, 1, true); m.set(1, 2, true);
  m.set(2, 0, true); m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, FromBitsRowMajor) {
  BitVector bits = BitVector::from_string("10" "01");
  const auto m = Gf2Matrix::from_bits(bits, 0, 2, 2);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_FALSE(m.get(0, 1));
  EXPECT_FALSE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, RandomMatricesMatchAsymptoticRankDistribution) {
  // For random 32x32 GF(2) matrices: P(full rank) ~ 0.2888.
  Xoshiro256ss rng(11);
  unsigned full = 0;
  const unsigned trials = 2000;
  for (unsigned t = 0; t < trials; ++t) {
    BitVector bits;
    for (int w = 0; w < 16; ++w) bits.append_bits(rng(), 64);
    const auto m = Gf2Matrix::from_bits(bits, 0, 32, 32);
    full += m.rank() == 32 ? 1 : 0;
  }
  const double frac = static_cast<double>(full) / trials;
  EXPECT_NEAR(frac, 0.2888, 0.04);
}

TEST(Gf2Matrix, RankInvariantUnderRowSwap) {
  Xoshiro256ss rng(13);
  BitVector bits;
  for (int w = 0; w < 4; ++w) bits.append_bits(rng(), 64);
  auto m = Gf2Matrix::from_bits(bits, 0, 8, 8);
  const unsigned r = m.rank();
  // Swap rows 0 and 1 by hand.
  for (unsigned c = 0; c < 8; ++c) {
    const bool a = m.get(0, c), b = m.get(1, c);
    m.set(0, c, b);
    m.set(1, c, a);
  }
  EXPECT_EQ(m.rank(), r);
}

}  // namespace
}  // namespace spe::util
