
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/berlekamp.cpp" "src/CMakeFiles/spe_util.dir/util/berlekamp.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/berlekamp.cpp.o.d"
  "/root/repo/src/util/bitvec.cpp" "src/CMakeFiles/spe_util.dir/util/bitvec.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/bitvec.cpp.o.d"
  "/root/repo/src/util/fft.cpp" "src/CMakeFiles/spe_util.dir/util/fft.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/fft.cpp.o.d"
  "/root/repo/src/util/gf2.cpp" "src/CMakeFiles/spe_util.dir/util/gf2.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/gf2.cpp.o.d"
  "/root/repo/src/util/mathfn.cpp" "src/CMakeFiles/spe_util.dir/util/mathfn.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/mathfn.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/spe_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/spe_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/spe_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/spe_util.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
