#include "ilp/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace spe::ilp {

const char* to_string(Solution::Status status) noexcept {
  switch (status) {
    case Solution::Status::Optimal: return "optimal";
    case Solution::Status::Feasible: return "feasible";
    case Solution::Status::TimeLimit: return "time_limit";
    case Solution::Status::Infeasible: return "infeasible";
    case Solution::Status::NoSolution: return "no_solution";
  }
  return "unknown";
}

namespace {

constexpr double kEps = 1e-9;
constexpr std::int8_t kUnassigned = -1;

/// How often the DFS re-reads the wall clock. Cheap enough to keep the
/// deadline cooperative without a syscall per node.
constexpr std::uint64_t kDeadlineCheckNodes = 1024;

/// Search state shared across the DFS. Assignments are trailed so they can
/// be undone on backtrack; per-constraint running sums keep propagation
/// incremental.
class SearchState {
public:
  explicit SearchState(const Model& model) : model_(model) {
    const unsigned n = model.num_vars();
    assign_.assign(n, kUnassigned);
    var_constraints_.resize(n);
    const auto& cons = model.constraints();
    fixed_sum_.assign(cons.size(), 0.0);
    pos_slack_.assign(cons.size(), 0.0);
    neg_slack_.assign(cons.size(), 0.0);
    for (unsigned ci = 0; ci < cons.size(); ++ci) {
      for (const Term& t : cons[ci].terms) {
        var_constraints_[t.var].push_back(ci);
        if (t.coeff > 0.0)
          pos_slack_[ci] += t.coeff;
        else
          neg_slack_[ci] += t.coeff;
      }
    }
    // Static fallback branching order: variables in many / large-coefficient
    // constraints first, ties broken by objective magnitude.
    branch_order_.resize(n);
    std::vector<double> weight(n, 0.0);
    for (const Constraint& c : cons)
      for (const Term& t : c.terms) weight[t.var] += std::fabs(t.coeff);
    for (unsigned v = 0; v < n; ++v) branch_order_[v] = v;
    std::sort(branch_order_.begin(), branch_order_.end(), [&](unsigned a, unsigned b) {
      if (weight[a] != weight[b]) return weight[a] > weight[b];
      return std::fabs(model.objective()[a]) > std::fabs(model.objective()[b]);
    });

    // Detect a cardinality constraint (sum of every variable == K with unit
    // coefficients); it sharpens the objective bound dramatically for the
    // fixed-PoE-count placement models.
    for (const Constraint& c : cons) {
      if (c.terms.size() != n || c.lo != c.hi) continue;
      bool unit = true;
      std::vector<bool> seen(n, false);
      for (const Term& t : c.terms) {
        if (t.coeff != 1.0 || seen[t.var]) {
          unit = false;
          break;
        }
        seen[t.var] = true;
      }
      if (unit) {
        cardinality_ = static_cast<int>(c.lo);
        break;
      }
    }
  }

  [[nodiscard]] std::int8_t value(unsigned v) const { return assign_[v]; }
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }

  /// Assigns v := val and updates constraint sums. Returns false if some
  /// constraint becomes unsatisfiable.
  bool assign(unsigned v, std::uint8_t val) {
    assign_[v] = static_cast<std::int8_t>(val);
    trail_.push_back(v);
    if (val) obj_sum_ += model_.objective()[v];
    for (unsigned ci : var_constraints_[v]) {
      const double coeff = coeff_of(ci, v);
      if (coeff > 0.0)
        pos_slack_[ci] -= coeff;
      else
        neg_slack_[ci] -= coeff;
      if (val) fixed_sum_[ci] += coeff;
      const Constraint& c = model_.constraints()[ci];
      if (fixed_sum_[ci] + neg_slack_[ci] > c.hi + kEps) return false;
      if (fixed_sum_[ci] + pos_slack_[ci] < c.lo - kEps) return false;
    }
    return true;
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      const unsigned v = trail_.back();
      trail_.pop_back();
      const std::uint8_t val = static_cast<std::uint8_t>(assign_[v]);
      if (val) obj_sum_ -= model_.objective()[v];
      for (unsigned ci : var_constraints_[v]) {
        const double coeff = coeff_of(ci, v);
        if (coeff > 0.0)
          pos_slack_[ci] += coeff;
        else
          neg_slack_[ci] += coeff;
        if (val) fixed_sum_[ci] -= coeff;
      }
      assign_[v] = kUnassigned;
    }
  }

  /// Fixpoint propagation: forces variables whose alternative value would
  /// violate some constraint. Returns false on conflict.
  bool propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      const auto& cons = model_.constraints();
      for (unsigned ci = 0; ci < cons.size(); ++ci) {
        const Constraint& c = cons[ci];
        const double lo_reach = fixed_sum_[ci] + neg_slack_[ci];
        const double hi_reach = fixed_sum_[ci] + pos_slack_[ci];
        if (lo_reach > c.hi + kEps || hi_reach < c.lo - kEps) return false;
        for (const Term& t : c.terms) {
          if (assign_[t.var] != kUnassigned) continue;
          if (t.coeff > 0.0) {
            // Setting to 1 adds coeff on top of lo_reach (its own
            // contribution to neg_slack is zero).
            if (lo_reach + t.coeff > c.hi + kEps) {
              if (!assign(t.var, 0)) return false;
              changed = true;
            } else if (hi_reach - t.coeff < c.lo - kEps) {
              if (!assign(t.var, 1)) return false;
              changed = true;
            }
          } else {
            if (lo_reach - t.coeff > c.hi + kEps) {
              // Note: for negative coeff, *zero* keeps lo_reach; setting to
              // 0 removes the negative slack contribution.
              if (!assign(t.var, 1)) return false;
              changed = true;
            } else if (hi_reach + t.coeff < c.lo - kEps) {
              if (!assign(t.var, 0)) return false;
              changed = true;
            }
          }
        }
      }
    }
    return true;
  }

  /// Optimistic objective bound for the current partial assignment. When a
  /// cardinality constraint (sum x == K) exists, only the best (K - ones)
  /// remaining coefficients can still be taken, which tightens the bound.
  [[nodiscard]] double bound() const {
    double b = obj_sum_;
    const auto& obj = model_.objective();
    std::vector<double> candidates;
    if (model_.sense == Sense::Minimize) {
      for (unsigned v = 0; v < obj.size(); ++v)
        if (assign_[v] == kUnassigned && obj[v] < 0.0) candidates.push_back(obj[v]);
      if (cardinality_ >= 0) {
        const int remaining = cardinality_ - static_cast<int>(ones_assigned());
        if (remaining <= 0) return b;
        if (static_cast<int>(candidates.size()) > remaining) {
          std::partial_sort(candidates.begin(), candidates.begin() + remaining,
                            candidates.end());
          candidates.resize(remaining);
        }
      }
    } else {
      for (unsigned v = 0; v < obj.size(); ++v)
        if (assign_[v] == kUnassigned && obj[v] > 0.0) candidates.push_back(obj[v]);
      if (cardinality_ >= 0) {
        const int remaining = cardinality_ - static_cast<int>(ones_assigned());
        if (remaining <= 0) return b;
        if (static_cast<int>(candidates.size()) > remaining) {
          std::partial_sort(candidates.begin(), candidates.begin() + remaining,
                            candidates.end(), std::greater<>());
          candidates.resize(remaining);
        }
      }
    }
    for (double c : candidates) b += c;
    return b;
  }

  [[nodiscard]] unsigned ones_assigned() const {
    unsigned n = 0;
    for (auto a : assign_) n += a == 1 ? 1u : 0u;
    return n;
  }

  [[nodiscard]] double objective_sum() const noexcept { return obj_sum_; }

  /// Branch variable: prefer an unassigned variable inside the most
  /// constrained still-unsatisfied >=-side constraint (classic
  /// fail-first for covering problems); fall back to the static order.
  [[nodiscard]] unsigned pick_branch_var() const {
    const auto& cons = model_.constraints();
    int best_ci = -1;
    unsigned best_free = ~0u;
    for (unsigned ci = 0; ci < cons.size(); ++ci) {
      const Constraint& c = cons[ci];
      if (c.lo == -Constraint::kInf) continue;
      if (fixed_sum_[ci] >= c.lo - kEps) continue;  // lower side already met
      unsigned free = 0;
      for (const Term& t : c.terms)
        if (assign_[t.var] == kUnassigned) ++free;
      if (free > 0 && free < best_free) {
        best_free = free;
        best_ci = static_cast<int>(ci);
        if (free == 1) break;
      }
    }
    if (best_ci >= 0) {
      unsigned best_var = model_.num_vars();
      double best_coeff = -1.0;
      for (const Term& t : model_.constraints()[static_cast<unsigned>(best_ci)].terms) {
        if (assign_[t.var] == kUnassigned && std::fabs(t.coeff) > best_coeff) {
          best_coeff = std::fabs(t.coeff);
          best_var = t.var;
        }
      }
      if (best_var != model_.num_vars()) return best_var;
    }
    for (unsigned v : branch_order_)
      if (assign_[v] == kUnassigned) return v;
    return model_.num_vars();
  }

  [[nodiscard]] std::vector<std::uint8_t> snapshot() const {
    std::vector<std::uint8_t> x(assign_.size(), 0);
    for (unsigned v = 0; v < assign_.size(); ++v) x[v] = assign_[v] == 1 ? 1 : 0;
    return x;
  }

private:
  [[nodiscard]] double coeff_of(unsigned ci, unsigned v) const {
    for (const Term& t : model_.constraints()[ci].terms)
      if (t.var == v) return t.coeff;
    return 0.0;
  }

  const Model& model_;
  std::vector<std::int8_t> assign_;
  std::vector<unsigned> trail_;
  std::vector<std::vector<unsigned>> var_constraints_;
  std::vector<double> fixed_sum_;
  std::vector<double> pos_slack_;
  std::vector<double> neg_slack_;
  std::vector<unsigned> branch_order_;
  double obj_sum_ = 0.0;
  int cardinality_ = -1;  ///< K of a detected sum(x)==K constraint, or -1.
};

class Search {
public:
  Search(const Model& model, const SolverOptions& options)
      : model_(model), options_(options), state_(model) {
    if (options.time_limit_ms > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(options.time_limit_ms));
      has_deadline_ = true;
    }
  }

  Solution run() {
    const auto t0 = std::chrono::steady_clock::now();
    // Root relaxation bound: with nothing assigned, bound() is the best the
    // objective could ever reach (the cardinality sharpening applies here
    // too). Sound whatever happens later, so report it even on a cutoff.
    const double root_bound = state_.bound();
    if (options_.use_greedy_start) greedy_start();
    dfs();
    Solution out;
    out.nodes_explored = nodes_;
    if (has_incumbent_) {
      if (hit_deadline_)
        out.status = Solution::Status::TimeLimit;
      else if (hit_limit_)
        out.status = Solution::Status::Feasible;
      else
        out.status = Solution::Status::Optimal;
      out.objective = incumbent_obj_;
      out.values = incumbent_;
    } else {
      out.status = (hit_limit_ || hit_deadline_) ? Solution::Status::NoSolution
                                                 : Solution::Status::Infeasible;
    }
    // Bound: proven optimal => the objective itself; cut off => the root
    // bound still holds. A full search with no incumbent proves infeasibility
    // (no finite bound to report).
    if (out.status == Solution::Status::Optimal) {
      out.best_bound = out.objective;
      out.has_bound = true;
    } else if (out.status != Solution::Status::Infeasible) {
      out.best_bound = root_bound;
      out.has_bound = true;
    }
    out.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return out;
  }

private:
  [[nodiscard]] bool better(double a, double b) const {
    return model_.sense == Sense::Minimize ? a < b - kEps : a > b + kEps;
  }

  void record_if_complete() {
    const auto x = state_.snapshot();
    for (unsigned v = 0; v < model_.num_vars(); ++v)
      if (state_.value(v) == kUnassigned) return;
    if (!model_.is_feasible(x)) return;
    const double obj = model_.objective_value(x);
    if (!has_incumbent_ || better(obj, incumbent_obj_)) {
      has_incumbent_ = true;
      incumbent_obj_ = obj;
      incumbent_ = x;
    }
  }

  void greedy_start() {
    // Cheap randomised-rounding-free greedy: try all-zeros, then flip
    // variables that repair violated >=-constraints, preferring variables
    // that repair the most. Often lands a feasible cover incumbent.
    std::vector<std::uint8_t> x(model_.num_vars(), 0);
    for (int pass = 0; pass < 256; ++pass) {
      int worst = -1;
      double worst_gap = kEps;
      const auto& cons = model_.constraints();
      for (unsigned ci = 0; ci < cons.size(); ++ci) {
        double sum = 0.0;
        for (const Term& t : cons[ci].terms)
          if (x[t.var]) sum += t.coeff;
        const double gap = cons[ci].lo - sum;
        if (gap > worst_gap) {
          worst_gap = gap;
          worst = static_cast<int>(ci);
        }
      }
      if (worst < 0) break;
      // Flip the unset variable with the largest positive coefficient.
      const Constraint& c = model_.constraints()[static_cast<unsigned>(worst)];
      int best_var = -1;
      double best_coeff = 0.0;
      for (const Term& t : c.terms) {
        if (!x[t.var] && t.coeff > best_coeff) {
          best_coeff = t.coeff;
          best_var = static_cast<int>(t.var);
        }
      }
      if (best_var < 0) break;
      x[static_cast<unsigned>(best_var)] = 1;
    }
    if (model_.is_feasible(x)) {
      has_incumbent_ = true;
      incumbent_obj_ = model_.objective_value(x);
      incumbent_ = x;
    }
  }

  void dfs() {
    if (++nodes_ > options_.node_limit) {
      hit_limit_ = true;
      return;
    }
    if (has_deadline_ && nodes_ % kDeadlineCheckNodes == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      hit_deadline_ = true;
      return;
    }
    if (hit_deadline_) return;
    const std::size_t mark = state_.trail_size();
    if (!state_.propagate()) {
      state_.undo_to(mark);
      return;
    }
    if (has_incumbent_ && !better(state_.bound(), incumbent_obj_)) {
      state_.undo_to(mark);
      return;
    }
    const unsigned v = state_.pick_branch_var();
    if (v == model_.num_vars()) {
      record_if_complete();
      state_.undo_to(mark);
      return;
    }
    // Value order: objective-improving value first.
    const double coeff = model_.objective()[v];
    const std::uint8_t first =
        (model_.sense == Sense::Minimize) ? (coeff <= 0.0 ? 1 : 0) : (coeff >= 0.0 ? 1 : 0);
    for (std::uint8_t attempt = 0; attempt < 2 && !hit_limit_ && !hit_deadline_;
         ++attempt) {
      const std::uint8_t val = attempt == 0 ? first : static_cast<std::uint8_t>(1 - first);
      const std::size_t sub_mark = state_.trail_size();
      if (state_.assign(v, val)) dfs();
      state_.undo_to(sub_mark);
    }
    state_.undo_to(mark);
  }

  const Model& model_;
  const SolverOptions& options_;
  SearchState state_;
  std::uint64_t nodes_ = 0;
  bool hit_limit_ = false;
  bool hit_deadline_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  bool has_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<std::uint8_t> incumbent_;
};

}  // namespace

Solution Solver::solve(const Model& model) {
  if (model.num_vars() == 0) {
    Solution s;
    s.status = Solution::Status::Optimal;
    s.best_bound = 0.0;
    s.has_bound = true;
    return s;
  }
  Search search(model, options_);
  return search.run();
}

}  // namespace spe::ilp
