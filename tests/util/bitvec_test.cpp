#include "util/bitvec.hpp"

#include <gtest/gtest.h>

namespace spe::util {
namespace {

TEST(BitVector, StartsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructsFilled) {
  BitVector zeros(100, false);
  EXPECT_EQ(zeros.size(), 100u);
  EXPECT_EQ(zeros.popcount(), 0u);
  BitVector ones(100, true);
  EXPECT_EQ(ones.popcount(), 100u);
}

TEST(BitVector, FilledOnesDoNotLeakPaddingBits) {
  // 70 bits spans two words; padding in the second word must stay clear.
  BitVector ones(70, true);
  EXPECT_EQ(ones.popcount(), 70u);
  ones.push_back(false);
  EXPECT_EQ(ones.popcount(), 70u);
  EXPECT_FALSE(ones.get(70));
}

TEST(BitVector, PushAndGet) {
  BitVector v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_EQ(v.size(), 3u);
}

TEST(BitVector, SetOverwrites) {
  BitVector v(10, false);
  v.set(3, true);
  EXPECT_TRUE(v.get(3));
  v.set(3, false);
  EXPECT_FALSE(v.get(3));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(4, false);
  EXPECT_THROW((void)v.get(4), std::out_of_range);
  EXPECT_THROW(v.set(4, true), std::out_of_range);
  EXPECT_THROW((void)v.slice(2, 3), std::out_of_range);
  EXPECT_THROW((void)v.read_bits(2, 3), std::out_of_range);
}

TEST(BitVector, AppendBitsIsMsbFirst) {
  BitVector v;
  v.append_bits(0b1011, 4);
  EXPECT_EQ(v.to_string(), "1011");
}

TEST(BitVector, AppendBytesMsbFirst) {
  BitVector v;
  const std::uint8_t bytes[] = {0xA5};
  v.append_bytes(bytes);
  EXPECT_EQ(v.to_string(), "10100101");
}

TEST(BitVector, RoundTripBytes) {
  BitVector v;
  const std::uint8_t bytes[] = {0xDE, 0xAD, 0xBE, 0xEF};
  v.append_bytes(bytes);
  const auto out = v.to_bytes();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0xDE);
  EXPECT_EQ(out[3], 0xEF);
}

TEST(BitVector, ReadBits) {
  BitVector v = BitVector::from_string("11010110");
  EXPECT_EQ(v.read_bits(0, 4), 0b1101u);
  EXPECT_EQ(v.read_bits(4, 4), 0b0110u);
  EXPECT_EQ(v.read_bits(2, 3), 0b010u);
}

TEST(BitVector, SliceExtractsMiddle) {
  BitVector v = BitVector::from_string("001110");
  EXPECT_EQ(v.slice(2, 3).to_string(), "111");
}

TEST(BitVector, XorMatchesBitwise) {
  BitVector a = BitVector::from_string("1100");
  BitVector b = BitVector::from_string("1010");
  a ^= b;
  EXPECT_EQ(a.to_string(), "0110");
}

TEST(BitVector, XorSizeMismatchThrows) {
  BitVector a(4, false), b(5, false);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVector, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVector::from_string("01x1"), std::invalid_argument);
}

TEST(BitVector, AppendVector) {
  BitVector a = BitVector::from_string("10");
  BitVector b = BitVector::from_string("01");
  a.append(b);
  EXPECT_EQ(a.to_string(), "1001");
}

TEST(BitVector, PopcountAcrossWords) {
  BitVector v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  std::size_t expected = 0;
  for (int i = 0; i < 130; ++i) expected += i % 3 == 0;
  EXPECT_EQ(v.popcount(), expected);
}

}  // namespace
}  // namespace spe::util
