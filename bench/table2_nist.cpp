// Table 2 reproduction: number of sequences (out of N) failing each NIST
// SP 800-22 test, for the nine Section-6.1 data sets. The paper uses 150
// sequences of ~120 kbit; at a significance level of 0.01 at most 5 of 150
// may fail any test.
//
// Defaults here are a fast profile; export SPE_NIST_SEQS=150 and
// SPE_NIST_BITS=131072 for the full paper-scale run (the acceptance bound
// scales with the sequence count either way).

#include "bench_util.hpp"
#include "core/datasets.hpp"
#include "nist/suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace spe;
  benchutil::banner("table2_nist — NIST randomness failures per data set",
                    "Table 2 (Section 6.1)");

  core::DatasetConfig cfg;
  cfg.sequences = benchutil::env_or("SPE_NIST_SEQS", 24);
  cfg.bits_per_sequence = benchutil::env_or("SPE_NIST_BITS", 1u << 16);
  std::printf("sequences per data set: %u x %zu bits "
              "(paper: 150 x ~120k; override with SPE_NIST_SEQS / SPE_NIST_BITS)\n",
              cfg.sequences, cfg.bits_per_sequence);

  std::vector<std::string> header = {"Test"};
  for (core::Dataset d : core::all_datasets()) header.push_back(core::dataset_name(d));
  header.push_back("Control(PRNG)");
  util::Table table(std::move(header));

  std::vector<nist::SuiteSummary> summaries;
  for (core::Dataset d : core::all_datasets()) {
    std::printf("  generating + testing %-14s ...\n", core::dataset_name(d).c_str());
    std::fflush(stdout);
    const auto sequences = core::generate_dataset(d, cfg);
    summaries.push_back(nist::evaluate_dataset(sequences));
  }
  // Control column: the same battery on a reference PRNG. It calibrates the
  // small-sample behaviour of the tests themselves — SPE is as random as
  // the control if its per-test failure counts sit in the same band.
  {
    std::printf("  generating + testing %-14s ...\n", "control PRNG");
    std::fflush(stdout);
    std::vector<util::BitVector> control;
    for (unsigned s = 0; s < cfg.sequences; ++s) {
      util::Xoshiro256ss rng(util::mix64(0xC0117401u + s));
      util::BitVector bits;
      while (bits.size() < cfg.bits_per_sequence) bits.append_bits(rng(), 64);
      control.push_back(bits.slice(0, cfg.bits_per_sequence));
    }
    summaries.push_back(nist::evaluate_dataset(control));
  }

  const auto names = nist::test_names();
  for (std::size_t t = 0; t < names.size(); ++t) {
    std::vector<std::string> row = {names[t]};
    for (const auto& summary : summaries) row.push_back(std::to_string(summary.failures[t]));
    table.add_row(std::move(row));
  }
  std::printf("\n");
  table.print();

  const unsigned allowed = summaries.front().max_allowed();
  bool all_pass = true;
  for (std::size_t d = 0; d + 1 < summaries.size(); ++d)
    all_pass = all_pass && summaries[d].all_accepted();
  std::printf("\nAcceptance bound at alpha=0.01 for %u sequences: <= %u failures per test.\n",
              summaries.front().sequences, allowed);
  std::printf("SPE passes all NIST tests on all nine data sets: %s (paper: passes all)\n",
              all_pass ? "YES" : "NO");
  if (!all_pass) {
    std::printf("(compare against the Control(PRNG) column: excesses shared with the\n"
                " control reflect the tests' small-sample asymptotics, not SPE —\n"
                " run the full profile SPE_NIST_SEQS=150 SPE_NIST_BITS=131072.)\n");
  }
  return 0;
}
