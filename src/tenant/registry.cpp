#include "tenant/registry.hpp"

#include <utility>

namespace spe::tenant {

TenantRegistry::TenantRegistry(std::vector<TenantSpec> specs) {
  for (TenantSpec& spec : specs) {
    if (spec.id == kDefaultTenant)
      throw std::invalid_argument(
          "TenantRegistry: tenant 0 is the implicit default domain");
    if (spec.name.empty()) spec.name = std::to_string(spec.id);
    const TenantId id = spec.id;
    for (const AddrRange& range : spec.ranges) {
      if (range.end <= range.begin)
        throw std::invalid_argument("TenantRegistry: empty or inverted range");
      // Overlap check against the sorted index: the predecessor must end at
      // or before our begin, the successor must begin at or after our end.
      const auto next = ranges_.lower_bound(range.begin);
      if (next != ranges_.end() && next->first < range.end)
        throw std::invalid_argument("TenantRegistry: overlapping ranges");
      if (next != ranges_.begin()) {
        const auto prev = std::prev(next);
        if (prev->second.first > range.begin)
          throw std::invalid_argument("TenantRegistry: overlapping ranges");
      }
      ranges_.emplace(range.begin, std::make_pair(range.end, id));
    }
    auto [it, inserted] = tenants_.try_emplace(id);
    if (!inserted)
      throw std::invalid_argument("TenantRegistry: duplicate tenant id " +
                                  std::to_string(id));
    it->second.spec = std::move(spec);
  }
}

const TenantRegistry::State* TenantRegistry::state(TenantId id) const {
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

const TenantSpec* TenantRegistry::spec(TenantId id) const {
  const State* s = state(id);
  return s == nullptr ? nullptr : &s->spec;
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, s] : tenants_) out.push_back(id);
  return out;
}

TenantId TenantRegistry::owner_of(std::uint64_t addr) const {
  const auto next = ranges_.upper_bound(addr);
  if (next == ranges_.begin()) return kDefaultTenant;
  const auto& [begin, range] = *std::prev(next);
  return addr < range.first ? range.second : kDefaultTenant;
}

bool TenantRegistry::authenticate(TenantId id, std::uint64_t token,
                                  std::uint64_t request_id,
                                  std::uint8_t opcode) const {
  if (id == kDefaultTenant) return true;
  const State* s = state(id);
  if (s == nullptr) return false;  // unknown: nowhere to count, caller does
  const std::uint64_t expect =
      make_token(s->spec.token_secret, id, request_id, opcode);
  if (!ct_equal(expect, token)) {
    s->counters.auth_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::uint32_t TenantRegistry::key_epoch(TenantId id) const {
  const State* s = state(id);
  return s == nullptr ? 0 : s->epoch.load(std::memory_order_acquire);
}

std::uint32_t TenantRegistry::advance_epoch(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end())
    throw std::invalid_argument(
        "TenantRegistry: cannot rotate unknown or default tenant " +
        std::to_string(id));
  it->second.counters.rotations.fetch_add(1, std::memory_order_relaxed);
  return it->second.epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void TenantRegistry::restore_epoch(TenantId id, std::uint32_t epoch) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  auto& stored = it->second.epoch;
  std::uint32_t cur = stored.load(std::memory_order_acquire);
  while (cur < epoch &&
         !stored.compare_exchange_weak(cur, epoch, std::memory_order_acq_rel)) {
  }
}

core::SpeKey TenantRegistry::derive_key(TenantId id, std::uint32_t epoch) const {
  const State* s = state(id);
  if (s == nullptr)
    throw std::invalid_argument("TenantRegistry: derive_key for unknown tenant " +
                                std::to_string(id));
  // Domain-separated seed: tenant and epoch each pass through mix64 before
  // touching the secret seed, so adjacent tenants/epochs share no structure.
  std::uint64_t seed = util::mix64(s->spec.key_seed ^ kTokenDomain);
  seed = util::mix64(seed ^ (std::uint64_t{id} << 32));
  seed = util::mix64(seed ^ epoch);
  util::Xoshiro256ss rng(seed);
  return core::SpeKey::random(rng);
}

std::uint64_t TenantRegistry::key_handle(std::uint64_t device_id, TenantId id,
                                         std::uint32_t epoch) noexcept {
  // Real device handles are small integers (device_seed_base + shard); the
  // forced-high-bit mix keeps synthetic handles out of that space.
  std::uint64_t h = util::mix64(device_id ^ kTokenDomain);
  h = util::mix64(h ^ (std::uint64_t{id} << 24) ^ epoch);
  return h | (1ull << 63);
}

bool TenantRegistry::try_charge_block(TenantId id) {
  const State* s = state(id);
  if (s == nullptr) {  // default domain: count, never reject
    default_counters_.resident_blocks.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  auto& resident = s->counters.resident_blocks;
  if (s->spec.block_quota == 0) {
    resident.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t cur = resident.load(std::memory_order_relaxed);
  while (cur < s->spec.block_quota) {
    if (resident.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
      return true;
  }
  s->counters.quota_rejections.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TenantRegistry::release_block(TenantId id) {
  auto& resident = counters(id).resident_blocks;
  std::uint64_t cur = resident.load(std::memory_order_relaxed);
  while (cur > 0 &&
         !resident.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
  }
}

void TenantRegistry::set_resident_blocks(TenantId id, std::uint64_t count) {
  counters(id).resident_blocks.store(count, std::memory_order_relaxed);
}

bool TenantRegistry::try_acquire_inflight(TenantId id) {
  const State* s = state(id);
  if (s == nullptr) {
    default_counters_.inflight.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  auto& inflight = s->counters.inflight;
  if (s->spec.max_inflight == 0) {
    inflight.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t cur = inflight.load(std::memory_order_relaxed);
  while (cur < s->spec.max_inflight) {
    if (inflight.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
      return true;
  }
  s->counters.admission_rejections.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TenantRegistry::release_inflight(TenantId id) {
  auto& inflight = counters(id).inflight;
  std::uint64_t cur = inflight.load(std::memory_order_relaxed);
  while (cur > 0 &&
         !inflight.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
  }
}

TenantCounters& TenantRegistry::counters(TenantId id) const {
  const State* s = state(id);
  return s == nullptr ? default_counters_ : s->counters;
}

}  // namespace spe::tenant
