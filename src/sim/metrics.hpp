#pragma once
// Aggregation helpers for the Fig. 7 / Fig. 8 / Table 3 harnesses.

#include <vector>

#include "sim/system.hpp"

namespace spe::sim {

/// Arithmetic mean of per-workload overheads vs. the matching baseline rows
/// (the paper reports "average performance impact").
[[nodiscard]] double mean_overhead(const std::vector<SimResult>& runs,
                                   const std::vector<SimResult>& baselines);

/// Mean of the time-averaged encrypted fractions (Fig. 8 / Table 3 row 3).
[[nodiscard]] double mean_encrypted_fraction(const std::vector<SimResult>& runs);

/// Flattens column `scheme_index` out of a run_grid() result.
[[nodiscard]] std::vector<SimResult> grid_column(
    const std::vector<std::vector<SimResult>>& grid, std::size_t scheme_index);

}  // namespace spe::sim
