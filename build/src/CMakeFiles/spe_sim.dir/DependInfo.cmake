
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/spe_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cpu_model.cpp" "src/CMakeFiles/spe_sim.dir/sim/cpu_model.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/cpu_model.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/spe_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/nvmm.cpp" "src/CMakeFiles/spe_sim.dir/sim/nvmm.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/nvmm.cpp.o.d"
  "/root/repo/src/sim/schemes.cpp" "src/CMakeFiles/spe_sim.dir/sim/schemes.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/schemes.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/spe_sim.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/system.cpp.o.d"
  "/root/repo/src/sim/workloads.cpp" "src/CMakeFiles/spe_sim.dir/sim/workloads.cpp.o" "gcc" "src/CMakeFiles/spe_sim.dir/sim/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
