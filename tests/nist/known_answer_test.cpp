// Known-answer tests against the worked examples in NIST SP 800-22 rev 1a.
// The 100-bit test sequence is the binary expansion of pi used throughout
// the document's per-test examples.

#include <gtest/gtest.h>

#include "nist/suite.hpp"

namespace spe::nist {
namespace {

// SP 800-22 example input: the first 100 binary digits of pi.
const char* kPi100 =
    "11001001000011111101101010100010"
    "00100001011010001100001000110100"
    "110001001100011001100010100010111000";

util::BitVector pi_bits() { return util::BitVector::from_string(kPi100); }

TEST(KnownAnswer, FrequencyPi100) {
  // SP 800-22 2.1.8: P-value = 0.109599.
  const auto r = frequency_test(pi_bits());
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_values[0], 0.109599, 1e-5);
}

TEST(KnownAnswer, BlockFrequencyPi100) {
  // SP 800-22 2.2.8 (M = 10): P-value = 0.706438.
  const auto r = block_frequency_test(pi_bits(), 10);
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_values[0], 0.706438, 1e-5);
}

TEST(KnownAnswer, RunsPi100) {
  // SP 800-22 2.3.8: P-value = 0.500798.
  const auto r = runs_test(pi_bits());
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_values[0], 0.500798, 1e-5);
}

TEST(KnownAnswer, CusumPi100) {
  // SP 800-22 2.13 example on the 100-bit pi sequence (forward mode):
  // z = 16, P-value = 0.219194.
  const auto r = cusum_test(pi_bits());
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_values[0], 0.219194, 1e-4);
}

TEST(KnownAnswer, SerialSmallExample) {
  // SP 800-22 2.11.4 example: epsilon = 0011011101, m = 3, n = 10:
  // P-value1 = 0.808792, P-value2 = 0.670320.
  const auto bits = util::BitVector::from_string("0011011101");
  const auto r = serial_test(bits, 3);
  ASSERT_TRUE(r.applicable);
  ASSERT_EQ(r.p_values.size(), 2u);
  EXPECT_NEAR(r.p_values[0], 0.808792, 1e-5);
  EXPECT_NEAR(r.p_values[1], 0.670320, 1e-5);
}

TEST(KnownAnswer, ApproximateEntropySmallExample) {
  // SP 800-22 2.12.4 example: epsilon = 0100110101, m = 3:
  // P-value = 0.261961.
  const auto bits = util::BitVector::from_string("0100110101");
  const auto r = approximate_entropy_test(bits, 3);
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_values[0], 0.261961, 1e-5);
}

TEST(KnownAnswer, LongestRunMatchesScalarBerlekamp) {
  // Cross-validation: the word-packed linear complexity inside the NIST
  // test must agree with the scalar Berlekamp-Massey on random data.
  // (Indirect: a random sequence passes; a low-complexity one fails.)
  util::BitVector lfsr;
  unsigned state = 0b1;
  for (int i = 0; i < 20000; ++i) {
    lfsr.push_back(state & 1u);
    const unsigned fb = ((state >> 0) ^ (state >> 3)) & 1u;
    state = (state >> 1) | (fb << 4);
  }
  EXPECT_FALSE(linear_complexity_test(lfsr, 500).passed());
}

}  // namespace
}  // namespace spe::nist
