// Load generator for spe_server: N connections x pipeline depth D over the
// spe_net wire protocol, with end-to-end data verification. Every write
// carries a payload derived deterministically from (seed, address, version);
// every read response is compared byte-for-byte against the last
// acknowledged write to that address, so silent corruption anywhere in the
// client -> wire -> server -> shard -> wire -> client path is counted (on
// top of the frame CRC32 the decoder already enforces).
//
// Each connection owns a disjoint address stripe and never keeps two
// in-flight operations on the same address, which makes the expected-value
// bookkeeping exact even though the server completes across shards out of
// order.
//
// Closed loop by default (each connection keeps `depth` requests
// outstanding); `--rate R` switches to an open loop that paces sends at R
// ops/s per connection (outstanding still capped at depth). Stops after
// `--ops N` total operations or `--seconds S`, whichever is given
// (`--seconds` wins when both are).
//
// Cluster mode: `--cluster-seeds "a=h:p,b=h:p,..."` replaces --host/--port
// and routes every operation through a ClusterClient (consistent-hash
// owner selection, MOVED chasing, failover) — one synchronous operation at
// a time per connection, since correctness under membership churn is the
// point, not peak throughput. `--verify-only` skips the warm-up and instead
// reads every stripe address ONCE, expecting the version-1 image a previous
// `--write-pct 0` run with the same seed/stripe left behind — this is how
// the cluster smoke proves data survived a migration + kill -9.
//
// Flags: --host H --port P | --cluster-seeds SPEC
//        --connections N --depth D --ops N | --seconds S
//        --write-pct P (default 50) --stripe N (addresses per connection,
//        default 256) --seed S --rate R --metrics (scrape METRICS at exit)
//        --verify-only (cluster mode) --json PATH (write BENCH_throughput
//        style report; prints a delta line against the previous file)
//
// Exit status is nonzero on any corruption, protocol error, non-Ok
// response, worker failure, or a run that completed ZERO operations — the
// CI loopback smoke gates on it, and a silently idle run must not pass.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster_client.hpp"
#include "net/client.hpp"
#include "runtime/latency_histogram.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using spe::runtime::LatencyHistogram;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The deterministic block image for (seed, address, write-version). The
/// reader recomputes this from its bookkeeping and compares.
std::vector<std::uint8_t> expected_payload(std::uint64_t seed, std::uint64_t addr,
                                           std::uint64_t version, unsigned block_bytes) {
  std::vector<std::uint8_t> data(block_bytes);
  std::uint64_t word = 0;
  for (unsigned i = 0; i < block_bytes; ++i) {
    if (i % 8 == 0)
      word = splitmix64(seed ^ (addr << 20) ^ (version << 1) ^ (i / 8));
    data[i] = static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return data;
}

struct WorkerConfig {
  std::string host;
  std::uint16_t port = 0;
  std::vector<spe::cluster::NodeInfo> seeds;  ///< non-empty = cluster mode
  bool verify_only = false;
  unsigned index = 0;       ///< connection number (stripe selector)
  unsigned depth = 8;
  unsigned stripe = 256;    ///< addresses owned by this connection
  unsigned write_pct = 50;
  std::uint64_t seed = 1;
  std::uint64_t ops_quota = 0;  ///< 0 = unbounded (deadline-driven)
  double rate = 0.0;            ///< open-loop ops/s per connection; 0 = closed
  Clock::time_point deadline{Clock::time_point::max()};
};

struct WorkerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t corruptions = 0;   ///< read payload != expected image
  std::uint64_t bad_status = 0;    ///< any non-Ok response
  std::uint64_t unknown_ids = 0;   ///< response id we never sent
  LatencyHistogram::Snapshot latency;
  std::string error;               ///< fatal exception, empty = clean
  spe::cluster::ClusterClient::Stats cluster;  ///< cluster mode only
};

struct Inflight {
  bool is_write = false;
  std::uint64_t addr = 0;
  std::uint64_t version = 0;  ///< version being written, or expected on read
  Clock::time_point sent;
};

/// One connection: warm-write the stripe, then run the closed/open loop.
WorkerStats run_worker(const WorkerConfig& cfg) {
  WorkerStats stats;
  LatencyHistogram latency;
  try {
    spe::net::Client client({.host = cfg.host, .port = cfg.port});
    client.connect();

    const std::uint64_t base = std::uint64_t{cfg.index} * cfg.stripe;
    // Warm-up (uncounted): version 1 of every address, so reads always have
    // a known image to check against. A server with a non-64B block size
    // rejects the very first write with a typed BadRequest — the warm-up
    // doubles as the handshake.
    const unsigned block_bytes = 64;
    std::unordered_map<std::uint64_t, std::uint64_t> committed;  // addr -> version
    for (unsigned i = 0; i < cfg.stripe; ++i) {
      const std::uint64_t addr = base + i;
      client.write_block(addr, expected_payload(cfg.seed, addr, 1, block_bytes));
      committed[addr] = 1;
    }

    std::unordered_map<std::uint64_t, Inflight> outstanding;  // request id -> op
    std::unordered_set<std::uint64_t> busy_addrs;
    std::uint64_t rng = splitmix64(cfg.seed ^ (0xC0FFEEULL + cfg.index));
    std::uint64_t cursor = 0;
    std::uint64_t sent_ops = 0;
    auto next_send = Clock::now();
    const auto send_gap =
        cfg.rate > 0.0 ? std::chrono::nanoseconds(static_cast<std::uint64_t>(
                             1e9 / cfg.rate))
                       : std::chrono::nanoseconds(0);

    auto handle_response = [&](const spe::net::Frame& frame) {
      const auto now = Clock::now();
      const auto it = outstanding.find(frame.request_id);
      if (it == outstanding.end()) {
        ++stats.unknown_ids;
        return;
      }
      const Inflight op = it->second;
      outstanding.erase(it);
      busy_addrs.erase(op.addr);
      latency.record(now - op.sent);
      if (frame.status != spe::net::Status::Ok) {
        ++stats.bad_status;
        return;
      }
      if (op.is_write) {
        ++stats.writes;
        committed[op.addr] = op.version;
      } else {
        ++stats.reads;
        if (frame.payload != expected_payload(cfg.seed, op.addr, op.version, block_bytes))
          ++stats.corruptions;
      }
    };

    const bool quota_bound = cfg.ops_quota > 0;
    for (;;) {
      const bool can_send = (!quota_bound || sent_ops < cfg.ops_quota) &&
                            Clock::now() < cfg.deadline;
      if (!can_send && outstanding.empty()) break;

      if (can_send && outstanding.size() < cfg.depth &&
          (cfg.rate <= 0.0 || Clock::now() >= next_send)) {
        // Round-robin through the stripe, skipping addresses in flight so
        // at most one operation per address is ever outstanding.
        std::uint64_t addr = 0;
        bool found = false;
        for (unsigned probe = 0; probe < cfg.stripe; ++probe) {
          addr = base + (cursor + probe) % cfg.stripe;
          if (!busy_addrs.contains(addr)) {
            cursor = (cursor + probe + 1) % cfg.stripe;
            found = true;
            break;
          }
        }
        if (found) {
          rng = splitmix64(rng);
          const bool is_write = rng % 100 < cfg.write_pct;
          Inflight op;
          op.is_write = is_write;
          op.addr = addr;
          op.sent = Clock::now();
          std::uint64_t id = 0;
          if (is_write) {
            op.version = committed[addr] + 1;
            id = client.send_write(
                addr, expected_payload(cfg.seed, addr, op.version, block_bytes));
          } else {
            op.version = committed[addr];
            id = client.send_read(addr);
          }
          outstanding.emplace(id, op);
          busy_addrs.insert(addr);
          ++sent_ops;
          if (cfg.rate > 0.0) next_send += send_gap;
          if (outstanding.size() < cfg.depth) continue;  // fill the window
        }
      }
      if (outstanding.empty()) {
        // Open-loop pacing gap with nothing in flight: recv would block on
        // a response that can never come, so just wait out the gap.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      handle_response(client.recv_response());
    }
  } catch (const std::exception& e) {
    stats.error = e.what();
  }
  stats.latency = latency.snapshot();
  return stats;
}

/// Cluster-mode connection: one synchronous operation at a time through a
/// ClusterClient. The client chases MOVED bounces and fails over dead
/// nodes internally, so any exception that escapes is a real failure.
WorkerStats run_cluster_worker(const WorkerConfig& cfg) {
  WorkerStats stats;
  LatencyHistogram latency;
  std::optional<spe::cluster::ClusterClient> maybe_client;
  try {
    spe::cluster::ClusterClientConfig ccfg;
    ccfg.seeds = cfg.seeds;
    // Widen the MOVED budget: during a pull the frozen blocks ping-pong
    // between source and destination until the whole batch commits.
    ccfg.op_retries = 64;
    maybe_client.emplace(ccfg);
    spe::cluster::ClusterClient& client = *maybe_client;
    client.connect();

    const std::uint64_t base = std::uint64_t{cfg.index} * cfg.stripe;
    const unsigned block_bytes = 64;

    if (cfg.verify_only) {
      // No warm-up: expect the version-1 image a previous --write-pct 0 run
      // with the same seed/stripe committed. Detects any block lost or
      // corrupted across the migrations / kills that happened in between.
      for (unsigned i = 0; i < cfg.stripe; ++i) {
        const std::uint64_t addr = base + i;
        const auto sent = Clock::now();
        const std::vector<std::uint8_t> data = client.read_block(addr);
        latency.record(Clock::now() - sent);
        ++stats.reads;
        if (data != expected_payload(cfg.seed, addr, 1, block_bytes))
          ++stats.corruptions;
      }
    } else {
      std::unordered_map<std::uint64_t, std::uint64_t> committed;
      for (unsigned i = 0; i < cfg.stripe; ++i) {
        const std::uint64_t addr = base + i;
        client.write_block(addr, expected_payload(cfg.seed, addr, 1, block_bytes));
        committed[addr] = 1;
      }
      std::uint64_t rng = splitmix64(cfg.seed ^ (0xC0FFEEULL + cfg.index));
      std::uint64_t done = 0;
      const bool quota_bound = cfg.ops_quota > 0;
      while ((!quota_bound || done < cfg.ops_quota) &&
             Clock::now() < cfg.deadline) {
        rng = splitmix64(rng);
        const std::uint64_t addr = base + rng % cfg.stripe;
        const bool is_write = splitmix64(rng) % 100 < cfg.write_pct;
        const auto sent = Clock::now();
        if (is_write) {
          const std::uint64_t version = committed[addr] + 1;
          client.write_block(
              addr, expected_payload(cfg.seed, addr, version, block_bytes));
          committed[addr] = version;
          ++stats.writes;
        } else {
          const std::vector<std::uint8_t> data = client.read_block(addr);
          ++stats.reads;
          if (data != expected_payload(cfg.seed, addr, committed[addr], block_bytes))
            ++stats.corruptions;
        }
        latency.record(Clock::now() - sent);
        ++done;
      }
    }
  } catch (const std::exception& e) {
    stats.error = e.what();
  }
  if (maybe_client) stats.cluster = maybe_client->stats();
  stats.latency = latency.snapshot();
  return stats;
}

double us(std::chrono::nanoseconds ns) { return static_cast<double>(ns.count()) / 1000.0; }

}  // namespace

int main(int argc, char** argv) {
  spe::benchutil::Args args(argc, argv);
  const std::string host = args.str("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.uns("port", 0));
  const std::string cluster_seeds = args.str("cluster-seeds", "");
  const bool verify_only = args.flag("verify-only");
  const unsigned connections = std::max(1u, args.uns("connections", 4));
  const unsigned depth = std::max(1u, args.uns("depth", 8));
  const unsigned total_ops = args.uns("ops", 0);
  const unsigned seconds = args.uns("seconds", 0);
  const unsigned write_pct = std::min(100u, args.uns("write-pct", 50));
  const unsigned stripe = std::max(depth + 1, args.uns("stripe", 256));
  const std::uint64_t seed = args.uns("seed", 1);
  const unsigned rate = args.uns("rate", 0);
  const bool scrape_metrics = args.flag("metrics");
  const std::string json_path = args.str("json", "");
  if (!args.ok(stderr)) return 2;

  const bool cluster = !cluster_seeds.empty();
  std::vector<spe::cluster::NodeInfo> seeds;
  if (cluster) {
    spe::cluster::ClusterTopology seed_topo;
    if (!spe::cluster::parse_topology_spec(cluster_seeds, 0, seed_topo)) {
      std::fprintf(stderr, "loadgen: malformed --cluster-seeds '%s'\n",
                   cluster_seeds.c_str());
      return 2;
    }
    seeds = std::move(seed_topo.nodes);
  } else if (port == 0) {
    std::fprintf(stderr, "loadgen: --port or --cluster-seeds is required\n");
    return 2;
  }
  if (verify_only && !cluster) {
    std::fprintf(stderr, "loadgen: --verify-only needs --cluster-seeds\n");
    return 2;
  }
  if (!verify_only && total_ops == 0 && seconds == 0) {
    std::fprintf(stderr, "loadgen: give --ops N or --seconds S\n");
    return 2;
  }

  if (cluster)
    std::printf("loadgen: cluster [%s], %u conns, %u%% writes, stripe %u, seed %llu%s\n",
                cluster_seeds.c_str(), connections, write_pct, stripe,
                static_cast<unsigned long long>(seed),
                verify_only ? ", verify-only" : "");
  else
    std::printf("loadgen: %s:%u, %u conns x depth %u, %u%% writes, stripe %u, seed %llu, %s\n",
                host.c_str(), port, connections, depth, write_pct, stripe,
                static_cast<unsigned long long>(seed),
                rate > 0 ? ("open loop @" + std::to_string(rate) + " ops/s/conn").c_str()
                         : "closed loop");

  std::vector<WorkerConfig> cfgs(connections);
  std::vector<WorkerStats> stats(connections);
  const auto deadline = seconds > 0
                            ? Clock::now() + std::chrono::seconds(seconds)
                            : Clock::time_point::max();
  for (unsigned c = 0; c < connections; ++c) {
    cfgs[c] = WorkerConfig{.host = host,
                           .port = port,
                           .seeds = seeds,
                           .verify_only = verify_only,
                           .index = c,
                           .depth = depth,
                           .stripe = stripe,
                           .write_pct = write_pct,
                           .seed = seed,
                           .ops_quota = seconds > 0 ? 0
                                                    : (total_ops + connections - 1) /
                                                          connections,
                           .rate = static_cast<double>(rate),
                           .deadline = deadline};
  }

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned c = 0; c < connections; ++c)
    threads.emplace_back([&, c, cluster] {
      stats[c] = cluster ? run_cluster_worker(cfgs[c]) : run_worker(cfgs[c]);
    });
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  LatencyHistogram::Snapshot merged;
  unsigned failed_workers = 0;
  for (unsigned c = 0; c < connections; ++c) {
    const WorkerStats& s = stats[c];
    total.reads += s.reads;
    total.writes += s.writes;
    total.corruptions += s.corruptions;
    total.bad_status += s.bad_status;
    total.unknown_ids += s.unknown_ids;
    merged += s.latency;
    if (!s.error.empty()) {
      ++failed_workers;
      std::fprintf(stderr, "loadgen: worker %u failed: %s\n", c, s.error.c_str());
    }
  }
  const std::uint64_t ops = total.reads + total.writes;

  std::printf("loadgen: %llu ops (%llu reads / %llu writes) in %.2fs -> %.1f kops/s\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(total.reads),
              static_cast<unsigned long long>(total.writes), elapsed,
              static_cast<double>(ops) / elapsed / 1000.0);
  std::printf("loadgen: latency p50=%.1fus p95=%.1fus p99=%.1fus mean=%.1fus\n",
              us(merged.p50()), us(merged.p95()), us(merged.p99()), us(merged.mean()));
  std::printf("loadgen: corruption=%llu bad_status=%llu unknown_ids=%llu\n",
              static_cast<unsigned long long>(total.corruptions),
              static_cast<unsigned long long>(total.bad_status),
              static_cast<unsigned long long>(total.unknown_ids));
  if (cluster) {
    spe::cluster::ClusterClient::Stats csum;
    for (const WorkerStats& s : stats) {
      csum.moved_redirects += s.cluster.moved_redirects;
      csum.failovers += s.cluster.failovers;
      csum.topology_refreshes += s.cluster.topology_refreshes;
      csum.retries += s.cluster.retries;
      csum.busy_backoffs += s.cluster.busy_backoffs;
      csum.breaker_trips += s.cluster.breaker_trips;
      csum.breaker_skips += s.cluster.breaker_skips;
      csum.deadline_exceeded += s.cluster.deadline_exceeded;
      csum.ambiguous_results += s.cluster.ambiguous_results;
    }
    std::printf(
        "loadgen: cluster moved=%llu failovers=%llu refreshes=%llu retries=%llu "
        "busy=%llu breaker_trips=%llu breaker_skips=%llu deadline_exceeded=%llu "
        "ambiguous=%llu\n",
        static_cast<unsigned long long>(csum.moved_redirects),
        static_cast<unsigned long long>(csum.failovers),
        static_cast<unsigned long long>(csum.topology_refreshes),
        static_cast<unsigned long long>(csum.retries),
        static_cast<unsigned long long>(csum.busy_backoffs),
        static_cast<unsigned long long>(csum.breaker_trips),
        static_cast<unsigned long long>(csum.breaker_skips),
        static_cast<unsigned long long>(csum.deadline_exceeded),
        static_cast<unsigned long long>(csum.ambiguous_results));
  }

  if (scrape_metrics && !cluster) {
    try {
      spe::net::Client client({.host = host, .port = port});
      client.connect();
      std::printf("\n--- server metrics export (Prometheus text) ---\n%s",
                  client.metrics().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: metrics scrape failed: %s\n", e.what());
      return 1;
    }
  }

  // Consolidated verdict. Every failure path is reported above; a run that
  // completed nothing is a failure too — "no ops, no errors" must not read
  // as success to CI.
  const bool failed = failed_workers > 0 || total.corruptions > 0 ||
                      total.bad_status > 0 || total.unknown_ids > 0 || ops == 0;
  if (failed) {
    std::fprintf(stderr,
                 "loadgen FAIL: ops=%llu failed_workers=%u corruption=%llu "
                 "bad_status=%llu unknown_ids=%llu\n",
                 static_cast<unsigned long long>(ops), failed_workers,
                 static_cast<unsigned long long>(total.corruptions),
                 static_cast<unsigned long long>(total.bad_status),
                 static_cast<unsigned long long>(total.unknown_ids));
    return 1;
  }
  if (!json_path.empty()) {
    spe::benchutil::ThroughputReport report;
    report.source = cluster ? "loadgen-cluster" : "loadgen";
    report.config = std::to_string(connections) + "c depth=" +
                    std::to_string(depth) + " write_pct=" +
                    std::to_string(write_pct) + " stripe=" + std::to_string(stripe);
    report.ops = ops;
    report.ops_per_sec = static_cast<double>(ops) / elapsed;
    report.bytes_per_cycle = spe::benchutil::bytes_per_cycle(
        report.ops_per_sec, /*bytes_per_op=*/64);
    report.p50_us = us(merged.p50());
    report.p95_us = us(merged.p95());
    report.p99_us = us(merged.p99());
    if (!spe::benchutil::write_throughput_json(json_path, report)) return 1;
  }
  std::printf("loadgen OK\n");
  return 0;
}
