// SP 800-22 2.3 Runs and 2.4 Longest-run-of-ones tests.

#include <array>
#include <cmath>

#include "nist/suite.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

TestResult runs_test(const util::BitVector& bits) {
  TestResult r{"Runs", {}, true};
  const std::size_t n = bits.size();
  if (n < 100) {
    r.applicable = false;
    return r;
  }
  const double pi = static_cast<double>(bits.popcount()) / static_cast<double>(n);
  // Prerequisite frequency check (SP 800-22 2.3.4 step 2).
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) {
    r.p_values.push_back(0.0);  // dominated by the frequency failure
    return r;
  }
  std::size_t v_obs = 1;
  for (std::size_t i = 1; i < n; ++i) v_obs += bits.get(i) != bits.get(i - 1);
  const double num = std::fabs(static_cast<double>(v_obs) - 2.0 * n * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi * (1.0 - pi);
  r.p_values.push_back(util::erfc(num / den));
  return r;
}

TestResult longest_run_test(const util::BitVector& bits) {
  TestResult r{"LroO", {}, true};
  const std::size_t n = bits.size();
  // Parameterisation per SP 800-22 table 2-4.
  unsigned m = 0, k = 0;
  std::vector<double> pi;
  std::vector<unsigned> edges;  // class upper bounds (last is open-ended)
  if (n >= 750000) {
    m = 10000;
    k = 6;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    edges = {10, 11, 12, 13, 14, 15};
  } else if (n >= 6272) {
    m = 128;
    k = 5;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    edges = {4, 5, 6, 7, 8};
  } else if (n >= 128) {
    m = 8;
    k = 3;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
    edges = {1, 2, 3};
  } else {
    r.applicable = false;
    return r;
  }
  const std::size_t blocks = n / m;
  std::vector<double> counts(k + 1, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    unsigned longest = 0, run = 0;
    for (unsigned i = 0; i < m; ++i) {
      if (bits.get(b * m + i)) {
        ++run;
        if (run > longest) longest = run;
      } else {
        run = 0;
      }
    }
    unsigned cls = k;  // open-ended top class
    for (unsigned c = 0; c < edges.size(); ++c) {
      if (longest <= edges[c]) {
        cls = c;
        break;
      }
    }
    counts[cls] += 1.0;
  }
  double chi2 = 0.0;
  for (unsigned c = 0; c <= k; ++c) {
    const double expected = static_cast<double>(blocks) * pi[c];
    const double d = counts[c] - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(util::igamc(static_cast<double>(k) / 2.0, chi2 / 2.0));
  return r;
}

}  // namespace spe::nist
