// Bit-plane-interleaved SEC-DED over 6-bit cell levels (ecc/level_ecc).
// The property that matters for SPE: an ARBITRARY corruption of any single
// cell per 64-cell group — multi-bit, e.g. a stuck-at pin — is fully
// corrected, because the cell contributes at most one bit to each plane
// codeword.

#include "ecc/level_ecc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace {

using spe::ecc::level_checks;
using spe::ecc::LevelDecodeResult;
using spe::ecc::verify_levels;

std::vector<std::uint8_t> random_levels(std::size_t n, std::uint64_t seed) {
  spe::util::Xoshiro256ss rng(seed);
  std::vector<std::uint8_t> levels(n);
  for (auto& l : levels) l = static_cast<std::uint8_t>(rng() % 64);
  return levels;
}

TEST(LevelEcc, CheckSizeIsSixPlanesPerGroup) {
  EXPECT_EQ(level_checks(random_levels(64, 1)).size(), 6u);
  EXPECT_EQ(level_checks(random_levels(256, 1)).size(), 24u);
  EXPECT_EQ(level_checks(random_levels(100, 1)).size(), 12u);  // 2 groups
}

TEST(LevelEcc, CleanArrayVerifies) {
  auto levels = random_levels(256, 7);
  const auto checks = level_checks(levels);
  const LevelDecodeResult r = verify_levels(levels, checks);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.corrected_bits, 0u);
  EXPECT_EQ(r.corrected_cells, 0u);
  EXPECT_EQ(r.uncorrectable_words, 0u);
}

TEST(LevelEcc, ChecksAreDeterministic) {
  const auto levels = random_levels(256, 9);
  EXPECT_EQ(level_checks(levels), level_checks(levels));
}

// Every cell, corrupted to every kind of wrong value class (single-bit,
// stuck-at-extremes, arbitrary), is corrected back — one cell at a time.
TEST(LevelEcc, ArbitrarySingleCellCorruptionIsCorrected) {
  const auto pristine = random_levels(256, 11);
  const auto checks = level_checks(pristine);
  spe::util::Xoshiro256ss rng(42);
  for (unsigned cell = 0; cell < pristine.size(); ++cell) {
    auto levels = pristine;
    const auto wrong = static_cast<std::uint8_t>(
        (levels[cell] + 1 + rng() % 63) % 64);
    levels[cell] = wrong;
    const LevelDecodeResult r = verify_levels(levels, checks);
    ASSERT_TRUE(r.ok) << "cell " << cell;
    EXPECT_EQ(r.corrected_cells, 1u) << "cell " << cell;
    ASSERT_EQ(levels, pristine) << "cell " << cell;
  }
}

// One corrupted cell in EACH 64-cell group simultaneously: the groups have
// independent codewords, so all four are corrected in the same pass.
TEST(LevelEcc, OneCellPerGroupAllCorrected) {
  const auto pristine = random_levels(256, 13);
  const auto checks = level_checks(pristine);
  auto levels = pristine;
  for (unsigned g = 0; g < 4; ++g) {
    const unsigned cell = g * 64 + 17 * (g + 1) % 64;
    levels[cell] = static_cast<std::uint8_t>(63 - levels[cell]);
    if (levels[cell] == pristine[cell]) levels[cell] ^= 1;
  }
  const LevelDecodeResult r = verify_levels(levels, checks);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.corrected_cells, 4u);
  EXPECT_EQ(levels, pristine);
}

// Two cells of the SAME group whose error patterns share a plane: SEC-DED
// sees a double error in that plane word — detected, never miscorrected
// into silently wrong data.
TEST(LevelEcc, TwoCellsSameGroupDetectedNotCorrected) {
  auto pristine = random_levels(256, 17);
  const auto checks = level_checks(pristine);
  auto levels = pristine;
  levels[3] ^= 0b000100;  // plane 2
  levels[7] ^= 0b000100;  // plane 2 — collides with cell 3's error
  const LevelDecodeResult r = verify_levels(levels, checks);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.uncorrectable_words, 1u);
}

// Arrays that are not a multiple of 64 cells: the tail group is padded
// internally; corruption in the tail still corrects.
TEST(LevelEcc, PartialTailGroupCorrects) {
  const auto pristine = random_levels(100, 19);
  const auto checks = level_checks(pristine);
  auto levels = pristine;
  levels[99] = static_cast<std::uint8_t>((levels[99] + 33) % 64);
  const LevelDecodeResult r = verify_levels(levels, checks);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(levels, pristine);
}

}  // namespace
