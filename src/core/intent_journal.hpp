#pragma once
// Per-device write-ahead intent journal for crash-consistent SPE.
//
// An SPE encrypt/decrypt is a multi-pulse, order-dependent analog sequence:
// a power loss mid-sequence leaves a block neither encrypted nor decrypted,
// internally consistent to ECC yet undecryptable even with the key. The
// SPECU therefore records its intent in a small reserved region of the
// non-volatile array BEFORE the first pulse and advances a progress index
// as each PoE lands, so a post-crash scan can tell exactly how far every
// in-flight sequence got:
//
//   Program  - write phase, plaintext band centres being programmed
//              (progress counts units; interrupted = torn, the old data is
//              already partially overwritten and no pulses can fix it)
//   Encrypt  - PoE sequence being applied (progress counts pulses,
//              unit-major; interrupted = resumable from the logged index)
//   Decrypt  - reverse sequence being replayed (pre_image holds the
//              encrypted levels as of the first pulse; interrupted = roll
//              back to the pre-image)
//
// The journal itself lives in NVM (it is serialised inside the v2
// snvmm_io image), so it survives exactly the crashes it describes. The
// observer hook fires after every mutation — the kill-point crash campaign
// uses it to snapshot the device at every journal step.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace spe::core {

enum class JournalOp : std::uint8_t { Program = 1, Encrypt = 2, Decrypt = 3 };

struct JournalEntry {
  std::uint64_t block_addr = 0;
  JournalOp op = JournalOp::Encrypt;
  std::uint64_t epoch = 0;     ///< key-schedule epoch the pulses belong to
  std::uint32_t progress = 0;  ///< steps applied so far
  std::uint32_t total = 0;     ///< steps in the whole sequence
  std::vector<std::uint8_t> pre_image;  ///< Decrypt: levels before step one
};

class IntentJournal {
public:
  /// Opens (or replaces) the intent record for entry.block_addr.
  void begin(JournalEntry entry);

  /// One more step of the open sequence has been applied to the array.
  /// Throws std::logic_error if no intent is open for the address.
  void advance(std::uint64_t block_addr);

  /// The sequence completed; the intent record is erased.
  /// Committing an address with no open intent is a no-op.
  void commit(std::uint64_t block_addr);

  [[nodiscard]] const JournalEntry* find(std::uint64_t block_addr) const;
  [[nodiscard]] const std::map<std::uint64_t, JournalEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Kill-point hook: invoked after every begin/advance/commit, i.e. at
  /// each state a power loss could freeze into the array. Not invoked by
  /// clear() (that is deserialisation plumbing, not an operation step).
  void set_observer(std::function<void()> observer) { observer_ = std::move(observer); }

private:
  void notify() const {
    if (observer_) observer_();
  }

  std::map<std::uint64_t, JournalEntry> entries_;  ///< ordered: serialisation is deterministic
  std::function<void()> observer_;
};

}  // namespace spe::core
