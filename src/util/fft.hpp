#pragma once
// Iterative radix-2 complex FFT, used by the NIST Discrete Fourier Transform
// (spectral) test. Inputs whose length is not a power of two are handled by
// the caller (the NIST test truncates to the usable prefix).

#include <complex>
#include <vector>

namespace spe::util {

/// In-place radix-2 decimation-in-time FFT. `data.size()` must be a power of
/// two (throws std::invalid_argument otherwise). Set `inverse` for the
/// unscaled inverse transform (caller divides by N if needed).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Convenience: forward transform of a real signal, returning the first
/// n/2 + 1 modulus values (the one-sided magnitude spectrum). `signal.size()`
/// need not be a power of two: it is zero-padded up to the next power of two
/// only if `pad` is set, otherwise it must already be a power of two.
[[nodiscard]] std::vector<double> real_magnitude_spectrum(
    const std::vector<double>& signal, bool pad = false);

}  // namespace spe::util
