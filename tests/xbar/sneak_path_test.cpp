#include "xbar/sneak_path.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace spe::xbar {
namespace {

std::vector<unsigned> random_symbols(std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  std::vector<unsigned> s(64);
  for (auto& v : s) v = static_cast<unsigned>(rng.below(4));
  return s;
}

TEST(SolvePoe, ValidatesPoe) {
  Crossbar xb;
  EXPECT_THROW((void)solve_poe(xb, {8, 0}, 1.0), std::out_of_range);
}

TEST(SolvePoe, EnablesAllGates) {
  Crossbar xb;
  xb.set_all_gates(false);
  (void)solve_poe(xb, {3, 4}, 1.0);
  for (unsigned i = 0; i < 64; ++i) EXPECT_TRUE(xb.cell(i).gate_on());
}

TEST(SolvePoe, PoECellSeesNearFullVoltage) {
  Crossbar xb;
  xb.load_symbols(random_symbols(1));
  const auto sol = solve_poe(xb, {3, 4}, 1.0);
  EXPECT_GT(sol.cell_voltage(3, 4), 0.95);
}

TEST(SolvePoe, NegativePolarityMirrors) {
  Crossbar xb;
  xb.load_symbols(random_symbols(2));
  const auto pos = solve_poe(xb, {2, 2}, 1.0);
  const auto neg = solve_poe(xb, {2, 2}, -1.0);
  for (unsigned r = 0; r < 8; ++r)
    for (unsigned c = 0; c < 8; ++c)
      EXPECT_NEAR(neg.cell_voltage(r, c), -pos.cell_voltage(r, c), 1e-9);
}

TEST(ApplyPoePulse, MovesPoECellAcrossBands) {
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const unsigned before = xb.read_symbol({3, 4});
  apply_poe_pulse(xb, {3, 4}, {1.0, 0.071e-6});
  EXPECT_GT(xb.read_symbol({3, 4}), before);
}

TEST(ApplyPoePulse, LeavesFarCellsUntouched) {
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const double w_before = xb.cell({0, 0}).memristor().state();
  apply_poe_pulse(xb, {4, 4}, {1.0, 0.05e-6});
  // (0,0) shares neither row nor column with the PoE: sub-threshold.
  EXPECT_NEAR(xb.cell({0, 0}).memristor().state(), w_before, 1e-9);
}

TEST(ApplyPoePulse, AffectsSameColumnNeighbours) {
  Crossbar xb;
  xb.load_symbols(std::vector<unsigned>(64, 1));
  const double w_before = xb.cell({0, 4}).memristor().state();
  apply_poe_pulse(xb, {4, 4}, {1.0, 0.071e-6});
  EXPECT_NE(xb.cell({0, 4}).memristor().state(), w_before);
}

TEST(ApplyPoePulse, DataDependentPerturbation) {
  // The same pulse on different stored data perturbs neighbours by
  // different amounts (the Section 5.3 data-dependence).
  Crossbar a, b;
  a.load_symbols(random_symbols(10));
  b.load_symbols(random_symbols(11));
  const double a0 = a.cell({1, 4}).memristor().state();
  const double b0 = b.cell({1, 4}).memristor().state();
  apply_poe_pulse(a, {4, 4}, {1.0, 0.071e-6});
  apply_poe_pulse(b, {4, 4}, {1.0, 0.071e-6});
  const double da = a.cell({1, 4}).memristor().state() - a0;
  const double db = b.cell({1, 4}).memristor().state() - b0;
  EXPECT_NE(da, db);
}

TEST(ApplyPoePulse, RejectsBadSubsteps) {
  Crossbar xb;
  EXPECT_THROW((void)apply_poe_pulse(xb, {0, 0}, {1.0, 1e-8}, 0), std::invalid_argument);
}

TEST(SolveNormalRead, AddressedRowOnly) {
  Crossbar xb;
  xb.load_symbols(random_symbols(3));
  const auto sol = solve_normal_read(xb, 5, 2, 0.3);
  EXPECT_GT(sol.cell_voltage(5, 2), 0.25);
  // Non-addressed rows are gated off: the current through them (what would
  // corrupt the read-out, Fig. 3a) is negligible against the ~uA read
  // current of the addressed cell.
  const double read_current =
      sol.cell_voltage(5, 2) / xb.cell({5, 2}).series_resistance();
  for (unsigned r = 0; r < 8; ++r) {
    if (r == 5) continue;
    const double sneak =
        std::fabs(sol.cell_voltage(r, 2)) / xb.cell({r, 2}).series_resistance();
    EXPECT_LT(sneak, 0.01 * read_current);
  }
}

}  // namespace
}  // namespace spe::xbar
