#pragma once
// Versioned length-prefixed binary wire protocol for the SPE memory service
// (src/net, "spe_net"). One frame shape serves both directions: requests
// carry status Ok, responses echo the request id and report the outcome in
// the status byte. The payload is covered by a CRC32 (same IEEE polynomial
// as the snvmm_io v2 image format), so a bit flipped anywhere between
// encode and decode surfaces as a typed CrcMismatch — never as silently
// corrupt block data.
//
// Frame layout (little-endian, 24-byte header + payload):
//
//   offset size field
//        0    4 magic "SPW1"
//        4    1 version (kWireVersion)
//        5    1 opcode (Opcode)
//        6    1 status (Status; Ok on requests)
//        7    1 flags (v3; must be zero in v1/v2 where it was reserved)
//        8    8 request id (echoed verbatim in the response)
//       16    4 payload length in bytes
//       20    4 CRC32 over the payload bytes
//       24    n payload
//
// v3 flags: bit 0 = deadline extension — the first 8 payload bytes are a
// little-endian u64 deadline in milliseconds (the sender's remaining time
// budget for this op). The extension bytes count toward payload length and
// the CRC; the decoder strips them into Frame::deadline_ms so opcode payload
// parsers are version-agnostic. All other flag bits must be zero
// (ReservedNonzero), preserving v1/v2 semantics where the whole byte was
// reserved — a v3 frame with no flags is byte-identical to a v2 frame
// except for the version byte.
//
// v4 flags: bit 1 = tenant extension — 12 payload bytes (u32 tenant id +
// u64 authentication token, see src/tenant/token.hpp) placed AFTER the
// deadline extension when both flags are set. Like the deadline, the bytes
// count toward payload length and the CRC and are stripped by the decoder
// (Frame::has_tenant / tenant_id / tenant_token). The tenant flag in a
// pre-v4 frame is ReservedNonzero, so v1–v3 encodings are untouched; a v4
// frame with no flags differs from v3 only in the version byte, which is
// how legacy clients keep being served byte-for-byte as the default tenant.
// v4 also adds the ROTATE_KEY admin opcode and the QUOTA_EXCEEDED /
// ACCESS_DENIED statuses (multi-tenant denials to pre-v4 clients are mapped
// to BadRequest, which every version can carry).
//
// Payloads by opcode:
//   PING     request: arbitrary bytes      response: echoed bytes
//   READ     request: u64 block address    response: block data
//   WRITE    request: u64 address + data   response: empty
//   SCRUB    request: empty                response: u64 blocks scrubbed
//   METRICS  request: u8 format (0=Prometheus, 1=JSON), or empty for
//            Prometheus                    response: rendered export text
//   TOPOLOGY (v2) request: empty = fetch, or a serialised ClusterTopology
//            to propose/adopt             response: serialised topology
//   MIGRATE_RANGE (v2) request: serialised MigrateSpec (src/cluster)
//                                         response: u64 migrated/skipped/failed
//   ROTATE_KEY (v4) request: u32 tenant id whose key domain to rotate
//                                         response: u64 new epoch + u64 blocks
//                                         scheduled for re-encryption
//   any error response: human-readable reason string
//   MOVED (v2 status) response: serialised owner NodeInfo (src/cluster) —
//            the address now lives on another cluster node; retry there.
//
// Versioning: frames carry the version they were encoded with. The decoder
// accepts every version in [kMinWireVersion, kWireVersion]; v2-only opcodes
// (TOPOLOGY, MIGRATE_RANGE) and the MOVED status are rejected as
// BadOpcode/BadStatus when they arrive in a v1 frame, and the v3-only BUSY
// status and deadline flag are rejected likewise in v1/v2 frames. Servers
// echo the request's version in the response so a v1/v2 client keeps
// decoding cleanly against a v3 server.
//
// Decoding is incremental and truncation-safe: FrameDecoder::feed() buffers
// arbitrary byte chunks and next() yields complete frames, NeedMore while a
// frame is still partial, or a typed WireErrorCode — malformed input can
// never throw or read out of bounds, it only poisons the stream (every
// later next() repeats the same error, which is what a server wants before
// closing the connection).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace spe::net {

inline constexpr std::uint8_t kWireVersion = 4;
inline constexpr std::uint8_t kMinWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::uint8_t kMagic[4] = {'S', 'P', 'W', '1'};
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Header flags (byte 7). Must all be zero in v1/v2 frames; v3 knows the
/// deadline flag, v4 adds the tenant flag.
inline constexpr std::uint8_t kFlagDeadline = 0x01;
inline constexpr std::uint8_t kFlagTenant = 0x02;  ///< v4: tenant extension
inline constexpr std::uint8_t kKnownFlags = kFlagDeadline | kFlagTenant;
/// Flag bits a frame of `version` may legally carry.
[[nodiscard]] constexpr std::uint8_t known_flags(std::uint8_t version) noexcept {
  return version >= 4 ? kKnownFlags : version >= 3 ? kFlagDeadline : 0;
}
/// Encoded size of the deadline extension the kFlagDeadline flag announces.
inline constexpr std::size_t kDeadlineExtBytes = 8;
/// Encoded size of the v4 tenant extension (u32 tenant id + u64 token).
inline constexpr std::size_t kTenantExtBytes = 12;

enum class Opcode : std::uint8_t {
  Ping = 1,
  Read = 2,
  Write = 3,
  Scrub = 4,
  Metrics = 5,
  Topology = 6,      ///< v2: cluster topology fetch / propose
  MigrateRange = 7,  ///< v2: device-bound block migration batch
  RotateKey = 8,     ///< v4: admin — rotate a tenant's key domain
};
[[nodiscard]] bool opcode_valid(std::uint8_t raw,
                                std::uint8_t version = kWireVersion) noexcept;
[[nodiscard]] const char* to_string(Opcode op) noexcept;

/// Response outcome, mapped from the runtime error taxonomy
/// (service_config.hpp) plus the server's own admission decisions.
enum class Status : std::uint8_t {
  Ok = 0,
  BadRequest = 1,     ///< malformed payload for the opcode
  Overloaded = 2,     ///< queue backpressure or per-connection in-flight cap
  Stopped = 3,        ///< service stopping / stopped (ServiceStoppedError)
  Uncorrectable = 4,  ///< UncorrectableFaultError: block quarantined
  Quarantined = 5,    ///< QuarantinedBlockError: rewrite to remap
  Torn = 6,           ///< TornBlockError: crash-torn block
  Timeout = 7,        ///< server-side request deadline expired
  Internal = 8,       ///< anything else; payload carries the reason
  Moved = 9,          ///< v2: address owned by another node (payload names it)
  Busy = 10,          ///< v3: load shed — payload leads with u64 retry-after ms
  QuotaExceeded = 11, ///< v4: tenant resident-block quota exhausted
  AccessDenied = 12,  ///< v4: bad token, cross-tenant access, or admin refused
};
[[nodiscard]] bool status_valid(std::uint8_t raw,
                                std::uint8_t version = kWireVersion) noexcept;
[[nodiscard]] const char* to_string(Status status) noexcept;

/// Every way a byte stream can fail to decode. None is the "no error yet"
/// sentinel used by FrameDecoder::error().
enum class WireErrorCode : std::uint8_t {
  None = 0,
  BadMagic,         ///< first four bytes are not "SPW1"
  BadVersion,       ///< version byte != kWireVersion
  BadOpcode,        ///< opcode byte outside the enum
  BadStatus,        ///< status byte outside the enum
  ReservedNonzero,  ///< reserved header byte set
  FrameTooLarge,    ///< declared payload length over the decoder's cap
  CrcMismatch,      ///< payload CRC32 does not match the header
  TruncatedPayload, ///< stream ended mid-frame (finish())
  BadPayload,       ///< frame-level payload malformed for its opcode
};
[[nodiscard]] const char* to_string(WireErrorCode code) noexcept;

/// One decoded (or to-be-encoded) frame.
struct Frame {
  std::uint8_t version = kWireVersion;  ///< decoded: as received; encode echoes it
  Opcode opcode = Opcode::Ping;
  Status status = Status::Ok;
  std::uint64_t request_id = 0;
  /// v3 deadline extension, milliseconds of budget remaining for the op.
  /// 0 = none. Encoded only when nonzero AND version >= 3 (a v1/v2 frame
  /// silently sheds it — those peers cannot carry the field); the decoder
  /// strips the extension here so `payload` is always the opcode payload.
  std::uint64_t deadline_ms = 0;
  /// v4 tenant extension: an authenticated tenant identity. Encoded only
  /// when has_tenant AND version >= 4; stripped by the decoder like the
  /// deadline. Responses never carry it (the server knows who it answers).
  bool has_tenant = false;
  std::uint32_t tenant_id = 0;
  std::uint64_t tenant_token = 0;
  std::vector<std::uint8_t> payload;
};

/// Stamps a request frame with a tenant identity + token (sets the v4
/// tenant extension fields; the encoder emits them for v4 frames).
inline void attach_tenant(Frame& frame, std::uint32_t tenant_id,
                          std::uint64_t token) noexcept {
  frame.has_tenant = true;
  frame.tenant_id = tenant_id;
  frame.tenant_token = token;
}

/// Serialises header + payload + CRC; appends to `out` (the server's
/// per-connection output buffer) without clearing it.
void append_frame(std::vector<std::uint8_t>& out, const Frame& frame);
/// Same encoding without materialising a Frame: the payload is written
/// straight from the caller's buffer into `out` — the server's completion
/// lanes use this to assemble READ/WRITE responses directly in the
/// connection's output buffer. An out-of-range version encodes as
/// kWireVersion (same clamping append_frame applies).
void append_frame_direct(std::vector<std::uint8_t>& out, std::uint8_t version,
                         Opcode opcode, Status status, std::uint64_t request_id,
                         std::span<const std::uint8_t> payload,
                         std::uint64_t deadline_ms = 0, bool has_tenant = false,
                         std::uint32_t tenant_id = 0,
                         std::uint64_t tenant_token = 0);
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

// --- typed request/response builders ---------------------------------------

[[nodiscard]] Frame make_ping(std::uint64_t id,
                              std::span<const std::uint8_t> echo = {});
[[nodiscard]] Frame make_read_request(std::uint64_t id, std::uint64_t block_addr);
[[nodiscard]] Frame make_write_request(std::uint64_t id, std::uint64_t block_addr,
                                       std::span<const std::uint8_t> data);
[[nodiscard]] Frame make_scrub_request(std::uint64_t id);
[[nodiscard]] Frame make_scrub_response(std::uint64_t id, std::uint64_t blocks);
[[nodiscard]] Frame make_metrics_request(
    std::uint64_t id, obs::MetricsFormat format = obs::MetricsFormat::Prometheus);
/// TOPOLOGY: empty payload fetches, a serialised topology proposes (the
/// payload bytes are produced/consumed by src/cluster — the wire layer
/// carries them opaquely).
[[nodiscard]] Frame make_topology_request(std::uint64_t id,
                                          std::span<const std::uint8_t> topology = {});
[[nodiscard]] Frame make_topology_response(std::uint64_t id,
                                           std::span<const std::uint8_t> topology);
/// MIGRATE_RANGE: spec bytes from src/cluster; the response carries three
/// u64 counters (migrated, skipped, failed).
[[nodiscard]] Frame make_migrate_request(std::uint64_t id,
                                         std::span<const std::uint8_t> spec);
[[nodiscard]] Frame make_migrate_response(std::uint64_t id, std::uint64_t migrated,
                                          std::uint64_t skipped, std::uint64_t failed);
/// MOVED: Status::Moved with the owning node's serialised NodeInfo.
[[nodiscard]] Frame make_moved_response(Opcode op, std::uint64_t id,
                                        std::span<const std::uint8_t> owner);
/// Error response: status + the reason string as payload.
[[nodiscard]] Frame make_error_response(Opcode op, Status status, std::uint64_t id,
                                        std::string_view reason);
/// Error response shaped after the request: echoes opcode, id AND wire
/// version, so a v1 client never receives a v2 frame.
[[nodiscard]] Frame make_error_response(const Frame& request, Status status,
                                        std::string_view reason);
/// BUSY (v3): load shed with a retry-after hint. The payload leads with a
/// u64 retry-after in milliseconds followed by the reason string.
[[nodiscard]] Frame make_busy_response(const Frame& request,
                                       std::uint64_t retry_after_ms,
                                       std::string_view reason);
/// ROTATE_KEY (v4): admin request to rotate `tenant`'s key domain; the
/// response reports the new epoch and how many blocks were scheduled for
/// background re-encryption.
[[nodiscard]] Frame make_rotate_request(std::uint64_t id, std::uint32_t tenant);
[[nodiscard]] Frame make_rotate_response(std::uint64_t id, std::uint64_t epoch,
                                         std::uint64_t scheduled);

// --- typed payload parsers --------------------------------------------------
// Return false and set `error` (BadPayload) instead of throwing: the server
// maps a false return to a BadRequest response, the tests assert no parser
// can crash on arbitrary bytes.

[[nodiscard]] bool parse_read_request(const Frame& frame, std::uint64_t& block_addr,
                                      WireErrorCode& error) noexcept;
/// `data` aliases frame.payload — valid while the frame lives.
[[nodiscard]] bool parse_write_request(const Frame& frame, std::uint64_t& block_addr,
                                       std::span<const std::uint8_t>& data,
                                       WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_metrics_request(const Frame& frame, obs::MetricsFormat& format,
                                         WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_scrub_response(const Frame& frame, std::uint64_t& blocks,
                                        WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_migrate_response(const Frame& frame, std::uint64_t& migrated,
                                          std::uint64_t& skipped, std::uint64_t& failed,
                                          WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_busy_response(const Frame& frame,
                                       std::uint64_t& retry_after_ms,
                                       WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_rotate_request(const Frame& frame, std::uint32_t& tenant,
                                        WireErrorCode& error) noexcept;
[[nodiscard]] bool parse_rotate_response(const Frame& frame, std::uint64_t& epoch,
                                         std::uint64_t& scheduled,
                                         WireErrorCode& error) noexcept;

enum class DecodeStatus : std::uint8_t {
  Ok,        ///< a complete frame was produced
  NeedMore,  ///< buffered bytes end mid-frame; feed() more
  Error,     ///< stream malformed; error() names why; decoder is poisoned
};

/// Incremental frame parser over a byte stream. feed() arbitrary chunks,
/// next() until NeedMore; after the peer closes, finish() distinguishes a
/// clean frame boundary from a truncated tail.
class FrameDecoder {
public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const void* data, std::size_t len);
  void feed(std::span<const std::uint8_t> bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete frame into `out`. Once Error is returned the
  /// decoder stays poisoned (same code forever) — close the connection.
  [[nodiscard]] DecodeStatus next(Frame& out);

  /// After end-of-stream: None if the buffer sits on a frame boundary,
  /// TruncatedPayload if bytes of an incomplete frame remain, or the
  /// poisoning error.
  [[nodiscard]] WireErrorCode finish() const noexcept;

  [[nodiscard]] WireErrorCode error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - off_; }
  [[nodiscard]] std::size_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

private:
  [[nodiscard]] DecodeStatus fail(WireErrorCode code) noexcept;

  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
  WireErrorCode error_ = WireErrorCode::None;
};

}  // namespace spe::net
