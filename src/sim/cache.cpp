#include "sim/cache.hpp"

#include <stdexcept>

namespace spe::sim {

Cache::Cache(CacheConfig config) : config_(config) {
  if (config_.line_bytes == 0 || config_.ways == 0)
    throw std::invalid_argument("Cache: bad geometry");
  const std::size_t lines = config_.size_bytes / config_.line_bytes;
  if (lines % config_.ways != 0)
    throw std::invalid_argument("Cache: size/ways mismatch");
  sets_ = static_cast<unsigned>(lines / config_.ways);
  lines_.assign(lines, Line{});
}

Cache::AccessResult Cache::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line_addr = addr / config_.line_bytes;
  const unsigned set = static_cast<unsigned>(line_addr % sets_);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  AccessResult result;
  ++use_counter_;
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = use_counter_;
      line.dirty = line.dirty || is_write;
      result.hit = true;
      ++stats_.hits;
      return result;
    }
  }
  ++stats_.misses;
  // Choose victim: first invalid, else LRU.
  Line* victim = base;
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid && victim->dirty) {
    result.evicted_dirty = true;
    result.writeback_addr =
        (victim->tag * sets_ + set) * config_.line_bytes;
    ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = use_counter_;
  return result;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
}

std::uint64_t Cache::dirty_lines() const {
  std::uint64_t n = 0;
  for (const auto& line : lines_) n += (line.valid && line.dirty) ? 1 : 0;
  return n;
}

}  // namespace spe::sim
