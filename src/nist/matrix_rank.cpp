// SP 800-22 2.5 Binary matrix rank test (32x32 matrices).

#include "nist/suite.hpp"
#include "util/gf2.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

TestResult matrix_rank_test(const util::BitVector& bits) {
  TestResult r{"BMR", {}, true};
  constexpr unsigned kM = 32, kQ = 32;
  const std::size_t n = bits.size();
  const std::size_t matrices = n / (kM * kQ);
  if (matrices < 38) {  // SP 800-22 requirement for the 3-class chi^2
    r.applicable = false;
    return r;
  }
  // Asymptotic class probabilities for full rank, rank-1, and lower.
  constexpr double kPFull = 0.2888, kPMinus1 = 0.5776, kPRest = 0.1336;

  double full = 0.0, minus1 = 0.0, rest = 0.0;
  for (std::size_t i = 0; i < matrices; ++i) {
    const auto m = util::Gf2Matrix::from_bits(bits, i * kM * kQ, kM, kQ);
    const unsigned rank = m.rank();
    if (rank == kM)
      full += 1.0;
    else if (rank == kM - 1)
      minus1 += 1.0;
    else
      rest += 1.0;
  }
  const double nn = static_cast<double>(matrices);
  const double chi2 = (full - kPFull * nn) * (full - kPFull * nn) / (kPFull * nn) +
                      (minus1 - kPMinus1 * nn) * (minus1 - kPMinus1 * nn) / (kPMinus1 * nn) +
                      (rest - kPRest * nn) * (rest - kPRest * nn) / (kPRest * nn);
  r.p_values.push_back(util::igamc(1.0, chi2 / 2.0));  // 2 degrees of freedom
  return r;
}

}  // namespace spe::nist
