// End-to-end system tests: TPM provisioning, SPECU operation over a real
// SNVMM, instant-on power cycling, and the functional-vs-quantised
// ciphertext view — the full Section 4 stack working together.

#include <gtest/gtest.h>

#include "core/attacks.hpp"
#include "core/specu.hpp"
#include "nist/suite.hpp"
#include "util/rng.hpp"

namespace spe {
namespace {

class EndToEnd : public ::testing::Test {
protected:
  static constexpr std::uint64_t kMeasurement = 0x900D'B007;

  EndToEnd() {
    util::Xoshiro256ss rng(2026);
    key_ = core::SpeKey::random(rng);
    tpm_.provision(memory_.device_id(), kMeasurement, key_);
  }

  std::vector<std::uint8_t> block_of(std::string_view text) {
    std::vector<std::uint8_t> v(64, ' ');
    for (std::size_t i = 0; i < text.size() && i < 64; ++i)
      v[i] = static_cast<std::uint8_t>(text[i]);
    return v;
  }

  core::Snvmm memory_;
  core::Tpm tpm_;
  core::SpeKey key_;
};

TEST_F(EndToEnd, SecretsSurvivePowerCycleButStayUnreadable) {
  const auto secret = block_of("password: hunter2 / key: 0xDEADBEEF");
  {
    core::Specu specu(memory_, core::SpeMode::Parallel);
    ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
    specu.write_block(0x100, secret);
    EXPECT_EQ(specu.power_down(), 0u);  // parallel mode: nothing pending
  }
  // Attacker probes the powered-down NVMM: ciphertext only.
  const auto probe = memory_.probe_block(0x100);
  EXPECT_NE(probe, secret);
  int matching = 0;
  for (int i = 0; i < 64; ++i) matching += probe[i] == secret[i];
  EXPECT_LT(matching, 16);  // no meaningful plaintext residue

  // Legitimate power-up: instant-on, data decrypts in place.
  core::Specu specu(memory_, core::SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  EXPECT_EQ(specu.read_block(0x100), secret);
}

TEST_F(EndToEnd, ManyBlocksManyCycles) {
  core::Specu specu(memory_, core::SpeMode::Serial);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  util::Xoshiro256ss rng(7);
  std::map<std::uint64_t, std::vector<std::uint8_t>> golden;
  for (int b = 0; b < 24; ++b) {
    std::vector<std::uint8_t> data(64);
    for (auto& v : data) v = static_cast<std::uint8_t>(rng.below(256));
    const std::uint64_t addr = rng.below(1u << 20);
    golden[addr] = data;
    specu.write_block(addr, data);
  }
  for (int round = 0; round < 3; ++round) {
    for (const auto& [addr, data] : golden) EXPECT_EQ(specu.read_block(addr), data);
    specu.background_encrypt(1000);
  }
  specu.power_down();

  core::Specu again(memory_, core::SpeMode::Serial);
  ASSERT_TRUE(again.power_on(tpm_, kMeasurement));
  for (const auto& [addr, data] : golden) EXPECT_EQ(again.read_block(addr), data);
}

TEST_F(EndToEnd, StolenNvmmIsUselessWithoutTpm) {
  // Attack 1: the attacker steals the module. Even with a SPECU of their
  // own, the TPM refuses the key for an unmeasured platform; and a guessed
  // key produces garbage.
  const auto secret = block_of("TOP SECRET");
  {
    core::Specu specu(memory_, core::SpeMode::Parallel);
    ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
    specu.write_block(0, secret);
    specu.power_down();
  }
  core::Specu attacker(memory_, core::SpeMode::Parallel);
  EXPECT_FALSE(attacker.power_on(tpm_, /*wrong measurement*/ 0x1337));

  core::Tpm rogue_tpm;
  util::Xoshiro256ss rng(999);
  rogue_tpm.provision(memory_.device_id(), 0, core::SpeKey::random(rng));
  ASSERT_TRUE(attacker.power_on(rogue_tpm, 0));
  EXPECT_NE(attacker.read_block(0), secret);
}

TEST_F(EndToEnd, CiphertextInArrayLooksRandom) {
  // Probe a large set of encrypted blocks and run the core NIST battery on
  // the concatenated array image.
  core::Specu specu(memory_, core::SpeMode::Parallel);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  util::Xoshiro256ss rng(5);
  util::BitVector image;
  for (int b = 0; b < 128; ++b) {
    std::vector<std::uint8_t> data(64);
    for (auto& v : data) v = static_cast<std::uint8_t>(rng.below(256));
    specu.write_block(static_cast<std::uint64_t>(b) * 64, data);
    image.append_bytes(specu.read_block(static_cast<std::uint64_t>(b) * 64).empty()
                           ? std::vector<std::uint8_t>{}
                           : memory_.probe_block(static_cast<std::uint64_t>(b) * 64));
  }
  EXPECT_TRUE(nist::frequency_test(image).passed(0.001));
  EXPECT_TRUE(nist::runs_test(image).passed(0.001));
  EXPECT_TRUE(nist::serial_test(image).passed(0.001));
}

TEST_F(EndToEnd, ColdBootWindowMatchesCacheState) {
  core::Specu specu(memory_, core::SpeMode::Serial);
  ASSERT_TRUE(specu.power_on(tpm_, kMeasurement));
  for (std::uint64_t b = 0; b < 50; ++b)
    specu.write_block(b, block_of("data"));
  for (std::uint64_t b = 0; b < 50; ++b) (void)specu.read_block(b);
  const auto pending = specu.plaintext_blocks();
  ASSERT_EQ(pending, 50u);
  const auto report = core::cold_boot_analysis(pending * 64);
  EXPECT_EQ(report.dirty_blocks, 50u);
  EXPECT_NEAR(report.spe_window_seconds, 50 * 1600e-9, 1e-12);
  // Orderly power-down secures exactly those blocks.
  EXPECT_EQ(specu.power_down(), 50u);
}

}  // namespace
}  // namespace spe
