#pragma once
// NIST SP 800-22 statistical test suite (the paper's ref [17]), re-implemented
// in C++ for Table 2. Each test maps a binary sequence to one or more
// p-values; a sequence FAILS a test if any of its p-values falls below the
// significance level (alpha = 0.01 in the paper). Table 2 counts failing
// sequences per test over a 150-sequence data set; the acceptance bound
// ("not more than 5 of 150 may fail") is the standard NIST proportion
// interval, available as spe::util::max_allowed_failures().
//
// Parameter choices follow SP 800-22 rev 1a recommendations scaled to the
// paper's ~120 kbit sequences (we default to power-of-two lengths so the
// spectral test can use an exact radix-2 FFT).

#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace spe::nist {

/// Result of one test on one sequence.
struct TestResult {
  std::string name;
  std::vector<double> p_values;  ///< One or more (serial, cusum, excursions...).
  bool applicable = true;        ///< False when the sequence is too short /
                                 ///< has too few cycles (counts as pass).

  [[nodiscard]] bool passed(double alpha = 0.01) const;
  /// The smallest p-value (1.0 if not applicable / empty).
  [[nodiscard]] double worst_p() const;
};

// --- the fifteen SP 800-22 tests -----------------------------------------
// Every function takes the full sequence; tests with block parameters pick
// them per the SP 800-22 guidance from the sequence length.

TestResult frequency_test(const util::BitVector& bits);
TestResult block_frequency_test(const util::BitVector& bits, unsigned block_len = 128);
TestResult runs_test(const util::BitVector& bits);
TestResult longest_run_test(const util::BitVector& bits);
TestResult matrix_rank_test(const util::BitVector& bits);
TestResult dft_test(const util::BitVector& bits);
TestResult non_overlapping_template_test(const util::BitVector& bits);
TestResult overlapping_template_test(const util::BitVector& bits);
TestResult universal_test(const util::BitVector& bits);
TestResult linear_complexity_test(const util::BitVector& bits, unsigned block_len = 500);
TestResult serial_test(const util::BitVector& bits, unsigned pattern_len = 8);
TestResult approximate_entropy_test(const util::BitVector& bits, unsigned pattern_len = 8);
TestResult cusum_test(const util::BitVector& bits);
TestResult random_excursions_test(const util::BitVector& bits);
TestResult random_excursions_variant_test(const util::BitVector& bits);

/// The Table-2 row order (15 tests).
[[nodiscard]] std::vector<std::string> test_names();

/// Runs all fifteen tests on one sequence, in Table-2 row order.
[[nodiscard]] std::vector<TestResult> run_all(const util::BitVector& bits);

/// Aggregated results of a data set (many sequences through all tests).
struct SuiteSummary {
  std::vector<std::string> names;      ///< Test names (Table-2 rows).
  std::vector<unsigned> failures;      ///< Failing-sequence count per test.
  unsigned sequences = 0;
  double alpha = 0.01;

  /// Acceptance per test: failures <= max_allowed_failures(sequences, alpha).
  [[nodiscard]] bool all_accepted() const;
  [[nodiscard]] unsigned max_allowed() const;
};

/// Evaluates a whole data set. Sequences are tested independently.
[[nodiscard]] SuiteSummary evaluate_dataset(const std::vector<util::BitVector>& sequences,
                                            double alpha = 0.01);

}  // namespace spe::nist
