#pragma once
// PoE placement (Section 5.5, Table 1). Builds and solves the ILP that
// chooses Points of Encryption so that
//   (1) every memory cell is covered by at least one polyomino,
//   (2) no cell is covered by more than two (overlap saturation limit),
//   (3) total coverage is at least MN + S (S = security/latency trade-off),
//   (4) the number of PoEs is minimal.
//
// Two formulations are provided:
//  - the *set form* (one binary per candidate PoE cell) used operationally —
//    it is the Table-1 model after eliminating the B matrix's polyomino-slot
//    symmetry, and
//  - the *literal Table-1 form* (B[i][j] binaries) kept for validation on
//    small crossbars; tests show both give the same optimum.

#include <vector>

#include "ilp/placement_solver.hpp"
#include "ilp/solver.hpp"

namespace spe::ilp {

/// Result of a placement solve.
struct PoePlacement {
  std::vector<unsigned> poes;      ///< Chosen PoE cells (flat row-major).
  std::vector<unsigned> coverage;  ///< Per-cell polyomino count.
  bool optimal = false;            ///< Solver proved optimality.
  bool feasible = false;           ///< A valid placement was found.

  /// Provenance (filled by every entry point; the classic single-solver
  /// paths always attribute BranchAndBound).
  Solution::Status status = Solution::Status::NoSolution;
  BackendKind backend = BackendKind::BranchAndBound;  ///< winning backend
  double best_bound = 0.0;  ///< proven bound on the optimum (see has_bound)
  bool has_bound = false;
  double elapsed_ms = 0.0;  ///< total solve wall-clock across backends

  [[nodiscard]] unsigned overlapped_cells() const;      ///< coverage >= 2
  [[nodiscard]] unsigned single_covered_cells() const;  ///< coverage == 1
  [[nodiscard]] unsigned uncovered_cells() const;       ///< coverage == 0
  [[nodiscard]] unsigned total_coverage() const;
};

/// The Table-1 canonical polyomino stencil (footnote b) for a PoE at flat
/// row-major index `poe_flat`: the PoE itself, its two same-row neighbours
/// (i +/- 1) and the same-column cells within four rows (i - N*k,
/// k in [-4, 4]), clipped at the array boundary.
[[nodiscard]] std::vector<unsigned> table1_stencil(unsigned rows, unsigned cols,
                                                   unsigned poe_flat);

/// All candidate polyomino shapes for an rows x cols crossbar: entry p is
/// the stencil of a PoE at cell p.
[[nodiscard]] std::vector<std::vector<unsigned>> all_stencils(unsigned rows, unsigned cols);

/// Minimum-PoE placement for an rows x cols crossbar with security margin
/// `security_s` (Table 1: 0 <= S <= MN-1). Solved as a feasibility sweep
/// over increasing PoE counts, each step a fixed-count ILP.
[[nodiscard]] PoePlacement solve_min_poes(unsigned rows, unsigned cols, unsigned security_s,
                                          SolverOptions options = {});

/// Fixed-count placement with exactly `count` PoEs, maximizing total
/// coverage subject to the per-cell [1, 2] window (the Fig. 6 experiment).
/// If the strict window is infeasible for this count, `feasible` is false.
[[nodiscard]] PoePlacement solve_fixed_poes(unsigned rows, unsigned cols, unsigned count,
                                            SolverOptions options = {});

/// Generalised variants over arbitrary candidate shapes (entry p = covered
/// cells when the PoE is cell p) — used to run the placement ILP on
/// *physically extracted* polyominoes as an ablation.
[[nodiscard]] PoePlacement solve_min_poes_shapes(
    const std::vector<std::vector<unsigned>>& shapes, unsigned cell_count,
    unsigned security_s, SolverOptions options = {});
[[nodiscard]] PoePlacement solve_fixed_poes_shapes(
    const std::vector<std::vector<unsigned>>& shapes, unsigned cell_count, unsigned count,
    SolverOptions options = {});

/// Builds the symmetry-reduced set-form placement model directly (one
/// binary per candidate PoE; per-cell coverage in [1, 2]). Exposed so the
/// portfolio, the frontier bench, and the differential tests all solve the
/// *same* model object. `exact_count < 0` leaves the PoE count free;
/// `min_total_coverage <= 0` drops the coverage floor. With
/// `maximize_coverage` false the objective minimises the PoE count.
[[nodiscard]] Model build_placement_model(const std::vector<std::vector<unsigned>>& shapes,
                                          unsigned cell_count, int exact_count,
                                          int min_total_coverage, bool maximize_coverage);

/// Portfolio entry points (the production path for crossbars beyond 8x8).
/// Unlike solve_min_poes' per-count feasibility sweep, the minimum-count
/// variant solves the direct minimise-count model once through the backend
/// schedule, so heuristic backends can answer when the exact B&B cannot.
/// Provenance (winning backend, status, anytime bound) lands in the
/// PoePlacement fields above.
[[nodiscard]] PoePlacement solve_min_poes_portfolio(unsigned rows, unsigned cols,
                                                    unsigned security_s,
                                                    PortfolioOptions options = {});
[[nodiscard]] PoePlacement solve_fixed_poes_portfolio(unsigned rows, unsigned cols,
                                                      unsigned count,
                                                      PortfolioOptions options = {});
[[nodiscard]] PoePlacement solve_min_poes_shapes_portfolio(
    const std::vector<std::vector<unsigned>>& shapes, unsigned cell_count,
    unsigned security_s, PortfolioOptions options = {});
[[nodiscard]] PoePlacement solve_fixed_poes_shapes_portfolio(
    const std::vector<std::vector<unsigned>>& shapes, unsigned cell_count, unsigned count,
    PortfolioOptions options = {});

/// The literal Table-1 formulation with explicit B[i][j] binaries for
/// `max_polyominoes` polyomino slots (use only for small crossbars).
[[nodiscard]] Model build_table1_model(unsigned rows, unsigned cols,
                                       unsigned max_polyominoes, unsigned security_s);

/// Greedy cover heuristic (used as a solver fallback and as the ILP's warm
/// start in benchmarks). Never exceeds the 2-coverage cap; may leave cells
/// uncovered when greedy choices paint it into a corner.
[[nodiscard]] PoePlacement greedy_cover(unsigned rows, unsigned cols);

}  // namespace spe::ilp
