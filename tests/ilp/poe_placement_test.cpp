#include "ilp/poe_placement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spe::ilp {
namespace {

TEST(Table1Stencil, InteriorShape) {
  // Interior PoE: vertical +/-4 (9 cells incl. PoE) + 2 horizontal = 11.
  // On 8x8 the vertical arm always clips; use a 16x8 array for the full
  // stencil.
  const auto cells = table1_stencil(16, 8, 8 * 8 + 4);  // row 8, col 4
  EXPECT_EQ(cells.size(), 11u);
  std::set<unsigned> set(cells.begin(), cells.end());
  EXPECT_TRUE(set.contains(8u * 8 + 4));      // the PoE
  EXPECT_TRUE(set.contains(8u * 8 + 3));      // left
  EXPECT_TRUE(set.contains(8u * 8 + 5));      // right
  EXPECT_TRUE(set.contains(4u * 8 + 4));      // 4 up
  EXPECT_TRUE(set.contains(12u * 8 + 4));     // 4 down
}

TEST(Table1Stencil, CornerClips) {
  const auto cells = table1_stencil(8, 8, 0);
  // Vertical rows 0..4 (5 cells) + right neighbour = 6.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Table1Stencil, Row3CoversFullColumn) {
  const auto cells = table1_stencil(8, 8, 3 * 8 + 2);
  unsigned column_cells = 0;
  for (unsigned cell : cells) column_cells += cell % 8 == 2;
  EXPECT_EQ(column_cells, 8u);  // rows -1..7 clipped to 0..7
}

TEST(Table1Stencil, OutOfRangeThrows) {
  EXPECT_THROW((void)table1_stencil(8, 8, 64), std::out_of_range);
}

TEST(AllStencils, OnePerCell) {
  const auto shapes = all_stencils(8, 8);
  EXPECT_EQ(shapes.size(), 64u);
  for (unsigned p = 0; p < 64; ++p) {
    // Every stencil contains its own PoE.
    bool has_self = false;
    for (unsigned cell : shapes[p]) has_self |= cell == p;
    EXPECT_TRUE(has_self) << "PoE " << p;
  }
}

TEST(GreedyCover, NeverExceedsCap) {
  const auto placement = greedy_cover(8, 8);
  for (unsigned c : placement.coverage) EXPECT_LE(c, 2u);
  EXPECT_GT(placement.poes.size(), 0u);
}

TEST(SolveFixedPoes, FourteenPoesCoverEverything) {
  SolverOptions opt;
  opt.node_limit = 4'000'000;
  const auto placement = solve_fixed_poes(8, 8, 14, opt);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.poes.size(), 14u);
  EXPECT_EQ(placement.uncovered_cells(), 0u);
  for (unsigned c : placement.coverage) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 2u);
  }
}

TEST(SolveFixedPoes, CountsAreConsistent) {
  SolverOptions opt;
  opt.node_limit = 2'000'000;
  const auto placement = solve_fixed_poes(8, 8, 12, opt);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.single_covered_cells() + placement.overlapped_cells() +
                placement.uncovered_cells(),
            64u);
  EXPECT_EQ(placement.total_coverage(),
            placement.single_covered_cells() + 2 * placement.overlapped_cells());
}

TEST(SolveMinPoes, SmallCrossbarOptimum) {
  // 4x4 (the Fig. 2a configuration): the paper uses 4 PoEs on a 4x4.
  const auto placement = solve_min_poes(4, 4, /*security_s=*/0);
  ASSERT_TRUE(placement.feasible);
  EXPECT_LE(placement.poes.size(), 5u);
  EXPECT_GE(placement.poes.size(), 3u);
  EXPECT_EQ(placement.uncovered_cells(), 0u);
}

TEST(SolveMinPoes, RejectsBadSecurity) {
  EXPECT_THROW((void)solve_min_poes(4, 4, 16), std::invalid_argument);
}

TEST(SolveMinPoesShapes, HigherSecurityNeedsMorePoes) {
  SolverOptions opt;
  opt.node_limit = 2'000'000;
  const auto low = solve_min_poes(8, 8, 0, opt);
  const auto high = solve_min_poes(8, 8, 40, opt);
  if (low.feasible && high.feasible)
    EXPECT_GE(high.poes.size(), low.poes.size());
}

TEST(BuildTable1Model, MatchesSetFormOn3x3) {
  // The literal B-matrix formulation and the symmetry-reduced set form must
  // agree on the minimum PoE count for a small array.
  const unsigned rows = 3, cols = 3;
  const auto set_form = solve_min_poes(rows, cols, 0);
  ASSERT_TRUE(set_form.feasible);

  const Model table1 = build_table1_model(rows, cols, /*max_polyominoes=*/6, 0);
  Solver solver;
  const auto sol = solver.solve(table1);
  ASSERT_TRUE(sol.has_solution());
  EXPECT_DOUBLE_EQ(sol.objective, static_cast<double>(set_form.poes.size()));
}

TEST(SolveFixedPoesShapes, CustomShapesRespected) {
  // Trivial shapes: each PoE covers only itself -> fixed count k covers k.
  std::vector<std::vector<unsigned>> shapes(9);
  for (unsigned p = 0; p < 9; ++p) shapes[p] = {p};
  const auto placement = solve_fixed_poes_shapes(shapes, 9, 9);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.poes.size(), 9u);
  EXPECT_EQ(placement.uncovered_cells(), 0u);
  EXPECT_EQ(placement.overlapped_cells(), 0u);
}

}  // namespace
}  // namespace spe::ilp
