// LP-relaxation-guided rounding backend (BackendKind::LpRounding).
//
// A real simplex/interior-point LP is out of scope (and out of the
// container), so the relaxation is approximated with POCS-style projection
// sweeps: start every variable at 0.5, repeatedly project the fractional
// point onto each violated constraint's bounding hyperplane (the classic
// Agmon–Motzkin relaxation method), nudge along the objective gradient, and
// clip to [0,1]. For the diagonally-dominant covering models this converges
// to a near-feasible fractional guide in a few dozen sweeps.
//
// The guide is then rounded deterministically — variables in descending
// fraction order, skipping raises that would break an upper bound — and the
// result is handed to the shared annealing repair + objective local search
// (heuristic_state.cpp). All ordering is (fraction, index)-lexicographic and
// all randomness is seeded, so runs are byte-identical per seed when
// time_limit_ms == 0.

#include <algorithm>
#include <numeric>

#include "ilp/heuristic_state.hpp"
#include "ilp/placement_solver.hpp"

namespace spe::ilp {

namespace {

using detail::Deadline;
using detail::IncrementalEval;
using detail::kHeurEps;

class LpRoundingSolver final : public PlacementSolver {
public:
  explicit LpRoundingSolver(SolverOptions options) : options_(options) {}

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::LpRounding;
  }

  [[nodiscard]] Solution solve(const Model& model) override {
    const auto t0 = std::chrono::steady_clock::now();
    const Deadline deadline(options_.time_limit_ms);
    Solution out;
    const unsigned n = model.num_vars();
    if (n == 0) {
      out.status = model.is_feasible({}) ? Solution::Status::Feasible
                                         : Solution::Status::NoSolution;
      return out;
    }

    // --- Fractional guide: projection sweeps --------------------------------
    const auto& cons = model.constraints();
    std::vector<double> norm_sq(cons.size(), 0.0);
    for (std::size_t ci = 0; ci < cons.size(); ++ci)
      for (const Term& t : cons[ci].terms) norm_sq[ci] += t.coeff * t.coeff;

    std::vector<double> x(n, 0.5);
    const double obj_step = 0.02;  // gentle gradient nudge per sweep
    const double obj_sign = model.sense == Sense::Minimize ? -1.0 : 1.0;
    bool cut_off = false;
    for (unsigned sweep = 0; sweep < std::max(1u, options_.lp_sweeps); ++sweep) {
      if (deadline.expired()) {
        cut_off = true;
        break;
      }
      double moved = 0.0;
      for (std::size_t ci = 0; ci < cons.size(); ++ci) {
        if (norm_sq[ci] <= kHeurEps) continue;
        const Constraint& c = cons[ci];
        double s = 0.0;
        for (const Term& t : c.terms) s += t.coeff * x[t.var];
        double target = s;
        if (s < c.lo - kHeurEps) target = c.lo;
        else if (s > c.hi + kHeurEps) target = c.hi;
        else continue;
        const double step = (target - s) / norm_sq[ci];
        for (const Term& t : c.terms) {
          const double nx = std::clamp(x[t.var] + step * t.coeff, 0.0, 1.0);
          moved += std::abs(nx - x[t.var]);
          x[t.var] = nx;
        }
      }
      // Objective nudge, then clip. Scaled down as sweeps progress so the
      // feasibility projections win in the end game.
      const double decay =
          1.0 - static_cast<double>(sweep) / std::max(1u, options_.lp_sweeps);
      const auto& obj = model.objective();
      for (unsigned v = 0; v < n; ++v)
        x[v] = std::clamp(x[v] + obj_sign * obj_step * decay * obj[v], 0.0, 1.0);
      if (moved <= kHeurEps && sweep > 4) break;  // converged
    }

    // --- Deterministic rounding by descending fraction ----------------------
    std::vector<unsigned> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
      if (x[a] != x[b]) return x[a] > x[b];
      return a < b;
    });

    IncrementalEval eval(model);
    for (const unsigned v : order) {
      if (x[v] < 0.5 - kHeurEps && eval.feasible()) break;
      if (eval.raise_breaks_upper(v)) continue;
      // Raise when the guide wants it or it still buys lower-side coverage.
      if (x[v] >= 0.5 - kHeurEps || eval.raise_gain(v) > kHeurEps) eval.flip(v);
    }

    // --- Shared repair + polish ---------------------------------------------
    util::Xoshiro256ss rng(util::mix64(options_.seed ^ 0x19CEDull));
    if (!eval.feasible() && !cut_off)
      detail::anneal_repair(eval, rng, detail::scaled_iters(options_.grasp_anneal_iters, n),
                            deadline);
    if (eval.feasible())
      detail::improve_objective(
          eval, rng, detail::scaled_iters(options_.grasp_improve_iters, n), deadline);

    if (eval.feasible()) {
      out.status = (cut_off || deadline.expired()) ? Solution::Status::TimeLimit
                                                   : Solution::Status::Feasible;
      out.objective = eval.objective();
      out.values = eval.values();
    } else {
      out.status = Solution::Status::NoSolution;  // feasibility stays unknown
    }
    // Heuristic: no bound, never Optimal.
    out.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return out;
  }

private:
  SolverOptions options_;
};

}  // namespace

std::unique_ptr<PlacementSolver> make_lp_rounding_solver(SolverOptions options) {
  return std::make_unique<LpRoundingSolver>(options);
}

}  // namespace spe::ilp
