# Empty dependencies file for fig8_encrypted_fraction.
# This may be replaced when dependencies are built.
