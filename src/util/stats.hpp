#pragma once
// Light statistics helpers shared by the simulator metrics, the Monte-Carlo
// sweeps and the NIST suite bookkeeping.

#include <cstddef>
#include <vector>

namespace spe::util {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
[[nodiscard]] double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Chi-square statistic of observed counts against expected counts.
[[nodiscard]] double chi_square(const std::vector<double>& observed,
                                const std::vector<double>& expected);

/// Maximum number of failures out of `n` trials at which a Bernoulli(alpha)
/// failure process is still plausible — the NIST acceptance bound
/// p_hat + 3*sqrt(p_hat (1-p_hat) / n) applied to counts. For n = 150 and
/// alpha = 0.01 this yields 5, matching Table 2's "not more than 5 of 150".
[[nodiscard]] unsigned max_allowed_failures(unsigned n, double alpha);

}  // namespace spe::util
