#pragma once
// Key schedule (Section 5.4, Fig. 2a): the 88-bit key seeds two coupled-LCG
// PRNGs; the address PRNG orders the ILP-chosen PoE set and the voltage PRNG
// assigns one of 32 pulse codes to each PoE. One schedule protects one
// crossbar unit; a 64-byte cache block uses four units whose schedules are
// derived from the same key with the unit index folded into the seeds
// (Section 6.2.1: "four 8x8 crossbars are used to store 64 bytes").

#include <vector>

#include "core/key.hpp"
#include "core/lut.hpp"

namespace spe::core {

/// One SPE pulse: where and what to apply.
struct PulseStep {
  unsigned poe_cell = 0;    ///< Flat row-major PoE cell index.
  unsigned pulse_code = 0;  ///< Index into the VoltageLut / PulseLibrary.
};

/// The full encryption sequence for one crossbar unit. Decryption uses the
/// same steps in reverse order (Section 5.3).
class KeySchedule {
public:
  KeySchedule(const SpeKey& key, const AddressLut& addresses, const VoltageLut& voltages,
              unsigned unit_index = 0);

  [[nodiscard]] const std::vector<PulseStep>& steps() const noexcept { return steps_; }
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(steps_.size()); }

private:
  std::vector<PulseStep> steps_;
};

}  // namespace spe::core
