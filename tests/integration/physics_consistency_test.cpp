// Physics-tier <-> behavioural-tier consistency: the calibrated cipher
// tables must reflect what the device/crossbar simulation actually does,
// and a *physical* encryption pass (real PoE pulses through the nodal
// solver) must corrupt read-out just as the behavioural model says.

#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/key_schedule.hpp"
#include "device/cell.hpp"
#include "xbar/monte_carlo.hpp"
#include "xbar/polyomino.hpp"

namespace spe {
namespace {

TEST(PhysicsConsistency, ShapeMatchesFreshExtraction) {
  // The calibration's stored shapes must equal polyominoes extracted from a
  // fresh mid-state crossbar with the same parameters.
  const xbar::CrossbarParams params;
  const auto cal = core::get_calibration(params);
  xbar::Crossbar xb(params);
  for (unsigned i = 0; i < 64; ++i) xb.cell(i).memristor().set_state(0.5);

  for (unsigned p : {0u, 7u, 27u, 36u, 63u}) {
    const auto poly = xbar::extract_polyomino(
        xb, {p / 8, p % 8}, 1.0);
    const auto& shape = cal->shape(p);
    unsigned shape_count = static_cast<unsigned>(shape.cells.size());
    EXPECT_EQ(shape_count, poly.count()) << "PoE " << p;
    for (std::uint16_t cell : shape.cells) EXPECT_TRUE(poly.covers(cell));
  }
}

TEST(PhysicsConsistency, PermDirectionMatchesTeamDynamics) {
  // For each pulse code, the table's direction of level motion at tier 0
  // must match a direct TEAM integration from the band-1 centre.
  const xbar::CrossbarParams params;
  const auto cal = core::get_calibration(params);
  const device::MlcCodec codec(params.team);
  const unsigned start_level = device::MlcCodec::level_for_symbol(1);

  for (unsigned code = 0; code < 32; ++code) {
    const auto& pulse = cal->library().pulse(code);
    device::Cell cell(params.team, params.transistor,
                      codec.state_for_level(start_level));
    cell.set_gate(true);
    cell.apply_cell_voltage(pulse.voltage, pulse.width);
    const int direct = static_cast<int>(codec.level_for_state(cell.memristor().state()));
    const int direct_shift = direct - static_cast<int>(start_level);
    // The table's cyclic shift is the MEAN displacement over all levels;
    // compare it against the direct integration from the band-1 centre.
    const int s = (static_cast<int>(cal->perm(code, 0)[0]) + 64) % 64;
    const int table_shift = s >= 32 ? s - 64 : s;
    if (direct_shift != 0) {
      EXPECT_EQ(table_shift > 0, direct_shift > 0) << "code " << code;
    }
    // Mean-vs-pointwise displacement: generous but bounded agreement.
    EXPECT_NEAR(table_shift, direct_shift, 12) << "code " << code;
  }
}

TEST(PhysicsConsistency, PhysicalEncryptionScramblesReadout) {
  // Run a REAL physical encryption: apply the key schedule's pulses through
  // the sneak-path solver and confirm the quantised read-out changes for a
  // large fraction of cells (the physical counterpart of encrypt()).
  const xbar::CrossbarParams params;
  const auto cal = core::get_calibration(params);
  const core::SpeKey key{0xA5A5, 0x5A5A};
  const core::AddressLut lut(core::default_poes_8x8(), 8, 8);
  const core::KeySchedule schedule(key, lut, core::VoltageLut{});

  xbar::Crossbar xb(params);
  std::vector<unsigned> plaintext(64);
  for (unsigned i = 0; i < 64; ++i) plaintext[i] = i % 4;
  xb.load_symbols(plaintext);

  for (const auto& step : schedule.steps()) {
    const xbar::PoE poe{step.poe_cell / 8, step.poe_cell % 8};
    (void)xbar::apply_poe_pulse(xb, poe, cal->library().pulse(step.pulse_code));
  }
  const auto ciphertext = xb.dump_symbols();
  unsigned changed = 0;
  for (unsigned i = 0; i < 64; ++i) changed += ciphertext[i] != plaintext[i];
  EXPECT_GT(changed, 24u);  // the 16 polyominoes perturb most of the array
}

TEST(PhysicsConsistency, PhysicalDecryptWidthsRecoverSingleCell) {
  // Fig. 5 end-to-end: encrypt a lone cell with a schedule pulse, then undo
  // it with the calibration's decrypt width; the read symbol must return.
  const xbar::CrossbarParams params;
  const auto cal = core::get_calibration(params);
  const device::MlcCodec codec(params.team);

  for (unsigned code : {10u, 12u, 14u}) {  // wide +1V pulses
    device::Cell cell(params.team, params.transistor, codec.state_for_symbol(1));
    cell.set_gate(true);
    const auto& pulse = cal->library().pulse(code);
    cell.apply_cell_voltage(pulse.voltage, pulse.width);
    const unsigned encrypted_symbol = codec.symbol_for_state(cell.memristor().state());
    cell.apply_cell_voltage(-pulse.voltage, cal->decrypt_width(code, 0));
    EXPECT_EQ(codec.symbol_for_state(cell.memristor().state()), 1u) << "code " << code;
    // And the pulse really moved it before the undo.
    EXPECT_NE(encrypted_symbol, 1u) << "code " << code;
  }
}

TEST(PhysicsConsistency, HardwarePerturbationChangesBothTiers) {
  // A macro parameter change alters the physical voltage map AND the
  // behavioural tables — the two tiers stay in step (hardware avalanche).
  const xbar::CrossbarParams nominal;
  const auto perturbed = xbar::perturb_macro(nominal, 0.08);
  EXPECT_NE(core::fingerprint_of(nominal), core::fingerprint_of(perturbed));
  const auto cal_a = core::get_calibration(nominal);
  const auto cal_b = core::get_calibration(perturbed);
  bool differs = false;
  for (unsigned code = 0; code < 32 && !differs; ++code)
    differs = cal_a->perm(code, 1) != cal_b->perm(code, 1);
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace spe
