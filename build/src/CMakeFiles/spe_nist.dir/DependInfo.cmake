
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nist/complexity.cpp" "src/CMakeFiles/spe_nist.dir/nist/complexity.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/complexity.cpp.o.d"
  "/root/repo/src/nist/cusum.cpp" "src/CMakeFiles/spe_nist.dir/nist/cusum.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/cusum.cpp.o.d"
  "/root/repo/src/nist/dft.cpp" "src/CMakeFiles/spe_nist.dir/nist/dft.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/dft.cpp.o.d"
  "/root/repo/src/nist/entropy.cpp" "src/CMakeFiles/spe_nist.dir/nist/entropy.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/entropy.cpp.o.d"
  "/root/repo/src/nist/excursions.cpp" "src/CMakeFiles/spe_nist.dir/nist/excursions.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/excursions.cpp.o.d"
  "/root/repo/src/nist/frequency.cpp" "src/CMakeFiles/spe_nist.dir/nist/frequency.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/frequency.cpp.o.d"
  "/root/repo/src/nist/matrix_rank.cpp" "src/CMakeFiles/spe_nist.dir/nist/matrix_rank.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/matrix_rank.cpp.o.d"
  "/root/repo/src/nist/runs.cpp" "src/CMakeFiles/spe_nist.dir/nist/runs.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/runs.cpp.o.d"
  "/root/repo/src/nist/serial.cpp" "src/CMakeFiles/spe_nist.dir/nist/serial.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/serial.cpp.o.d"
  "/root/repo/src/nist/suite.cpp" "src/CMakeFiles/spe_nist.dir/nist/suite.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/suite.cpp.o.d"
  "/root/repo/src/nist/templates.cpp" "src/CMakeFiles/spe_nist.dir/nist/templates.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/templates.cpp.o.d"
  "/root/repo/src/nist/universal.cpp" "src/CMakeFiles/spe_nist.dir/nist/universal.cpp.o" "gcc" "src/CMakeFiles/spe_nist.dir/nist/universal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
