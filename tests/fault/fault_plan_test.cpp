// FaultPlan determinism and distribution tests (src/fault). The plan is a
// pure function of (seed, site, event): same seed -> identical schedule in
// any query order; different seed -> a different schedule.

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using spe::fault::CellSite;
using spe::fault::FaultKind;
using spe::fault::FaultModelConfig;
using spe::fault::FaultPlan;

constexpr std::uint64_t kDevice = 0xD00D;

FaultModelConfig stuck_only(double rate) {
  FaultModelConfig cfg;
  cfg.stuck_at_lrs_rate = rate / 2;
  cfg.stuck_at_hrs_rate = rate / 2;
  return cfg;
}

TEST(FaultPlan, SameSeedReplaysIdenticalSchedule) {
  const FaultPlan a(12345, stuck_only(0.01));
  const FaultPlan b(12345, stuck_only(0.01));
  for (std::uint64_t addr = 0; addr < 64; ++addr)
    EXPECT_EQ(a.stuck_cells(kDevice, addr, 0, 256), b.stuck_cells(kDevice, addr, 0, 256));
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a(1, stuck_only(0.05));
  const FaultPlan b(2, stuck_only(0.05));
  unsigned differing = 0;
  for (std::uint64_t addr = 0; addr < 64; ++addr)
    if (a.stuck_cells(kDevice, addr, 0, 256) != b.stuck_cells(kDevice, addr, 0, 256))
      ++differing;
  EXPECT_GT(differing, 0u);
}

// Purity: interleaved / repeated queries return the same answer as fresh
// ones — there is no hidden sequential RNG state to perturb.
TEST(FaultPlan, QueriesAreOrderIndependent) {
  const FaultPlan plan(777, stuck_only(0.1));
  const CellSite s1{kDevice, 5, 0, 10};
  const CellSite s2{kDevice, 9, 0, 200};
  const FaultKind first_s1 = plan.persistent_fault(s1);
  const FaultKind first_s2 = plan.persistent_fault(s2);
  (void)plan.drift_delta(s2, 3);
  unsigned bit = 0;
  (void)plan.read_noise_flip(s1, 7, bit);
  EXPECT_EQ(plan.persistent_fault(s2), first_s2);
  EXPECT_EQ(plan.persistent_fault(s1), first_s1);
}

TEST(FaultPlan, ZeroRatesMeanNoFaults) {
  const FaultPlan plan(42, FaultModelConfig{});
  EXPECT_FALSE(plan.config().any());
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    EXPECT_TRUE(plan.stuck_cells(kDevice, addr, 0, 256).empty());
  unsigned bit = 0;
  EXPECT_FALSE(plan.read_noise_flip({kDevice, 1, 0, 1}, 0, bit));
  EXPECT_FALSE(plan.pulse_dropped({kDevice, 1, 0, 1}, 0));
  EXPECT_EQ(plan.drift_delta({kDevice, 1, 0, 1}, 0), 0);
}

TEST(FaultPlan, RateOneSticksEveryCell) {
  FaultModelConfig cfg;
  cfg.stuck_at_lrs_rate = 1.0;
  const FaultPlan plan(42, cfg);
  const auto stuck = plan.stuck_cells(kDevice, 3, 0, 128);
  ASSERT_EQ(stuck.size(), 128u);
  for (const auto& [cell, kind] : stuck) EXPECT_EQ(kind, FaultKind::StuckAtLrs);
}

TEST(FaultPlan, StuckRateIsRespectedStatistically) {
  const FaultPlan plan(99, stuck_only(0.1));
  unsigned stuck = 0;
  const unsigned blocks = 200, cells = 256;
  for (std::uint64_t addr = 0; addr < blocks; ++addr)
    stuck += static_cast<unsigned>(plan.stuck_cells(kDevice, addr, 0, cells).size());
  const double p = static_cast<double>(stuck) / (blocks * cells);
  EXPECT_NEAR(p, 0.1, 0.01);
}

TEST(FaultPlan, StuckLevelsAreBandCentresOfExtremeSymbols) {
  using Codec = spe::device::MlcCodec;
  EXPECT_EQ(FaultPlan::stuck_level(FaultKind::StuckAtLrs),
            Codec::level_for_symbol(0));
  EXPECT_EQ(FaultPlan::stuck_level(FaultKind::StuckAtHrs),
            Codec::level_for_symbol(Codec::kSymbols - 1));
  EXPECT_EQ(FaultPlan::stuck_level(FaultKind::None), 0);
}

// Remapping to a spare (epoch bump) re-rolls the manufacturing draws.
TEST(FaultPlan, RemapEpochChangesTheDraws) {
  const FaultPlan plan(1234, stuck_only(0.2));
  unsigned differing = 0;
  for (std::uint64_t addr = 0; addr < 32; ++addr)
    if (plan.stuck_cells(kDevice, addr, 0, 256) != plan.stuck_cells(kDevice, addr, 1, 256))
      ++differing;
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlan, DriftIsBoundedAndSometimesNonzero) {
  FaultModelConfig cfg;
  cfg.drift_sigma = 2.0;
  const FaultPlan plan(5, cfg);
  constexpr int kBand = 16;  // kInternalLevels / kSymbols
  unsigned nonzero = 0;
  for (unsigned c = 0; c < 256; ++c) {
    for (std::uint64_t tick = 0; tick < 8; ++tick) {
      const int d = plan.drift_delta({kDevice, 1, 0, c}, tick);
      EXPECT_GE(d, -kBand);
      EXPECT_LE(d, kBand);
      if (d != 0) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 0u);
}

TEST(FaultPlan, NoiseFlipsSingleLevelBits) {
  FaultModelConfig cfg;
  cfg.read_noise_rate = 0.5;
  const FaultPlan plan(6, cfg);
  unsigned flips = 0;
  for (unsigned c = 0; c < 64; ++c) {
    for (std::uint64_t sense = 0; sense < 8; ++sense) {
      unsigned bit = 99;
      if (plan.read_noise_flip({kDevice, 2, 0, c}, sense, bit)) {
        EXPECT_LT(bit, 6u);  // only the 6 level bits can flip
        ++flips;
      }
    }
  }
  // ~50% of 512 draws; just require both outcomes occur.
  EXPECT_GT(flips, 100u);
  EXPECT_LT(flips, 412u);
}

// A retried program re-rolls the drop with the next event index.
TEST(FaultPlan, DroppedPulseVariesWithProgramEvent) {
  FaultModelConfig cfg;
  cfg.dropped_pulse_rate = 0.5;
  const FaultPlan plan(7, cfg);
  const CellSite s{kDevice, 3, 0, 40};
  unsigned dropped = 0;
  for (std::uint64_t program = 0; program < 64; ++program)
    dropped += plan.pulse_dropped(s, program) ? 1 : 0;
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 64u);
}

}  // namespace
