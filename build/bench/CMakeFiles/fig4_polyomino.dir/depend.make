# Empty dependencies file for fig4_polyomino.
# This may be replaced when dependencies are built.
