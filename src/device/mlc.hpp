#pragma once
// Multi-level cell (MLC) codec. The paper's NVMM uses MLC-2 memristors: four
// resistance bands store two bits per cell (Section 5.1), with logic "11" at
// the lowest resistance and "00" at the highest (Section 5.3: a cell
// programmed to ~172 kOhm reads as logic 00).
//
// The codec also exposes a finer internal grid (default 64 levels) used by
// the behavioural SPE cipher: encryption perturbs the analog state *within*
// and *across* read bands, so the cipher tracks more resolution than the two
// read bits.

#include <cstdint>

#include "device/team_model.hpp"

namespace spe::device {

/// Maps between logical MLC symbols, internal fine-grained levels, and
/// physical resistance / normalised state values.
class MlcCodec {
public:
  static constexpr unsigned kBitsPerCell = 2;
  static constexpr unsigned kSymbols = 1u << kBitsPerCell;  // 4 read bands
  static constexpr unsigned kInternalLevels = 64;           // 6-bit fine grid

  explicit MlcCodec(TeamParams params = {}) noexcept;

  /// Logical symbol (0..3) for a normalised device state. Symbol 0 encodes
  /// logic "11" (lowest resistance); symbol 3 encodes logic "00".
  [[nodiscard]] unsigned symbol_for_state(double w) const noexcept;

  /// Centre-of-band normalised state for a logical symbol.
  [[nodiscard]] double state_for_symbol(unsigned symbol) const;

  /// Fine level (0..63) for a normalised state, uniform quantisation.
  [[nodiscard]] unsigned level_for_state(double w) const noexcept;

  /// Centre-of-cell normalised state for a fine level.
  [[nodiscard]] double state_for_level(unsigned level) const;

  /// Read band of a fine level: top two bits (level / 16).
  [[nodiscard]] static constexpr unsigned symbol_for_level(unsigned level) noexcept {
    return (level / (kInternalLevels / kSymbols)) & (kSymbols - 1);
  }

  /// Fine level at the centre of a read band.
  [[nodiscard]] static constexpr unsigned level_for_symbol(unsigned symbol) noexcept {
    constexpr unsigned per = kInternalLevels / kSymbols;
    return symbol * per + per / 2;
  }

  /// Two-bit logic value as written in the paper ("11" = lowest resistance):
  /// logic bits are the complement of the symbol index.
  [[nodiscard]] static constexpr unsigned logic_bits_for_symbol(unsigned symbol) noexcept {
    return (kSymbols - 1) - (symbol & (kSymbols - 1));
  }
  [[nodiscard]] static constexpr unsigned symbol_for_logic_bits(unsigned bits) noexcept {
    return (kSymbols - 1) - (bits & (kSymbols - 1));
  }

  /// Resistance at the centre of a read band [Ohm].
  [[nodiscard]] double resistance_for_symbol(unsigned symbol) const;

  [[nodiscard]] const TeamParams& params() const noexcept { return params_; }

private:
  TeamParams params_;
};

}  // namespace spe::device
