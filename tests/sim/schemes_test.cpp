#include "sim/schemes.hpp"

#include <gtest/gtest.h>

namespace spe::sim {
namespace {

using core::Scheme;

TEST(Schemes, FactoryCoversEveryScheme) {
  for (const auto& costs : core::scheme_costs()) {
    const auto model = make_scheme(costs.scheme);
    ASSERT_NE(model, nullptr) << core::scheme_name(costs.scheme);
    EXPECT_EQ(model->scheme(), costs.scheme);
  }
}

TEST(Schemes, NoneIsFree) {
  const auto model = make_scheme(Scheme::None);
  EXPECT_EQ(model->on_read(0, 0).critical_cycles, 0u);
  EXPECT_EQ(model->on_write(0, 0).critical_cycles, 0u);
}

TEST(Schemes, AesChargesEveryRead) {
  const auto model = make_scheme(Scheme::Aes);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(model->on_read(i, i * 64u).critical_cycles, 80u);
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
}

TEST(Schemes, StreamCipherIsOneCycle) {
  const auto model = make_scheme(Scheme::StreamCipher);
  EXPECT_EQ(model->on_read(0, 0).critical_cycles, 1u);
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
}

TEST(Schemes, SpeParallelAlwaysSixteenPlusBusy) {
  const auto model = make_scheme(Scheme::SpeParallel);
  const auto charge = model->on_read(0, 0);
  EXPECT_EQ(charge.critical_cycles, 16u);
  EXPECT_EQ(charge.bank_busy_cycles, 16u);
  // Repeated reads pay every time (immediate re-encryption).
  EXPECT_EQ(model->on_read(1, 0).critical_cycles, 16u);
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
}

TEST(Schemes, SpeSerialPaysOncePerDecryption) {
  const auto model = make_scheme(Scheme::SpeSerial);
  EXPECT_EQ(model->on_read(0, 0x40).critical_cycles, 16u);
  // Still plaintext on the second read: free.
  EXPECT_EQ(model->on_read(1, 0x40).critical_cycles, 0u);
  EXPECT_LT(model->encrypted_fraction(), 1.0);
  // A write-back re-encrypts the block...
  EXPECT_EQ(model->on_write(2, 0x40).bank_busy_cycles, 16u);
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
  // ...so the next read decrypts again.
  EXPECT_EQ(model->on_read(3, 0x40).critical_cycles, 16u);
}

TEST(Schemes, SpeSerialBackgroundEngineReencrypts) {
  const auto model = make_scheme(Scheme::SpeSerial);
  (void)model->on_read(0, 0x40);
  (void)model->on_read(0, 0x80);
  EXPECT_LT(model->encrypted_fraction(), 1.0);
  model->tick(10'000'000);  // long past the idle window
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
  EXPECT_EQ(model->on_read(10'000'001, 0x40).critical_cycles, 16u);
}

TEST(Schemes, INvmmFirstTouchFreeReTouchAfterInertnessPays) {
  const auto model = make_scheme(Scheme::INvmm);
  EXPECT_EQ(model->on_read(0, 0x1000).critical_cycles, 0u);  // first touch
  EXPECT_EQ(model->on_read(100, 0x1000).critical_cycles, 0u);  // still live
  // Let the page go inert and be encrypted by the background engine.
  model->tick(10'000'000);
  EXPECT_DOUBLE_EQ(model->encrypted_fraction(), 1.0);
  EXPECT_EQ(model->on_read(10'000'001, 0x1000).critical_cycles, 80u);
  EXPECT_LT(model->encrypted_fraction(), 1.0);
}

TEST(Schemes, INvmmPageGranularity) {
  const auto model = make_scheme(Scheme::INvmm);
  (void)model->on_read(0, 0x1000);
  model->tick(10'000'000);
  // Both blocks live in the same 4 KB page: one decrypt covers both.
  EXPECT_EQ(model->on_read(10'000'001, 0x1000).critical_cycles, 80u);
  EXPECT_EQ(model->on_read(10'000'002, 0x1040).critical_cycles, 0u);
}

TEST(Schemes, INvmmTracksFractionOverPages) {
  const auto model = make_scheme(Scheme::INvmm);
  (void)model->on_read(0, 0 * 4096);
  (void)model->on_read(0, 1 * 4096);
  (void)model->on_read(5'000'000, 2 * 4096);  // keeps page 2 fresh
  model->tick(5'000'001);
  // Pages 0 and 1 are inert-encrypted; page 2 is live.
  EXPECT_NEAR(model->encrypted_fraction(), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace spe::sim
