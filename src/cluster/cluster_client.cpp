#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace spe::cluster {

using net::Frame;
using net::Opcode;
using net::Status;

ClusterClient::ClusterClient(ClusterClientConfig config)
    : config_(std::move(config)) {
  if (config_.seeds.empty())
    throw std::invalid_argument("spe::cluster: ClusterClient needs >= 1 seed");
}

net::Client& ClusterClient::node_client(const NodeInfo& node) {
  const std::string key = node.endpoint();
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    net::ClientConfig cfg = config_.net;
    cfg.host = node.host;
    cfg.port = node.port;
    it = pool_.emplace(key, net::Client(std::move(cfg))).first;
  }
  it->second.connect();  // no-op when already connected
  return it->second;
}

void ClusterClient::drop_client(const NodeInfo& node) {
  pool_.erase(node.endpoint());
}

bool ClusterClient::try_fetch_topology(const NodeInfo& node) {
  try {
    net::Client& client = node_client(node);
    const Frame reply = client.call(net::make_topology_request(0));
    if (reply.status != Status::Ok) return false;
    ClusterTopology fetched;
    if (!decode_topology(reply.payload, fetched)) return false;
    topology_ = std::move(fetched);
    ring_ = topology_.ring();
    ++stats_.topology_refreshes;
    return true;
  } catch (const net::NetError&) {
    drop_client(node);
    return false;
  }
}

void ClusterClient::connect() {
  for (const NodeInfo& seed : config_.seeds)
    if (try_fetch_topology(seed)) return;
  throw net::ConnectError("spe::cluster: no seed answered a topology fetch");
}

std::uint64_t ClusterClient::refresh_topology() {
  // Current members first (the freshest view lives there), then the seeds.
  std::vector<NodeInfo> candidates = topology_.nodes;
  for (const NodeInfo& seed : config_.seeds) {
    const auto same = [&seed](const NodeInfo& n) {
      return n.endpoint() == seed.endpoint();
    };
    if (std::none_of(candidates.begin(), candidates.end(), same))
      candidates.push_back(seed);
  }
  for (const NodeInfo& node : candidates)
    if (try_fetch_topology(node)) return topology_.epoch;
  throw net::ConnectError("spe::cluster: no member answered a topology fetch");
}

unsigned ClusterClient::propose_topology(const ClusterTopology& proposed) {
  const std::vector<std::uint8_t> bytes = encode_topology(proposed);
  std::vector<NodeInfo> targets = topology_.nodes;
  for (const NodeInfo& node : proposed.nodes) {
    const auto same = [&node](const NodeInfo& n) {
      return n.endpoint() == node.endpoint();
    };
    if (std::none_of(targets.begin(), targets.end(), same))
      targets.push_back(node);
  }
  unsigned acked = 0;
  for (const NodeInfo& node : targets) {
    try {
      net::Client& client = node_client(node);
      const Frame reply = client.call(net::make_topology_request(0, bytes));
      if (reply.status == Status::Ok) ++acked;
    } catch (const net::NetError&) {
      drop_client(node);
    }
  }
  if (acked > 0) {
    topology_ = proposed;
    ring_ = topology_.ring();
  }
  return acked;
}

Frame ClusterClient::route_call(std::uint64_t addr, const Frame& request) {
  if (topology_.nodes.empty()) connect();
  NodeInfo target = topology_.owner(addr);
  bool directed = false;  // true: `target` came from a MOVED payload
  std::chrono::milliseconds backoff = config_.moved_backoff;
  for (unsigned attempt = 0; attempt <= config_.op_retries; ++attempt) {
    Frame reply;
    try {
      reply = node_client(target).call(request);
    } catch (const net::NetError&) {
      // Owner unreachable (crashed node, dropped connection): learn the
      // membership that exists now and re-route.
      drop_client(target);
      ++stats_.failovers;
      refresh_topology();
      target = topology_.owner(addr);
      directed = false;
      continue;
    }
    if (reply.status != Status::Moved) return reply;
    // Bounced: the payload names where the address lives. During an
    // in-flight migration source and destination can both bounce until the
    // copy commits — back off so the budget spans the copy window.
    ++stats_.moved_redirects;
    NodeInfo owner;
    if (!decode_node(reply.payload, owner))
      throw net::ProtocolError("spe::cluster: malformed MOVED payload");
    if (directed && owner.endpoint() == target.endpoint()) {
      // Self-referential bounce would spin; treat as transient and refresh.
      refresh_topology();
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, config_.moved_backoff_max);
    target = std::move(owner);
    directed = true;
  }
  throw ClusterRoutingError(
      "spe::cluster: retry budget exhausted chasing MOVED for addr " +
      std::to_string(addr));
}

std::vector<std::uint8_t> ClusterClient::read_block(std::uint64_t addr) {
  const Frame reply = route_call(addr, net::make_read_request(0, addr));
  if (reply.status != Status::Ok)
    throw net::RemoteError(reply.status,
                           std::string(reply.payload.begin(), reply.payload.end()));
  return reply.payload;
}

void ClusterClient::write_block(std::uint64_t addr,
                                std::span<const std::uint8_t> data) {
  const Frame reply = route_call(addr, net::make_write_request(0, addr, data));
  if (reply.status != Status::Ok)
    throw net::RemoteError(reply.status,
                           std::string(reply.payload.begin(), reply.payload.end()));
}

}  // namespace spe::cluster
