
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_model.cpp" "src/CMakeFiles/spe_core.dir/core/area_model.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/area_model.cpp.o.d"
  "/root/repo/src/core/attacks.cpp" "src/CMakeFiles/spe_core.dir/core/attacks.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/attacks.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/spe_core.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/datasets.cpp" "src/CMakeFiles/spe_core.dir/core/datasets.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/datasets.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/CMakeFiles/spe_core.dir/core/fingerprint.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/fingerprint.cpp.o.d"
  "/root/repo/src/core/key.cpp" "src/CMakeFiles/spe_core.dir/core/key.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/key.cpp.o.d"
  "/root/repo/src/core/key_schedule.cpp" "src/CMakeFiles/spe_core.dir/core/key_schedule.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/key_schedule.cpp.o.d"
  "/root/repo/src/core/lut.cpp" "src/CMakeFiles/spe_core.dir/core/lut.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/lut.cpp.o.d"
  "/root/repo/src/core/snvmm.cpp" "src/CMakeFiles/spe_core.dir/core/snvmm.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/snvmm.cpp.o.d"
  "/root/repo/src/core/snvmm_io.cpp" "src/CMakeFiles/spe_core.dir/core/snvmm_io.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/snvmm_io.cpp.o.d"
  "/root/repo/src/core/spe_cipher.cpp" "src/CMakeFiles/spe_core.dir/core/spe_cipher.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/spe_cipher.cpp.o.d"
  "/root/repo/src/core/specu.cpp" "src/CMakeFiles/spe_core.dir/core/specu.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/specu.cpp.o.d"
  "/root/repo/src/core/tpm.cpp" "src/CMakeFiles/spe_core.dir/core/tpm.cpp.o" "gcc" "src/CMakeFiles/spe_core.dir/core/tpm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spe_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
