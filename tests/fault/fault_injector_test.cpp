// FaultInjector device-layer effects (src/fault): stuck cells pin levels
// and physical crossbar cells, dropped pulses leave stale levels / refuse
// to program, sense noise corrupts only the read-out copy, aging drifts
// stored levels — and a disabled injector is a strict no-op that does not
// advance the event counters (enable/disable idempotence).

#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "xbar/crossbar.hpp"

namespace {

using spe::device::MlcCodec;
using spe::fault::FaultInjector;
using spe::fault::FaultModelConfig;
using spe::fault::FaultPlan;

constexpr std::uint64_t kDevice = 0xFEED;
constexpr std::uint64_t kAddr = 42;

std::shared_ptr<const FaultPlan> make_plan(std::uint64_t seed,
                                           const FaultModelConfig& cfg) {
  return std::make_shared<FaultPlan>(seed, cfg);
}

std::vector<std::uint8_t> ramp_levels(unsigned n) {
  std::vector<std::uint8_t> levels(n);
  for (unsigned i = 0; i < n; ++i) levels[i] = static_cast<std::uint8_t>(i % 64);
  return levels;
}

TEST(FaultInjector, StuckCellsPinProgrammedLevels) {
  FaultModelConfig cfg;
  cfg.stuck_at_lrs_rate = 1.0;  // every cell stuck at LRS
  FaultInjector inj(make_plan(1, cfg), kDevice);
  auto levels = ramp_levels(256);
  inj.corrupt_program(kAddr, levels);
  const auto pin = static_cast<std::uint8_t>(MlcCodec::level_for_symbol(0));
  for (unsigned c = 0; c < levels.size(); ++c) EXPECT_EQ(levels[c], pin) << c;
  // Cells already at the pin don't count as materialised hits.
  EXPECT_EQ(inj.counts().stuck_hits, 256u - 4u);  // ramp hits level 8 once per 64
}

TEST(FaultInjector, DroppedPulsesLeaveObservablyStaleLevels) {
  FaultModelConfig cfg;
  cfg.dropped_pulse_rate = 1.0;
  FaultInjector inj(make_plan(2, cfg), kDevice);
  const auto intended = ramp_levels(256);
  auto levels = intended;
  inj.corrupt_program(kAddr, levels);
  EXPECT_EQ(inj.counts().dropped_pulses, 256u);
  for (unsigned c = 0; c < levels.size(); ++c) {
    EXPECT_NE(levels[c], intended[c]) << c;  // guaranteed observable
    EXPECT_LT(levels[c], 64u) << c;
  }
}

TEST(FaultInjector, SenseNoiseIsTransientSingleBit) {
  FaultModelConfig cfg;
  cfg.read_noise_rate = 0.25;
  FaultInjector inj(make_plan(3, cfg), kDevice);
  const auto stored = ramp_levels(256);
  auto sensed = stored;
  inj.corrupt_sense(kAddr, sensed);
  unsigned flipped = 0;
  for (unsigned c = 0; c < sensed.size(); ++c) {
    if (sensed[c] == stored[c]) continue;
    ++flipped;
    const unsigned diff = sensed[c] ^ stored[c];
    EXPECT_EQ(diff & (diff - 1), 0u) << c;  // exactly one bit
    EXPECT_LT(sensed[c], 64u) << c;         // within the 6 level bits
  }
  EXPECT_EQ(flipped, inj.counts().noise_events);
  EXPECT_GT(flipped, 0u);
  // A later sense of the same block re-rolls: the noise is transient.
  auto sensed2 = stored;
  inj.corrupt_sense(kAddr, sensed2);
  EXPECT_NE(sensed, sensed2);
}

TEST(FaultInjector, AgingDriftsStoredLevelsWithinRange) {
  FaultModelConfig cfg;
  cfg.drift_sigma = 3.0;
  FaultInjector inj(make_plan(4, cfg), kDevice);
  const auto before = ramp_levels(256);
  auto levels = before;
  inj.age_block(kAddr, levels);
  EXPECT_GT(inj.counts().drift_events, 0u);
  unsigned moved = 0;
  for (unsigned c = 0; c < levels.size(); ++c) {
    EXPECT_LT(levels[c], 64u) << c;
    if (levels[c] != before[c]) ++moved;
  }
  EXPECT_EQ(moved, inj.counts().drift_events);
}

// Disabled injector: no mutation AND no counter advance. Interleaving
// disabled calls must leave the schedule exactly where it was.
TEST(FaultInjector, DisabledIsStrictNoOpWithoutCounterAdvance) {
  FaultModelConfig cfg;
  cfg.read_noise_rate = 0.5;
  const auto plan = make_plan(5, cfg);
  const auto stored = ramp_levels(256);

  FaultInjector reference(plan, kDevice);
  auto ref_sense0 = stored;
  reference.corrupt_sense(kAddr, ref_sense0);

  FaultInjector toggled(plan, kDevice, /*enabled=*/false);
  auto untouched = stored;
  toggled.corrupt_sense(kAddr, untouched);  // disabled: no-op
  toggled.corrupt_sense(kAddr, untouched);
  EXPECT_EQ(untouched, stored);
  EXPECT_EQ(toggled.counts().total(), 0u);

  toggled.set_enabled(true);
  auto first_enabled = stored;
  toggled.corrupt_sense(kAddr, first_enabled);
  // The disabled calls did not consume sense events: the first enabled
  // sense replays the reference injector's first sense exactly.
  EXPECT_EQ(first_enabled, ref_sense0);
}

TEST(FaultInjector, PinUnitSticksPhysicalCells) {
  FaultModelConfig cfg;
  cfg.stuck_at_lrs_rate = 1.0;
  FaultInjector inj(make_plan(6, cfg), kDevice);
  spe::xbar::Crossbar xbar;
  const unsigned pinned = inj.pin_unit(xbar, kAddr, /*unit=*/0);
  EXPECT_EQ(pinned, xbar.cell_count());
  for (unsigned flat = 0; flat < xbar.cell_count(); ++flat) {
    EXPECT_TRUE(xbar.cell(flat).stuck());
    // Idealised write-verify cannot move a stuck cell off its band.
    xbar.write_symbol(xbar.position_of(flat), 3);
    EXPECT_EQ(xbar.read_symbol(xbar.position_of(flat)), 0u) << flat;
  }
}

TEST(FaultInjector, ProgramSymbolReportsDropsAndStuckRefusals) {
  FaultModelConfig clean_cfg;
  FaultInjector clean(make_plan(7, clean_cfg), kDevice);
  spe::xbar::Crossbar xbar;
  EXPECT_TRUE(clean.program_symbol(xbar, 0, 2, kAddr, 0));
  EXPECT_EQ(xbar.read_symbol(xbar.position_of(0)), 2u);

  FaultModelConfig drop_cfg;
  drop_cfg.dropped_pulse_rate = 1.0;
  FaultInjector dropper(make_plan(8, drop_cfg), kDevice);
  EXPECT_FALSE(dropper.program_symbol(xbar, 0, 3, kAddr, 0));
  EXPECT_EQ(xbar.read_symbol(xbar.position_of(0)), 2u);  // kept previous state
  EXPECT_EQ(dropper.counts().dropped_pulses, 1u);
}

// After a remap the block lives on spare cells: fresh manufacturing draws.
TEST(FaultInjector, RemapRerollsStuckPattern) {
  FaultModelConfig cfg;
  cfg.stuck_at_lrs_rate = 0.25;
  cfg.stuck_at_hrs_rate = 0.25;
  FaultInjector inj(make_plan(9, cfg), kDevice);
  const auto clean = ramp_levels(256);
  auto before = clean;
  inj.corrupt_program(kAddr, before);
  EXPECT_EQ(inj.remap_epoch(kAddr), 0u);
  inj.remap(kAddr);
  EXPECT_EQ(inj.remap_epoch(kAddr), 1u);
  auto after = clean;
  inj.corrupt_program(kAddr, after);
  EXPECT_NE(before, after);
}

}  // namespace
