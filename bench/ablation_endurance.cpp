// Endurance & wear-levelling analysis. Three of the paper's claims are
// quantified against the wear substrate:
//  * Section 5.2 — SPE's pulses have "negligible effect on the endurance"
//    compared to writes;
//  * Section 6.2.1 — a brute-force attacker destroys the memristors long
//    before touching a meaningful fraction of the key space;
//  * Section 2 / ref [6] — randomized Start-Gap wear levelling defends the
//    write-endurance attack the threat model excludes from SPE's scope.

#include "bench_util.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wear/endurance.hpp"
#include "wear/start_gap.hpp"

int main() {
  using namespace spe;
  benchutil::banner("ablation_endurance — wear, brute-force wear-out, start-gap",
                    "Sections 2, 5.2, 6.2.1 (+ ref [6])");

  // --- SPE wear vs write wear (Section 5.2) ------------------------------
  {
    wear::EnduranceModel model(1, {});
    model.record_spe_encryption(0);
    const double spe_units = model.wear(0);
    std::printf("One 16-pulse SPE encryption ages a block like %.2f full writes\n"
                "(each pulse's resistance excursion ~2%% of a RESET). A block\n"
                "read-decrypt-reencrypted every L2 miss therefore reaches the\n"
                "1e8-write PCM limit only after ~%.1e decrypt cycles — decades at\n"
                "realistic miss rates; TaOx (1e10) adds two more orders.\n\n",
                spe_units, 1e8 / spe_units);
  }

  // --- brute-force wear-out (Section 6.2.1) ------------------------------
  util::Table bf({"cell technology", "trials before device death",
                  "key-space fraction searched", "attack wall-clock"});
  for (auto [name, limit] : {std::pair{"PCM-class (1e8)", 1e8},
                             std::pair{"TaOx (1e10)", 1e10}}) {
    const auto r = wear::brute_force_wear({limit, 0.02});
    char frac[32], wall[32];
    std::snprintf(frac, sizeof(frac), "10^%.1f", r.log10_keyspace_fraction_searched);
    if (r.seconds_until_failure < 3600)
      std::snprintf(wall, sizeof(wall), "%.0f s", r.seconds_until_failure);
    else
      std::snprintf(wall, sizeof(wall), "%.1f h", r.seconds_until_failure / 3600);
    bf.add_row({name, util::Table::fmt(r.trials_until_failure, 0), frac, wall});
  }
  bf.print();
  std::printf("\nThe attacker burns out the module after searching a ~10^-43\n"
              "sliver of the key space (paper: 'a brute force attack may force\n"
              "the NVMM to reach its endurance limit, destroying the memristors\n"
              "and any data stored on it').\n\n");

  // --- write-endurance attack vs Start-Gap (ref [6]) ---------------------
  const unsigned writes = benchutil::env_or("SPE_WEAR_WRITES", 200'000);
  util::Table sg({"translation layer", "attack", "peak/mean slot wear",
                  "lifetime vs ideal"});

  auto run_case = [&](const char* label, bool randomized, bool hammer) {
    const std::size_t lines = 256;
    wear::RandomizedStartGapRegion region(lines, 16, randomized ? 0xFEED : 0,
                                          /*interval=*/randomized ? 16 : 1u << 30);
    // interval 2^30 effectively disables gap moves -> the "none" baseline.
    util::Xoshiro256ss rng(4);
    std::vector<std::uint8_t> data(16, 0xAA);
    for (unsigned w = 0; w < writes; ++w)
      region.write(hammer ? 13 : rng.below(lines), data);
    const auto& pw = region.physical_writes();
    std::uint64_t total = 0, peak = 0;
    for (auto v : pw) {
      total += v;
      peak = std::max(peak, v);
    }
    const double mean = static_cast<double>(total) / static_cast<double>(pw.size());
    const double lifetime = mean / static_cast<double>(peak);
    sg.add_row({label, hammer ? "hammer one line" : "uniform",
                util::Table::fmt(static_cast<double>(peak) / mean, 1) + "x",
                util::Table::pct(lifetime, 1)});
  };
  run_case("none (static map)", false, true);
  run_case("none (static map)", false, false);
  run_case("randomized start-gap", true, true);
  run_case("randomized start-gap", true, false);
  sg.print();
  std::printf("\nWithout levelling, hammering one line kills the device at ~1/256\n"
              "of its ideal lifetime; randomized Start-Gap (ref [6]) spreads the\n"
              "same attack across the region.\n");
  return 0;
}
