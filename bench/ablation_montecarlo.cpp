// Section 5 Monte-Carlo reproduction: "we vary the wire resistance by +/-5%
// and see that there is no change in the shape of the polyomino. Macro
// level changes to the device/crossbar parameters change the shape ...
// showing significant effect on the encryption operation."

#include "bench_util.hpp"
#include "core/fingerprint.hpp"
#include "util/table.hpp"
#include "xbar/monte_carlo.hpp"

int main() {
  using namespace spe;
  benchutil::banner("ablation_montecarlo — parametric variation of the polyomino",
                    "Section 5 (Monte-Carlo) + Section 6.1 data set 3");

  const xbar::CrossbarParams nominal;
  const std::vector<unsigned> data(64, 1);
  const unsigned trials = benchutil::env_or("SPE_MC_TRIALS", 40);

  // Micro variation: wire resistance within manufacturing tolerance.
  util::Table micro({"wire-resistance variation", "trials", "shape changes",
                     "mean |dV| on covered cells"});
  for (double fraction : {0.01, 0.05, 0.10}) {
    const auto result =
        xbar::polyomino_stability(nominal, {3, 4}, 1.0, data, fraction, trials, 99);
    micro.add_row({"+/-" + util::Table::pct(fraction, 0), std::to_string(result.trials),
                   std::to_string(result.shape_changes),
                   util::Table::fmt(result.mean_voltage_delta * 1e3, 3) + " mV"});
  }
  micro.print();
  std::printf("\nPaper: +/-5%% wire variation leaves the polyomino shape unchanged\n"
              "(wire ohms are negligible against kilo-ohm memristors).\n\n");

  // Macro perturbations: the hardware-avalanche regime.
  util::Table macro({"macro perturbation", "fingerprint changed",
                     "max |dV| vs nominal [mV]", "shape changed"});
  xbar::Crossbar base(nominal);
  base.load_symbols(data);
  const auto reference = xbar::extract_polyomino(base, {3, 4}, 1.0);
  for (double delta : {0.05, 0.075, 0.10, -0.05, -0.10}) {
    const auto params = xbar::perturb_macro(nominal, delta);
    xbar::Crossbar xb(params);
    xb.load_symbols(data);
    const auto poly = xbar::extract_polyomino(xb, {3, 4}, 1.0);
    double max_dv = 0.0;
    for (unsigned i = 0; i < 64; ++i)
      max_dv = std::max(max_dv, std::abs(poly.voltages[i] - reference.voltages[i]));
    macro.add_row({(delta > 0 ? "+" : "") + util::Table::pct(delta, 1),
                   core::fingerprint_of(params) != core::fingerprint_of(nominal) ? "yes"
                                                                                 : "no",
                   util::Table::fmt(max_dv * 1e3, 2),
                   poly.mask != reference.mask ? "yes" : "no"});
  }
  macro.print();
  std::printf("\nMacro changes move the voltage map (and the calibration tables),\n"
              "which is exactly why ciphertext from one device cannot be\n"
              "decrypted on another — and why the hardware-avalanche data set\n"
              "of Table 2 is random.\n");
  return 0;
}
