#pragma once
// One bank shard of the memory service: an independent Snvmm array with its
// own SPECU, request queue, counters — and, since PR 2, its own resilience
// machinery: a deterministic FaultInjector (optional), a SEC-DED plane-code
// shadow of every resident block's stored levels, bounded retry with
// exponential backoff, and a quarantine set for blocks the code cannot
// recover. The state mutex serialises the shard's array between its worker
// thread and the background scavenger — shards never share crypto or fault
// state, so there is no cross-shard locking.
//
// Datapath with ECC enabled (the default):
//   write: Specu programs+encrypts -> checks recomputed -> injector may
//          corrupt the programmed levels -> program-verify (SEC-DED) ->
//          correct / retry / remap-to-spare / quarantine.
//   read:  sense a copy (injector may pin stuck cells + flip noise bits)
//          -> SEC-DED verify -> corrected copy written back (scrub-on-read)
//          -> retry with backoff when uncorrectable -> quarantine + throw
//          UncorrectableFaultError when retries are exhausted -> Specu
//          decrypts and the checks are refreshed for the new resting state.
//   scrub: age the stored levels (drift + stuck pins), verify, correct.
//
// Crash consistency (this PR): every Specu pulse sequence advances an
// intent journal that lives inside the Snvmm (it is non-volatile, so it
// survives a crash with the cell levels). save_state() serialises the
// shard's durable state — the v2 device image (levels + journal) plus the
// quarantine map, spare-remap table and scrub cursor — and the restore
// constructor plus recover() rebuild a shard from such a blob, replaying
// or rolling back whatever the journal caught mid-flight.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/snvmm.hpp"
#include "core/snvmm_io.hpp"
#include "core/specu.hpp"
#include "core/specu_batch.hpp"
#include "core/tpm.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/recovery.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/service_config.hpp"
#include "runtime/service_stats.hpp"

namespace spe::runtime {

/// Why a block is quarantined; selects the typed error a read raises.
enum class QuarantineReason : std::uint8_t {
  Uncorrectable = 1,  ///< SEC-DED gave up (or the image record failed CRC)
  Torn = 2,           ///< crash caught the block mid-operation, unrecoverable
};

class BankShard {
public:
  BankShard(unsigned id, const ServiceConfig& config,
            std::shared_ptr<const fault::FaultPlan> fault_plan = nullptr);

  /// Restore constructor: rebuilds the shard's durable state from a blob
  /// written by save_state(). The image's device seed must match what
  /// `config` derives for this shard id (the checkpoint belongs to the same
  /// fleet). Journal recovery is NOT run here — power the shard on first,
  /// then call recover().
  BankShard(unsigned id, const ServiceConfig& config,
            std::shared_ptr<const fault::FaultPlan> fault_plan, std::istream& in);

  BankShard(const BankShard&) = delete;
  BankShard& operator=(const BankShard&) = delete;

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t device_id() const noexcept { return memory_.device_id(); }
  [[nodiscard]] unsigned block_bytes() const noexcept { return memory_.block_bytes(); }
  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] ShardCounters& counters() noexcept { return counters_; }

  /// Power-on handshake against the service TPM. False = key withheld.
  [[nodiscard]] bool power_on(const core::Tpm& tpm, std::uint64_t measurement);

  // --- multi-tenant key domains (DESIGN.md §15) -----------------------------

  /// Builds one key domain per registered tenant (ServiceConfig::tenants):
  /// a Specu powered under the tenant's synthetic TPM handle at its current
  /// epoch, plus its batched fast path. Partitions the plaintext pending
  /// sets by address ownership and, on the restore path, rebuilds in-flight
  /// rotations from the checkpoint's rotation records. Call after power_on
  /// and before recover(). No-op without a registry; false when any tenant
  /// handshake fails.
  [[nodiscard]] bool power_on_tenants(const core::Tpm& tpm, std::uint64_t measurement);

  /// Begins an online key rotation for `tenant` onto `new_epoch`: the
  /// current domain controller becomes the old-key reader, a fresh one is
  /// powered under the new epoch's sealed handle, and every encrypted owned
  /// resident block is scheduled for re-encryption (drained by the
  /// scavenger; reads are served from the old key meanwhile). A rotation
  /// still in flight is drained synchronously first. Returns how many
  /// blocks were scheduled.
  std::uint64_t begin_rotation(tenant::TenantId tenant, std::uint32_t new_epoch,
                               const core::Tpm& tpm, std::uint64_t measurement);

  /// Blocks still resting under `tenant`'s previous key on this shard (0
  /// when no rotation is in flight here).
  [[nodiscard]] std::uint64_t rotation_pending(tenant::TenantId tenant) const;

  /// (tenant, epoch) pairs named by the restore blob's rotation records
  /// (current plus, mid-rotation, old epochs). The service seals keys for
  /// these handles before calling power_on_tenants. Empty on the fresh path.
  [[nodiscard]] std::vector<std::pair<tenant::TenantId, std::uint32_t>>
  restored_epochs() const;

  /// Worker side: executes a drained batch in FIFO order under the state
  /// lock, fulfilling every promise (value or exception).
  void execute_batch(std::vector<Request> batch);

  /// Scavenger side: re-encrypts up to `max_blocks` plaintext blocks,
  /// timing each one into the background-latency histogram.
  unsigned scavenge(unsigned max_blocks);

  /// Scrubbing pass (piggybacked on the scavenger thread, also callable
  /// synchronously): ages + SEC-DED-verifies up to `max_blocks` resident
  /// blocks round-robin, correcting in place and quarantining what it
  /// cannot fix. Returns the number of blocks scrubbed.
  unsigned scrub(unsigned max_blocks);

  // --- crash consistency ----------------------------------------------------

  /// Serialises the shard's durable state (v2 device image incl. the intent
  /// journal, quarantine map, spare-remap table, scrub cursor). Safe to call
  /// concurrently with the worker: takes the state lock.
  void save_state(std::ostream& out) const;

  /// Kill-point hook: when set, it is invoked after EVERY intent-journal
  /// transition (begin / pulse advance / commit) with this shard's id and a
  /// save_state() blob of the exact mid-operation durable state — what a
  /// power loss at that instant would leave in the array. Runs on the worker
  /// thread with the state lock held; the hook must not call back into the
  /// shard. Pass nullptr to clear.
  void set_crash_hook(std::function<void(unsigned, const std::string&)> hook);

  /// Journal recovery after a restore + power_on: classifies every open
  /// intent (replay-forward / roll-back / torn-quarantine), quarantines
  /// CRC-corrupt blocks, and rebuilds the SEC-DED shadows of the surviving
  /// resident blocks. Idempotent (the journal is drained as it is applied).
  ShardRecovery recover();

  /// Counters plus under-lock occupancy (plaintext / resident blocks).
  [[nodiscard]] ShardStatsSnapshot stats_snapshot() const;

  /// Addresses of every resident block (sorted — Snvmm keeps an ordered
  /// map). Safe against the worker: takes the state lock. The cluster
  /// migration planner uses this to enumerate what a node actually holds.
  [[nodiscard]] std::vector<std::uint64_t> resident_blocks() const;

  /// The most recent ops whose execute time crossed
  /// ObsConfig::slow_op_threshold (bounded ring, oldest dropped). Empty
  /// when the threshold is 0.
  [[nodiscard]] std::vector<OpSummary> slow_ops() const;

  [[nodiscard]] double encrypted_fraction() const;
  [[nodiscard]] core::Specu::Stats specu_stats() const;

  /// Quarantine state of a block (test access; quiesce first).
  [[nodiscard]] std::optional<QuarantineReason> quarantine_reason(
      std::uint64_t addr) const;

  /// The shard's injector (null when fault injection is off) — test access;
  /// callers must not race the worker (quiesce first).
  [[nodiscard]] fault::FaultInjector* injector() noexcept { return injector_.get(); }

private:
  /// One tenant's key domain on this shard: the current-epoch controller
  /// (plus its batched fast path) and, while a rotation drains, the
  /// previous-epoch controller that still reads the not-yet-re-encrypted
  /// blocks listed in `rotating`. unique_ptr because Specu binds a reference
  /// to the shard's Snvmm and is re-created per epoch.
  struct Domain {
    std::unique_ptr<core::Specu> specu;        ///< current-epoch controller
    std::unique_ptr<core::SpecuBatch> batch;   ///< fast path over specu
    std::unique_ptr<core::Specu> old_specu;    ///< previous epoch, while rotating
    std::uint32_t key_epoch = 0;
    std::uint32_t old_key_epoch = 0;
    std::set<std::uint64_t> rotating;  ///< resting ciphertext still old-epoch
  };

  /// Serialised rotation state of one domain (appended to save_state blobs
  /// after the scrub cursor; absent in pre-tenant blobs).
  struct DomainRecord {
    tenant::TenantId tenant = 0;
    std::uint32_t key_epoch = 0;
    bool old_active = false;
    std::uint32_t old_key_epoch = 0;
    std::vector<std::uint64_t> rotating;
  };

  /// Durable state parsed off a save_state() blob, staged so the restore
  /// constructor can initialise members in declaration order.
  struct RestoredState {
    core::ImageLoadResult image;
    std::unordered_map<std::uint64_t, QuarantineReason> quarantined;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> remap_table;
    std::uint64_t scrub_cursor = 0;
    std::vector<DomainRecord> domains;
  };
  [[nodiscard]] static RestoredState read_state(std::istream& in);
  BankShard(unsigned id, const ServiceConfig& config,
            std::shared_ptr<const fault::FaultPlan> fault_plan, RestoredState state);

  // All private helpers assume state_mutex_ is held. `fast` selects the
  // batched cipher path (core::SpecuBatch) — bit-identical to scalar, chosen
  // by execute_batch for runs of >= ServiceConfig::batch_min_size same-kind
  // requests in one drain.
  void save_state_locked(std::ostream& out) const;
  [[nodiscard]] std::vector<std::uint8_t> read_block_guarded(std::uint64_t addr,
                                                             bool fast);
  void write_block_guarded(std::uint64_t addr, std::span<const std::uint8_t> data,
                           bool fast);
  /// Sense + SEC-DED verify of a resident block against its shadow checks,
  /// with bounded re-sense retries. Returns false when uncorrectable (the
  /// caller quarantines); counts detected/corrected/retries.
  [[nodiscard]] bool verify_block(std::uint64_t addr, core::Snvmm::Block& block,
                                  const std::vector<std::uint8_t>& checks);
  void refresh_checks(std::uint64_t addr);
  void quarantine(std::uint64_t addr, QuarantineReason reason);
  void backoff(unsigned attempt) const;
  /// Key domain owning `addr`; nullptr for the default domain (no registry,
  /// unclaimed address, or domain not powered).
  [[nodiscard]] Domain* domain_of(std::uint64_t addr);
  /// Fresh un-powered controller over this shard's array (same mode/PoEs as
  /// the default specu_).
  [[nodiscard]] std::unique_ptr<core::Specu> make_domain_specu();
  /// One step of a rotation drain: decrypt the next `rotating` block under
  /// the old key (journaled) and re-encrypt it under the current key.
  /// Returns the drained address; nullopt when no rotation has work.
  std::optional<std::uint64_t> rotation_drain_one_locked();
  /// Drops the old-key controller once nothing rests under it any more.
  void finish_rotation_locked(Domain& domain);
  [[nodiscard]] core::Specu::Stats specu_stats_locked() const;
  /// Slow-op accounting for one executed request: counter, bounded ring,
  /// optional stderr line. Takes slow_mutex_ (not state_mutex_).
  void note_slow_op(const OpSummary& summary);

  unsigned id_;
  ServiceConfig config_;
  ShardCounters counters_;
  RequestQueue queue_;
  mutable std::mutex state_mutex_;  ///< guards memory_ + specu_ + resilience state
  core::Snvmm memory_;
  core::Specu specu_;
  core::SpecuBatch batch_;  ///< fast path over specu_ (shares all its state)
  std::map<tenant::TenantId, Domain> domains_;  ///< per-tenant key domains
  std::vector<DomainRecord> restored_domains_;  ///< consumed by power_on_tenants()
  std::unique_ptr<fault::FaultInjector> injector_;  ///< null = no injection
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> checks_;
  std::unordered_map<std::uint64_t, QuarantineReason> quarantined_;
  std::vector<std::uint64_t> restored_crc_corrupt_;  ///< consumed by recover()
  std::function<void(unsigned, const std::string&)> crash_hook_;
  std::uint64_t scrub_cursor_ = 0;  ///< round-robin resume point

  mutable std::mutex slow_mutex_;  ///< guards slow_ring_ (worker vs slow_ops())
  std::deque<OpSummary> slow_ring_;
};

}  // namespace spe::runtime
