#include "core/snvmm_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace spe::core {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'E', 'N', 'V', 'M', 'M', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  if (!in) throw std::runtime_error("snvmm image: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

}  // namespace

void save_image(const Snvmm& nvmm, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_u64(out, nvmm.config().device_seed);
  write_u64(out, nvmm.config().units_per_block);
  write_u64(out, nvmm.config().base_params.rows);
  write_u64(out, nvmm.config().base_params.cols);
  write_u64(out, nvmm.fingerprint());
  write_u64(out, nvmm.block_count());
  for (const auto& [addr, block] : nvmm.blocks()) {
    write_u64(out, addr);
    write_u64(out, block.encrypted ? 1 : 0);
    std::uint64_t wear_bits;
    static_assert(sizeof(wear_bits) == sizeof(block.wear));
    std::memcpy(&wear_bits, &block.wear, sizeof(wear_bits));
    write_u64(out, wear_bits);
    write_u64(out, block.levels.size());
    out.write(reinterpret_cast<const char*>(block.levels.data()),
              static_cast<std::streamsize>(block.levels.size()));
  }
  if (!out) throw std::runtime_error("snvmm image: write failure");
}

void save_image_file(const Snvmm& nvmm, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snvmm image: cannot open " + path);
  save_image(nvmm, out);
}

Snvmm load_image(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("snvmm image: bad magic");

  SnvmmConfig config;
  config.device_seed = read_u64(in);
  config.units_per_block = static_cast<unsigned>(read_u64(in));
  config.base_params.rows = static_cast<unsigned>(read_u64(in));
  config.base_params.cols = static_cast<unsigned>(read_u64(in));
  const std::uint64_t stored_fingerprint = read_u64(in);

  Snvmm nvmm(config);
  if (nvmm.fingerprint() != stored_fingerprint)
    throw std::runtime_error(
        "snvmm image: fingerprint mismatch (corrupted image or different "
        "library parameterisation)");

  const std::uint64_t blocks = read_u64(in);
  const std::size_t expected_levels =
      static_cast<std::size_t>(config.units_per_block) *
      config.base_params.cell_count();
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t addr = read_u64(in);
    const bool encrypted = read_u64(in) != 0;
    const std::uint64_t wear_bits = read_u64(in);
    const std::uint64_t levels = read_u64(in);
    if (levels != expected_levels)
      throw std::runtime_error("snvmm image: block size mismatch");
    auto& block = nvmm.block(addr);
    in.read(reinterpret_cast<char*>(block.levels.data()),
            static_cast<std::streamsize>(levels));
    if (!in) throw std::runtime_error("snvmm image: truncated block data");
    block.encrypted = encrypted;
    std::memcpy(&block.wear, &wear_bits, sizeof(block.wear));
  }
  return nvmm;
}

Snvmm load_image_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snvmm image: cannot open " + path);
  return load_image(in);
}

}  // namespace spe::core
