#pragma once
// The secure NVMM storage array (Section 4). A 64-byte cache block occupies
// four 8x8 MLC-2 crossbar units; the array stores every cell's analog level
// (the real memory content) plus a per-block "currently encrypted" flag the
// SPECU maintains. probe_block() is the attacker's view: a physical readout
// of the quantised 2-bit symbols exactly as they sit in the array, whether
// or not they are encrypted.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/fingerprint.hpp"
#include "core/intent_journal.hpp"

namespace spe::core {

struct SnvmmConfig {
  xbar::CrossbarParams base_params;      ///< nominal design parameters
  std::uint64_t device_seed = 1;         ///< manufacturing-instance seed
  unsigned units_per_block = 4;          ///< 4 x 16B = 64B cache blocks

  [[nodiscard]] unsigned block_bytes() const {
    return units_per_block * base_params.cell_count() / 4;
  }
};

class Snvmm {
public:
  explicit Snvmm(SnvmmConfig config = default_config());

  [[nodiscard]] static SnvmmConfig default_config();

  [[nodiscard]] const SnvmmConfig& config() const noexcept { return config_; }
  /// The manufactured (variation-applied) parameters of this instance.
  [[nodiscard]] const xbar::CrossbarParams& device_params() const noexcept {
    return device_params_;
  }
  [[nodiscard]] DeviceFingerprint fingerprint() const noexcept { return fingerprint_; }
  [[nodiscard]] std::uint64_t device_id() const noexcept { return config_.device_seed; }
  [[nodiscard]] unsigned block_bytes() const noexcept { return config_.block_bytes(); }

  /// One cache block's stored state.
  struct Block {
    std::vector<std::uint8_t> levels;  ///< units_per_block * 64 cell levels
    bool encrypted = false;            ///< SPECU bookkeeping flag
    double wear = 0.0;  ///< accumulated write-equivalents (Section 5.2: a
                        ///< full write = 1.0, an SPE pulse ~0.02)
  };

  [[nodiscard]] bool has_block(std::uint64_t block_addr) const;
  [[nodiscard]] Block& block(std::uint64_t block_addr);  ///< creates zeroed block
  [[nodiscard]] const Block* find_block(std::uint64_t block_addr) const;

  /// Attacker's physical probe: the quantised symbols of the block as
  /// stored, packed 2 bits per cell into block_bytes() bytes. Returns an
  /// all-zero pattern for never-written blocks (erased array).
  [[nodiscard]] std::vector<std::uint8_t> probe_block(std::uint64_t block_addr) const;

  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Peak accumulated wear over all blocks (0 for an empty array) — the
  /// quantity an endurance limit is compared against.
  [[nodiscard]] double max_wear() const;
  [[nodiscard]] const std::map<std::uint64_t, Block>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::map<std::uint64_t, Block>& blocks() noexcept { return blocks_; }

  /// The crash-consistency intent journal, modelled as a reserved region of
  /// this non-volatile array: it survives power loss with the cell levels
  /// and is serialised inside the v2 device image (core/snvmm_io).
  [[nodiscard]] IntentJournal& journal() noexcept { return journal_; }
  [[nodiscard]] const IntentJournal& journal() const noexcept { return journal_; }

private:
  SnvmmConfig config_;
  xbar::CrossbarParams device_params_;
  DeviceFingerprint fingerprint_;
  std::map<std::uint64_t, Block> blocks_;
  IntentJournal journal_;
};

}  // namespace spe::core
