# Empty compiler generated dependencies file for table2_nist.
# This may be replaced when dependencies are built.
