file(REMOVE_RECURSE
  "libspe_ecc.a"
)
