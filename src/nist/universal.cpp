// SP 800-22 2.9 Maurer's "universal statistical" test.

#include <array>
#include <cmath>

#include "nist/suite.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

TestResult universal_test(const util::BitVector& bits) {
  TestResult r{"Maurer", {}, true};
  // Expected value / variance of the per-block statistic for L = 2..16
  // (SP 800-22 table 2-9; index 0 is L = 2).
  static constexpr std::array<double, 15> kExpected = {
      1.5374383, 2.4016068, 3.3112247, 4.2534266, 5.2177052,
      6.1962507, 7.1836656, 8.1764248, 9.1723243, 10.170032,
      11.168765, 12.168070, 13.167693, 14.167488, 15.167379};
  static constexpr std::array<double, 15> kVariance = {
      1.338, 1.901, 2.358, 2.705, 2.954, 3.125, 3.238,
      3.311, 3.356, 3.384, 3.401, 3.410, 3.416, 3.419, 3.421};

  const std::size_t n = bits.size();
  // Choose the largest L in [2, 16] with n >= 1010 * 2^L * L (Q = 10*2^L
  // initialisation blocks plus ~1000*2^L test blocks).
  int L = 0;
  for (int cand = 16; cand >= 2; --cand) {
    const double need = 1010.0 * std::pow(2.0, cand) * cand;
    if (static_cast<double>(n) >= need) {
      L = cand;
      break;
    }
  }
  if (L == 0) {
    r.applicable = false;
    return r;
  }
  const std::size_t q = 10u << L;         // initialisation blocks
  const std::size_t blocks = n / static_cast<std::size_t>(L);
  const std::size_t k = blocks - q;       // test blocks

  std::vector<std::size_t> last_seen(std::size_t{1} << L, 0);
  for (std::size_t i = 0; i < q; ++i) {
    const auto pattern = static_cast<std::size_t>(bits.read_bits(i * L, L));
    last_seen[pattern] = i + 1;
  }
  double sum = 0.0;
  for (std::size_t i = q; i < blocks; ++i) {
    const auto pattern = static_cast<std::size_t>(bits.read_bits(i * L, L));
    sum += std::log2(static_cast<double>(i + 1 - last_seen[pattern]));
    last_seen[pattern] = i + 1;
  }
  const double fn = sum / static_cast<double>(k);

  const double expected = kExpected[L - 2];
  const double variance = kVariance[L - 2];
  // Finite-size correction factor c (SP 800-22 (7)).
  const double c = 0.7 - 0.8 / L +
                   (4.0 + 32.0 / L) * std::pow(static_cast<double>(k), -3.0 / L) / 15.0;
  const double sigma = c * std::sqrt(variance / static_cast<double>(k));
  r.p_values.push_back(util::erfc(std::fabs(fn - expected) / (std::sqrt(2.0) * sigma)));
  return r;
}

}  // namespace spe::nist
