#include "core/area_model.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace spe::core {
namespace {

TEST(AreaModel, Table3LatencyColumn) {
  EXPECT_EQ(costs_for(Scheme::Aes).table_latency_cycles, 80u);
  EXPECT_EQ(costs_for(Scheme::INvmm).table_latency_cycles, 80u);
  EXPECT_EQ(costs_for(Scheme::SpeSerial).table_latency_cycles, 32u);
  EXPECT_EQ(costs_for(Scheme::SpeParallel).table_latency_cycles, 16u);
  EXPECT_EQ(costs_for(Scheme::StreamCipher).table_latency_cycles, 1u);
}

TEST(AreaModel, Table3AreaColumn) {
  EXPECT_DOUBLE_EQ(costs_for(Scheme::Aes).area_mm2, 8.0);
  EXPECT_DOUBLE_EQ(costs_for(Scheme::INvmm).area_mm2, 5.3);
  EXPECT_DOUBLE_EQ(costs_for(Scheme::SpeSerial).area_mm2, 1.3);
  EXPECT_DOUBLE_EQ(costs_for(Scheme::SpeParallel).area_mm2, 1.3);
  EXPECT_DOUBLE_EQ(costs_for(Scheme::StreamCipher).area_mm2, 6.18);
}

TEST(AreaModel, SpeAreaIsSmallest) {
  const double spe = costs_for(Scheme::SpeSerial).area_mm2;
  for (const auto& c : scheme_costs()) {
    if (c.scheme == Scheme::None || c.scheme == Scheme::SpeSerial ||
        c.scheme == Scheme::SpeParallel)
      continue;
    EXPECT_GT(c.area_mm2, spe) << scheme_name(c.scheme);
  }
  // Stream cipher ~5x SPE (Section 7: "area overhead ~5x of SPE").
  EXPECT_NEAR(costs_for(Scheme::StreamCipher).area_mm2 / spe, 5.0, 0.5);
}

TEST(AreaModel, BreakdownSumsToTable3) {
  EXPECT_NEAR(specu_area_mm2(), 1.3, 1e-9);
  double sum = 0.0;
  for (const auto& c : specu_area_breakdown()) {
    EXPECT_GE(c.mm2, 0.0);
    sum += c.mm2;
  }
  EXPECT_DOUBLE_EQ(sum, specu_area_mm2());
}

TEST(AreaModel, FullTimeEncryptionFlags) {
  EXPECT_TRUE(costs_for(Scheme::Aes).full_time_encryption);
  EXPECT_TRUE(costs_for(Scheme::SpeParallel).full_time_encryption);
  EXPECT_TRUE(costs_for(Scheme::StreamCipher).full_time_encryption);
  EXPECT_FALSE(costs_for(Scheme::INvmm).full_time_encryption);
  EXPECT_FALSE(costs_for(Scheme::SpeSerial).full_time_encryption);
}

TEST(AreaModel, SchemeNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& c : scheme_costs()) names.insert(scheme_name(c.scheme));
  EXPECT_EQ(names.size(), scheme_costs().size());
}

TEST(AreaModel, ColdBootDrainFormula) {
  EXPECT_DOUBLE_EQ(cold_boot_drain_seconds(0), 0.0);
  EXPECT_NEAR(cold_boot_drain_seconds(1000), 1.6e-3, 1e-12);
  EXPECT_NEAR(cold_boot_drain_seconds(1, 100.0), 1e-7, 1e-15);
}

}  // namespace
}  // namespace spe::core
