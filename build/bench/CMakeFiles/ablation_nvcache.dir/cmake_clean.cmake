file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvcache.dir/ablation_nvcache.cpp.o"
  "CMakeFiles/ablation_nvcache.dir/ablation_nvcache.cpp.o.d"
  "ablation_nvcache"
  "ablation_nvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
