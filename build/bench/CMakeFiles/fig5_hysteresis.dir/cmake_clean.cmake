file(REMOVE_RECURSE
  "CMakeFiles/fig5_hysteresis.dir/fig5_hysteresis.cpp.o"
  "CMakeFiles/fig5_hysteresis.dir/fig5_hysteresis.cpp.o.d"
  "fig5_hysteresis"
  "fig5_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
