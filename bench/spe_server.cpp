// Standalone SPE memory server: MemoryService behind the spe_net TCP
// wire protocol. Pairs with `loadgen` for the serving-layer quick start:
//
//   ./bench/spe_server --port 48571 &
//   ./bench/loadgen --port 48571 --connections 4 --depth 8 --seconds 2
//
// Flags: --port P (0 = ephemeral; the bound port is always printed),
//        --port-file PATH (write the bound port, for scripts racing an
//        ephemeral pick), --shards N, --workers N, --queue N,
//        --max-conns N, --completion-threads N, --reject (queue
//        backpressure rejects with Overloaded instead of blocking).
//
// Cluster mode (see DESIGN.md section 11 and scripts/cluster_smoke.sh):
//        --cluster                       enable the ClusterCoordinator
//        --cluster-name NAME             this node's ring identity
//        --cluster-nodes SPEC            "a=h:p[*w],b=h:p,..." initial members
//        --cluster-epoch E               epoch of that initial topology
//        --journal PATH                  migration journal (crash recovery)
//        --checkpoint PATH               service checkpoint; restored at boot
//                                        when the file already exists
//
// SIGINT/SIGTERM trigger the graceful drain-then-stop path.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "bench_util.hpp"
#include "cluster/coordinator.hpp"
#include "net/server.hpp"
#include "runtime/memory_service.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void on_signal(int) { g_stop_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  spe::benchutil::Args args(argc, argv);
  spe::net::ServerConfig server_cfg;
  server_cfg.port = static_cast<std::uint16_t>(args.uns("port", 0));
  server_cfg.max_connections = args.uns("max-conns", server_cfg.max_connections);
  server_cfg.completion_threads =
      args.uns("completion-threads", server_cfg.completion_threads);

  spe::runtime::ServiceConfig service_cfg;
  service_cfg.shards = std::max(1u, args.uns("shards", service_cfg.shards));
  service_cfg.worker_threads =
      std::max(1u, args.uns("workers", service_cfg.worker_threads));
  service_cfg.queue_capacity = std::max(
      1u, args.uns("queue", static_cast<unsigned>(service_cfg.queue_capacity)));
  if (args.flag("reject"))
    service_cfg.backpressure = spe::runtime::BackpressurePolicy::Reject;

  const std::string port_file = args.str("port-file", "");
  const bool cluster = args.flag("cluster");
  const std::string cluster_name = args.str("cluster-name", "");
  const std::string cluster_nodes = args.str("cluster-nodes", "");
  const std::uint64_t cluster_epoch = args.uns("cluster-epoch", 1);
  const std::string journal_path = args.str("journal", "");
  const std::string checkpoint_path = args.str("checkpoint", "");
  if (!args.ok(stderr)) return 2;
  if (cluster && (cluster_name.empty() || cluster_nodes.empty())) {
    std::fprintf(stderr,
                 "spe_server: --cluster needs --cluster-name and --cluster-nodes\n");
    return 2;
  }

  try {
    // A node restarting after a kill comes back with the blocks it had
    // checkpointed; the migration journal replay then restores the
    // frozen/committed overlays on top.
    std::unique_ptr<spe::runtime::MemoryService> service;
    if (!checkpoint_path.empty() && std::ifstream(checkpoint_path).good()) {
      service = std::make_unique<spe::runtime::MemoryService>(service_cfg,
                                                              checkpoint_path);
      std::printf("spe_server: restored service from %s\n", checkpoint_path.c_str());
    } else {
      service = std::make_unique<spe::runtime::MemoryService>(service_cfg);
    }

    spe::net::Server server(*service, server_cfg);

    std::optional<spe::cluster::ClusterCoordinator> coordinator;
    if (cluster) {
      spe::cluster::ClusterTopology topology;
      if (!spe::cluster::parse_topology_spec(cluster_nodes, cluster_epoch, topology)) {
        std::fprintf(stderr, "spe_server: malformed --cluster-nodes '%s'\n",
                     cluster_nodes.c_str());
        return 2;
      }
      spe::cluster::CoordinatorConfig coord_cfg;
      coord_cfg.node_name = cluster_name;
      coord_cfg.journal_path = journal_path;
      coord_cfg.checkpoint_path = checkpoint_path;
      coordinator.emplace(*service, std::move(topology), coord_cfg);
      const spe::cluster::MigrationRecovery recovery = coordinator->recover();
      if (recovery.records > 0)
        std::printf("spe_server: journal replay: %zu records, %zu forward, "
                    "%zu rolled back, %zu frozen%s\n",
                    recovery.records, recovery.forward.size(),
                    recovery.rollback.size(), recovery.frozen.size(),
                    recovery.truncated_bytes > 0 ? " (torn tail truncated)" : "");
      server.set_cluster_handler(&*coordinator);
    }

    const std::uint16_t port = server.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("spe_server: listening on %s:%u (%u shards, %u workers, %u B blocks)\n",
                server_cfg.bind_address.c_str(), port, service->shard_count(),
                service_cfg.worker_threads, service->block_bytes());
    if (cluster)
      std::printf("spe_server: cluster node '%s' at epoch %llu (%zu members)\n",
                  cluster_name.c_str(),
                  static_cast<unsigned long long>(coordinator->topology().epoch),
                  coordinator->topology().nodes.size());
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      out << port << '\n';
      if (!out) {
        std::fprintf(stderr, "spe_server: cannot write %s\n", port_file.c_str());
        return 1;
      }
    }

    while (g_stop_requested == 0 && server.running())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("spe_server: draining...\n");
    std::fflush(stdout);
    server.stop();
    const spe::net::ServerCountersSnapshot c = server.counters();
    service->stop();
    std::printf("spe_server: stopped (%llu conns, %llu frames rx, %llu completed, "
                "%llu protocol errors)\n",
                static_cast<unsigned long long>(c.connections_accepted),
                static_cast<unsigned long long>(c.frames_rx),
                static_cast<unsigned long long>(c.requests_completed),
                static_cast<unsigned long long>(c.protocol_errors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spe_server: %s\n", e.what());
    return 1;
  }
}
