#pragma once
// Configuration for the sharded SPE memory service (src/runtime). The
// service fronts N independent bank shards — each one Snvmm + Specu pair,
// all provisioned from one TPM — behind a fixed-size worker pool, and runs
// the paper's SPE-serial background engine (Section 4.1) as a scavenger
// thread with a tunable duty cycle.

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/snvmm.hpp"
#include "core/specu.hpp"
#include "fault/fault_plan.hpp"
#include "tenant/registry.hpp"

namespace spe::runtime {

/// What submit_read / submit_write do when the target shard's queue is at
/// capacity.
enum class BackpressurePolicy {
  Block,   ///< producer waits until the worker drains a slot
  Reject,  ///< submit throws QueueFullError immediately
};

/// Typed rejection raised under BackpressurePolicy::Reject when the target
/// shard's queue is at capacity. (Submits racing a shutdown get
/// ServiceStoppedError instead.)
class QueueFullError : public std::runtime_error {
public:
  QueueFullError(unsigned shard, std::size_t depth)
      : std::runtime_error("spe::runtime: shard " + std::to_string(shard) +
                           " queue full (depth " + std::to_string(depth) + ")"),
        shard_(shard),
        depth_(depth) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

private:
  unsigned shard_;
  std::size_t depth_;
};

/// The service has been stopped (or is stopping). Raised by submits that
/// race or follow stop(), and set on any still-queued futures the shutdown
/// drained — a client blocked on .get() across a stop() sees this typed
/// error rather than a std::future_error from a broken promise.
class ServiceStoppedError : public std::runtime_error {
public:
  explicit ServiceStoppedError(unsigned shard)
      : std::runtime_error("spe::runtime: service stopped (shard " +
                           std::to_string(shard) + "); request not executed"),
        shard_(shard) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }

private:
  unsigned shard_;
};

/// A read hit faults the SEC-DED planes could not correct, even after the
/// bounded re-read retries; the block has been quarantined. A later write
/// to the address remaps it to a spare physical location and lifts the
/// quarantine.
class UncorrectableFaultError : public std::runtime_error {
public:
  UncorrectableFaultError(unsigned shard, std::uint64_t block_addr)
      : std::runtime_error("spe::runtime: uncorrectable fault in block " +
                           std::to_string(block_addr) + " (shard " +
                           std::to_string(shard) + "); block quarantined"),
        shard_(shard),
        block_addr_(block_addr) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint64_t block_addr() const noexcept { return block_addr_; }

private:
  unsigned shard_;
  std::uint64_t block_addr_;
};

/// Read of a block that is currently quarantined (fails fast, no sense).
class QuarantinedBlockError : public std::runtime_error {
public:
  QuarantinedBlockError(unsigned shard, std::uint64_t block_addr)
      : std::runtime_error("spe::runtime: block " + std::to_string(block_addr) +
                           " (shard " + std::to_string(shard) +
                           ") is quarantined; rewrite it to remap"),
        shard_(shard),
        block_addr_(block_addr) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint64_t block_addr() const noexcept { return block_addr_; }

private:
  unsigned shard_;
  std::uint64_t block_addr_;
};

/// Read of a block that was caught mid-operation by a crash and could not
/// be replayed forward or rolled back (e.g. interrupted during the write
/// phase, or journaled under a different key-schedule epoch). The data is
/// unrecoverable; like a fault quarantine, a rewrite remaps and lifts it.
class TornBlockError : public std::runtime_error {
public:
  TornBlockError(unsigned shard, std::uint64_t block_addr)
      : std::runtime_error("spe::runtime: block " + std::to_string(block_addr) +
                           " (shard " + std::to_string(shard) +
                           ") was torn by a crash; rewrite it to remap"),
        shard_(shard),
        block_addr_(block_addr) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint64_t block_addr() const noexcept { return block_addr_; }

private:
  unsigned shard_;
  std::uint64_t block_addr_;
};

/// Write would create a block the owning tenant has no quota headroom for
/// (tenant::TenantSpec::block_quota). Nothing was programmed; the request
/// can be retried after the tenant frees capacity or its quota is raised.
class QuotaExceededError : public std::runtime_error {
public:
  QuotaExceededError(unsigned shard, std::uint64_t block_addr, std::uint32_t tenant)
      : std::runtime_error("spe::runtime: tenant " + std::to_string(tenant) +
                           " over block quota writing block " +
                           std::to_string(block_addr) + " (shard " +
                           std::to_string(shard) + ")"),
        shard_(shard),
        block_addr_(block_addr),
        tenant_(tenant) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint64_t block_addr() const noexcept { return block_addr_; }
  [[nodiscard]] std::uint32_t tenant() const noexcept { return tenant_; }

private:
  unsigned shard_;
  std::uint64_t block_addr_;
  std::uint32_t tenant_;
};

/// Observability knobs (src/obs wiring). Tracing is process-global — a
/// service whose config asks for it enables the global Tracer at
/// construction (restarting the trace session); metrics export needs no
/// opt-in.
struct ObsConfig {
  bool trace = false;               ///< enable the global Tracer at service start
  bool deterministic_trace = false; ///< logical ticks (golden-trace mode)
  bool trace_pulses = false;        ///< per-pulse journal.advance instants
  std::size_t trace_buffer_events = std::size_t{1} << 16;  ///< per-thread ring

  /// Execute-time threshold for slow-op accounting; 0 disables. Slow ops
  /// are counted (spe_slow_ops_total), kept in a per-shard ring
  /// (MemoryService::slow_ops()) and optionally logged to stderr.
  std::chrono::nanoseconds slow_op_threshold{0};
  bool log_slow_ops = false;
  std::size_t slow_op_capacity = 64;  ///< per-shard slow-op ring size
};

struct ServiceConfig {
  unsigned shards = 8;          ///< independent Snvmm+Specu bank pairs
  unsigned worker_threads = 4;  ///< fixed pool; shard s is served by worker s % threads
  std::size_t queue_capacity = 1024;  ///< per-shard bounded MPSC queue
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  bool coalesce_writes = true;  ///< merge queued same-block writes (latest wins)

  core::SpeMode mode = core::SpeMode::Serial;
  core::SnvmmConfig shard_memory = core::Snvmm::default_config();  ///< per-shard
  std::uint64_t device_seed_base = 1;  ///< shard s gets device_seed_base + s
  std::uint64_t key_seed = 0x5EC0DE;   ///< SpeKey derivation for TPM provisioning
  std::uint64_t platform_measurement = 0xB007C0DE;

  // SPE-serial scavenger (ignored in Parallel mode): every interval it
  // sweeps the shards and re-encrypts up to blocks_per_pass plaintext
  // blocks per shard.
  bool scavenger_enabled = true;
  std::chrono::microseconds scavenger_interval{500};
  unsigned scavenger_blocks_per_pass = 4;

  // --- resilience (SEC-DED plane code over stored levels, src/ecc) --------
  bool ecc_enabled = true;       ///< verify+correct levels on every read
  bool verify_writes = true;     ///< program-verify after each write, remap on failure
  unsigned max_read_retries = 3;   ///< re-senses after an uncorrectable read
  unsigned max_write_retries = 3;  ///< re-programs before remapping to a spare
  /// Exponential backoff between retries: base << attempt.
  std::chrono::microseconds retry_backoff_base{5};
  /// Scrub pass (piggybacked on the scavenger thread): per interval, each
  /// shard ages + ECC-verifies up to this many resident blocks in place.
  bool scrub_enabled = true;
  unsigned scrub_blocks_per_pass = 8;

  // --- batched cipher fast path (core::SpecuBatch, DESIGN.md §12) ---------
  /// Drain-time batching: when a worker drains its queue, any run of at
  /// least batch_min_size consecutive same-kind requests executes through
  /// the SpecuBatch fast path (bit-identical to the scalar Specu path; the
  /// differential suite in tests/core/batch_equivalence_test pins it).
  /// Scalar stays the reference path for singles, recovery, and scavenging.
  bool batch_cipher = true;
  unsigned batch_min_size = 2;

  // --- PoE placement for non-8x8 shard crossbars (DESIGN.md §14) ----------
  /// Shards whose crossbar geometry is not the precomputed 8x8 default get
  /// their PoE set from core::poes_for_crossbar, which runs the placement
  /// solver portfolio once per geometry and memoises it. The seed drives
  /// the heuristic backends (fixed seed => the same placement on every
  /// host / restart); the per-backend time budget is a cut-off safety net
  /// only (0 keeps the deterministic work-based budgets).
  std::uint64_t placement_seed = 0x90E5;
  double placement_time_limit_ms = 0.0;

  // --- deterministic fault injection (src/fault) --------------------------
  /// Off by default; when on, every shard gets a FaultInjector over one
  /// shared FaultPlan(fault_seed, faults), keyed by the shard's device id.
  bool fault_injection = false;
  std::uint64_t fault_seed = 0xFA117;
  fault::FaultModelConfig faults;

  // --- observability (src/obs: tracing, metrics, slow-op accounting) ------
  ObsConfig obs;

  // --- multi-tenant key domains (src/tenant, DESIGN.md §15) ---------------
  /// Optional tenant registry. When set, every shard powers one extra Specu
  /// per registered tenant (its key derived per (tenant, epoch) and sealed
  /// in the TPM under a synthetic handle), blocks encrypt under their
  /// address-range owner's key domain, writes that create blocks charge the
  /// owner's block quota (QuotaExceededError when exhausted), and
  /// MemoryService::rotate_tenant_key drives online key rotation. Null (the
  /// default) keeps the single-tenant behaviour byte-for-byte: one default
  /// key domain, no quota checks, no extra state in checkpoints.
  std::shared_ptr<tenant::TenantRegistry> tenants;
};

}  // namespace spe::runtime
