#pragma once
// Configuration for the sharded SPE memory service (src/runtime). The
// service fronts N independent bank shards — each one Snvmm + Specu pair,
// all provisioned from one TPM — behind a fixed-size worker pool, and runs
// the paper's SPE-serial background engine (Section 4.1) as a scavenger
// thread with a tunable duty cycle.

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/snvmm.hpp"
#include "core/specu.hpp"

namespace spe::runtime {

/// What submit_read / submit_write do when the target shard's queue is at
/// capacity.
enum class BackpressurePolicy {
  Block,   ///< producer waits until the worker drains a slot
  Reject,  ///< submit throws QueueFullError immediately
};

/// Typed rejection raised under BackpressurePolicy::Reject (and by submits
/// racing a shutdown).
class QueueFullError : public std::runtime_error {
public:
  QueueFullError(unsigned shard, std::size_t depth)
      : std::runtime_error("spe::runtime: shard " + std::to_string(shard) +
                           " queue full (depth " + std::to_string(depth) + ")"),
        shard_(shard),
        depth_(depth) {}

  [[nodiscard]] unsigned shard() const noexcept { return shard_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

private:
  unsigned shard_;
  std::size_t depth_;
};

struct ServiceConfig {
  unsigned shards = 8;          ///< independent Snvmm+Specu bank pairs
  unsigned worker_threads = 4;  ///< fixed pool; shard s is served by worker s % threads
  std::size_t queue_capacity = 1024;  ///< per-shard bounded MPSC queue
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  bool coalesce_writes = true;  ///< merge queued same-block writes (latest wins)

  core::SpeMode mode = core::SpeMode::Serial;
  core::SnvmmConfig shard_memory = core::Snvmm::default_config();  ///< per-shard
  std::uint64_t device_seed_base = 1;  ///< shard s gets device_seed_base + s
  std::uint64_t key_seed = 0x5EC0DE;   ///< SpeKey derivation for TPM provisioning
  std::uint64_t platform_measurement = 0xB007C0DE;

  // SPE-serial scavenger (ignored in Parallel mode): every interval it
  // sweeps the shards and re-encrypts up to blocks_per_pass plaintext
  // blocks per shard.
  bool scavenger_enabled = true;
  std::chrono::microseconds scavenger_interval{500};
  unsigned scavenger_blocks_per_pass = 4;
};

}  // namespace spe::runtime
