#pragma once
// Per-shard observability for the memory service: operation counters, queue
// depth high-water marks, and lock-free latency histograms for reads,
// writes, and background (scavenger) encryptions. Counters are relaxed
// atomics — the report is a statistical snapshot, not a barrier.
//
// Relaxed-consistency contract: a snapshot reads each counter with its own
// relaxed load, so counters within one snapshot are NOT mutually consistent
// (e.g. faults_detected may momentarily exceed reads_completed's view of
// the same op), and a whole-service snapshot visits shards one at a time.
// What IS guaranteed: every counter is monotonic non-decreasing, and atomic
// coherence makes each field — and therefore every aggregated total — never
// go backwards across successive snapshots (pinned by
// tests/runtime/service_stats_test.cpp). Aggregated totals saturate at
// uint64 max instead of wrapping.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/latency_histogram.hpp"

namespace spe::runtime {

/// Live (atomic) per-shard counters, written by workers / producers /
/// scavenger concurrently.
struct ShardCounters {
  std::atomic<std::uint64_t> reads_completed{0};
  std::atomic<std::uint64_t> writes_completed{0};
  std::atomic<std::uint64_t> writes_coalesced{0};  ///< futures satisfied by a merged write
  std::atomic<std::uint64_t> rejected{0};          ///< Reject-policy bounces
  std::atomic<std::uint64_t> background_encrypted{0};
  std::atomic<std::uint64_t> queue_high_water{0};

  // Resilience counters (PR 2): ECC verify outcomes, retries, quarantine.
  std::atomic<std::uint64_t> faults_detected{0};   ///< verify events that found damage
  std::atomic<std::uint64_t> faults_corrected{0};  ///< cells repaired by SEC-DED
  std::atomic<std::uint64_t> faults_uncorrectable{0};  ///< ops/scrubs abandoned
  std::atomic<std::uint64_t> blocks_quarantined{0};    ///< quarantine insertions
  std::atomic<std::uint64_t> read_retries{0};          ///< extra sense attempts
  std::atomic<std::uint64_t> write_retries{0};         ///< extra program attempts
  std::atomic<std::uint64_t> blocks_remapped{0};       ///< spare-location remaps
  std::atomic<std::uint64_t> blocks_scrubbed{0};       ///< scrub verifications run

  std::atomic<std::uint64_t> slow_ops{0};  ///< ops over ObsConfig::slow_op_threshold
  std::atomic<std::uint64_t> cipher_batched{0};  ///< ops served by the batched fast path

  /// EWMA of one request's shard execution time (alpha = 1/8), maintained by
  /// the worker after every request. Load-shedding multiplies this by the
  /// queue depth to estimate a newcomer's wait; it is an estimator, not an
  /// accounting counter — the only non-monotonic field in this struct.
  std::atomic<std::uint64_t> avg_execute_ns{0};

  void note_execute_ns(std::uint64_t ns) noexcept {
    const std::uint64_t old = avg_execute_ns.load(std::memory_order_relaxed);
    avg_execute_ns.store(old == 0 ? ns : (7 * old + ns) / 8,
                         std::memory_order_relaxed);
  }

  LatencyHistogram read_latency;   ///< submit -> future fulfilled
  LatencyHistogram write_latency;  ///< submit -> future fulfilled
  LatencyHistogram background_latency;  ///< one scavenger block re-encryption

  void note_queue_depth(std::size_t depth) noexcept {
    auto d = static_cast<std::uint64_t>(depth);
    auto cur = queue_high_water.load(std::memory_order_relaxed);
    while (cur < d &&
           !queue_high_water.compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
    }
  }
};

/// Plain copy of one shard's counters at a point in time.
struct ShardStatsSnapshot {
  unsigned shard = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t writes_coalesced = 0;
  std::uint64_t rejected = 0;
  std::uint64_t background_encrypted = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_corrected = 0;
  std::uint64_t faults_uncorrectable = 0;
  std::uint64_t blocks_quarantined = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t blocks_remapped = 0;
  std::uint64_t blocks_scrubbed = 0;
  std::uint64_t slow_ops = 0;
  std::uint64_t cipher_batched = 0;   ///< ops served by the batched fast path
  std::uint64_t injected_faults = 0;  ///< materialised by this shard's injector
  std::size_t quarantined_now = 0;    ///< blocks currently quarantined
  std::size_t plaintext_blocks = 0;  ///< SPE-serial exposure at snapshot time
  std::size_t resident_blocks = 0;
  LatencyHistogram::Snapshot read_latency;
  LatencyHistogram::Snapshot write_latency;
  LatencyHistogram::Snapshot background_latency;
};

/// Whole-service snapshot: per-shard rows plus aggregated totals.
struct ServiceStatsSnapshot {
  std::vector<ShardStatsSnapshot> shards;
  ShardStatsSnapshot totals;  ///< shard field meaningless; histograms merged

  [[nodiscard]] std::uint64_t total_ops() const noexcept {
    return totals.reads_completed + totals.writes_completed;
  }
  /// Multi-line human-readable report (used by the bench driver and tests).
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ShardStatsSnapshot snapshot_counters(unsigned shard, const ShardCounters& c);
/// Sums per-shard rows into totals (queue_high_water takes the max).
/// Counter totals saturate at uint64 max rather than wrapping, preserving
/// the never-goes-backwards guarantee near overflow.
[[nodiscard]] ServiceStatsSnapshot aggregate(std::vector<ShardStatsSnapshot> shards);

/// Per-operation span summary, surfaced opt-in on the read/write result
/// path (MemoryService::read_traced / write_traced) and kept for ops that
/// cross the slow-op threshold. Pulse / correction / retry figures are
/// deltas of the shard's counters across the op's execution; on a shard
/// executing concurrently with the scavenger they are attributions, not
/// exact isolates.
struct OpSummary {
  std::uint64_t block_addr = 0;
  unsigned shard = 0;
  bool is_write = false;
  std::chrono::nanoseconds queue_ns{0};    ///< submit -> execution start
  std::chrono::nanoseconds execute_ns{0};  ///< shard execution (lock held)
  std::uint64_t pulses = 0;                ///< SPE pulses the op applied
  std::uint64_t cells_corrected = 0;       ///< SEC-DED corrections during the op
  std::uint64_t retries = 0;               ///< read re-senses + write re-programs
};

}  // namespace spe::runtime
