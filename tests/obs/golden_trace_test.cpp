// Golden-trace regression: a fixed seeded workload against a fully
// serialised MemoryService (1 shard, 1 worker, background threads off,
// blocking submits) in deterministic-trace mode must yield byte-identical
// JSONL run-over-run, and that JSONL must match the checked-in golden file.
//
// Thread ids are the only run-dependent field (each service run spawns a
// fresh worker thread, which registers a new ring), so the trace is
// normalised by remapping tids in order of first appearance before any
// comparison.
//
// To update the golden after an intentional instrumentation change:
//   SPE_OBS_UPDATE_GOLDEN=1 ./build/tests/test_obs --gtest_filter='GoldenTrace.*'
// then review the diff of tests/obs/golden_trace.jsonl (DESIGN.md §9).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/memory_service.hpp"

namespace spe::runtime {
namespace {

ServiceConfig golden_config() {
  ServiceConfig cfg;
  // Every knob that could interleave ticks is pinned: one shard served by
  // one worker, no scavenger/scrub thread, zero retry backoff.
  cfg.shards = 1;
  cfg.worker_threads = 1;
  cfg.scavenger_enabled = false;
  cfg.scrub_enabled = false;
  cfg.retry_backoff_base = std::chrono::microseconds{0};
  cfg.obs.trace = true;
  cfg.obs.deterministic_trace = true;
  cfg.obs.trace_pulses = true;  // per-pulse journal.advance instants too
  return cfg;
}

std::vector<std::uint8_t> payload_for(std::uint64_t block, unsigned bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (unsigned i = 0; i < bytes; ++i)
    data[i] = static_cast<std::uint8_t>(block * 31 + i * 7 + 1);
  return data;
}

/// Remaps "tid":N values in order of first appearance, so run 1's worker
/// (registered second, say tid 1) and run 2's fresh worker (tid 3) both
/// normalise to the same id.
std::string normalize_tids(const std::string& jsonl) {
  std::map<std::string, unsigned> remap;
  std::string out;
  out.reserve(jsonl.size());
  std::size_t pos = 0;
  const std::string key = "\"tid\":";
  while (pos < jsonl.size()) {
    const std::size_t at = jsonl.find(key, pos);
    if (at == std::string::npos) {
      out.append(jsonl, pos, std::string::npos);
      break;
    }
    const std::size_t digits = at + key.size();
    std::size_t end = digits;
    while (end < jsonl.size() && std::isdigit(static_cast<unsigned char>(jsonl[end])))
      ++end;
    const std::string tid = jsonl.substr(digits, end - digits);
    const auto [it, inserted] =
        remap.emplace(tid, static_cast<unsigned>(remap.size()));
    out.append(jsonl, pos, digits - pos);
    out.append(std::to_string(it->second));
    pos = end;
  }
  return out;
}

/// The fixed workload: a handful of blocking writes and reads, including a
/// repeat read (serial-mode plaintext hit) and a rewrite (re-encrypt).
std::string run_traced_workload() {
  MemoryService service(golden_config());
  const unsigned bytes = service.block_bytes();
  for (std::uint64_t b = 0; b < 3; ++b) service.write(b, payload_for(b, bytes));
  (void)service.read(1);
  (void)service.read(1);  // plaintext re-read: no decrypt pulses this time
  service.write(1, payload_for(9, bytes));
  (void)service.read(2);
  (void)service.read(0);
  const std::string jsonl = obs::Tracer::instance().jsonl();
  service.stop();
  obs::Tracer::instance().disable();
  return normalize_tids(jsonl);
}

class GoldenTrace : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    // Throwaway run to warm every process-global lazy cache (cipher
    // calibration, solver scratch): a cold first run would trace extra
    // xbar.solve spans the second run does not repeat.
    ServiceConfig cfg = golden_config();
    cfg.obs.trace = false;
    obs::Tracer::instance().disable();
    MemoryService warmup(cfg);
    warmup.write(0, std::vector<std::uint8_t>(warmup.block_bytes(), 0));
    (void)warmup.read(0);
  }
};

TEST_F(GoldenTrace, DeterministicModeIsByteReproducible) {
  const std::string first = run_traced_workload();
  const std::string second = run_traced_workload();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed, same config -> same trace bytes";
}

TEST_F(GoldenTrace, TraceContainsTheDocumentedSpanTaxonomy) {
  const std::string trace = run_traced_workload();
  for (const char* name :
       {"\"svc.submit\"", "\"shard.read\"", "\"shard.write\"", "\"specu.read\"",
        "\"specu.write\"", "\"specu.encrypt\"", "\"specu.decrypt\"", "\"ecc.verify\"",
        "\"journal.begin\"", "\"journal.advance\"", "\"journal.commit\""})
    EXPECT_NE(trace.find(name), std::string::npos) << name << " missing from trace";
}

TEST_F(GoldenTrace, MatchesCheckedInGolden) {
  const std::string trace = run_traced_workload();
  const char* update = std::getenv("SPE_OBS_UPDATE_GOLDEN");
  if (update && *update && *update != '0') {
    std::ofstream out(SPE_GOLDEN_TRACE_PATH, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << SPE_GOLDEN_TRACE_PATH;
    out << trace;
    GTEST_SKIP() << "golden updated at " << SPE_GOLDEN_TRACE_PATH
                 << " — review and commit the diff";
  }
  std::ifstream in(SPE_GOLDEN_TRACE_PATH, std::ios::binary);
  ASSERT_TRUE(in) << "golden file missing; regenerate with SPE_OBS_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(trace, golden.str())
      << "trace diverged from tests/obs/golden_trace.jsonl; if the "
         "instrumentation change is intentional, regenerate with "
         "SPE_OBS_UPDATE_GOLDEN=1 and commit the new golden (DESIGN.md §9)";
}

}  // namespace
}  // namespace spe::runtime
