#include "wear/endurance.hpp"

#include <gtest/gtest.h>

namespace spe::wear {
namespace {

TEST(EnduranceModel, RejectsEmpty) {
  EXPECT_THROW(EnduranceModel(0), std::invalid_argument);
}

TEST(EnduranceModel, TracksWritesPerLine) {
  EnduranceModel model(4, {10.0, 0.02});
  model.record_write(0);
  model.record_write(0);
  model.record_write(3);
  EXPECT_DOUBLE_EQ(model.wear(0), 2.0);
  EXPECT_DOUBLE_EQ(model.wear(1), 0.0);
  EXPECT_DOUBLE_EQ(model.wear(3), 1.0);
  EXPECT_DOUBLE_EQ(model.max_wear(), 2.0);
  EXPECT_THROW(model.record_write(4), std::out_of_range);
}

TEST(EnduranceModel, SpePulsesWearFractionally) {
  // Section 5.2: SPE's pulses age cells far less than writes.
  EnduranceModel model(2, {1e6, 0.02});
  model.record_spe_encryption(0);  // 16 pulses x 0.02 = 0.32 write units
  model.record_write(1);
  EXPECT_NEAR(model.wear(0), 0.32, 1e-12);
  EXPECT_LT(model.wear(0), model.wear(1));
}

TEST(EnduranceModel, FailureDetection) {
  EnduranceModel model(2, {3.0, 0.02});
  EXPECT_FALSE(model.any_failed());
  for (int i = 0; i < 3; ++i) model.record_write(0);
  EXPECT_TRUE(model.any_failed());
  EXPECT_EQ(model.failed_lines(), 1u);
}

TEST(EnduranceModel, LifetimeFractionIdealWhenUniform) {
  EnduranceModel model(4, {100.0, 0.02});
  for (int round = 0; round < 50; ++round)
    for (std::size_t l = 0; l < 4; ++l) model.record_write(l);
  EXPECT_NEAR(model.lifetime_fraction(), 1.0, 1e-12);
}

TEST(EnduranceModel, LifetimeFractionCollapsesUnderHammering) {
  EnduranceModel model(100, {100.0, 0.02});
  for (int i = 0; i < 50; ++i) model.record_write(7);  // one hot line
  // Peak carries everything: lifetime ~ 1/lines of ideal.
  EXPECT_NEAR(model.lifetime_fraction(), 1.0 / 100.0, 1e-9);
}

TEST(BruteForceWear, AttackDestroysDeviceFirst) {
  // Section 6.2.1: the attacker exhausts the memristors' endurance after a
  // vanishing fraction of the key space.
  const auto report = brute_force_wear();
  EXPECT_GT(report.trials_until_failure, 1e7);
  // Fraction of the 1e52 key space searched before the device dies:
  EXPECT_LT(report.log10_keyspace_fraction_searched, -40.0);
  EXPECT_LT(report.seconds_until_failure, 1e4);  // device dies within hours
}

TEST(BruteForceWear, BetterEnduranceHelpsOnlyLinearly) {
  const auto pcm = brute_force_wear({1e8, 0.02});
  const auto taox = brute_force_wear({1e10, 0.02});
  EXPECT_NEAR(taox.trials_until_failure / pcm.trials_until_failure, 100.0, 1e-6);
  EXPECT_LT(taox.log10_keyspace_fraction_searched, -38.0);
}

}  // namespace
}  // namespace spe::wear
