# Empty compiler generated dependencies file for spe_wear.
# This may be replaced when dependencies are built.
