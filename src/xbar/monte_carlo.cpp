#include "xbar/monte_carlo.hpp"

#include <cmath>

namespace spe::xbar {

CrossbarParams perturb_wires(const CrossbarParams& params, double fraction,
                             spe::util::Xoshiro256ss& rng) {
  CrossbarParams p = params;
  p.r_wire_row *= 1.0 + rng.uniform(-fraction, fraction);
  p.r_wire_col *= 1.0 + rng.uniform(-fraction, fraction);
  p.r_driver *= 1.0 + rng.uniform(-fraction, fraction);
  return p;
}

CrossbarParams perturb_macro(const CrossbarParams& params, double delta) {
  // Macro (process-corner) perturbation. Deliberately DIFFERENTIAL: a
  // uniform scaling of every resistance is ratio-preserving and leaves the
  // DC voltage-divider map — hence the polyomino — unchanged; real corners
  // shift the resistance window, the access-device threshold and the
  // switching currents by different amounts, which is what reshapes the
  // polyomino (Section 5's "macro level changes ... change the shape").
  CrossbarParams p = params;
  p.r_wire_row *= 1.0 + 2.0 * delta;
  p.r_wire_col *= 1.0 + 2.0 * delta;
  p.team.r_on *= 1.0 + delta;
  p.team.r_off *= 1.0 - 0.5 * delta;
  p.team.i_off *= 1.0 + delta;
  p.team.i_on *= 1.0 + delta;
  p.transistor.r_on *= 1.0 + delta;
  p.transistor.v_threshold *= 1.0 + 0.5 * delta;
  return p;
}

McResult polyomino_stability(const CrossbarParams& nominal, PoE poe, double voltage,
                             const std::vector<unsigned>& symbols, double fraction,
                             unsigned trials, std::uint64_t seed) {
  Crossbar base(nominal);
  base.load_symbols(symbols);
  const Polyomino reference = extract_polyomino(base, poe, voltage);

  spe::util::Xoshiro256ss rng(seed);
  McResult result;
  result.trials = trials;
  double dv_sum = 0.0;
  std::size_t dv_count = 0;

  for (unsigned t = 0; t < trials; ++t) {
    Crossbar xbar(perturb_wires(nominal, fraction, rng));
    xbar.load_symbols(symbols);
    const Polyomino poly = extract_polyomino(xbar, poe, voltage);
    if (poly.mask != reference.mask) ++result.shape_changes;
    for (unsigned i = 0; i < poly.mask.size(); ++i) {
      if (reference.mask[i]) {
        dv_sum += std::fabs(poly.voltages[i] - reference.voltages[i]);
        ++dv_count;
      }
    }
  }
  result.mean_voltage_delta = dv_count ? dv_sum / static_cast<double>(dv_count) : 0.0;
  return result;
}

}  // namespace spe::xbar
