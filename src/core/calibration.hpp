#pragma once
// Physics calibration of the behavioural SPE cipher.
//
// The physics tier (device + xbar) is exact but far too slow to encrypt the
// millions of blocks the randomness evaluation needs, so the cipher runs on
// tables derived from it once per device:
//
//  * Polyomino shapes: for every candidate PoE, the sneak-path network is
//    solved (mid-band data pattern) and the covered-cell set extracted with
//    the write threshold Vt, classified into attenuation tiers
//    (0 = the PoE itself, 1 = same-column arm, 2 = same-row arm).
//  * Level-transition permutations: for every (pulse code, tier) the TEAM
//    equations are integrated from each of the 64 internal levels under the
//    tier's mean voltage share. The physical map is monotone-compressive
//    (saturating), so the behavioural bijection is the cyclic shift by the
//    mean integrated displacement — exact to invert, physics-scaled, with
//    wrap-around standing in for write-verify recycling of saturated cells.
//  * Decrypt pulse widths: for every (pulse code, tier), the width of the
//    opposite-polarity pulse that undoes the encryption pulse from the
//    band-centre state (the Fig. 5 hysteresis LUT used by a physical
//    SPECU; the behavioural cipher inverts its tables exactly instead).
//
// Everything is a deterministic function of the crossbar parameters, so two
// devices share tables iff they share physics — the device-binding property.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/fingerprint.hpp"
#include "device/mlc.hpp"
#include "device/pulse.hpp"
#include "xbar/polyomino.hpp"

namespace spe::core {

class CipherCalibration {
public:
  static constexpr unsigned kTiers = 3;
  static constexpr unsigned kLevels = device::MlcCodec::kInternalLevels;

  /// Covered cells of one PoE's polyomino, in fixed processing order
  /// (tier-major, then flat index; the PoE itself is first).
  struct Shape {
    std::vector<std::uint16_t> cells;
    std::vector<std::uint8_t> tiers;   ///< parallel to `cells`
  };

  using LevelPerm = std::array<std::uint8_t, kLevels>;

  CipherCalibration(xbar::CrossbarParams params,
                    device::PulseLibrary library = device::PulseLibrary{});

  [[nodiscard]] const xbar::CrossbarParams& params() const noexcept { return params_; }
  [[nodiscard]] const device::PulseLibrary& library() const noexcept { return library_; }
  [[nodiscard]] DeviceFingerprint fingerprint() const noexcept { return fingerprint_; }

  [[nodiscard]] const Shape& shape(unsigned poe_cell) const;
  /// Mean voltage share of covered cells in each tier [V] (signed by pulse).
  [[nodiscard]] double tier_attenuation(unsigned tier) const;

  [[nodiscard]] const LevelPerm& perm(unsigned pulse_code, unsigned tier) const;
  [[nodiscard]] const LevelPerm& inv_perm(unsigned pulse_code, unsigned tier) const;

  /// Physical decrypt width [s] for the inverse of (pulse_code, tier) from
  /// the band-centre representative state (Fig. 5 LUT).
  [[nodiscard]] double decrypt_width(unsigned pulse_code, unsigned tier) const;

  /// Number of cells in the crossbar (rows * cols).
  [[nodiscard]] unsigned cell_count() const noexcept { return params_.cell_count(); }

private:
  void extract_shapes();
  void build_perms();

  xbar::CrossbarParams params_;
  device::PulseLibrary library_;
  DeviceFingerprint fingerprint_;
  std::vector<Shape> shapes_;                 // per PoE cell
  std::array<double, kTiers> attenuation_{};  // mean |V| per tier
  std::vector<LevelPerm> perms_;              // [code * kTiers + tier]
  std::vector<LevelPerm> inv_perms_;
  std::vector<double> decrypt_widths_;        // [code * kTiers + tier]
};

/// Calibrations are deterministic in the parameters; this cache avoids
/// rebuilding them for every cipher instance (the hardware-avalanche data
/// set sweeps many parameter sets).
[[nodiscard]] std::shared_ptr<const CipherCalibration> get_calibration(
    const xbar::CrossbarParams& params);

}  // namespace spe::core
