#pragma once
// ClusterCoordinator: the per-node brain of the SPE cluster (src/cluster).
// It plugs into net::Server through the ClusterHandler hook and does four
// jobs:
//
//   routing      every READ/WRITE is ownership-checked on the event loop
//                (fast_path): frozen-outgoing and remotely-owned addresses
//                bounce Status::Moved with the owner's NodeInfo as payload;
//                locally-owned ones fall through to normal dispatch.
//   topology     TOPOLOGY with an empty payload answers the current
//                epoch-stamped member list; a non-empty payload proposes a
//                newer topology, which is journaled (ADOPT) and installed
//                iff its epoch is strictly newer.
//   migration    MIGRATE_RANGE drives the FREEZE / PULL / EXPORT / UNFREEZE
//                protocol documented in migration.hpp. Pull runs on a
//                completion thread: it exports each block from the source
//                peer (decrypted there under the source device fingerprint),
//                writes it into the local MemoryService (re-encrypted under
//                THIS device's fingerprint), checkpoints the service, and
//                only then journals the commit — so a kill -9 at any record
//                boundary recovers to fully-source or fully-destination
//                ownership.
//   metrics      spe_cluster_* counters/gauges merged into the server's
//                METRICS export.
//
// Thread model: fast_path runs on the server's event loop and only takes
// the coordinator mutex for map lookups; slow_path runs on completion
// threads and holds the mutex across journal appends (fsync) but NEVER
// across peer network I/O.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "cluster/migration.hpp"
#include "cluster/topology.hpp"
#include "net/server.hpp"
#include "runtime/memory_service.hpp"

namespace spe::cluster {

struct CoordinatorConfig {
  std::string node_name;        ///< this node's ring identity (must be in the topology)
  std::string journal_path;     ///< migration journal; "" = in-memory (tests)
  std::string checkpoint_path;  ///< service checkpoint written before each
                                ///< migration commit; "" = skip (volatile dest)
  std::size_t pull_batch = 64;  ///< addresses per Export round-trip
  std::chrono::milliseconds peer_io_deadline{10'000};
};

class ClusterCoordinator final : public net::ClusterHandler {
public:
  /// `service` and the topology's view of this node must outlive the
  /// coordinator. Throws std::invalid_argument when node_name is not a
  /// member of `initial`.
  ClusterCoordinator(runtime::MemoryService& service, ClusterTopology initial,
                     CoordinatorConfig config);

  /// Replays the journal (truncating any torn tail) and, when a newer
  /// topology was adopted before the crash, installs it over `initial`.
  /// Call once before the server starts. Returns the replay/rollback
  /// classification the recovery tests pin.
  MigrationRecovery recover();

  // --- net::ClusterHandler ---------------------------------------------------
  [[nodiscard]] Verdict fast_path(const net::Frame& request,
                                  net::Frame& response) override;
  [[nodiscard]] net::Frame slow_path(net::Frame&& request) override;
  void fill_metrics(obs::MetricsRegistry& registry) const override;

  [[nodiscard]] const std::string& node_name() const noexcept {
    return config_.node_name;
  }
  [[nodiscard]] ClusterTopology topology() const;
  /// This node's NodeInfo under the current topology.
  [[nodiscard]] NodeInfo self() const;

  /// Test access. The journal is guarded by the coordinator mutex — do not
  /// append concurrently with a serving server.
  [[nodiscard]] MigrationJournal& journal() noexcept { return journal_; }

private:
  /// Where an address is served right now, overlays included.
  struct Route {
    bool local = false;
    NodeInfo owner;  ///< meaningful when !local
  };
  [[nodiscard]] Route route_locked(std::uint64_t addr) const;

  [[nodiscard]] net::Frame handle_topology(const net::Frame& request);
  [[nodiscard]] net::Frame handle_migrate(const net::Frame& request);
  [[nodiscard]] net::Frame do_freeze(const net::Frame& request, const MigrateSpec& spec);
  [[nodiscard]] net::Frame do_unfreeze(const net::Frame& request, const MigrateSpec& spec);
  [[nodiscard]] net::Frame do_export(const net::Frame& request, const MigrateSpec& spec);
  [[nodiscard]] net::Frame do_pull(const net::Frame& request, const MigrateSpec& spec);
  [[nodiscard]] net::Frame do_checkpoint(const net::Frame& request);

  runtime::MemoryService& service_;
  CoordinatorConfig config_;

  mutable std::mutex mutex_;  ///< guards topology_, ring_, journal_
  ClusterTopology topology_;
  HashRing ring_;
  MigrationJournal journal_;

  struct Counters {
    std::atomic<std::uint64_t> moved_bounced{0};
    std::atomic<std::uint64_t> blocks_exported{0};
    std::atomic<std::uint64_t> blocks_pulled{0};
    std::atomic<std::uint64_t> blocks_skipped{0};
    std::atomic<std::uint64_t> migrate_failures{0};
    std::atomic<std::uint64_t> topology_adoptions{0};
    std::atomic<std::uint64_t> topology_rejected{0};
  };
  mutable Counters counters_;
};

}  // namespace spe::cluster
