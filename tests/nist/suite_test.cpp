#include "nist/suite.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::nist {
namespace {

util::BitVector random_bits(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  util::BitVector v;
  while (v.size() < n) v.append_bits(rng(), 64);
  return v.slice(0, n);
}

class SuiteRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuiteRandom, RandomSequencePassesEverything) {
  const auto bits = random_bits(1u << 16, GetParam());
  for (const auto& result : run_all(bits)) {
    EXPECT_TRUE(result.passed(0.001)) << result.name << " p=" << result.worst_p();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuiteRandom, ::testing::Values(1, 3, 4, 5, 6, 7, 8, 9));

TEST(Suite, ConstantZeroFailsFrequency) {
  util::BitVector zeros(1u << 14, false);
  EXPECT_FALSE(frequency_test(zeros).passed());
  EXPECT_FALSE(block_frequency_test(zeros).passed());
  EXPECT_FALSE(cusum_test(zeros).passed());
}

TEST(Suite, AlternatingBitsFailRuns) {
  util::BitVector v;
  for (int i = 0; i < (1 << 14); ++i) v.push_back(i & 1);
  // Perfectly balanced, so frequency passes; runs/serial/entropy must fail.
  EXPECT_TRUE(frequency_test(v).passed());
  EXPECT_FALSE(runs_test(v).passed());
  EXPECT_FALSE(serial_test(v).passed());
  EXPECT_FALSE(approximate_entropy_test(v).passed());
  EXPECT_FALSE(linear_complexity_test(v).passed());
}

TEST(Suite, PeriodicPatternFailsSpectral) {
  // Period-3 pattern has a strong spectral line.
  util::BitVector v;
  for (int i = 0; i < (1 << 14); ++i) v.push_back(i % 3 == 0);
  EXPECT_FALSE(dft_test(v).passed());
}

TEST(Suite, LowComplexitySequenceFailsRank) {
  // Rows repeat every 32 bits -> every 32x32 matrix has rank 1.
  util::BitVector v;
  for (int i = 0; i < (1 << 16); ++i) v.push_back((i % 32) < 16);
  EXPECT_FALSE(matrix_rank_test(v).passed());
}

TEST(Suite, BiasedSequenceFailsTemplates) {
  util::Xoshiro256ss rng(99);
  util::BitVector v;
  for (int i = 0; i < (1 << 16); ++i) v.push_back(rng.uniform() < 0.4);
  EXPECT_FALSE(non_overlapping_template_test(v).passed());
  EXPECT_FALSE(overlapping_template_test(v).passed());
  EXPECT_FALSE(universal_test(v).passed());
}

TEST(Suite, ShortSequencesAreNotApplicable) {
  util::BitVector v(64, false);
  EXPECT_FALSE(frequency_test(v).applicable);
  EXPECT_TRUE(frequency_test(v).passed());  // NA counts as pass
  EXPECT_FALSE(matrix_rank_test(v).applicable);
  EXPECT_FALSE(universal_test(v).applicable);
  EXPECT_FALSE(linear_complexity_test(v).applicable);
}

TEST(Suite, RunAllReturnsFifteenInOrder) {
  const auto bits = random_bits(1u << 14, 42);
  const auto results = run_all(bits);
  const auto names = test_names();
  ASSERT_EQ(results.size(), 15u);
  ASSERT_EQ(names.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i) EXPECT_EQ(results[i].name, names[i]);
}

TEST(Suite, EvaluateDatasetCountsFailures) {
  std::vector<util::BitVector> sequences;
  for (int s = 0; s < 4; ++s) sequences.push_back(random_bits(1u << 14, 100 + s));
  sequences.push_back(util::BitVector(1u << 14, false));  // one broken sequence
  const auto summary = evaluate_dataset(sequences);
  EXPECT_EQ(summary.sequences, 5u);
  // The constant sequence fails F-mono (row 0).
  EXPECT_GE(summary.failures[0], 1u);
  EXPECT_EQ(summary.names.size(), summary.failures.size());
}

TEST(Suite, AcceptanceBoundMatchesPaper) {
  SuiteSummary s;
  s.sequences = 150;
  s.alpha = 0.01;
  EXPECT_EQ(s.max_allowed(), 5u);  // "not more than 5 of 150"
}

TEST(TestResult, WorstPAndPassed) {
  TestResult r{"x", {0.5, 0.02, 0.9}, true};
  EXPECT_DOUBLE_EQ(r.worst_p(), 0.02);
  EXPECT_TRUE(r.passed(0.01));
  EXPECT_FALSE(r.passed(0.05));
  TestResult na{"y", {}, false};
  EXPECT_TRUE(na.passed(0.5));
  EXPECT_DOUBLE_EQ(na.worst_p(), 1.0);
}

TEST(Suite, ExcursionTestsApplicableOnLongWalks) {
  // A long random sequence eventually has J >= 500 zero crossings; use a
  // million bits to make that overwhelmingly likely.
  const auto bits = random_bits(1u << 20, 5);
  const auto re = random_excursions_test(bits);
  const auto rev = random_excursions_variant_test(bits);
  if (re.applicable) EXPECT_EQ(re.p_values.size(), 8u);
  if (rev.applicable) EXPECT_EQ(rev.p_values.size(), 18u);
  EXPECT_TRUE(re.passed(0.0005));
  EXPECT_TRUE(rev.passed(0.0005));
}

}  // namespace
}  // namespace spe::nist
