// Consistent-hash ring properties (src/cluster/hash_ring): deterministic
// placement across independently built rings, balance within 1/N + epsilon,
// and the minimal-disruption guarantee — adding or removing one node moves
// only ~1/N of the keys and never reshuffles keys between surviving nodes.

#include "cluster/hash_ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace spe::cluster {
namespace {

constexpr std::uint64_t kKeys = 20'000;

HashRing make_ring(unsigned nodes, unsigned weight = 1) {
  HashRing ring;
  for (unsigned i = 0; i < nodes; ++i)
    ring.add_node("node" + std::to_string(i), weight);
  return ring;
}

std::map<std::string, std::uint64_t> shares(const HashRing& ring) {
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t addr = 0; addr < kKeys; ++addr) ++counts[ring.owner(addr)];
  return counts;
}

TEST(HashRing, DeterministicAcrossBuilds) {
  const HashRing a = make_ring(5);
  // Insert in a different order — ownership must not depend on it.
  HashRing b;
  for (int i = 4; i >= 0; --i) b.add_node("node" + std::to_string(i), 1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::uint64_t addr = 0; addr < 1000; ++addr)
    EXPECT_EQ(a.owner(addr), b.owner(addr)) << "addr " << addr;
}

TEST(HashRing, PointHashIsStable) {
  // Pin the vnode hash so a silent change to the mix (which would strand
  // every block on every deployed cluster) fails loudly.
  EXPECT_EQ(HashRing::point_hash("node0", 0), HashRing::point_hash("node0", 0));
  EXPECT_NE(HashRing::point_hash("node0", 0), HashRing::point_hash("node0", 1));
  EXPECT_NE(HashRing::point_hash("node0", 0), HashRing::point_hash("node1", 0));
}

TEST(HashRing, BalanceWithinEpsilon) {
  for (const unsigned n : {2u, 3u, 5u, 8u}) {
    const auto counts = shares(make_ring(n));
    ASSERT_EQ(counts.size(), n);
    const double fair = static_cast<double>(kKeys) / n;
    for (const auto& [name, count] : counts) {
      // 1/N + epsilon with epsilon = 35% of fair share — loose enough for
      // 64 vnodes/node, tight enough to catch a broken point distribution.
      EXPECT_LT(static_cast<double>(count), fair * 1.35)
          << name << " owns " << count << "/" << kKeys << " with n=" << n;
      EXPECT_GT(static_cast<double>(count), fair * 0.65)
          << name << " owns " << count << "/" << kKeys << " with n=" << n;
    }
  }
}

TEST(HashRing, WeightScalesShare) {
  HashRing ring;
  ring.add_node("small", 1);
  ring.add_node("big", 3);
  const auto counts = shares(ring);
  // big should own roughly 3x what small does.
  EXPECT_GT(counts.at("big"), counts.at("small") * 2);
}

TEST(HashRing, ZeroWeightNodeOwnsNothing) {
  HashRing ring = make_ring(3);
  ring.add_node("drain", 0);
  EXPECT_TRUE(ring.contains("drain"));
  const auto counts = shares(ring);
  EXPECT_FALSE(counts.contains("drain"));
}

TEST(HashRing, MinimalDisruptionOnJoin) {
  const HashRing before = make_ring(4);
  HashRing after = make_ring(4);
  after.add_node("node4", 1);
  std::uint64_t moved = 0;
  for (std::uint64_t addr = 0; addr < kKeys; ++addr) {
    const std::string& src = before.owner(addr);
    const std::string& dst = after.owner(addr);
    if (src != dst) {
      ++moved;
      // Every moved key must land on the NEW node — a key hopping between
      // two surviving nodes would be gratuitous data movement.
      EXPECT_EQ(dst, "node4") << "addr " << addr << " moved " << src << " -> " << dst;
    }
  }
  // ~1/5 of the keys move; allow a wide band around it.
  EXPECT_GT(moved, kKeys / 5 / 2);
  EXPECT_LT(moved, kKeys / 5 * 2);
}

TEST(HashRing, MinimalDisruptionOnLeave) {
  const HashRing before = make_ring(5);
  HashRing after = make_ring(5);
  after.remove_node("node2");
  std::uint64_t moved = 0;
  for (std::uint64_t addr = 0; addr < kKeys; ++addr) {
    const std::string& src = before.owner(addr);
    if (src != after.owner(addr)) {
      ++moved;
      // Only the removed node's keys may move.
      EXPECT_EQ(src, "node2") << "addr " << addr;
    }
  }
  EXPECT_GT(moved, kKeys / 5 / 2);
  EXPECT_LT(moved, kKeys / 5 * 2);
}

TEST(HashRing, DuplicateAddReplacesWeight) {
  HashRing ring = make_ring(3);
  const std::size_t points = ring.point_count();
  ring.add_node("node1", 1);  // same weight: no growth
  EXPECT_EQ(ring.point_count(), points);
  ring.add_node("node1", 2);
  EXPECT_GT(ring.point_count(), points);
  EXPECT_EQ(ring.node_count(), 3u);
}

TEST(HashRing, EmptyRingThrows) {
  HashRing ring;
  EXPECT_THROW((void)ring.owner(0), std::logic_error);
  ring.add_node("drain", 0);  // member with no arcs is still unroutable
  EXPECT_THROW((void)ring.owner(0), std::logic_error);
}

}  // namespace
}  // namespace spe::cluster
