#include "ilp/solver.hpp"

#include <gtest/gtest.h>

namespace spe::ilp {
namespace {

TEST(Model, BuildersValidate) {
  Model m;
  const unsigned x = m.add_var(1.0, "x");
  EXPECT_EQ(x, 0u);
  EXPECT_THROW(m.add_le({{5, 1.0}}, 1.0), std::out_of_range);
  EXPECT_THROW(m.add_range({{x, 1.0}}, 2.0, 1.0), std::invalid_argument);
}

TEST(Model, FeasibilityAndObjective) {
  Model m;
  const unsigned x = m.add_var(2.0);
  const unsigned y = m.add_var(3.0);
  m.add_le({{x, 1.0}, {y, 1.0}}, 1.0);
  EXPECT_TRUE(m.is_feasible({1, 0}));
  EXPECT_FALSE(m.is_feasible({1, 1}));
  EXPECT_DOUBLE_EQ(m.objective_value({1, 1}), 5.0);
  EXPECT_THROW((void)m.is_feasible({1}), std::invalid_argument);
}

TEST(Solver, EmptyModelIsTriviallyOptimal) {
  Model m;
  Solver solver;
  const auto sol = solver.solve(m);
  EXPECT_EQ(sol.status, Solution::Status::Optimal);
}

TEST(Solver, SimpleKnapsackMaximise) {
  // max 5x + 4y + 3z  s.t.  2x + 3y + z <= 4  -> x=1, z=1, obj 8... but
  // 2+1 = 3 <= 4, adding y exceeds. Optimal = x + z = 8.
  Model m;
  m.sense = Sense::Maximize;
  const unsigned x = m.add_var(5.0), y = m.add_var(4.0), z = m.add_var(3.0);
  m.add_le({{x, 2.0}, {y, 3.0}, {z, 1.0}}, 4.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_EQ(sol.status, Solution::Status::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, 8.0);
  EXPECT_EQ(sol.values[x], 1);
  EXPECT_EQ(sol.values[y], 0);
  EXPECT_EQ(sol.values[z], 1);
}

TEST(Solver, MinimisationWithCover) {
  // min x + y + z  s.t. x + y >= 1, y + z >= 1, x + z >= 1 -> 2 vars.
  Model m;
  const unsigned x = m.add_var(1.0), y = m.add_var(1.0), z = m.add_var(1.0);
  m.add_ge({{x, 1.0}, {y, 1.0}}, 1.0);
  m.add_ge({{y, 1.0}, {z, 1.0}}, 1.0);
  m.add_ge({{x, 1.0}, {z, 1.0}}, 1.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_EQ(sol.status, Solution::Status::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, 2.0);
}

TEST(Solver, DetectsInfeasibility) {
  Model m;
  const unsigned x = m.add_var(1.0);
  m.add_ge({{x, 1.0}}, 2.0);  // x in {0,1} can never reach 2
  Solver solver;
  EXPECT_EQ(solver.solve(m).status, Solution::Status::Infeasible);
}

TEST(Solver, EqualityConstraints) {
  Model m;
  m.sense = Sense::Maximize;
  std::vector<Term> all;
  for (int i = 0; i < 6; ++i) all.push_back({m.add_var(static_cast<double>(i)), 1.0});
  m.add_eq(all, 3.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_EQ(sol.status, Solution::Status::Optimal);
  // Best three coefficients: 5 + 4 + 3.
  EXPECT_DOUBLE_EQ(sol.objective, 12.0);
}

TEST(Solver, NegativeCoefficients) {
  // min -2x + y  s.t.  x - y <= 0  (x implies y).
  Model m;
  const unsigned x = m.add_var(-2.0), y = m.add_var(1.0);
  m.add_le({{x, 1.0}, {y, -1.0}}, 0.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_EQ(sol.status, Solution::Status::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, -1.0);  // x=1, y=1
}

TEST(Solver, TwoSidedRangeConstraint) {
  // Exactly two of four variables.
  Model m;
  m.sense = Sense::Maximize;
  std::vector<Term> all;
  for (int i = 0; i < 4; ++i) all.push_back({m.add_var(1.0), 1.0});
  m.add_range(all, 2.0, 2.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_EQ(sol.status, Solution::Status::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, 2.0);
}

TEST(Solver, NodeLimitReturnsBestEffort) {
  // A model big enough that one node cannot finish; with a greedy start the
  // solver must still return something sensible.
  Model m;
  m.sense = Sense::Maximize;
  std::vector<Term> all;
  for (int i = 0; i < 30; ++i) all.push_back({m.add_var(1.0), 1.0});
  m.add_le(all, 15.0);
  SolverOptions opt;
  opt.node_limit = 1;
  Solver solver(opt);
  const auto sol = solver.solve(m);
  EXPECT_TRUE(sol.status == Solution::Status::Feasible ||
              sol.status == Solution::Status::NoSolution ||
              sol.status == Solution::Status::Optimal);
  if (sol.has_solution()) EXPECT_TRUE(m.is_feasible(sol.values));
}

TEST(Solver, SolutionSatisfiesModel) {
  // Randomised-ish structured model; whatever comes out must be feasible.
  Model m;
  m.sense = Sense::Minimize;
  std::vector<unsigned> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(m.add_var(1.0 + i % 3));
  for (int i = 0; i + 3 < 12; i += 2)
    m.add_ge({{vars[i], 1.0}, {vars[i + 1], 1.0}, {vars[i + 3], 1.0}}, 1.0);
  Solver solver;
  const auto sol = solver.solve(m);
  ASSERT_TRUE(sol.has_solution());
  EXPECT_TRUE(m.is_feasible(sol.values));
}

}  // namespace
}  // namespace spe::ilp
