// Client-side resilience primitives (src/net/resilience) plus the server's
// deadline-aware load shedding: deterministic jittered backoff, the
// circuit-breaker state machine, and BUSY shedding when a v3 frame's
// declared deadline is already smaller than the shard's expected queue
// wait. Carries both the "net" and "chaos" ctest labels.

#include "net/client.hpp"
#include "net/resilience.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace spe::net {
namespace {

using namespace std::chrono_literals;

// --- retry_backoff ----------------------------------------------------------

TEST(Resilience, BackoffWithoutJitterDoublesExactlyAndCaps) {
  RetryConfig cfg;
  cfg.backoff_base = 2ms;
  cfg.backoff_max = 50ms;
  cfg.jitter = 0.0;
  EXPECT_EQ(retry_backoff(cfg, 1, 0), 2ms);
  EXPECT_EQ(retry_backoff(cfg, 1, 1), 4ms);
  EXPECT_EQ(retry_backoff(cfg, 1, 2), 8ms);
  EXPECT_EQ(retry_backoff(cfg, 1, 3), 16ms);
  EXPECT_EQ(retry_backoff(cfg, 1, 4), 32ms);
  EXPECT_EQ(retry_backoff(cfg, 1, 5), 50ms) << "capped at backoff_max";
  EXPECT_EQ(retry_backoff(cfg, 1, 60), 50ms) << "no overflow at high attempts";
}

TEST(Resilience, BackoffIsDeterministicAndJitterStaysInBounds) {
  RetryConfig cfg;  // default jitter 0.5
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    for (const std::uint64_t stream : {1ull, 2ull, 99ull}) {
      const auto a = retry_backoff(cfg, stream, attempt);
      EXPECT_EQ(a, retry_backoff(cfg, stream, attempt)) << "must be pure";
      // Undiluted exponential value this attempt would produce.
      std::int64_t full = cfg.backoff_base.count();
      for (unsigned i = 0; i < attempt && full < cfg.backoff_max.count(); ++i)
        full *= 2;
      full = std::min<std::int64_t>(full, cfg.backoff_max.count());
      EXPECT_LE(a.count(), full);
      // Downward jitter removes at most `jitter` of the value (+1 truncation).
      EXPECT_GE(a.count(),
                static_cast<std::int64_t>(static_cast<double>(full) *
                                          (1.0 - cfg.jitter)) - 1);
    }
  }
  RetryConfig other = cfg;
  other.jitter_seed ^= 0xDEADull;
  unsigned diff = 0;
  for (unsigned attempt = 0; attempt < 12; ++attempt)
    if (retry_backoff(cfg, 7, attempt) != retry_backoff(other, 7, attempt)) ++diff;
  EXPECT_GT(diff, 0u) << "the jitter seed must matter";
}

TEST(Resilience, BackoffZeroBaseMeansNoPause) {
  RetryConfig cfg;
  cfg.backoff_base = 0ms;
  EXPECT_EQ(retry_backoff(cfg, 1, 5), 0ms);
}

// --- CircuitBreaker ---------------------------------------------------------

TEST(Resilience, BreakerTripsAfterConsecutiveFailuresOnly) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker breaker(cfg);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow());

  // A success in the middle resets the streak — no trip after 4 failures.
  breaker.on_failure();
  breaker.on_failure();
  breaker.on_success();
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.trips(), 0u);

  breaker.on_failure();  // third consecutive
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow()) << "open breaker fails fast";
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Resilience, BreakerHalfOpenProbeSuccessCloses) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_timeout = 20ms;
  cfg.half_open_probes = 1;
  CircuitBreaker breaker(cfg);
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());

  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(breaker.allow()) << "open_timeout elapsed: admit one probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_FALSE(breaker.allow()) << "only half_open_probes concurrent probes";

  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Resilience, BreakerHalfOpenProbeFailureReopens) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_timeout = 20ms;
  CircuitBreaker breaker(cfg);
  breaker.on_failure();
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(breaker.allow());  // the probe
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow()) << "the open timer restarted";
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(Resilience, BreakerStateToStringCoversEveryEnumerator) {
  for (const CircuitBreaker::State state :
       {CircuitBreaker::State::Closed, CircuitBreaker::State::Open,
        CircuitBreaker::State::HalfOpen}) {
    const std::string name = to_string(state);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find('?'), std::string::npos) << name;
    EXPECT_EQ(name.find("unknown"), std::string::npos) << name;
  }
}

// --- typed error taxonomy ---------------------------------------------------

TEST(Resilience, TypedErrorsAreRuntimeErrors) {
  // The campaign's catch ladder relies on each being its own type AND a
  // std::runtime_error (so "untyped" detection can use a catch-all).
  EXPECT_THROW(throw AmbiguousResultError("w"), std::runtime_error);
  EXPECT_THROW(throw CircuitOpenError("w"), std::runtime_error);
  EXPECT_THROW(throw DeadlineExceededError("w"), std::runtime_error);
  try {
    throw AmbiguousResultError("write outcome unknown");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown"), std::string::npos);
  }
}

// --- server-side deadline load shedding ------------------------------------

TEST(Resilience, ServerShedsBusyWhenQueueWaitExceedsDeadline) {
  runtime::ServiceConfig service_cfg;
  service_cfg.shards = 2;
  service_cfg.worker_threads = 2;
  service_cfg.queue_capacity = 256;
  service_cfg.scavenger_enabled = false;
  runtime::MemoryService service(service_cfg);
  // Preset the EWMA so one queued request implies a ~1000 s expected wait —
  // any later frame declaring a millisecond deadline must be shed.
  for (unsigned s = 0; s < service.shard_count(); ++s)
    service.shard(s).counters().note_execute_ns(1'000'000'000'000ull);
  Server server(service, {});
  const std::uint16_t port = server.start();

  // Raw socket: pipeline a burst of v3 WRITE frames with 1 ms deadlines in
  // one send() so they dispatch back-to-back while the shard queue is
  // non-empty.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  const unsigned kBurst = 64;
  std::vector<std::uint8_t> block(service.block_bytes(), 0x3D);
  std::vector<std::uint8_t> bytes;
  for (unsigned i = 0; i < kBurst; ++i) {
    Frame frame = make_write_request(i + 1, i % 4, block);
    frame.deadline_ms = 1;
    append_frame(bytes, frame);
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }

  FrameDecoder decoder;
  unsigned received = 0, busy = 0;
  Frame reply;
  while (received < kBurst) {
    std::uint8_t buf[8192];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "connection died before all responses arrived";
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (decoder.next(reply) == DecodeStatus::Ok) {
      ++received;
      // Every outcome must be one of the three deadline-era statuses; a
      // shed must carry a usable retry-after hint.
      ASSERT_TRUE(reply.status == Status::Ok || reply.status == Status::Busy ||
                  reply.status == Status::Timeout)
          << to_string(reply.status);
      if (reply.status == Status::Busy) {
        ++busy;
        std::uint64_t retry_after = 0;
        WireErrorCode err{};
        ASSERT_TRUE(parse_busy_response(reply, retry_after, err));
        EXPECT_GT(retry_after, 0u);
      }
    }
  }
  ::close(fd);
  EXPECT_GE(busy, 1u) << "a poisoned EWMA plus 1 ms deadlines must shed";
  EXPECT_GE(server.counters().busy_shed, busy);

  // Shedding never blocks undeadlined work: a plain client still writes.
  Client client({.port = port});
  client.connect();
  client.write_block(0, block);
  EXPECT_EQ(client.read_block(0), block);
  server.stop();
  service.stop();
}

// A v3 frame with a generous deadline sails through untouched.
TEST(Resilience, GenerousDeadlineIsNotShed) {
  runtime::ServiceConfig service_cfg;
  service_cfg.shards = 2;
  service_cfg.worker_threads = 2;
  service_cfg.queue_capacity = 64;
  service_cfg.scavenger_enabled = false;
  runtime::MemoryService service(service_cfg);
  Server server(service, {});
  const std::uint16_t port = server.start();
  Client client({.port = port});
  client.connect();

  std::vector<std::uint8_t> block(service.block_bytes(), 0x77);
  Frame write = make_write_request(0, 2, block);
  write.deadline_ms = 60'000;
  Frame reply = client.call(write);
  EXPECT_EQ(reply.status, Status::Ok);

  Frame read = make_read_request(0, 2);
  read.deadline_ms = 60'000;
  reply = client.call(read);
  ASSERT_EQ(reply.status, Status::Ok);
  EXPECT_EQ(reply.payload, block);
  EXPECT_EQ(server.counters().busy_shed, 0u);
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace spe::net
