#include "wear/endurance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spe::wear {

EnduranceModel::EnduranceModel(std::size_t lines, EnduranceParams params)
    : params_(params), wear_(lines, 0.0) {
  if (lines == 0) throw std::invalid_argument("EnduranceModel: zero lines");
}

void EnduranceModel::record_write(std::size_t line) {
  wear_.at(line) += 1.0;
  total_ += 1.0;
}

void EnduranceModel::record_spe_encryption(std::size_t line, unsigned pulses) {
  const double units = params_.spe_pulse_wear * pulses;
  wear_.at(line) += units;
  total_ += units;
}

double EnduranceModel::wear(std::size_t line) const { return wear_.at(line); }

double EnduranceModel::max_wear() const {
  return *std::max_element(wear_.begin(), wear_.end());
}

bool EnduranceModel::any_failed() const { return max_wear() >= params_.write_limit; }

std::size_t EnduranceModel::failed_lines() const {
  std::size_t n = 0;
  for (double w : wear_) n += w >= params_.write_limit ? 1 : 0;
  return n;
}

double EnduranceModel::lifetime_fraction() const {
  const double peak = max_wear();
  if (peak <= 0.0) return 1.0;
  // Actual failure time scales total writes by limit/peak; ideal spreads
  // the same total evenly.
  const double at_failure = total_ * (params_.write_limit / peak);
  const double ideal = static_cast<double>(wear_.size()) * params_.write_limit;
  return std::min(1.0, at_failure / ideal);
}

BruteForceWearReport brute_force_wear(const EnduranceParams& params,
                                      unsigned pulses_per_trial, double ns_per_pulse,
                                      double log10_keyspace) {
  BruteForceWearReport r{};
  const double wear_per_trial = params.spe_pulse_wear * pulses_per_trial;
  r.trials_until_failure = params.write_limit / wear_per_trial;
  r.log10_keyspace_fraction_searched =
      std::log10(r.trials_until_failure) - log10_keyspace;
  r.seconds_until_failure =
      r.trials_until_failure * pulses_per_trial * ns_per_pulse * 1e-9;
  return r;
}

}  // namespace spe::wear
