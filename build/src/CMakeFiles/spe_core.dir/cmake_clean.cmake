file(REMOVE_RECURSE
  "CMakeFiles/spe_core.dir/core/area_model.cpp.o"
  "CMakeFiles/spe_core.dir/core/area_model.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/attacks.cpp.o"
  "CMakeFiles/spe_core.dir/core/attacks.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/calibration.cpp.o"
  "CMakeFiles/spe_core.dir/core/calibration.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/datasets.cpp.o"
  "CMakeFiles/spe_core.dir/core/datasets.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/fingerprint.cpp.o"
  "CMakeFiles/spe_core.dir/core/fingerprint.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/key.cpp.o"
  "CMakeFiles/spe_core.dir/core/key.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/key_schedule.cpp.o"
  "CMakeFiles/spe_core.dir/core/key_schedule.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/lut.cpp.o"
  "CMakeFiles/spe_core.dir/core/lut.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/snvmm.cpp.o"
  "CMakeFiles/spe_core.dir/core/snvmm.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/snvmm_io.cpp.o"
  "CMakeFiles/spe_core.dir/core/snvmm_io.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/spe_cipher.cpp.o"
  "CMakeFiles/spe_core.dir/core/spe_cipher.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/specu.cpp.o"
  "CMakeFiles/spe_core.dir/core/specu.cpp.o.d"
  "CMakeFiles/spe_core.dir/core/tpm.cpp.o"
  "CMakeFiles/spe_core.dir/core/tpm.cpp.o.d"
  "libspe_core.a"
  "libspe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
