file(REMOVE_RECURSE
  "CMakeFiles/test_nist.dir/nist/excursions_test.cpp.o"
  "CMakeFiles/test_nist.dir/nist/excursions_test.cpp.o.d"
  "CMakeFiles/test_nist.dir/nist/known_answer_test.cpp.o"
  "CMakeFiles/test_nist.dir/nist/known_answer_test.cpp.o.d"
  "CMakeFiles/test_nist.dir/nist/suite_test.cpp.o"
  "CMakeFiles/test_nist.dir/nist/suite_test.cpp.o.d"
  "test_nist"
  "test_nist.pdb"
  "test_nist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
