#pragma once
// Tenant registry (DESIGN.md §15): the control-plane source of truth for
// multi-tenant serving. Maps tenant id → TPM-sealed 88-bit key domain,
// address-range ownership, quota/QoS class, and the per-tenant counters the
// metrics exporter labels. The registry is immutable in *membership* after
// construction (tenants are provisioned before the service powers on);
// per-tenant mutable state — key epoch, resident-block count, inflight
// admission — is atomic, so the hot path never takes a lock here.
//
// Tenant 0 is the implicit default/admin domain: it owns every address no
// other tenant claims, is served to v1–v3 wire clients byte-for-byte
// (single-tenant deployments never notice this layer exists), and is
// allowed to drive admin ops (key rotation) for any tenant.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/key.hpp"
#include "tenant/token.hpp"

namespace spe::tenant {

using TenantId = std::uint32_t;

/// The implicit default/admin key domain (v1–v3 clients, unclaimed ranges).
inline constexpr TenantId kDefaultTenant = 0;

enum class QosClass : std::uint8_t { BestEffort = 0, Standard = 1, Premium = 2 };

/// Half-open block-address range [begin, end).
struct AddrRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept {
    return addr >= begin && addr < end;
  }
};

struct TenantSpec {
  TenantId id = 0;                 ///< must be nonzero (0 is the default domain)
  std::string name;                ///< metrics label; defaults to the id
  std::vector<AddrRange> ranges;   ///< owned block addresses (disjoint across tenants)
  std::uint64_t token_secret = 0;  ///< shared secret for wire-token MACs
  std::uint64_t key_seed = 0;      ///< per-tenant key-derivation seed
  std::uint64_t block_quota = 0;   ///< max resident blocks; 0 = unlimited
  std::uint32_t max_inflight = 0;  ///< max concurrent requests; 0 = unlimited
  QosClass qos = QosClass::Standard;
};

/// Per-tenant counters, exported as labeled metrics. All relaxed atomics:
/// they are statistics, not synchronization.
struct TenantCounters {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> denied{0};            ///< cross-tenant / unauthorized ops
  std::atomic<std::uint64_t> auth_failures{0};     ///< bad or missing tokens
  std::atomic<std::uint64_t> quota_rejections{0};  ///< writes refused over quota
  std::atomic<std::uint64_t> admission_rejections{0};
  std::atomic<std::uint64_t> rotations{0};         ///< completed key rotations
  std::atomic<std::uint64_t> resident_blocks{0};   ///< quota accounting
  std::atomic<std::uint64_t> inflight{0};
};

class TenantRegistry {
public:
  /// Validates and indexes the specs. Throws std::invalid_argument on a
  /// zero/duplicate tenant id, an empty/inverted range, or ranges that
  /// overlap across tenants.
  explicit TenantRegistry(std::vector<TenantSpec> specs);

  // --- membership / ownership (immutable, lock-free) ----------------------

  [[nodiscard]] bool known(TenantId id) const noexcept {
    return id == kDefaultTenant || tenants_.contains(id);
  }
  /// Spec for a registered non-default tenant; nullptr otherwise.
  [[nodiscard]] const TenantSpec* spec(TenantId id) const;
  /// Registered non-default tenant ids, ascending.
  [[nodiscard]] std::vector<TenantId> ids() const;

  /// Which tenant owns `addr` (kDefaultTenant when unclaimed).
  [[nodiscard]] TenantId owner_of(std::uint64_t addr) const;

  // --- wire authentication ------------------------------------------------

  /// Verifies a v4 tenant token (constant-time). The default tenant needs
  /// no token; unknown tenants and MAC mismatches fail and are counted.
  [[nodiscard]] bool authenticate(TenantId id, std::uint64_t token,
                                  std::uint64_t request_id,
                                  std::uint8_t opcode) const;

  // --- key domain ---------------------------------------------------------

  /// Current key epoch for `id` (0 for a never-rotated tenant or default).
  [[nodiscard]] std::uint32_t key_epoch(TenantId id) const;
  /// Bumps the epoch (a rotation has been scheduled) and returns the new
  /// value. Throws on the default tenant — its key is the device key and
  /// rotates with re-provisioning, not through this path.
  std::uint32_t advance_epoch(TenantId id);
  /// Restore-path epoch sync: raises the stored epoch to at least `epoch`.
  /// Shard checkpoints carry the authoritative per-domain epochs; the max
  /// across shards is the registry's epoch after a crash mid-rotation.
  void restore_epoch(TenantId id, std::uint32_t epoch);

  /// Deterministic per-(tenant, epoch) 88-bit key. Distinct tenants and
  /// distinct epochs yield independent keys (seeded Xoshiro over a mix64
  /// domain separation of seed/tenant/epoch).
  [[nodiscard]] core::SpeKey derive_key(TenantId id, std::uint32_t epoch) const;

  /// Synthetic TPM sealing handle for (device, tenant, epoch). Collision
  /// with real device ids (small integers) is ruled out by the high bit.
  [[nodiscard]] static std::uint64_t key_handle(std::uint64_t device_id,
                                               TenantId id,
                                               std::uint32_t epoch) noexcept;

  // --- quota / admission (atomic) -----------------------------------------

  /// Charges one resident block against the tenant's quota. False (and
  /// counted) when the quota is exhausted. Default tenant: unlimited.
  bool try_charge_block(TenantId id);
  void release_block(TenantId id);
  /// Recovery/restore recount: overwrite the resident-block figure.
  void set_resident_blocks(TenantId id, std::uint64_t count);

  /// Per-tenant concurrent-request admission. False (and counted) when the
  /// tenant's inflight cap is reached.
  bool try_acquire_inflight(TenantId id);
  void release_inflight(TenantId id);

  /// Counters for any known tenant (including the default domain).
  [[nodiscard]] TenantCounters& counters(TenantId id) const;

private:
  struct State {
    TenantSpec spec;
    std::atomic<std::uint32_t> epoch{0};
    mutable TenantCounters counters;
  };
  [[nodiscard]] const State* state(TenantId id) const;

  std::map<TenantId, State> tenants_;
  mutable TenantCounters default_counters_;
  /// range begin → (range end, owner); non-overlapping, for owner_of.
  std::map<std::uint64_t, std::pair<std::uint64_t, TenantId>> ranges_;
};

}  // namespace spe::tenant
