#include "core/snvmm.hpp"

#include <gtest/gtest.h>

#include "device/mlc.hpp"

namespace spe::core {
namespace {

TEST(Snvmm, DefaultConfigIsPaperShape) {
  Snvmm nvmm;
  EXPECT_EQ(nvmm.block_bytes(), 64u);                 // cache-block granularity
  EXPECT_EQ(nvmm.config().units_per_block, 4u);       // four 8x8 crossbars
  EXPECT_EQ(nvmm.config().base_params.cell_count(), 64u);
  EXPECT_EQ(nvmm.block_count(), 0u);
}

TEST(Snvmm, DeviceVariationProducesDistinctChips) {
  SnvmmConfig a, b;
  a.device_seed = 1;
  b.device_seed = 2;
  Snvmm chip_a(a), chip_b(b);
  EXPECT_NE(chip_a.fingerprint(), chip_b.fingerprint());
  EXPECT_NE(chip_a.device_params().team.r_on, chip_b.device_params().team.r_on);
  // Same seed -> same chip.
  Snvmm chip_a2(a);
  EXPECT_EQ(chip_a.fingerprint(), chip_a2.fingerprint());
}

TEST(Snvmm, BlockAllocationIsLazyAndZeroed) {
  Snvmm nvmm;
  EXPECT_FALSE(nvmm.has_block(0x40));
  EXPECT_EQ(nvmm.find_block(0x40), nullptr);
  auto& block = nvmm.block(0x40);
  EXPECT_TRUE(nvmm.has_block(0x40));
  EXPECT_EQ(block.levels.size(), 4u * 64u);
  for (auto level : block.levels) EXPECT_EQ(level, 0);
  EXPECT_FALSE(block.encrypted);
  EXPECT_EQ(nvmm.block_count(), 1u);
}

TEST(Snvmm, ProbeOfUnwrittenBlockIsErasedPattern) {
  Snvmm nvmm;
  const auto probe = nvmm.probe_block(0x1234);
  EXPECT_EQ(probe.size(), 64u);
  // Level 0 = lowest resistance = logic "11" per the paper's polarity; but
  // probe of a never-allocated block returns the all-zero erased image.
  for (auto b : probe) EXPECT_EQ(b, 0);
  EXPECT_EQ(nvmm.block_count(), 0u);  // probing must not allocate
}

TEST(Snvmm, ProbeQuantisesLevelsToLogicBits) {
  Snvmm nvmm;
  auto& block = nvmm.block(0);
  // First four cells: one level in each band -> logic 11,10,01,00.
  block.levels[0] = device::MlcCodec::level_for_symbol(0);
  block.levels[1] = device::MlcCodec::level_for_symbol(1);
  block.levels[2] = device::MlcCodec::level_for_symbol(2);
  block.levels[3] = device::MlcCodec::level_for_symbol(3);
  const auto probe = nvmm.probe_block(0);
  EXPECT_EQ(probe[0], 0b11100100);  // 11 10 01 00 packed MSB-first
}

TEST(Snvmm, ProbeIgnoresSubBandDetail) {
  // Levels within the same band probe identically: the attacker's 2-bit
  // read-out cannot see the analog detail the cipher tracks.
  Snvmm nvmm;
  auto& block = nvmm.block(0);
  block.levels[0] = 16;  // band 1, bottom
  const auto a = nvmm.probe_block(0);
  block.levels[0] = 31;  // band 1, top
  const auto b = nvmm.probe_block(0);
  EXPECT_EQ(a, b);
}

TEST(Snvmm, BlocksAreIndependent) {
  Snvmm nvmm;
  nvmm.block(0).levels[0] = 63;
  nvmm.block(64).levels[0] = 1;
  EXPECT_EQ(nvmm.block(0).levels[0], 63);
  EXPECT_EQ(nvmm.block(64).levels[0], 1);
  EXPECT_EQ(nvmm.block_count(), 2u);
}

}  // namespace
}  // namespace spe::core
