#pragma once
// Pseudo-random number generators.
//
// - SplitMix64: seeding / hashing helper.
// - Xoshiro256ss: general-purpose simulation RNG (workload generators,
//   Monte-Carlo sweeps). Not used inside the cipher.
// - CoupledLcg: the paper's key-stream PRNG (ref [14], Katti & Kavasseri,
//   "Secure pseudo-random bit sequence generation using coupled linear
//   congruential generators"): two LCGs whose states perturb each other each
//   step. The SPECU seeds one instance with the 44-bit address seed and one
//   with the 44-bit voltage seed (Section 5.4 of the paper).

#include <cstdint>
#include <limits>

namespace spe::util {

/// Avalanching 64-bit mix (Stafford variant 13); also usable as a tiny PRNG.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// One-shot mix of a value (stateless convenience for hashing).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256ss {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Coupled linear congruential generator after the paper's ref [14]. Two
/// 44-bit LCGs advance in lock-step and each feeds a shifted copy of its
/// state into the other's increment, which breaks the lattice structure of a
/// single LCG. Output takes the high-quality middle bits of the XOR of both
/// states. The modulus is 2^44 to match the paper's 44-bit seeds.
class CoupledLcg {
public:
  static constexpr unsigned kStateBits = 44;
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << kStateBits) - 1;

  explicit CoupledLcg(std::uint64_t seed44) noexcept;

  /// Advances both LCGs once and returns `bits` (<= 32) pseudo-random bits.
  std::uint32_t next_bits(unsigned bits) noexcept;

  /// Uniform integer in [0, bound) by rejection sampling; bound <= 2^32.
  std::uint32_t below(std::uint32_t bound) noexcept;

  /// Raw 44-bit combined state step (exposed for randomness tests).
  std::uint64_t next_raw() noexcept;

private:
  std::uint64_t x_;
  std::uint64_t y_;
};

}  // namespace spe::util
