// MigrationJournal crash-safety (src/cluster/migration): state-machine
// semantics of the six record types, torn-tail truncation at EVERY byte
// boundary of a real journal file, and a kill-point campaign that snapshots
// the file after each fsync'd append (the BankShard::set_crash_hook
// pattern) and asserts each snapshot recovers to a fully-source or
// fully-destination classification — never a torn one.

#include "cluster/migration.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace spe::cluster {
namespace {

NodeInfo node(const std::string& name, std::uint16_t port) {
  return NodeInfo{name, "127.0.0.1", port, 1};
}

std::string temp_path(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "spe_mjournal_" + tag + ".bin";
  std::remove(path.c_str());
  return path;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(MigrationJournal, InMemoryStateMachine) {
  MigrationJournal journal("");
  (void)journal.load();
  const NodeInfo dest = node("d", 2);
  const std::uint64_t addrs[] = {10, 11, 12};
  journal.out_freeze(addrs, dest, 5);
  EXPECT_EQ(journal.state().outgoing.size(), 3u);
  EXPECT_EQ(journal.state().outgoing.at(10).peer, dest);
  EXPECT_EQ(journal.state().outgoing.at(10).epoch, 5u);

  const std::uint64_t some[] = {11};
  journal.out_unfreeze(some);
  EXPECT_EQ(journal.state().outgoing.size(), 2u);
  EXPECT_FALSE(journal.state().outgoing.contains(11));

  journal.in_begin(77, node("s", 1), 5);
  EXPECT_TRUE(journal.state().incoming_inflight.contains(77));
  journal.in_copied(77);
  EXPECT_TRUE(journal.state().incoming_inflight.contains(77));  // still volatile
  const std::uint64_t commit[] = {77};
  journal.in_commit(commit);
  EXPECT_TRUE(journal.state().incoming_committed.contains(77));
  EXPECT_TRUE(journal.state().incoming_inflight.empty());
}

TEST(MigrationJournal, MalformedTransitionThrows) {
  MigrationJournal journal("");
  (void)journal.load();
  // in_copied without in_begin is a protocol bug, not valid input.
  EXPECT_THROW(journal.in_copied(123), std::logic_error);
  const std::uint64_t commit[] = {123};
  EXPECT_THROW(journal.in_commit(commit), std::logic_error);
}

TEST(MigrationJournal, AdoptDropsOverlaysUpToEpoch) {
  MigrationJournal journal("");
  (void)journal.load();
  const std::uint64_t old_addrs[] = {1};
  const std::uint64_t new_addrs[] = {2};
  journal.out_freeze(old_addrs, node("d", 2), 5);
  journal.out_freeze(new_addrs, node("d", 2), 6);
  journal.in_begin(50, node("s", 1), 5);
  const std::uint64_t commit[] = {50};
  journal.in_commit(commit);

  ClusterTopology adopted{5, {node("a", 1), node("d", 2)}};
  journal.adopt(adopted);
  EXPECT_EQ(journal.state().adopted_epoch, 5u);
  // Epoch-5 overlays are absorbed by ring ownership; epoch-6 ones survive.
  EXPECT_FALSE(journal.state().outgoing.contains(1));
  EXPECT_TRUE(journal.state().outgoing.contains(2));
  EXPECT_FALSE(journal.state().incoming_committed.contains(50));
}

TEST(MigrationJournal, FileRoundTripAndReload) {
  const std::string path = temp_path("roundtrip");
  const NodeInfo dest = node("d", 2);
  {
    MigrationJournal journal(path);
    (void)journal.load();
    const std::uint64_t addrs[] = {100, 101};
    journal.out_freeze(addrs, dest, 9);
    journal.in_begin(200, node("s", 1), 9);
    journal.in_copied(200);
    const std::uint64_t commit[] = {200};
    journal.in_commit(commit);
  }
  MigrationJournal reloaded(path);
  const MigrationRecovery recovery = reloaded.load();
  EXPECT_EQ(recovery.records, 4u);
  EXPECT_EQ(recovery.truncated_bytes, 0u);
  EXPECT_EQ(recovery.forward, std::vector<std::uint64_t>{200});
  EXPECT_TRUE(recovery.rollback.empty());
  EXPECT_EQ(recovery.frozen, (std::vector<std::uint64_t>{100, 101}));
  EXPECT_EQ(reloaded.state().outgoing.at(100).peer, dest);
  std::remove(path.c_str());
}

TEST(MigrationJournal, TornTailTruncatedAtEveryByte) {
  // Build a journal with a few records, then replay every byte-length
  // prefix as if a kill had torn the last write there. Recovery must never
  // throw, never see a torn record, and always land on a record boundary.
  const std::string golden = temp_path("torn_golden");
  {
    MigrationJournal journal(golden);
    (void)journal.load();
    const std::uint64_t addrs[] = {1, 2, 3};
    journal.out_freeze(addrs, node("d", 2), 3);
    journal.in_begin(7, node("s", 1), 3);
    const std::uint64_t commit[] = {7};
    journal.in_commit(commit);
  }
  const std::vector<std::uint8_t> full = slurp(golden);
  ASSERT_GT(full.size(), 8u);

  const std::string victim = temp_path("torn_victim");
  std::size_t max_records = 0;
  for (std::size_t len = 0; len <= full.size(); ++len) {
    dump(victim, std::vector<std::uint8_t>(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(len)));
    MigrationJournal journal(victim);
    const MigrationRecovery recovery = journal.load();
    EXPECT_GE(recovery.records, max_records)
        << "prefix " << len << " lost a previously complete record";
    max_records = std::max(max_records, recovery.records);
    // The truncation must leave a loadable file: reload sees zero torn bytes.
    MigrationJournal again(victim);
    EXPECT_EQ(again.load().truncated_bytes, 0u) << "prefix " << len;
    // A commit only ever surfaces whole: addr 7 is forward iff the commit
    // record survived, otherwise it rolls back. Never both, never lost data
    // on the source side (freeze state is independent).
    EXPECT_LE(recovery.forward.size() + recovery.rollback.size(), 1u);
  }
  std::remove(golden.c_str());
  std::remove(victim.c_str());
}

TEST(MigrationJournal, GarbageTailIsDropped) {
  const std::string path = temp_path("garbage");
  {
    MigrationJournal journal(path);
    (void)journal.load();
    const std::uint64_t addrs[] = {42};
    journal.out_freeze(addrs, node("d", 2), 1);
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  const std::size_t valid = bytes.size();
  for (int i = 0; i < 32; ++i) bytes.push_back(static_cast<std::uint8_t>(i * 37));
  dump(path, bytes);

  MigrationJournal journal(path);
  const MigrationRecovery recovery = journal.load();
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_EQ(recovery.truncated_bytes, 32u);
  EXPECT_EQ(slurp(path).size(), valid);  // tail physically removed
  // The journal must be appendable after truncation.
  journal.in_begin(1, node("s", 1), 1);
  EXPECT_TRUE(journal.state().incoming_inflight.contains(1));
  std::remove(path.c_str());
}

// The kill-point campaign: run a full destination-side pull sequence with a
// kill hook snapshotting the journal file after every fsync'd append, then
// recover each snapshot and assert the never-torn invariant the cluster
// relies on: each block is fully source-owned (rollback / absent) or fully
// destination-owned (forward), and forward only after the commit record.
TEST(MigrationJournal, KillPointCampaignNeverTorn) {
  const std::string path = temp_path("killpoints");
  const std::string snap_path = temp_path("killpoint_snap");
  std::vector<std::vector<std::uint8_t>> snapshots;
  {
    MigrationJournal journal(path);
    (void)journal.load();
    journal.set_kill_hook([&] { snapshots.push_back(slurp(path)); });
    const std::vector<std::uint64_t> addrs = {10, 20, 30};
    for (const std::uint64_t addr : addrs) {
      journal.in_begin(addr, node("s", 1), 4);
      journal.in_copied(addr);
    }
    journal.in_commit(addrs);  // checkpoint would be written just before this
  }
  ASSERT_EQ(snapshots.size(), 7u);  // 3 x (begin + copied) + commit

  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    dump(snap_path, snapshots[i]);
    MigrationJournal journal(snap_path);
    const MigrationRecovery recovery = journal.load();
    std::set<std::uint64_t> forward(recovery.forward.begin(), recovery.forward.end());
    std::set<std::uint64_t> rollback(recovery.rollback.begin(), recovery.rollback.end());
    for (const std::uint64_t addr : {10u, 20u, 30u}) {
      EXPECT_FALSE(forward.contains(addr) && rollback.contains(addr))
          << "addr " << addr << " torn at kill point " << i;
    }
    if (i + 1 < snapshots.size()) {
      // Before the commit append completes nothing may be served here.
      EXPECT_TRUE(forward.empty()) << "kill point " << i;
    } else {
      EXPECT_EQ(forward, (std::set<std::uint64_t>{10, 20, 30}));
      EXPECT_TRUE(rollback.empty());
    }
    // Recovery discards in-flight state: a re-pull starts clean.
    EXPECT_TRUE(journal.state().incoming_inflight.empty());
  }
  std::remove(path.c_str());
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace spe::cluster
