#pragma once
// Small dense matrices over GF(2), packed one row per 64-bit word (matrix
// dimensions up to 64x64 — the NIST binary-matrix-rank test uses 32x32).

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace spe::util {

/// Row-packed GF(2) matrix; bit j of row word i is column j of row i.
class Gf2Matrix {
public:
  /// Zero matrix of the given shape. rows, cols must each be in [1, 64].
  Gf2Matrix(unsigned rows, unsigned cols);

  /// Builds a rows x cols matrix from the first rows*cols bits of `bits`
  /// starting at `offset`, row-major (the NIST convention).
  static Gf2Matrix from_bits(const BitVector& bits, std::size_t offset,
                             unsigned rows, unsigned cols);

  [[nodiscard]] unsigned rows() const noexcept { return rows_; }
  [[nodiscard]] unsigned cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(unsigned r, unsigned c) const;
  void set(unsigned r, unsigned c, bool v);

  /// Rank over GF(2) by forward elimination (does not modify *this).
  [[nodiscard]] unsigned rank() const;

private:
  unsigned rows_;
  unsigned cols_;
  std::vector<std::uint64_t> row_words_;
};

}  // namespace spe::util
