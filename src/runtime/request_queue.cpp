#include "runtime/request_queue.hpp"

#include <utility>

namespace spe::runtime {

RequestQueue::RequestQueue(unsigned shard_id, std::size_t capacity,
                           BackpressurePolicy policy, bool coalesce_writes,
                           ShardCounters& counters)
    : shard_id_(shard_id),
      capacity_(capacity ? capacity : 1),
      policy_(policy),
      coalesce_writes_(coalesce_writes),
      counters_(counters) {}

void RequestQueue::admit(std::unique_lock<std::mutex>& lock) {
  if (closed()) throw ServiceStoppedError(shard_id_);
  if (pending_.size() < capacity_) return;
  if (policy_ == BackpressurePolicy::Reject) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    throw QueueFullError(shard_id_, pending_.size());
  }
  not_full_.wait(lock, [this] { return closed() || pending_.size() < capacity_; });
  if (closed()) throw ServiceStoppedError(shard_id_);
}

std::future<std::vector<std::uint8_t>> RequestQueue::push_read(
    std::uint64_t block_addr, std::shared_ptr<OpSummary> summary) {
  std::unique_lock lock(mutex_);
  admit(lock);
  Request req;
  req.kind = Request::Kind::Read;
  req.block_addr = block_addr;
  req.summary = std::move(summary);
  req.enqueued = std::chrono::steady_clock::now();
  auto future = req.read_promise.get_future();
  // A pending write for this block must no longer coalesce: a later write
  // merging into it would jump over this read.
  open_writes_.erase(block_addr);
  pending_.push_back(std::move(req));
  depth_.store(pending_.size(), std::memory_order_release);
  counters_.note_queue_depth(pending_.size());
  return future;
}

std::future<void> RequestQueue::push_write(std::uint64_t block_addr,
                                           std::vector<std::uint8_t> data,
                                           std::shared_ptr<OpSummary> summary) {
  std::unique_lock lock(mutex_);
  if (coalesce_writes_ && !closed()) {
    // Coalescing needs no queue slot, so it also bypasses backpressure.
    if (const auto it = open_writes_.find(block_addr); it != open_writes_.end()) {
      Request& open = pending_[it->second];
      open.data = std::move(data);
      Request::WriteWaiter waiter;
      waiter.enqueued = std::chrono::steady_clock::now();
      waiter.summary = std::move(summary);
      auto future = waiter.promise.get_future();
      open.write_waiters.push_back(std::move(waiter));
      counters_.writes_coalesced.fetch_add(1, std::memory_order_relaxed);
      return future;
    }
  }
  admit(lock);
  Request req;
  req.kind = Request::Kind::Write;
  req.block_addr = block_addr;
  req.data = std::move(data);
  Request::WriteWaiter waiter;
  waiter.enqueued = std::chrono::steady_clock::now();
  waiter.summary = std::move(summary);
  auto future = waiter.promise.get_future();
  req.write_waiters.push_back(std::move(waiter));
  if (coalesce_writes_) open_writes_[block_addr] = pending_.size();
  pending_.push_back(std::move(req));
  depth_.store(pending_.size(), std::memory_order_release);
  counters_.note_queue_depth(pending_.size());
  return future;
}

std::vector<Request> RequestQueue::drain() {
  std::vector<Request> batch;
  {
    std::lock_guard lock(mutex_);
    batch.swap(pending_);
    open_writes_.clear();
    depth_.store(0, std::memory_order_release);
  }
  not_full_.notify_all();
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_.store(true, std::memory_order_release);
  }
  not_full_.notify_all();
}

}  // namespace spe::runtime
