// ServiceStats aggregation edge cases and the relaxed-consistency contract
// documented in service_stats.hpp: empty shard lists, saturating totals at
// uint64 max, queue high-water max-reduction, latency histogram bucket
// boundaries, and totals that never go backwards across successive
// snapshots taken while writers hammer the counters.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "runtime/latency_histogram.hpp"
#include "runtime/service_stats.hpp"

namespace spe::runtime {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(ServiceStats, AggregateOfEmptyShardListIsAllZero) {
  const ServiceStatsSnapshot snap = aggregate({});
  EXPECT_TRUE(snap.shards.empty());
  EXPECT_EQ(snap.total_ops(), 0u);
  EXPECT_EQ(snap.totals.reads_completed, 0u);
  EXPECT_EQ(snap.totals.faults_detected, 0u);
  EXPECT_EQ(snap.totals.slow_ops, 0u);
  EXPECT_EQ(snap.totals.queue_high_water, 0u);
  EXPECT_EQ(snap.totals.read_latency.count, 0u);
  // And the report still renders.
  EXPECT_NE(snap.to_string().find("service totals"), std::string::npos);
}

TEST(ServiceStats, AggregateSumsPerShardRowsAndKeepsThem) {
  ShardStatsSnapshot a;
  a.shard = 0;
  a.reads_completed = 10;
  a.writes_completed = 4;
  a.slow_ops = 2;
  ShardStatsSnapshot b;
  b.shard = 1;
  b.reads_completed = 5;
  b.writes_completed = 6;
  b.slow_ops = 1;
  const ServiceStatsSnapshot snap = aggregate({a, b});
  EXPECT_EQ(snap.totals.reads_completed, 15u);
  EXPECT_EQ(snap.totals.writes_completed, 10u);
  EXPECT_EQ(snap.totals.slow_ops, 3u);
  EXPECT_EQ(snap.total_ops(), 25u);
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_EQ(snap.shards[0].reads_completed, 10u);
  EXPECT_EQ(snap.shards[1].reads_completed, 5u);
}

TEST(ServiceStats, AggregateSaturatesAtUint64MaxInsteadOfWrapping) {
  ShardStatsSnapshot a;
  a.reads_completed = kMax - 5;
  a.faults_corrected = kMax;
  ShardStatsSnapshot b;
  b.reads_completed = 100;  // would wrap to 94
  b.faults_corrected = 1;   // would wrap to 0
  const ServiceStatsSnapshot snap = aggregate({a, b});
  EXPECT_EQ(snap.totals.reads_completed, kMax);
  EXPECT_EQ(snap.totals.faults_corrected, kMax);
  // Exact sums still exact below the clamp.
  ShardStatsSnapshot c;
  c.reads_completed = 7;
  EXPECT_EQ(aggregate({b, c}).totals.reads_completed, 107u);
}

TEST(ServiceStats, QueueHighWaterAggregatesByMaxNotSum) {
  ShardStatsSnapshot a;
  a.queue_high_water = 12;
  ShardStatsSnapshot b;
  b.queue_high_water = 40;
  ShardStatsSnapshot c;
  c.queue_high_water = 7;
  EXPECT_EQ(aggregate({a, b, c}).totals.queue_high_water, 40u);
}

TEST(ServiceStats, SnapshotCountersCopiesEveryField) {
  ShardCounters counters;
  counters.reads_completed.store(3);
  counters.writes_coalesced.store(5);
  counters.slow_ops.store(2);
  counters.note_queue_depth(9);
  counters.note_queue_depth(4);  // high water keeps the max
  counters.read_latency.record(std::chrono::nanoseconds(100));
  const ShardStatsSnapshot snap = snapshot_counters(7, counters);
  EXPECT_EQ(snap.shard, 7u);
  EXPECT_EQ(snap.reads_completed, 3u);
  EXPECT_EQ(snap.writes_coalesced, 5u);
  EXPECT_EQ(snap.slow_ops, 2u);
  EXPECT_EQ(snap.queue_high_water, 9u);
  EXPECT_EQ(snap.read_latency.count, 1u);
}

TEST(LatencyHistogramBounds, BucketBoundariesArePowersOfTwo) {
  // Bucket b covers [2^(b-1), 2^b): values on either side of each edge land
  // in adjacent buckets.
  EXPECT_EQ(LatencyHistogram::bucket_for(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_for(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_for(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_for(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_for(7), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_for(8), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_for((1ull << 32) - 1), 31u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1ull << 32), 32u);
  EXPECT_EQ(LatencyHistogram::bucket_for(kMax), 63u);
  EXPECT_EQ(LatencyHistogram::upper_edge_ns(0), 1u);
  EXPECT_EQ(LatencyHistogram::upper_edge_ns(3), 15u);
  EXPECT_EQ(LatencyHistogram::upper_edge_ns(63), kMax);
}

TEST(LatencyHistogramBounds, RecordsLandInTheirBucketAndNegativeClampsToZero) {
  LatencyHistogram h;
  h.record(std::chrono::nanoseconds(-50));  // clamped to 0 -> bucket 0
  h.record(std::chrono::nanoseconds(1));
  h.record(std::chrono::nanoseconds(2));
  h.record(std::chrono::nanoseconds(1023));
  h.record(std::chrono::nanoseconds(1024));
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.buckets[0], 2u);   // -50 (clamped) and 1
  EXPECT_EQ(s.buckets[1], 1u);   // 2
  EXPECT_EQ(s.buckets[9], 1u);   // 1023
  EXPECT_EQ(s.buckets[10], 1u);  // 1024
  EXPECT_EQ(s.sum_ns, 0u + 1 + 2 + 1023 + 1024);
  // Quantiles report the holding bucket's upper edge.
  EXPECT_EQ(s.quantile(0.0).count(), 1);
  EXPECT_EQ(s.quantile(1.0).count(), 2047);
}

TEST(ServiceStats, TotalsNeverGoBackwardsAcrossSnapshotsUnderLoad) {
  // The header's relaxed-consistency contract: concurrent snapshots are not
  // mutually consistent, but every aggregated total is monotonic.
  std::vector<std::unique_ptr<ShardCounters>> counters;
  for (int s = 0; s < 3; ++s) counters.push_back(std::make_unique<ShardCounters>());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (auto& c : counters)
    writers.emplace_back([&stop, &c] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->reads_completed.fetch_add(1, std::memory_order_relaxed);
        c->writes_completed.fetch_add(2, std::memory_order_relaxed);
        c->faults_detected.fetch_add(1, std::memory_order_relaxed);
        c->slow_ops.fetch_add(1, std::memory_order_relaxed);
        c->read_latency.record(std::chrono::nanoseconds(64));
      }
    });
  ServiceStatsSnapshot last;
  for (int i = 0; i < 2000; ++i) {
    std::vector<ShardStatsSnapshot> rows;
    for (unsigned s = 0; s < counters.size(); ++s)
      rows.push_back(snapshot_counters(s, *counters[s]));
    const ServiceStatsSnapshot snap = aggregate(std::move(rows));
    ASSERT_GE(snap.totals.reads_completed, last.totals.reads_completed);
    ASSERT_GE(snap.totals.writes_completed, last.totals.writes_completed);
    ASSERT_GE(snap.totals.faults_detected, last.totals.faults_detected);
    ASSERT_GE(snap.totals.slow_ops, last.totals.slow_ops);
    ASSERT_GE(snap.totals.read_latency.count, last.totals.read_latency.count);
    ASSERT_GE(snap.total_ops(), last.total_ops());
    last = snap;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(ServiceStats, ToStringReportsSlowOps) {
  ShardStatsSnapshot a;
  a.slow_ops = 4;
  const ServiceStatsSnapshot snap = aggregate({a});
  EXPECT_NE(snap.to_string().find("slow=4"), std::string::npos);
}

}  // namespace
}  // namespace spe::runtime
