#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::ecc {
namespace {

TEST(Secded, CleanWordDecodesClean) {
  util::Xoshiro256ss rng(1);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t data = rng();
    const auto r = decode({data, encode_check(data)});
    EXPECT_EQ(r.status, DecodeStatus::Clean);
    EXPECT_EQ(r.data, data);
  }
}

class SingleBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(SingleBit, EveryDataBitErrorIsCorrected) {
  util::Xoshiro256ss rng(GetParam() + 100);
  const std::uint64_t data = rng();
  Codeword word{data, encode_check(data)};
  word.data ^= std::uint64_t{1} << GetParam();
  const auto r = decode(word);
  EXPECT_EQ(r.status, DecodeStatus::CorrectedData);
  EXPECT_EQ(r.data, data);
  EXPECT_EQ(r.corrected_bit, static_cast<int>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBits, SingleBit,
                         ::testing::Values(0u, 1u, 7u, 8u, 15u, 23u, 31u, 32u, 40u,
                                           47u, 55u, 62u, 63u));

TEST(Secded, ExhaustiveSingleDataBitSweep) {
  const std::uint64_t data = 0xDEADBEEFCAFEF00Dull;
  const std::uint8_t check = encode_check(data);
  for (unsigned bit = 0; bit < 64; ++bit) {
    const auto r = decode({data ^ (std::uint64_t{1} << bit), check});
    ASSERT_EQ(r.status, DecodeStatus::CorrectedData) << "bit " << bit;
    ASSERT_EQ(r.data, data) << "bit " << bit;
  }
}

TEST(Secded, CheckBitErrorsAreRecognised) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  const std::uint8_t check = encode_check(data);
  for (unsigned bit = 0; bit < 8; ++bit) {
    const auto r = decode({data, static_cast<std::uint8_t>(check ^ (1u << bit))});
    EXPECT_EQ(r.status, DecodeStatus::CorrectedCheck) << "check bit " << bit;
    EXPECT_EQ(r.data, data);
  }
}

TEST(Secded, DoubleDataErrorsAreDetectedNotMiscorrected) {
  util::Xoshiro256ss rng(7);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t data = rng();
    const std::uint8_t check = encode_check(data);
    const unsigned a = static_cast<unsigned>(rng.below(64));
    unsigned b = static_cast<unsigned>(rng.below(64));
    while (b == a) b = static_cast<unsigned>(rng.below(64));
    const auto r =
        decode({data ^ (std::uint64_t{1} << a) ^ (std::uint64_t{1} << b), check});
    EXPECT_EQ(r.status, DecodeStatus::DoubleError);
  }
}

TEST(Secded, DataPlusCheckDoubleErrorDetected) {
  const std::uint64_t data = 42;
  const std::uint8_t check = encode_check(data);
  const auto r = decode({data ^ 2u, static_cast<std::uint8_t>(check ^ 1u)});
  EXPECT_EQ(r.status, DecodeStatus::DoubleError);
}

TEST(Secded, ProtectBlockValidatesSize) {
  EXPECT_THROW((void)protect_block(std::vector<std::uint8_t>(63)), std::invalid_argument);
}

TEST(Secded, BlockRoundTrip) {
  util::Xoshiro256ss rng(11);
  std::vector<std::uint8_t> block(64);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.below(256));
  const auto stored = protect_block(block);
  EXPECT_EQ(stored.checks.size(), 8u);
  const auto recovered = recover_block(stored);
  EXPECT_TRUE(recovered.ok);
  EXPECT_EQ(recovered.corrected_words, 0u);
  EXPECT_EQ(recovered.data, block);
}

TEST(Secded, BlockScatteredSingleErrorsAllCorrected) {
  util::Xoshiro256ss rng(13);
  std::vector<std::uint8_t> block(64);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.below(256));
  auto stored = protect_block(block);
  // One bit flip in each of the eight words.
  for (unsigned w = 0; w < 8; ++w) {
    const unsigned bit = static_cast<unsigned>(rng.below(64));
    stored.data[w * 8 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  const auto recovered = recover_block(stored);
  EXPECT_TRUE(recovered.ok);
  EXPECT_EQ(recovered.corrected_words, 8u);
  EXPECT_EQ(recovered.data, block);
}

TEST(Secded, BlockDoubleErrorReported) {
  std::vector<std::uint8_t> block(64, 0x5A);
  auto stored = protect_block(block);
  stored.data[0] ^= 0x03;  // two bits in word 0
  const auto recovered = recover_block(stored);
  EXPECT_FALSE(recovered.ok);
  EXPECT_EQ(recovered.uncorrectable_words, 1u);
}

}  // namespace
}  // namespace spe::ecc
