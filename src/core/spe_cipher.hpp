#pragma once
// The behavioural Sneak-Path Encryption cipher (Section 5).
//
// State model: one crossbar unit stores 64 memristor cells; each cell's
// analog state is tracked on a 64-level internal grid (6 bits). The MLC-2
// *read* value of a cell is the top two bits of its level (the four
// resistance bands). Plaintext bytes are written as band-centre levels;
// encryption perturbs levels in place; what an attacker reads out is the
// quantised 2-bit symbol per cell (128 ciphertext bits per unit).
//
// One encryption = the key schedule's sequence of PoE pulses. One pulse
// applies, to every cell of the PoE's calibrated polyomino, a bijective
// level permutation selected by: the pulse code, the cell's attenuation
// tier, the device fingerprint, a digest of the crossbar state OUTSIDE the
// polyomino, and a running chain over the cells already processed in the
// pulse (two passes, forward then backward, for full intra-pulse
// diffusion). The digest and chain model the global resistive coupling of
// the physical sneak paths — the data-dependence Section 5.3 describes —
// in an exactly invertible form: decryption replays the pulses in reverse
// order and inverts each pass back-to-front, the behavioural equivalent of
// the paper's reverse-sequence, hysteresis-corrected decryption. A wrong
// PoE order reconstructs wrong chains and produces garbage (Fig. 2b); a
// different device has different tables and also fails.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/key_schedule.hpp"

namespace spe::core {

/// Internal levels of one crossbar unit (row-major cells).
using UnitLevels = std::vector<std::uint8_t>;

class SpeCipher {
public:
  /// `poes` defaults to the precomputed 16-PoE placement when empty.
  SpeCipher(const SpeKey& key, std::shared_ptr<const CipherCalibration> calibration,
            std::vector<unsigned> poes = {}, unsigned unit_index = 0);

  [[nodiscard]] const CipherCalibration& calibration() const noexcept { return *cal_; }
  [[nodiscard]] const std::vector<PulseStep>& schedule() const noexcept {
    return schedule_.steps();
  }
  [[nodiscard]] unsigned cell_count() const noexcept { return cal_->cell_count(); }

  /// Encrypts / decrypts the unit's levels in place. Sizes must equal
  /// cell_count(). decrypt(encrypt(x)) == x exactly.
  void encrypt(UnitLevels& levels) const;
  void decrypt(UnitLevels& levels) const;

  // --- resumable sequence cursor (crash consistency) -----------------------
  // One encryption is schedule() applied as steps 0..N-1; one decryption is
  // the inverses applied as steps N-1..0. These primitives expose a single
  // step so the SPECU can advance its intent journal between pulses and
  // recovery can resume an interrupted encryption from the logged index:
  // encrypt == encrypt_step(0..N-1); decrypt == decrypt_step(N-1..0).
  void encrypt_step(UnitLevels& levels, unsigned step) const;
  void decrypt_step(UnitLevels& levels, unsigned step) const;

  /// Truncated encryption with only the first `pulses` steps — the PoE-count
  /// ablation of Section 6.1 ("fewer than 16 PoEs fail a large number of
  /// tests").
  void encrypt_truncated(UnitLevels& levels, unsigned pulses) const;

  /// Decryption with a caller-supplied step order (indices into schedule()),
  /// applied back-to-front as given — used to demonstrate Fig. 2b's
  /// wrong-order failure.
  void decrypt_with_order(UnitLevels& levels, std::span<const unsigned> order) const;

  // --- byte <-> level conversion (2 bits per cell, paper logic polarity:
  // "11" = lowest-resistance band) -----------------------------------------
  [[nodiscard]] UnitLevels levels_from_bytes(std::span<const std::uint8_t> plaintext) const;
  void bytes_from_levels(const UnitLevels& levels, std::span<std::uint8_t> out) const;
  [[nodiscard]] unsigned block_bytes() const noexcept { return cell_count() / 4; }

  /// Convenience one-way path for the randomness data sets: plaintext bytes
  /// in, quantised ciphertext bytes out.
  void encrypt_bytes(std::span<const std::uint8_t> plaintext,
                     std::span<std::uint8_t> ciphertext) const;

  // --- batched fast path (SpecuBatch) --------------------------------------
  // Bit-identical reformulation of encrypt_step / decrypt_step for the batch
  // engine. The caller seeds a FastScratch once per unit operation; the
  // scratch carries an incremental per-cell digest cache (outside_digest
  // becomes an XOR delta instead of a full rescan) and a chain-prefix buffer
  // that turns the inverse pass's per-position chain replay into one O(n)
  // sweep. Steps run in place on the caller's storage — no per-step copies.
  // The scalar path above stays the reference oracle; the differential suite
  // (tests/core/batch_equivalence_test) pins fast == scalar byte-for-byte.
  struct FastScratch {
    std::vector<std::uint64_t> cell_hash;     ///< mix64((level << 16) | i) per cell
    std::uint64_t all_fold = 0;               ///< XOR of cell_hash over all cells
    std::vector<std::uint64_t> chain_prefix;  ///< per-pass inverse-chain buffer
  };
  void init_fast_scratch(std::span<const std::uint8_t> levels, FastScratch& scratch) const;
  void encrypt_step_fast(std::span<std::uint8_t> levels, unsigned step,
                         FastScratch& scratch) const;
  void decrypt_step_fast(std::span<std::uint8_t> levels, unsigned step,
                         FastScratch& scratch) const;

private:
  void apply_pulse(UnitLevels& levels, const PulseStep& step, unsigned step_index,
                   bool encrypt) const;
  void apply_pass(UnitLevels& levels, const CipherCalibration::Shape& shape,
                  const PulseStep& step, unsigned step_index, unsigned pass,
                  std::uint64_t digest, bool reverse_order, bool encrypt) const;
  [[nodiscard]] std::uint64_t outside_digest(const UnitLevels& levels,
                                             const CipherCalibration::Shape& shape) const;
  void apply_pulse_fast(std::span<std::uint8_t> levels, const PulseStep& step,
                        unsigned step_index, bool encrypt, FastScratch& scratch) const;
  void apply_pass_fast(std::span<std::uint8_t> levels,
                       const CipherCalibration::Shape& shape, const PulseStep& step,
                       unsigned step_index, unsigned pass, std::uint64_t digest,
                       bool reverse_order, bool encrypt, FastScratch& scratch) const;

  std::shared_ptr<const CipherCalibration> cal_;
  AddressLut addresses_;
  VoltageLut voltages_;
  KeySchedule schedule_;
};

}  // namespace spe::core
