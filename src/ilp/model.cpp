#include "ilp/model.hpp"

#include <stdexcept>

namespace spe::ilp {

unsigned Model::add_var(double objective_coeff, std::string name) {
  objective_.push_back(objective_coeff);
  var_names_.push_back(std::move(name));
  return static_cast<unsigned>(objective_.size() - 1);
}

void Model::add_constraint(Constraint c) {
  for (const Term& t : c.terms) {
    if (t.var >= num_vars()) throw std::out_of_range("Model::add_constraint: unknown variable");
  }
  if (c.lo > c.hi) throw std::invalid_argument("Model::add_constraint: lo > hi");
  constraints_.push_back(std::move(c));
}

void Model::add_le(std::vector<Term> terms, double hi, std::string name) {
  add_constraint(Constraint{std::move(terms), -Constraint::kInf, hi, std::move(name)});
}

void Model::add_ge(std::vector<Term> terms, double lo, std::string name) {
  add_constraint(Constraint{std::move(terms), lo, Constraint::kInf, std::move(name)});
}

void Model::add_eq(std::vector<Term> terms, double value, std::string name) {
  add_constraint(Constraint{std::move(terms), value, value, std::move(name)});
}

void Model::add_range(std::vector<Term> terms, double lo, double hi, std::string name) {
  add_constraint(Constraint{std::move(terms), lo, hi, std::move(name)});
}

double Model::objective_value(const std::vector<std::uint8_t>& x) const {
  if (x.size() != objective_.size())
    throw std::invalid_argument("Model::objective_value: assignment size mismatch");
  double v = 0.0;
  for (unsigned i = 0; i < objective_.size(); ++i)
    if (x[i]) v += objective_[i];
  return v;
}

bool Model::is_feasible(const std::vector<std::uint8_t>& x, double eps) const {
  if (x.size() != objective_.size())
    throw std::invalid_argument("Model::is_feasible: assignment size mismatch");
  for (const Constraint& c : constraints_) {
    double sum = 0.0;
    for (const Term& t : c.terms)
      if (x[t.var]) sum += t.coeff;
    if (sum < c.lo - eps || sum > c.hi + eps) return false;
  }
  return true;
}

}  // namespace spe::ilp
