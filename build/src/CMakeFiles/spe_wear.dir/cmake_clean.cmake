file(REMOVE_RECURSE
  "CMakeFiles/spe_wear.dir/wear/endurance.cpp.o"
  "CMakeFiles/spe_wear.dir/wear/endurance.cpp.o.d"
  "CMakeFiles/spe_wear.dir/wear/start_gap.cpp.o"
  "CMakeFiles/spe_wear.dir/wear/start_gap.cpp.o.d"
  "libspe_wear.a"
  "libspe_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
