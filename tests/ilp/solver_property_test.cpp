// Property test: on randomly generated small models, the branch-and-bound
// solver must agree exactly with exhaustive enumeration — same optimum (or
// same infeasibility verdict).

#include <gtest/gtest.h>

#include <cmath>

#include "ilp/solver.hpp"
#include "util/rng.hpp"

namespace spe::ilp {
namespace {

struct BruteResult {
  bool feasible = false;
  double objective = 0.0;
};

BruteResult brute_force(const Model& model) {
  BruteResult best;
  const unsigned n = model.num_vars();
  std::vector<std::uint8_t> x(n, 0);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    for (unsigned v = 0; v < n; ++v) x[v] = (bits >> v) & 1u;
    if (!model.is_feasible(x)) continue;
    const double obj = model.objective_value(x);
    if (!best.feasible ||
        (model.sense == Sense::Minimize ? obj < best.objective : obj > best.objective)) {
      best.feasible = true;
      best.objective = obj;
    }
  }
  return best;
}

Model random_model(std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  Model m;
  m.sense = rng.below(2) ? Sense::Minimize : Sense::Maximize;
  const unsigned vars = 6 + static_cast<unsigned>(rng.below(8));  // 6..13
  for (unsigned v = 0; v < vars; ++v)
    m.add_var(std::floor(rng.uniform(-5.0, 5.0) * 2.0) / 2.0);
  const unsigned cons = 2 + static_cast<unsigned>(rng.below(6));
  for (unsigned c = 0; c < cons; ++c) {
    std::vector<Term> terms;
    for (unsigned v = 0; v < vars; ++v) {
      if (rng.below(3) == 0)
        terms.push_back({v, std::floor(rng.uniform(-3.0, 3.0) * 2.0) / 2.0});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double a = std::floor(rng.uniform(-4.0, 6.0));
    const double b = a + std::floor(rng.uniform(0.0, 5.0));
    switch (rng.below(3)) {
      case 0: m.add_le(std::move(terms), b); break;
      case 1: m.add_ge(std::move(terms), a); break;
      default: m.add_range(std::move(terms), a, b); break;
    }
  }
  return m;
}

class SolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverProperty, MatchesExhaustiveEnumeration) {
  const Model model = random_model(GetParam());
  const BruteResult truth = brute_force(model);

  Solver solver;
  const Solution sol = solver.solve(model);

  if (!truth.feasible) {
    EXPECT_EQ(sol.status, Solution::Status::Infeasible) << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(sol.status, Solution::Status::Optimal) << "seed " << GetParam();
  EXPECT_NEAR(sol.objective, truth.objective, 1e-9) << "seed " << GetParam();
  EXPECT_TRUE(model.is_feasible(sol.values));
  EXPECT_NEAR(model.objective_value(sol.values), sol.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomModels, SolverProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace spe::ilp
