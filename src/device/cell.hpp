#pragma once
// A 1T1M crossbar cell: a TEAM memristor in series with an access transistor
// (Section 5.1, Fig. 3a). The transistor is modelled as a two-state resistor
// (on-resistance / off-resistance); its gate threshold Vt is the quantity
// that bounds the polyomino — cells seeing less than Vt are unaffected by an
// encryption pulse (Fig. 4).

#include "device/mlc.hpp"
#include "device/pulse.hpp"
#include "device/team_model.hpp"

namespace spe::device {

/// Series-transistor parameters.
struct TransistorParams {
  double r_on = 1e3;    ///< Channel resistance when the gate is driven [Ohm].
  double r_off = 1e9;   ///< Leakage path when the gate is off [Ohm].
  double v_threshold = 0.45;  ///< Device write threshold Vt [V] — pulses whose
                              ///< cell share is below this leave the state
                              ///< unchanged (Fig. 4's white cells). Sneak
                              ///< voltages on the PoE's row/column plateau
                              ///< near 0.5 V, so 0.45 V admits a
                              ///< data-dependent subset of that cross.
};

/// One 1T1M cell. The memristor state is owned here; the crossbar owns the
/// wiring.
class Cell {
public:
  Cell(TeamParams mparams, TransistorParams tparams, double initial_state = 0.5);

  [[nodiscard]] TeamModel& memristor() noexcept { return memristor_; }
  [[nodiscard]] const TeamModel& memristor() const noexcept { return memristor_; }
  [[nodiscard]] const TransistorParams& transistor() const noexcept { return tparams_; }

  void set_gate(bool on) noexcept { gate_on_ = on; }
  [[nodiscard]] bool gate_on() const noexcept { return gate_on_; }

  /// Fault hooks (spe_fault). A stuck cell's memristor is pinned at a fixed
  /// state: programming and pulses leave it unchanged until clear_stuck().
  void force_stuck(double state) noexcept;
  void clear_stuck() noexcept { stuck_ = false; }
  [[nodiscard]] bool stuck() const noexcept { return stuck_; }

  /// Write-verify programming target (the NVMM controller path); respects
  /// the stuck pin, unlike direct memristor().set_state().
  void program_state(double w) noexcept;

  /// Total series resistance seen between the cell's row and column wires.
  [[nodiscard]] double series_resistance() const noexcept;

  /// Applies `cell_voltage` (across the *series pair*) for `duration`.
  /// The memristor only moves if its share of the voltage drives a current
  /// past the TEAM thresholds; sub-Vt voltages never move it (hard cut that
  /// models the write threshold of the access device).
  void apply_cell_voltage(double cell_voltage, double duration, int steps = 200);

private:
  TeamModel memristor_;
  TransistorParams tparams_;
  bool gate_on_ = false;
  bool stuck_ = false;
};

/// Finds, by bisection, the -polarity pulse width that returns `cell`'s
/// memristor to `target_state` after an encryption pulse, reproducing the
/// Fig. 5 hysteresis experiment (the decrypt width differs from the encrypt
/// width because k_on != k_off). Returns the width in seconds; `max_width`
/// bounds the search. The cell state is restored before returning.
[[nodiscard]] double find_inverse_pulse_width(Cell& cell, double decrypt_voltage,
                                              double target_state,
                                              double max_width = 0.2e-6,
                                              double tolerance = 1e-3);

}  // namespace spe::device
