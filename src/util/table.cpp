#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace spe::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      for (std::size_t i = row[c].size(); i < widths[c]; ++i) out << ' ';
      out << ' ';
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << '|';
    for (std::size_t i = 0; i < widths[c] + 2; ++i) out << '-';
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::cout << render(); }

}  // namespace spe::util
