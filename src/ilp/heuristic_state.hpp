#pragma once
// Internal to src/ilp: shared machinery for the heuristic placement
// backends (lp_rounding.cpp, grasp.cpp). Both backends move through the
// same incremental assignment evaluator so construction, annealing repair
// and local search agree on feasibility to the same epsilon as the exact
// solver, and both share the repair/improvement loops so their behaviour
// differs only in how the starting assignment is built.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "util/rng.hpp"

namespace spe::ilp::detail {

inline constexpr double kHeurEps = 1e-9;

/// Scales a per-run iteration knob to the model size: the knob defaults are
/// tuned for the 8x8 reference crossbar (~64 binaries); bigger models get
/// proportionally more moves so repair quality is size-independent.
/// Saturates instead of overflowing.
[[nodiscard]] inline unsigned scaled_iters(unsigned base, unsigned num_vars) {
  const unsigned long long scale = std::max(1u, num_vars / 512);
  const unsigned long long total = static_cast<unsigned long long>(base) * scale;
  return total > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<unsigned>(total);
}

/// Cooperative wall-clock deadline. Heuristics poll it between restarts /
/// sweeps and every few thousand annealing moves; disabled (never expires)
/// when the configured limit is 0.
class Deadline {
public:
  explicit Deadline(double limit_ms) {
    if (limit_ms > 0.0) {
      enabled_ = true;
      end_ = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(limit_ms));
    }
  }

  [[nodiscard]] bool expired() const {
    return enabled_ && std::chrono::steady_clock::now() >= end_;
  }

private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point end_;
};

/// Incremental evaluation of a binary assignment against a Model:
/// per-constraint running sums, total two-sided violation, objective, flip
/// deltas, and a uniformly-samplable set of currently violated constraints
/// (what the annealing repair steers by).
class IncrementalEval {
public:
  explicit IncrementalEval(const Model& model);

  /// Resets to the all-zeros assignment.
  void reset();

  /// Loads a full assignment (size must be num_vars).
  void set_from(const std::vector<std::uint8_t>& x);

  [[nodiscard]] const std::vector<std::uint8_t>& values() const noexcept { return x_; }
  [[nodiscard]] double violation() const noexcept { return violation_; }
  [[nodiscard]] bool feasible() const noexcept { return violation_ <= kHeurEps; }
  [[nodiscard]] double objective() const noexcept { return objective_; }
  [[nodiscard]] const Model& model() const noexcept { return model_; }

  /// Total-violation change if `v` were flipped (state unchanged).
  [[nodiscard]] double flip_violation_delta(unsigned v) const;

  /// Objective change if `v` were flipped.
  [[nodiscard]] double flip_objective_delta(unsigned v) const noexcept;

  void flip(unsigned v);

  /// Lower-side violation reduction from raising v 0->1 (0 when v is 1).
  [[nodiscard]] double raise_gain(unsigned v) const;

  /// True when raising v 0->1 would create or worsen an upper-side
  /// violation on any incident constraint.
  [[nodiscard]] bool raise_breaks_upper(unsigned v) const;

  /// Current sum a.x of one constraint.
  [[nodiscard]] double constraint_sum(unsigned ci) const { return sum_[ci]; }

  /// Currently violated constraints (unordered; stable for a given move
  /// sequence, which keeps seeded runs byte-identical).
  [[nodiscard]] const std::vector<unsigned>& violated() const noexcept {
    return violated_list_;
  }

  /// Terms incident to a variable as (constraint index, coefficient).
  struct VarTerm {
    unsigned constraint;
    double coeff;
  };
  [[nodiscard]] const std::vector<VarTerm>& terms_of(unsigned v) const {
    return var_terms_[v];
  }

private:
  [[nodiscard]] static double constraint_violation(double sum, double lo, double hi);
  void update_violated(unsigned ci, double old_v, double new_v);

  const Model& model_;
  std::vector<std::uint8_t> x_;
  std::vector<double> sum_;                       ///< per-constraint sum a.x
  std::vector<std::vector<VarTerm>> var_terms_;   ///< var -> incident terms
  std::vector<unsigned> violated_list_;
  std::vector<int> violated_pos_;                 ///< constraint -> list slot (-1)
  double violation_ = 0.0;
  double objective_ = 0.0;
};

/// Simulated-annealing repair: violation-directed moves (pick a violated
/// constraint, flip a variable that pushes its sum the right way), accepting
/// uphill moves with a geometric temperature schedule. Runs until feasible,
/// `max_iters` moves, or the deadline. Returns true when feasible.
bool anneal_repair(IncrementalEval& eval, util::Xoshiro256ss& rng, unsigned max_iters,
                   const Deadline& deadline);

/// Feasibility-preserving objective local search: single flips and 2-swaps
/// (one up, one down), first-improvement, `max_iters` sampled moves. The
/// evaluator must already be feasible; it stays feasible.
void improve_objective(IncrementalEval& eval, util::Xoshiro256ss& rng, unsigned max_iters,
                       const Deadline& deadline);

}  // namespace spe::ilp::detail
