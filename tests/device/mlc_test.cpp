#include "device/mlc.hpp"

#include <gtest/gtest.h>

namespace spe::device {
namespace {

TEST(MlcCodec, SymbolBandsPartitionTheStateSpace) {
  MlcCodec codec;
  EXPECT_EQ(codec.symbol_for_state(0.0), 0u);
  EXPECT_EQ(codec.symbol_for_state(0.24), 0u);
  EXPECT_EQ(codec.symbol_for_state(0.26), 1u);
  EXPECT_EQ(codec.symbol_for_state(0.51), 2u);
  EXPECT_EQ(codec.symbol_for_state(0.76), 3u);
  EXPECT_EQ(codec.symbol_for_state(1.0), 3u);
}

TEST(MlcCodec, SymbolRoundTripThroughBandCentre) {
  MlcCodec codec;
  for (unsigned s = 0; s < MlcCodec::kSymbols; ++s)
    EXPECT_EQ(codec.symbol_for_state(codec.state_for_symbol(s)), s);
  EXPECT_THROW((void)codec.state_for_symbol(4), std::out_of_range);
}

TEST(MlcCodec, LevelRoundTrip) {
  MlcCodec codec;
  for (unsigned l = 0; l < MlcCodec::kInternalLevels; ++l)
    EXPECT_EQ(codec.level_for_state(codec.state_for_level(l)), l);
  EXPECT_THROW((void)codec.state_for_level(64), std::out_of_range);
}

TEST(MlcCodec, LevelsNestInsideSymbols) {
  // The top two bits of the level are the read symbol.
  for (unsigned l = 0; l < MlcCodec::kInternalLevels; ++l)
    EXPECT_EQ(MlcCodec::symbol_for_level(l), l / 16);
  for (unsigned s = 0; s < MlcCodec::kSymbols; ++s)
    EXPECT_EQ(MlcCodec::symbol_for_level(MlcCodec::level_for_symbol(s)), s);
}

TEST(MlcCodec, PaperLogicPolarity) {
  // "11" = lowest resistance (symbol 0), "00" = highest (symbol 3).
  EXPECT_EQ(MlcCodec::logic_bits_for_symbol(0), 0b11u);
  EXPECT_EQ(MlcCodec::logic_bits_for_symbol(3), 0b00u);
  for (unsigned bits = 0; bits < 4; ++bits)
    EXPECT_EQ(MlcCodec::logic_bits_for_symbol(MlcCodec::symbol_for_logic_bits(bits)), bits);
}

TEST(MlcCodec, HighestBandNearPaper172k) {
  // Section 5.3: a cell encrypted to ~172 kOhm reads logic 00.
  MlcCodec codec;
  const double r = codec.resistance_for_symbol(3);
  EXPECT_GT(r, 160e3);
  EXPECT_LT(r, 200e3);
  EXPECT_EQ(MlcCodec::logic_bits_for_symbol(3), 0b00u);
}

TEST(MlcCodec, MonotoneResistancePerSymbol) {
  MlcCodec codec;
  for (unsigned s = 1; s < MlcCodec::kSymbols; ++s)
    EXPECT_GT(codec.resistance_for_symbol(s), codec.resistance_for_symbol(s - 1));
}

}  // namespace
}  // namespace spe::device
