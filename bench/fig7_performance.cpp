// Fig. 7 reproduction: performance overhead of AES, i-NVMM, SPE-serial and
// SPE-parallel (plus the stream cipher) over the unprotected baseline, per
// SPEC-2006-like workload. The paper's averages: AES 14%, i-NVMM 1%,
// SPE-serial 1.5%, SPE-parallel 2.9%, stream 0.4%; outliers above the 12%
// axis are annotated (mcf/libquantum-class workloads).
//
// Scale: SPE_SIM_INSTR overrides the instruction budget per run (default
// 6M — the paper ran 500M on Zesto; relative overheads converge far
// earlier).

#include "bench_util.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace spe;
  benchutil::banner("fig7_performance — performance overhead per workload",
                    "Fig. 7 (Section 7)");

  sim::SimConfig cfg;
  cfg.instructions = benchutil::env_or("SPE_SIM_INSTR", 6'000'000);
  std::printf("instructions per run: %llu (override with SPE_SIM_INSTR)\n\n",
              static_cast<unsigned long long>(cfg.instructions));

  const std::vector<core::Scheme> schemes = {
      core::Scheme::None, core::Scheme::Aes, core::Scheme::INvmm,
      core::Scheme::SpeSerial, core::Scheme::SpeParallel, core::Scheme::StreamCipher};
  const auto grid = sim::run_grid(schemes, cfg);

  util::Table table({"workload", "L2 MPKI", "AES", "i-NVMM", "SPE-serial",
                     "SPE-parallel", "Stream"});
  for (const auto& row : grid) {
    const auto& base = row[0];
    const double mpki =
        1000.0 * static_cast<double>(base.l2_misses) / static_cast<double>(base.instructions);
    table.add_row({base.workload, util::Table::fmt(mpki, 2),
                   util::Table::pct(row[1].overhead_vs(base)),
                   util::Table::pct(row[2].overhead_vs(base)),
                   util::Table::pct(row[3].overhead_vs(base)),
                   util::Table::pct(row[4].overhead_vs(base)),
                   util::Table::pct(row[5].overhead_vs(base), 2)});
  }
  table.print();

  const auto base = sim::grid_column(grid, 0);
  std::printf("\nAverages (paper in parentheses):\n");
  const char* paper[] = {"", "14%", "1%", "1.5%", "2.9%", "0.4%"};
  for (std::size_t s = 1; s < schemes.size(); ++s) {
    const auto column = sim::grid_column(grid, s);
    std::printf("  %-13s %6.2f%%   (%s)\n", core::scheme_name(schemes[s]).c_str(),
                100.0 * sim::mean_overhead(column, base), paper[s]);
  }
  std::printf("\nShape checks: AES >> SPE-parallel > SPE-serial > i-NVMM > stream;\n"
              "mcf/libquantum are the above-axis outliers as in the paper.\n");
  return 0;
}
