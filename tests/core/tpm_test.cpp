#include "core/tpm.hpp"

#include <gtest/gtest.h>

namespace spe::core {
namespace {

TEST(Tpm, UnknownDeviceReleasesNothing) {
  Tpm tpm;
  EXPECT_FALSE(tpm.knows_device(1));
  EXPECT_FALSE(tpm.authenticate_and_release(1, 0).has_value());
}

TEST(Tpm, ReleasesKeyOnMatchingMeasurement) {
  Tpm tpm;
  const SpeKey key{0xAAA, 0xBBB};
  tpm.provision(7, 0xFEED, key);
  EXPECT_TRUE(tpm.knows_device(7));
  const auto released = tpm.authenticate_and_release(7, 0xFEED);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(*released, key);
}

TEST(Tpm, WrongMeasurementIsRefused) {
  Tpm tpm;
  tpm.provision(7, 0xFEED, SpeKey{1, 2});
  EXPECT_FALSE(tpm.authenticate_and_release(7, 0xDEAD).has_value());
}

TEST(Tpm, ReprovisionReplacesKey) {
  Tpm tpm;
  tpm.provision(7, 0xFEED, SpeKey{1, 2});
  tpm.provision(7, 0xFEED, SpeKey{3, 4});
  const auto released = tpm.authenticate_and_release(7, 0xFEED);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->address_seed, 3u);
}

TEST(Tpm, DevicesAreIndependent) {
  Tpm tpm;
  tpm.provision(1, 0x11, SpeKey{10, 20});
  tpm.provision(2, 0x22, SpeKey{30, 40});
  EXPECT_EQ(tpm.authenticate_and_release(1, 0x11)->address_seed, 10u);
  EXPECT_EQ(tpm.authenticate_and_release(2, 0x22)->address_seed, 30u);
  EXPECT_FALSE(tpm.authenticate_and_release(1, 0x22).has_value());
}

}  // namespace
}  // namespace spe::core
