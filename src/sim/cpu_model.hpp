#pragma once
// CPU cost model: a 3.2 GHz, 4-issue out-of-order core (Section 7). The
// simulator is trace-driven, so out-of-order latency hiding is modelled by
// an overlap factor: only (1 - overlap) of every memory-hierarchy latency
// reaches the retirement critical path. This is the standard first-order
// model for overhead studies — absolute IPC is approximate, but *relative*
// overhead between schemes (the paper's metric) depends only on the extra
// cycles each scheme adds, which are modelled exactly.

#include <cstdint>

namespace spe::sim {

struct CpuConfig {
  double freq_ghz = 3.2;
  double overlap = 0.60;  ///< fraction of miss latency hidden by the OoO window
};

class CpuModel {
public:
  explicit CpuModel(CpuConfig config = {}) : config_(config) {}

  [[nodiscard]] const CpuConfig& config() const noexcept { return config_; }

  /// Retire `instructions` at the workload's base CPI.
  void retire(std::uint64_t instructions, double base_cpi) {
    cycles_ += static_cast<std::uint64_t>(static_cast<double>(instructions) * base_cpi);
  }

  /// Charge a memory-hierarchy latency; only the un-overlapped part stalls.
  void stall(std::uint64_t latency_cycles) {
    cycles_ += static_cast<std::uint64_t>(
        static_cast<double>(latency_cycles) * (1.0 - config_.overlap));
  }

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(cycles_) / (config_.freq_ghz * 1e9);
  }

private:
  CpuConfig config_;
  std::uint64_t cycles_ = 0;
};

}  // namespace spe::sim
