#pragma once
// One bank shard of the memory service: an independent Snvmm array with its
// own SPECU, request queue, counters — and, since PR 2, its own resilience
// machinery: a deterministic FaultInjector (optional), a SEC-DED plane-code
// shadow of every resident block's stored levels, bounded retry with
// exponential backoff, and a quarantine set for blocks the code cannot
// recover. The state mutex serialises the shard's array between its worker
// thread and the background scavenger — shards never share crypto or fault
// state, so there is no cross-shard locking.
//
// Datapath with ECC enabled (the default):
//   write: Specu programs+encrypts -> checks recomputed -> injector may
//          corrupt the programmed levels -> program-verify (SEC-DED) ->
//          correct / retry / remap-to-spare / quarantine.
//   read:  sense a copy (injector may pin stuck cells + flip noise bits)
//          -> SEC-DED verify -> corrected copy written back (scrub-on-read)
//          -> retry with backoff when uncorrectable -> quarantine + throw
//          UncorrectableFaultError when retries are exhausted -> Specu
//          decrypts and the checks are refreshed for the new resting state.
//   scrub: age the stored levels (drift + stuck pins), verify, correct.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/snvmm.hpp"
#include "core/specu.hpp"
#include "core/tpm.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/service_config.hpp"
#include "runtime/service_stats.hpp"

namespace spe::runtime {

class BankShard {
public:
  BankShard(unsigned id, const ServiceConfig& config,
            std::shared_ptr<const fault::FaultPlan> fault_plan = nullptr);

  BankShard(const BankShard&) = delete;
  BankShard& operator=(const BankShard&) = delete;

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t device_id() const noexcept { return memory_.device_id(); }
  [[nodiscard]] unsigned block_bytes() const noexcept { return memory_.block_bytes(); }
  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] ShardCounters& counters() noexcept { return counters_; }

  /// Power-on handshake against the service TPM. False = key withheld.
  [[nodiscard]] bool power_on(const core::Tpm& tpm, std::uint64_t measurement);

  /// Worker side: executes a drained batch in FIFO order under the state
  /// lock, fulfilling every promise (value or exception).
  void execute_batch(std::vector<Request> batch);

  /// Scavenger side: re-encrypts up to `max_blocks` plaintext blocks,
  /// timing each one into the background-latency histogram.
  unsigned scavenge(unsigned max_blocks);

  /// Scrubbing pass (piggybacked on the scavenger thread, also callable
  /// synchronously): ages + SEC-DED-verifies up to `max_blocks` resident
  /// blocks round-robin, correcting in place and quarantining what it
  /// cannot fix. Returns the number of blocks scrubbed.
  unsigned scrub(unsigned max_blocks);

  /// Counters plus under-lock occupancy (plaintext / resident blocks).
  [[nodiscard]] ShardStatsSnapshot stats_snapshot() const;

  [[nodiscard]] double encrypted_fraction() const;
  [[nodiscard]] core::Specu::Stats specu_stats() const;

  /// The shard's injector (null when fault injection is off) — test access;
  /// callers must not race the worker (quiesce first).
  [[nodiscard]] fault::FaultInjector* injector() noexcept { return injector_.get(); }

private:
  // All private helpers assume state_mutex_ is held.
  [[nodiscard]] std::vector<std::uint8_t> read_block_guarded(std::uint64_t addr);
  void write_block_guarded(std::uint64_t addr, std::span<const std::uint8_t> data);
  /// Sense + SEC-DED verify of a resident block against its shadow checks,
  /// with bounded re-sense retries. Returns false when uncorrectable (the
  /// caller quarantines); counts detected/corrected/retries.
  [[nodiscard]] bool verify_block(std::uint64_t addr, core::Snvmm::Block& block,
                                  const std::vector<std::uint8_t>& checks);
  void refresh_checks(std::uint64_t addr);
  void quarantine(std::uint64_t addr);
  void backoff(unsigned attempt) const;

  unsigned id_;
  ServiceConfig config_;
  ShardCounters counters_;
  RequestQueue queue_;
  mutable std::mutex state_mutex_;  ///< guards memory_ + specu_ + resilience state
  core::Snvmm memory_;
  core::Specu specu_;
  std::unique_ptr<fault::FaultInjector> injector_;  ///< null = no injection
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> checks_;
  std::unordered_set<std::uint64_t> quarantined_;
  std::uint64_t scrub_cursor_ = 0;  ///< round-robin resume point
};

}  // namespace spe::runtime
