#pragma once
// Deterministic, seed-driven fault schedule for the SPE memory stack. A
// FaultPlan is a pure function from (seed, fault site, event index) to a
// fault decision: it holds no mutable state, so the same seed replays the
// identical schedule regardless of thread timing or query order — the
// property the reliability campaign and the determinism tests rely on.
// Every decision is derived by hashing the site through independent mix64
// streams (one tag per fault class) rather than by drawing from a
// sequential RNG.
//
// Fault taxonomy (the threats related memristive-crossbar work treats as
// first-class):
//   * stuck-at-LRS / stuck-at-HRS — a cell permanently pinned to the lowest
//     / highest resistance band; persistent per (device, block, remap
//     epoch, cell). Bumping the remap epoch models relocating the block to
//     a spare physical unit with a fresh set of manufacturing defects.
//   * resistance drift — per scrub tick, a rounded Gaussian perturbation of
//     the cell's stored fine level (retention loss between scrubs).
//   * transient read noise — per sense, a single random bit flip of the
//     cell's sensed level; the stored state is untouched, so a re-read
//     usually clears it.
//   * dropped programming pulse — per program operation, a cell's write
//     pulse fails to land and the cell is left at a stale level.

#include <cstdint>
#include <vector>

#include "device/mlc.hpp"

namespace spe::fault {

enum class FaultKind : std::uint8_t { None, StuckAtLrs, StuckAtHrs };

/// Fault-class rates; all zero = fault-free plan.
struct FaultModelConfig {
  double stuck_at_lrs_rate = 0.0;    ///< per-cell manufacturing probability
  double stuck_at_hrs_rate = 0.0;    ///< per-cell manufacturing probability
  double drift_sigma = 0.0;          ///< levels of Gaussian drift per scrub tick
  double read_noise_rate = 0.0;      ///< per-cell per-sense bit-flip probability
  double dropped_pulse_rate = 0.0;   ///< per-cell per-program failure probability

  [[nodiscard]] bool any() const noexcept {
    return stuck_at_lrs_rate > 0.0 || stuck_at_hrs_rate > 0.0 || drift_sigma > 0.0 ||
           read_noise_rate > 0.0 || dropped_pulse_rate > 0.0;
  }
};

/// One physical cell of one block on one device. `cell` is the block-flat
/// index (unit * cells_per_unit + cell_in_unit for multi-unit blocks).
struct CellSite {
  std::uint64_t device_id = 0;
  std::uint64_t block_addr = 0;
  std::uint32_t remap_epoch = 0;
  std::uint32_t cell = 0;
};

class FaultPlan {
public:
  FaultPlan(std::uint64_t seed, FaultModelConfig config);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultModelConfig& config() const noexcept { return config_; }

  /// Persistent (manufacturing) classification of a cell.
  [[nodiscard]] FaultKind persistent_fault(const CellSite& site) const noexcept;

  /// The fine level a stuck cell pins to: the band centre of the extreme
  /// MLC symbol (symbol 0 = LRS, highest symbol = HRS).
  [[nodiscard]] static std::uint8_t stuck_level(FaultKind kind) noexcept;

  /// Rounded Gaussian drift (in fine levels) applied at scrub tick `tick`.
  [[nodiscard]] int drift_delta(const CellSite& site, std::uint64_t tick) const noexcept;

  /// Transient single-bit sense corruption at sense event `sense`. Returns
  /// true and sets `bit` (0..5) when the read-out of this cell flips.
  [[nodiscard]] bool read_noise_flip(const CellSite& site, std::uint64_t sense,
                                     unsigned& bit) const noexcept;

  /// Whether the cell's programming pulse is dropped during program event
  /// `program` (write-verify catches it; a retry re-rolls with program+1).
  [[nodiscard]] bool pulse_dropped(const CellSite& site,
                                   std::uint64_t program) const noexcept;

  /// Enumerates the stuck cells of one block — the replayable "fault
  /// schedule" the determinism tests compare and the campaign reports.
  [[nodiscard]] std::vector<std::pair<unsigned, FaultKind>> stuck_cells(
      std::uint64_t device_id, std::uint64_t block_addr, std::uint32_t remap_epoch,
      unsigned cell_count) const;

private:
  [[nodiscard]] std::uint64_t site_hash(std::uint64_t tag, const CellSite& site,
                                        std::uint64_t event) const noexcept;

  std::uint64_t seed_;
  FaultModelConfig config_;
};

}  // namespace spe::fault
