#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace spe::cluster {

std::uint64_t HashRing::mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashRing::point_hash(const std::string& name, unsigned vnode) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ (std::uint64_t{vnode} << 1 | 1));
}

void HashRing::add_node(const std::string& name, unsigned weight) {
  for (auto& [n, w] : nodes_) {
    if (n == name) {
      w = weight;
      rebuild();
      return;
    }
  }
  nodes_.emplace_back(name, weight);
  rebuild();
}

void HashRing::remove_node(const std::string& name) {
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [&](const auto& nw) { return nw.first == name; });
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  rebuild();
}

bool HashRing::contains(const std::string& name) const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [&](const auto& nw) { return nw.first == name; });
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [n, w] : nodes_) names.push_back(n);
  return names;
}

void HashRing::rebuild() {
  points_.clear();
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const auto& [name, weight] = nodes_[i];
    const unsigned vnodes = weight * kVnodesPerWeight;
    for (unsigned v = 0; v < vnodes; ++v)
      points_.push_back({point_hash(name, v), i});
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Tie-break on node index so a (vanishingly unlikely) hash collision
    // still yields one deterministic order.
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

const std::string& HashRing::owner(std::uint64_t block_addr) const {
  if (points_.empty())
    throw std::logic_error("spe::cluster: owner() on an empty hash ring");
  const std::uint64_t h = mix64(block_addr);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  if (it == points_.end()) it = points_.begin();  // wrap: clockwise past 2^64
  return nodes_[it->node].first;
}

std::uint64_t HashRing::fingerprint() const noexcept {
  // XOR of per-point digests is order-insensitive, so two rings built by
  // different insertion orders but with identical points agree.
  std::uint64_t fp = 0;
  for (const Point& p : points_)
    fp ^= mix64(p.hash ^ point_hash(nodes_[p.node].first, 0));
  return fp;
}

}  // namespace spe::cluster
