#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace spe::sim {
namespace {

CacheConfig tiny_config() {
  // 4 sets x 2 ways x 64B = 512B.
  return CacheConfig{512, 2, 64, 1, "tiny"};
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{512, 0, 64, 1, "x"}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{100, 3, 64, 1, "x"}), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(tiny_config());
  EXPECT_FALSE(cache.access(0x1000, false).hit);
  EXPECT_TRUE(cache.access(0x1000, false).hit);
  EXPECT_TRUE(cache.access(0x1030, false).hit);  // same 64B line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruEvictionOrder) {
  Cache cache(tiny_config());
  // Three lines mapping to the same set (stride = sets * line = 256B).
  EXPECT_FALSE(cache.access(0x0000, false).hit);
  EXPECT_FALSE(cache.access(0x0100, false).hit);
  // Touch 0x0000 so 0x0100 becomes LRU.
  EXPECT_TRUE(cache.access(0x0000, false).hit);
  EXPECT_FALSE(cache.access(0x0200, false).hit);  // evicts 0x0100
  EXPECT_TRUE(cache.access(0x0000, false).hit);
  EXPECT_FALSE(cache.access(0x0100, false).hit);  // was evicted
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache cache(tiny_config());
  (void)cache.access(0x0000, true);  // dirty
  (void)cache.access(0x0100, false);
  const auto result = cache.access(0x0200, false);  // evicts dirty 0x0000
  EXPECT_TRUE(result.evicted_dirty);
  EXPECT_EQ(result.writeback_addr, 0x0000u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache cache(tiny_config());
  (void)cache.access(0x0000, false);
  (void)cache.access(0x0100, false);
  EXPECT_FALSE(cache.access(0x0200, false).evicted_dirty);
}

TEST(Cache, WriteMarksExistingLineDirty) {
  Cache cache(tiny_config());
  (void)cache.access(0x0000, false);  // clean fill
  (void)cache.access(0x0000, true);   // hit-write -> dirty
  (void)cache.access(0x0100, false);
  EXPECT_TRUE(cache.access(0x0200, false).evicted_dirty);
}

TEST(Cache, DirtyLineCount) {
  Cache cache(tiny_config());
  EXPECT_EQ(cache.dirty_lines(), 0u);
  // Distinct sets (4 sets x 64B lines): no evictions involved.
  (void)cache.access(0x0000, true);
  (void)cache.access(0x0040, true);
  (void)cache.access(0x0080, false);
  EXPECT_EQ(cache.dirty_lines(), 2u);
  cache.flush();
  EXPECT_EQ(cache.dirty_lines(), 0u);
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache cache(tiny_config());
  for (std::uint64_t line = 0; line < 4; ++line)
    (void)cache.access(line * 64, false);
  for (std::uint64_t line = 0; line < 4; ++line)
    EXPECT_TRUE(cache.access(line * 64, false).hit);
}

TEST(Cache, PaperL2GeometryWorks) {
  // 2MB, 16-way, 64B lines: 2048 sets.
  Cache l2(CacheConfig{2 * 1024 * 1024, 16, 64, 16, "L2"});
  for (std::uint64_t i = 0; i < 1000; ++i) (void)l2.access(i * 64, false);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(l2.access(i * 64, false).hit);
}

}  // namespace
}  // namespace spe::sim
