#pragma once
// Recovery accounting for the crash-consistency machinery. When a
// MemoryService is restored from a checkpoint, each shard scans its intent
// journal (which lives in the non-volatile array and so survived the
// crash) and classifies every open intent:
//
//   replay-forward   Encrypt interrupted mid-sequence: resume the pulses
//                    from the logged index (the plaintext was fully
//                    programmed before encryption began).
//   roll-back        Decrypt interrupted: restore the journaled pre-image
//                    (the encrypted resting state); nothing was lost.
//   torn             Program interrupted (the old contents are gone and
//                    the new ones incomplete) or the intent was journaled
//                    under a different key-schedule epoch: the data is
//                    unrecoverable and the block is quarantined — reads
//                    throw TornBlockError until a rewrite remaps it.
//
// Blocks whose image record failed its CRC are quarantined too (counted
// separately). Everything else is clean.

#include <cstdint>
#include <string>
#include <vector>

namespace spe::runtime {

/// One shard's recovery outcome.
struct ShardRecovery {
  unsigned shard = 0;
  std::uint64_t journal_entries = 0;   ///< open intents found at restore
  std::uint64_t clean_blocks = 0;      ///< resident blocks with no open intent
  std::uint64_t replayed_forward = 0;  ///< encrypts resumed from the logged pulse
  std::uint64_t rolled_back = 0;       ///< decrypts undone from the pre-image
  std::uint64_t torn_quarantined = 0;  ///< unrecoverable intents -> TornBlockError
  std::uint64_t crc_quarantined = 0;   ///< image CRC failures -> quarantine

  [[nodiscard]] bool clean() const noexcept {
    return replayed_forward == 0 && rolled_back == 0 && torn_quarantined == 0 &&
           crc_quarantined == 0;
  }
};

/// Whole-service recovery outcome, one row per shard plus totals.
struct RecoveryReport {
  std::vector<ShardRecovery> shards;

  [[nodiscard]] ShardRecovery totals() const;
  [[nodiscard]] bool clean() const;
  /// Human-readable multi-line summary (deterministic field order).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace spe::runtime
