#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace spe::cluster {

using net::Frame;
using net::Opcode;
using net::Status;

namespace {

/// Stable per-endpoint stream id (FNV-1a) for the deterministic jitter and
/// chaos streams — reproducible across runs, unlike pointer identity.
std::uint64_t endpoint_stream(const std::string& endpoint) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : endpoint) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

ClusterClient::ClusterClient(ClusterClientConfig config)
    : config_(std::move(config)) {
  if (config_.seeds.empty())
    throw std::invalid_argument("spe::cluster: ClusterClient needs >= 1 seed");
}

net::Client& ClusterClient::node_client(const NodeInfo& node) {
  const std::string key = node.endpoint();
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    net::ClientConfig cfg = config_.net;
    cfg.host = node.host;
    cfg.port = node.port;
    // A reproducible chaos stream per endpoint, advanced by the drop epoch:
    // deterministic across runs, but a re-created client does not replay
    // the schedule its predecessor already consumed.
    if (cfg.chaos && cfg.chaos_stream == 0)
      cfg.chaos_stream =
          endpoint_stream(key) ^ (chaos_epochs_[key] * 0x9E3779B97F4A7C15ull);
    it = pool_.emplace(key, net::Client(std::move(cfg))).first;
  }
  it->second.connect();  // no-op when already connected
  return it->second;
}

net::CircuitBreaker& ClusterClient::breaker_for(const NodeInfo& node) {
  return breakers_.try_emplace(node.endpoint(), config_.breaker).first->second;
}

void ClusterClient::bounded_sleep(std::chrono::milliseconds pause,
                                  std::chrono::steady_clock::time_point deadline,
                                  bool has_deadline) const {
  if (pause.count() <= 0) return;
  if (has_deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return;
    pause = std::min(pause, left);
  }
  std::this_thread::sleep_for(pause);
}

void ClusterClient::drop_client(const NodeInfo& node) {
  if (pool_.erase(node.endpoint()) > 0) ++chaos_epochs_[node.endpoint()];
}

bool ClusterClient::try_fetch_topology(const NodeInfo& node) {
  try {
    net::Client& client = node_client(node);
    const Frame reply = client.call(net::make_topology_request(0));
    if (reply.status != Status::Ok) return false;
    ClusterTopology fetched;
    if (!decode_topology(reply.payload, fetched)) return false;
    topology_ = std::move(fetched);
    ring_ = topology_.ring();
    ++stats_.topology_refreshes;
    return true;
  } catch (const net::NetError&) {
    drop_client(node);
    return false;
  }
}

void ClusterClient::connect() {
  for (const NodeInfo& seed : config_.seeds)
    if (try_fetch_topology(seed)) return;
  throw net::ConnectError("spe::cluster: no seed answered a topology fetch");
}

std::uint64_t ClusterClient::refresh_topology() {
  // Current members first (the freshest view lives there), then the seeds.
  std::vector<NodeInfo> candidates = topology_.nodes;
  for (const NodeInfo& seed : config_.seeds) {
    const auto same = [&seed](const NodeInfo& n) {
      return n.endpoint() == seed.endpoint();
    };
    if (std::none_of(candidates.begin(), candidates.end(), same))
      candidates.push_back(seed);
  }
  for (const NodeInfo& node : candidates)
    if (try_fetch_topology(node)) return topology_.epoch;
  throw net::ConnectError("spe::cluster: no member answered a topology fetch");
}

unsigned ClusterClient::propose_topology(const ClusterTopology& proposed) {
  const std::vector<std::uint8_t> bytes = encode_topology(proposed);
  std::vector<NodeInfo> targets = topology_.nodes;
  for (const NodeInfo& node : proposed.nodes) {
    const auto same = [&node](const NodeInfo& n) {
      return n.endpoint() == node.endpoint();
    };
    if (std::none_of(targets.begin(), targets.end(), same))
      targets.push_back(node);
  }
  unsigned acked = 0;
  for (const NodeInfo& node : targets) {
    try {
      net::Client& client = node_client(node);
      const Frame reply = client.call(net::make_topology_request(0, bytes));
      if (reply.status == Status::Ok) ++acked;
    } catch (const net::NetError&) {
      drop_client(node);
    }
  }
  if (acked > 0) {
    topology_ = proposed;
    ring_ = topology_.ring();
  }
  return acked;
}

Frame ClusterClient::route_call(std::uint64_t addr, Frame request, bool is_write) {
  if (topology_.nodes.empty()) connect();
  using Clock = std::chrono::steady_clock;
  const bool has_deadline = config_.op_deadline.count() > 0;
  const Clock::time_point op_deadline = Clock::now() + config_.op_deadline;
  const auto remaining = [&]() -> std::chrono::milliseconds {
    if (!has_deadline) return std::chrono::milliseconds{0};
    return std::chrono::duration_cast<std::chrono::milliseconds>(op_deadline -
                                                                 Clock::now());
  };
  NodeInfo target = topology_.owner(addr);
  bool directed = false;   // true: `target` came from a MOVED payload
  bool ambiguous = false;  // a write may have reached a node inconclusively
  unsigned transient = 0;  // transient-failure index into the backoff stream
  std::chrono::milliseconds backoff = config_.moved_backoff;
  // Out of budget: reads (and writes that never reached the wire) failed
  // cleanly — nothing happened. A write whose send died mid-flight may have
  // executed anyway; surface that as ambiguity, never a generic timeout.
  const auto give_up = [&]() {
    ++stats_.deadline_exceeded;
    if (is_write && ambiguous) {
      ++stats_.ambiguous_results;
      throw net::AmbiguousResultError(
          "spe::cluster: write outcome unknown for addr " + std::to_string(addr) +
          " (deadline expired with an attempt in flight; read back to reconcile)");
    }
    throw net::DeadlineExceededError("spe::cluster: op deadline exceeded for addr " +
                                     std::to_string(addr));
  };
  for (unsigned attempt = 0; attempt <= config_.op_retries; ++attempt) {
    if (has_deadline && remaining().count() <= 0) give_up();
    net::CircuitBreaker& breaker = breaker_for(target);
    if (!breaker.allow()) {
      // Fail fast instead of burning budget on a node that keeps failing. A
      // refreshed topology may name a different owner; the pause also lets
      // the breaker's open_timeout tick toward a half-open probe.
      ++stats_.breaker_skips;
      bounded_sleep(net::retry_backoff(config_.retry,
                                       endpoint_stream(target.endpoint()), transient++),
                    op_deadline, has_deadline);
      try {
        refresh_topology();
      } catch (const net::NetError&) {
        if (!has_deadline) throw;  // whole cluster gone and no budget to wait out
      }
      target = topology_.owner(addr);
      directed = false;
      continue;
    }
    Frame reply;
    try {
      const std::chrono::milliseconds budget = remaining();
      request.deadline_ms =
          has_deadline ? static_cast<std::uint64_t>(budget.count()) : 0;
      net::Client& client = node_client(target);
      if (is_write) ambiguous = true;  // from here the payload may be in flight
      reply = client.call(request, has_deadline ? budget : std::chrono::milliseconds{0});
      breaker.on_success();
    } catch (const net::NetError&) {
      // Owner unreachable (crashed node, dropped/reset connection): learn
      // the membership that exists now and re-route after a deterministic
      // jittered backoff.
      breaker.on_failure();
      drop_client(target);
      ++stats_.failovers;
      ++stats_.retries;
      bounded_sleep(net::retry_backoff(config_.retry,
                                       endpoint_stream(target.endpoint()), transient++),
                    op_deadline, has_deadline);
      try {
        refresh_topology();
      } catch (const net::NetError&) {
        if (!has_deadline) throw;
      }
      target = topology_.owner(addr);
      directed = false;
      continue;
    }
    if (reply.status == Status::Busy) {
      // Deadline-aware shed: the node's queue wait exceeds our remaining
      // budget. Honour the retry-after hint (clipped so one wild estimate
      // cannot eat the whole budget) and try again — queue depth decays fast.
      ++stats_.busy_backoffs;
      ++stats_.retries;
      std::uint64_t retry_after_ms = 0;
      net::WireErrorCode err{};
      (void)net::parse_busy_response(reply, retry_after_ms, err);
      auto pause = std::chrono::milliseconds(std::max<std::uint64_t>(retry_after_ms, 1));
      pause = std::min(pause, config_.retry.backoff_max);
      bounded_sleep(pause, op_deadline, has_deadline);
      continue;
    }
    if (reply.status != Status::Moved) return reply;
    // Bounced: the payload names where the address lives. During an
    // in-flight migration source and destination can both bounce until the
    // copy commits — back off so the budget spans the copy window.
    ++stats_.moved_redirects;
    NodeInfo owner;
    if (!decode_node(reply.payload, owner))
      throw net::ProtocolError("spe::cluster: malformed MOVED payload");
    if (directed && owner.endpoint() == target.endpoint()) {
      // Self-referential bounce would spin; treat as transient and refresh.
      try {
        refresh_topology();
      } catch (const net::NetError&) {
        if (!has_deadline) throw;
      }
    }
    bounded_sleep(backoff, op_deadline, has_deadline);
    backoff = std::min(backoff * 2, config_.moved_backoff_max);
    target = std::move(owner);
    directed = true;
  }
  throw ClusterRoutingError(
      "spe::cluster: retry budget exhausted chasing MOVED for addr " +
      std::to_string(addr));
}

std::vector<std::uint8_t> ClusterClient::read_block(std::uint64_t addr) {
  const Frame reply = route_call(addr, net::make_read_request(0, addr), false);
  if (reply.status != Status::Ok)
    throw net::RemoteError(reply.status,
                           std::string(reply.payload.begin(), reply.payload.end()));
  return reply.payload;
}

void ClusterClient::write_block(std::uint64_t addr,
                                std::span<const std::uint8_t> data) {
  const Frame reply = route_call(addr, net::make_write_request(0, addr, data), true);
  if (reply.status != Status::Ok)
    throw net::RemoteError(reply.status,
                           std::string(reply.payload.begin(), reply.payload.end()));
}

ClusterClient::Stats ClusterClient::stats() const {
  Stats out = stats_;
  out.breaker_trips = 0;
  for (const auto& [endpoint, breaker] : breakers_) out.breaker_trips += breaker.trips();
  return out;
}

void ClusterClient::fill_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  const auto counter = [&registry](const std::string& name, const std::string& help,
                                   std::uint64_t v) { registry.counter(name, help).add(v); };
  counter("spe_cluster_client_moved_redirects_total", "MOVED bounces chased", s.moved_redirects);
  counter("spe_cluster_client_failovers_total", "unreachable-owner reroutes", s.failovers);
  counter("spe_cluster_client_topology_refreshes_total", "topology re-fetches",
          s.topology_refreshes);
  counter("spe_cluster_client_retries_total", "transient-failure re-attempts", s.retries);
  counter("spe_cluster_client_busy_backoffs_total", "BUSY sheds honoured", s.busy_backoffs);
  counter("spe_cluster_client_breaker_trips_total", "circuit breaker trips", s.breaker_trips);
  counter("spe_cluster_client_breaker_skips_total", "fail-fast skips on open breakers",
          s.breaker_skips);
  counter("spe_cluster_client_deadline_exceeded_total", "ops out of deadline budget",
          s.deadline_exceeded);
  counter("spe_cluster_client_ambiguous_results_total",
          "writes with unknown outcome at deadline", s.ambiguous_results);
}

}  // namespace spe::cluster
