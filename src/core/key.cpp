#include "core/key.hpp"

#include <cstdio>
#include <stdexcept>

namespace spe::core {

SpeKey SpeKey::random(util::Xoshiro256ss& rng) {
  SpeKey k;
  k.address_seed = rng() & kSeedMask;
  k.voltage_seed = rng() & kSeedMask;
  return k;
}

SpeKey SpeKey::all_one() {
  SpeKey k;
  k.address_seed = kSeedMask;
  k.voltage_seed = kSeedMask;
  return k;
}

std::array<std::uint8_t, SpeKey::kBytes> SpeKey::to_bytes() const {
  // 88 bits big-endian: address seed (44) then voltage seed (44).
  std::array<std::uint8_t, kBytes> out{};
  for (unsigned i = 0; i < kBits; ++i) {
    const bool bit = i < kSeedBits
                         ? ((address_seed >> (kSeedBits - 1 - i)) & 1u) != 0
                         : ((voltage_seed >> (kBits - 1 - i)) & 1u) != 0;
    if (bit) out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  return out;
}

SpeKey SpeKey::from_bytes(std::span<const std::uint8_t, kBytes> bytes) {
  SpeKey k;
  for (unsigned i = 0; i < kBits; ++i) {
    const bool bit = (bytes[i / 8] >> (7 - i % 8)) & 1u;
    if (!bit) continue;
    if (i < kSeedBits)
      k.address_seed |= std::uint64_t{1} << (kSeedBits - 1 - i);
    else
      k.voltage_seed |= std::uint64_t{1} << (kBits - 1 - i);
  }
  return k;
}

SpeKey SpeKey::with_bit_flipped(unsigned i) const {
  if (i >= kBits) throw std::out_of_range("SpeKey::with_bit_flipped");
  SpeKey k = *this;
  if (i < kSeedBits)
    k.address_seed ^= std::uint64_t{1} << (kSeedBits - 1 - i);
  else
    k.voltage_seed ^= std::uint64_t{1} << (kBits - 1 - i);
  return k;
}

SpeKey SpeKey::with_bits_set(std::span<const unsigned> bit_indices) {
  SpeKey k;
  for (unsigned i : bit_indices) k = k.with_bit_flipped(i);
  return k;
}

std::string SpeKey::to_hex() const {
  const auto bytes = to_bytes();
  std::string s;
  char buf[4];
  for (auto b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    s += buf;
  }
  return s;
}

}  // namespace spe::core
