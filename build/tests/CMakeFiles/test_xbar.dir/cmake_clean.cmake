file(REMOVE_RECURSE
  "CMakeFiles/test_xbar.dir/xbar/crossbar_test.cpp.o"
  "CMakeFiles/test_xbar.dir/xbar/crossbar_test.cpp.o.d"
  "CMakeFiles/test_xbar.dir/xbar/monte_carlo_test.cpp.o"
  "CMakeFiles/test_xbar.dir/xbar/monte_carlo_test.cpp.o.d"
  "CMakeFiles/test_xbar.dir/xbar/nodal_solver_test.cpp.o"
  "CMakeFiles/test_xbar.dir/xbar/nodal_solver_test.cpp.o.d"
  "CMakeFiles/test_xbar.dir/xbar/polyomino_test.cpp.o"
  "CMakeFiles/test_xbar.dir/xbar/polyomino_test.cpp.o.d"
  "CMakeFiles/test_xbar.dir/xbar/sneak_path_test.cpp.o"
  "CMakeFiles/test_xbar.dir/xbar/sneak_path_test.cpp.o.d"
  "test_xbar"
  "test_xbar.pdb"
  "test_xbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
