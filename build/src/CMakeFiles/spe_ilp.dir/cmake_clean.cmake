file(REMOVE_RECURSE
  "CMakeFiles/spe_ilp.dir/ilp/model.cpp.o"
  "CMakeFiles/spe_ilp.dir/ilp/model.cpp.o.d"
  "CMakeFiles/spe_ilp.dir/ilp/poe_placement.cpp.o"
  "CMakeFiles/spe_ilp.dir/ilp/poe_placement.cpp.o.d"
  "CMakeFiles/spe_ilp.dir/ilp/solver.cpp.o"
  "CMakeFiles/spe_ilp.dir/ilp/solver.cpp.o.d"
  "libspe_ilp.a"
  "libspe_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
