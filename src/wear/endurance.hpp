#pragma once
// Endurance accounting for memristive storage. The paper leans on endurance
// twice: Section 5.2 argues SPE pulses barely age the cells ("the
// resistance change is small compared to the typical write operation",
// ref [13]: TaOx endures ~1e10 full switches), and Section 6.2.1 argues a
// brute-force attacker *destroys* the module before finding the key. Both
// claims are quantified here; the wear-levelling substrate (start_gap.hpp)
// is the ref [6] defence against deliberate write-hammering.

#include <cstdint>
#include <vector>

namespace spe::wear {

struct EnduranceParams {
  double write_limit = 1e8;       ///< full RESET/SET cycles before failure
                                  ///< (PCM-class; TaOx reaches 1e10)
  double spe_pulse_wear = 0.02;   ///< one SPE pulse ~2% of a full write
                                  ///< (small resistance excursion, §5.2)
};

/// Tracks accumulated wear per line and reports failures.
class EnduranceModel {
public:
  EnduranceModel(std::size_t lines, EnduranceParams params = {});

  [[nodiscard]] const EnduranceParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t lines() const noexcept { return wear_.size(); }

  /// Records one full write to `line`.
  void record_write(std::size_t line);
  /// Records one SPE encryption of `line` (16 pulses x per-pulse wear each
  /// touching ~2 polyominoes worth of cells is folded into one factor).
  void record_spe_encryption(std::size_t line, unsigned pulses = 16);

  [[nodiscard]] double wear(std::size_t line) const;
  [[nodiscard]] double max_wear() const;
  [[nodiscard]] bool any_failed() const;
  [[nodiscard]] std::size_t failed_lines() const;

  /// Fraction of the ideal (perfectly levelled) lifetime achieved: with
  /// `total` write units spread over `lines()` lines, ideal failure happens
  /// at total = lines * limit; actual failure when max_wear hits limit.
  [[nodiscard]] double lifetime_fraction() const;

private:
  EnduranceParams params_;
  std::vector<double> wear_;
  double total_ = 0.0;
};

/// Section 6.2.1 quantified: how long a ciphertext-only brute-force attack
/// can hammer one crossbar before the memristors die. Each trial applies
/// `pulses` decrypt attempts; returns the number of trials until the
/// per-cell wear budget is exhausted and the log10 of the fraction of the
/// key space covered by then.
struct BruteForceWearReport {
  double trials_until_failure;
  double log10_keyspace_fraction_searched;  ///< log10(trials / keyspace)
  double seconds_until_failure;
};
[[nodiscard]] BruteForceWearReport brute_force_wear(const EnduranceParams& params = {},
                                                    unsigned pulses_per_trial = 16,
                                                    double ns_per_pulse = 100.0,
                                                    double log10_keyspace = 52.0);

}  // namespace spe::wear
