file(REMOVE_RECURSE
  "CMakeFiles/spe_util.dir/util/berlekamp.cpp.o"
  "CMakeFiles/spe_util.dir/util/berlekamp.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/spe_util.dir/util/bitvec.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/fft.cpp.o"
  "CMakeFiles/spe_util.dir/util/fft.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/gf2.cpp.o"
  "CMakeFiles/spe_util.dir/util/gf2.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/mathfn.cpp.o"
  "CMakeFiles/spe_util.dir/util/mathfn.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/rng.cpp.o"
  "CMakeFiles/spe_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/stats.cpp.o"
  "CMakeFiles/spe_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/spe_util.dir/util/table.cpp.o"
  "CMakeFiles/spe_util.dir/util/table.cpp.o.d"
  "libspe_util.a"
  "libspe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
