#pragma once
// Area and latency model (Table 3). Latencies are the cycle costs the paper
// charges per scheme at the 3.2 GHz core clock; areas are the published
// silicon estimates with the SPECU broken down into its Fig. 1b components.

#include <string>
#include <vector>

namespace spe::core {

/// The five schemes compared in Table 3 plus the unprotected baseline.
enum class Scheme { None, Aes, INvmm, SpeSerial, SpeParallel, StreamCipher };

[[nodiscard]] std::string scheme_name(Scheme s);

struct SchemeCosts {
  Scheme scheme;
  unsigned read_extra_cycles;    ///< added to every NVMM read
  unsigned write_extra_cycles;   ///< added to every NVMM write
  unsigned table_latency_cycles; ///< the single "Latency (cycles)" figure of Table 3
  double area_mm2;               ///< Table 3 area
  std::string tech_node;         ///< technology the area is quoted in
  bool full_time_encryption;     ///< whether memory is 100% ciphertext at all times
};

/// Table-3 cost rows. SPE decryption takes 16 cycles (16 PoE pulses,
/// pipelined against the array access); SPE-serial's table entry is 32
/// (decrypt + deferred re-encrypt both charged to the block), SPE-parallel
/// overlaps the re-encrypt with the cache fill and charges 16 per
/// direction. AES and i-NVMM pay the 80-cycle AES pipeline; the stream
/// cipher XORs a precomputed pad in 1 cycle.
[[nodiscard]] const std::vector<SchemeCosts>& scheme_costs();
[[nodiscard]] const SchemeCosts& costs_for(Scheme s);

/// SPECU area breakdown (65 nm), summing to the 1.3 mm^2 of Table 3.
struct AreaComponent {
  std::string name;
  double mm2;
};
[[nodiscard]] std::vector<AreaComponent> specu_area_breakdown();
[[nodiscard]] double specu_area_mm2();

/// Cold-boot window model (Section 6.4): time to secure `dirty_blocks`
/// 64-byte blocks at `ns_per_block` (16 pulses x 100 ns = 1600 ns).
[[nodiscard]] double cold_boot_drain_seconds(std::uint64_t dirty_blocks,
                                             double ns_per_block = 1600.0);

}  // namespace spe::core
