#pragma once
// Epoll-based non-blocking TCP server fronting a MemoryService (src/net).
//
// Threading model
//   event-loop thread    accept, read + incremental frame decode, response
//                        flush, idle sweeps, epoll re-arming. Owns every fd
//                        and the connection registry — no other thread
//                        touches a socket.
//   completion threads   wait on the MemoryService futures the event loop
//                        submitted, map the runtime error taxonomy onto
//                        wire Status codes, encode the response, append it
//                        to the connection's output buffer, and wake the
//                        event loop through an eventfd.
//
// Completion threads are shard-affine: each owns one lane (its own queue +
// cv), and a READ/WRITE is routed at submit time to lane shard_of(addr) %
// lanes. One shard's completions therefore settle in submission order on
// one thread — which also matches how the shard worker resolves the futures
// — and lanes never contend on a shared queue. SCRUB and cluster-handler
// work round-robins across lanes. Successful READ/WRITE responses are
// encoded straight into the connection's output buffer (append_frame_direct,
// no intermediate Frame); error paths still build a Frame.
//
// The only cross-thread state is each connection's output buffer (mutex),
// its in-flight counter / dead flag (atomics), the per-lane queues, and
// the dirty-connection list — everything else stays on the event loop.
//
// Admission control and lifecycle:
//   * max_connections: accepts over the cap are closed immediately.
//   * max_inflight_per_conn: a connection with that many unanswered
//     READ/WRITE/SCRUB frames gets Status::Overloaded (so does a submit
//     bounced by queue backpressure — QueueFullError maps to Overloaded).
//   * max_frame_bytes, protocol errors: one best-effort error frame, then
//     the connection closes (the decoder is poisoned anyway).
//   * idle_timeout: connections with no traffic and nothing in flight are
//     closed by the sweep.
//   * request_timeout: a future still unready past the deadline answers
//     Status::Timeout (the shard still executes the op; only the response
//     is abandoned).
//   * stop(): graceful drain-then-stop — stop accepting, answer queued
//     frames with Status::Stopped, wait (bounded by drain_timeout) for
//     in-flight completions to flush, then close everything and join.
//     Idempotent and safe to call from several threads.
//
// Observability: net.accept / net.request instants and a net.flush span on
// the event loop, spe_net_* counters + a request latency histogram merged
// into the service's metric export by export_metrics() (what the METRICS
// opcode returns).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/chaos.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "runtime/latency_histogram.hpp"
#include "runtime/memory_service.hpp"

namespace spe::net {

/// Optional cluster hook the server consults before its own dispatch. The
/// net layer stays cluster-agnostic: it hands every decoded request frame to
/// fast_path() and routes on the verdict, never interpreting the cluster
/// payloads itself (src/cluster implements this interface).
class ClusterHandler {
public:
  enum class Verdict : std::uint8_t {
    NotMine,  ///< normal server dispatch proceeds
    Respond,  ///< `response` is filled; send it as-is
    Defer,    ///< run slow_path() on a completion thread (may block)
  };

  virtual ~ClusterHandler() = default;

  /// Event-loop thread — must not block (no I/O, no fsync). Ownership
  /// checks and topology snapshots only.
  [[nodiscard]] virtual Verdict fast_path(const Frame& request, Frame& response) = 0;

  /// Completion thread — may block (journal fsync, peer network I/O).
  /// Must return a response frame and never throw out of the server's
  /// taxonomy; unexpected exceptions become Status::Internal.
  [[nodiscard]] virtual Frame slow_path(Frame&& request) = 0;

  /// Merged into the server's METRICS export.
  virtual void fill_metrics(obs::MetricsRegistry&) const {}
};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; start() returns the kernel's pick
  int listen_backlog = 64;
  unsigned max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  unsigned max_inflight_per_conn = 64;  ///< 0 rejects every request (test hook)
  unsigned completion_threads = 2;
  std::chrono::milliseconds idle_timeout{30'000};    ///< 0 disables
  std::chrono::milliseconds request_timeout{5'000};  ///< 0 disables
  std::chrono::milliseconds drain_timeout{5'000};    ///< stop() in-flight bound
  /// Deadline-aware load shedding: a v3 READ/WRITE whose declared deadline
  /// is shorter than the target shard's expected queue wait is answered
  /// Status::Busy (with the expected wait as the retry-after hint) instead
  /// of being queued to time out. Frames without a deadline are unaffected.
  bool deadline_shedding = true;
  /// A connection whose output buffer has not drained at all for this long
  /// is evicted by the sweep (a stalled/zero-window peer would otherwise
  /// pin its buffer forever). 0 disables.
  std::chrono::milliseconds stall_timeout{10'000};
  /// Hard cap on one connection's un-flushed output; a slow consumer past
  /// it is closed rather than ballooning server memory. 0 disables.
  std::size_t max_output_buffer = std::size_t{8} << 20;
  /// Chaos injection on this server's frame I/O (nullptr = clean). The
  /// per-connection stream id is the accept sequence number, so a
  /// fixed-order connect sequence replays identical injections.
  std::shared_ptr<ChaosPolicy> chaos;
};

/// Plain copy of the server's counters at a point in time.
struct ServerCountersSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_active = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t overload_rejected = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t busy_shed = 0;        ///< deadline-aware Busy rejections
  std::uint64_t stalled_closed = 0;   ///< output-stall / buffer-cap evictions
  std::uint64_t drain_aborted = 0;    ///< in-flight ops failed typed at drain expiry
  std::uint64_t requests_completed = 0;  ///< responses encoded (any status)
  runtime::LatencyHistogram::Snapshot request_latency;  ///< frame rx -> response encoded
};

class Server {
public:
  /// The service must outlive the server.
  explicit Server(runtime::MemoryService& service, ServerConfig config = {});
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Installs the cluster hook. Call before start(); the handler must
  /// outlive the server. Null detaches (single-node mode: the v2 cluster
  /// opcodes answer BadRequest).
  void set_cluster_handler(ClusterHandler* handler) noexcept {
    cluster_ = handler;
  }

  /// Binds, listens, and starts the event-loop + completion threads.
  /// Returns the bound port. Throws std::runtime_error on socket failure.
  std::uint16_t start();

  /// Graceful drain-then-stop (see file comment). Idempotent; concurrent
  /// callers block until the first one finishes.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stop_done_flag_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerCountersSnapshot counters() const;

  /// Requests submitted but not yet answered. 0 after stop() returns — the
  /// chaos campaign's "no stuck futures" assertion.
  [[nodiscard]] std::size_t pending_requests() const noexcept {
    return pending_count_.load(std::memory_order_acquire);
  }

  /// spe_net_* counters/gauges/histogram into `registry`.
  void fill_metrics(obs::MetricsRegistry& registry) const;

  /// Service metrics + net metrics in one deterministic export — the body
  /// of a METRICS response.
  [[nodiscard]] std::string export_metrics(
      obs::MetricsFormat format = obs::MetricsFormat::Prometheus) const;

private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;  ///< accept sequence number (log/trace handle)
    FrameDecoder decoder;
    std::mutex out_mutex;                ///< guards out/out_off (completion threads)
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::atomic<int> inflight{0};
    std::atomic<bool> dead{false};
    std::atomic<bool> chaos_kill{false};  ///< tx Reset decided; loop closes it
    std::atomic<std::uint64_t> chaos_tx_events{0};
    std::uint64_t chaos_rx_events = 0;  ///< event loop only
    bool want_write = false;   ///< event loop: EPOLLOUT armed
    bool closing = false;      ///< event loop: close once flushed + drained
    std::chrono::steady_clock::time_point last_activity;
    /// Last time flush() moved at least one byte while output was pending
    /// (guarded by out_mutex). Stall eviction compares against this.
    std::chrono::steady_clock::time_point last_progress;
  };

  struct Pending {
    enum class Kind : std::uint8_t {
      Read, Write, Scrub, Handler, Rotate
    } kind = Kind::Read;
    std::shared_ptr<Conn> conn;
    std::uint64_t request_id = 0;
    std::uint8_t version = kWireVersion;  ///< echoed into the response
    std::uint64_t deadline_ms = 0;  ///< v3 op deadline; 0 = none
    unsigned lane = 0;  ///< completion lane chosen at submit (shard-affine)
    /// v4: the authenticated tenant this request runs as (default for
    /// legacy frames). `admitted` means a per-tenant inflight slot is held
    /// and must be released when the request settles.
    std::uint32_t tenant = 0;
    bool admitted = false;
    std::uint32_t rotate_target = 0;  ///< Kind::Rotate: tenant to rotate
    std::chrono::steady_clock::time_point received;
    std::future<std::vector<std::uint8_t>> read_future;
    std::future<void> write_future;
    Frame handler_frame;  ///< Kind::Handler: the deferred cluster request
  };

  /// One completion thread's private work queue (see file comment).
  struct CompletionLane {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Pending> queue;
  };

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> frames_rx{0};
    std::atomic<std::uint64_t> frames_tx{0};
    std::atomic<std::uint64_t> bytes_rx{0};
    std::atomic<std::uint64_t> bytes_tx{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> overload_rejected{0};
    std::atomic<std::uint64_t> request_timeouts{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> busy_shed{0};
    std::atomic<std::uint64_t> stalled_closed{0};
    std::atomic<std::uint64_t> drain_aborted{0};
    std::atomic<std::uint64_t> requests_completed{0};
    runtime::LatencyHistogram request_latency;
  };

  void event_loop();
  void completion_loop(CompletionLane& lane);
  void accept_ready();
  void conn_readable(const std::shared_ptr<Conn>& conn);
  void handle_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  void submit_request(const std::shared_ptr<Conn>& conn, Frame&& frame);
  /// Queues a cluster frame for ClusterHandler::slow_path on a completion
  /// thread (same admission control as submit_request).
  void submit_handler(const std::shared_ptr<Conn>& conn, Frame&& frame);
  [[nodiscard]] bool admit(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void enqueue_pending(const std::shared_ptr<Conn>& conn, Pending&& pending);
  /// Event-loop side: enqueue a response and try to flush immediately.
  void respond_now(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Completion-thread side: enqueue a response and wake the event loop.
  void deliver(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Completion-thread side, zero-copy: encode an Ok response with this
  /// payload straight into the connection's output buffer and wake the
  /// event loop (no intermediate Frame).
  void deliver_direct(const Pending& pending, Opcode opcode,
                      std::span<const std::uint8_t> payload);
  /// The one tx encode path all three of the above funnel through: appends
  /// the encoded response under out_mutex, applying tx chaos. Returns false
  /// when the chaos decision swallowed the frame (nothing appended).
  /// `may_block` gates the Delay action (completion threads only — the
  /// event loop must never sleep).
  bool append_response(const std::shared_ptr<Conn>& conn, std::uint8_t version,
                       Opcode opcode, Status status, std::uint64_t request_id,
                       std::span<const std::uint8_t> payload, bool may_block);
  /// Settles one pending request on its completion lane: waits the future
  /// (bounded by request_timeout), encodes and delivers the response.
  void finish_pending(Pending& pending);
  void flush(const std::shared_ptr<Conn>& conn);
  void set_want_write(Conn& conn, bool want);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void sweep_idle(std::chrono::steady_clock::time_point now);
  void wake() noexcept;

  runtime::MemoryService& service_;
  ServerConfig config_;
  ClusterHandler* cluster_ = nullptr;
  Counters counters_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 0;

  std::thread event_thread_;
  std::vector<std::thread> completion_threads_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< event loop only

  std::vector<std::unique_ptr<CompletionLane>> lanes_;  ///< one per completion thread
  unsigned next_lane_ = 0;  ///< event loop only: round-robin for laneless work
  std::atomic<bool> completions_quit_{false};

  std::mutex dirty_mutex_;
  std::vector<std::shared_ptr<Conn>> dirty_;  ///< conns with fresh output

  std::atomic<std::size_t> pending_count_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  /// drain_timeout expired during stop(): finish_pending stops waiting on
  /// futures and answers the remainder with Status::Stopped (typed, never
  /// silently dropped).
  std::atomic<bool> drain_expired_{false};
  std::atomic<bool> quit_{false};
  std::atomic<bool> stop_started_{false};
  std::atomic<bool> stop_done_flag_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_done_ = false;
};

}  // namespace spe::net
