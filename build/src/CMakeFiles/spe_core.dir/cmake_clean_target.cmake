file(REMOVE_RECURSE
  "libspe_core.a"
)
