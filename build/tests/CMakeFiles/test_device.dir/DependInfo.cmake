
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/device/cell_test.cpp" "tests/CMakeFiles/test_device.dir/device/cell_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/cell_test.cpp.o.d"
  "/root/repo/tests/device/mlc_test.cpp" "tests/CMakeFiles/test_device.dir/device/mlc_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/mlc_test.cpp.o.d"
  "/root/repo/tests/device/pulse_test.cpp" "tests/CMakeFiles/test_device.dir/device/pulse_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/pulse_test.cpp.o.d"
  "/root/repo/tests/device/team_model_test.cpp" "tests/CMakeFiles/test_device.dir/device/team_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/team_model_test.cpp.o.d"
  "/root/repo/tests/device/team_property_test.cpp" "tests/CMakeFiles/test_device.dir/device/team_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_device.dir/device/team_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spe_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
