file(REMOVE_RECURSE
  "libspe_sim.a"
)
