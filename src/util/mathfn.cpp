#include "util/mathfn.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace spe::util {

namespace {
constexpr double kEps = 1e-15;
constexpr int kMaxIter = 10000;

// Series expansion for P(a, x), converges quickly for x < a + 1.
double igam_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction (modified Lentz) for Q(a, x), converges for x >= a + 1.
double igamc_cf(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}
}  // namespace

double igam(double a, double x) {
  if (a <= 0.0 || x < 0.0) throw std::domain_error("igam: requires a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return igam_series(a, x);
  return 1.0 - igamc_cf(a, x);
}

double igamc(double a, double x) {
  if (a <= 0.0 || x < 0.0) throw std::domain_error("igamc: requires a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - igam_series(a, x);
  return igamc_cf(a, x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double erfc(double x) { return std::erfc(x); }

double log_factorial(unsigned n) {
  if (n < 2) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log10_permutations(unsigned n, unsigned k) {
  if (k > n) throw std::domain_error("log10_permutations: k > n");
  return (log_factorial(n) - log_factorial(n - k)) / std::log(10.0);
}

}  // namespace spe::util
