// SP 800-22 2.6 Discrete Fourier Transform (spectral) test. Our FFT is
// radix-2, so the test runs on the largest power-of-two prefix of the
// sequence (the suite's data-set generators emit power-of-two lengths, so
// normally nothing is discarded).

#include <bit>
#include <cmath>

#include "nist/suite.hpp"
#include "util/fft.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

TestResult dft_test(const util::BitVector& bits) {
  TestResult r{"DFT", {}, true};
  std::size_t n = bits.size();
  if (n < 1024) {
    r.applicable = false;
    return r;
  }
  n = std::bit_floor(n);

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits.get(i) ? 1.0 : -1.0;
  const auto mags = util::real_magnitude_spectrum(x);

  const double t = std::sqrt(std::log(1.0 / 0.05) * static_cast<double>(n));
  const double n0 = 0.95 * static_cast<double>(n) / 2.0;
  double n1 = 0.0;
  // Peaks 0 .. n/2 - 1 per the reference implementation.
  for (std::size_t i = 0; i < n / 2; ++i) n1 += mags[i] < t ? 1.0 : 0.0;

  const double d =
      (n1 - n0) / std::sqrt(static_cast<double>(n) * 0.95 * 0.05 / 4.0);
  r.p_values.push_back(util::erfc(std::fabs(d) / std::sqrt(2.0)));
  return r;
}

}  // namespace spe::nist
