#pragma once
// Consistent-hash ring mapping block addresses onto named cluster nodes
// (src/cluster). Each node contributes `weight * kVnodesPerWeight` virtual
// points hashed from (name, vnode index) with a fixed 64-bit mix, so
// placement is deterministic across processes, architectures and runs —
// two nodes that build a ring from the same topology agree on every
// owner() answer without talking to each other. Virtual nodes keep the
// per-node share near 1/N (tests pin <= 1/N + epsilon), and the classic
// consistent-hashing property holds: adding or removing one node moves
// only the arc that node gains or loses (~1/N of the keys), never
// reshuffles the rest.

#include <cstdint>
#include <string>
#include <vector>

namespace spe::cluster {

/// Virtual points contributed per unit of node weight. 64 is enough to
/// bound the max share within a few percent of fair for small clusters
/// while keeping ring rebuilds trivially cheap.
inline constexpr unsigned kVnodesPerWeight = 64;

class HashRing {
public:
  /// Deterministic 64-bit mix used for both vnode points and key lookups
  /// (splitmix64 finalizer — public so tests can pin exact placements).
  [[nodiscard]] static std::uint64_t mix64(std::uint64_t x) noexcept;
  /// FNV-1a over a string, then mixed — the vnode point for (name, index).
  [[nodiscard]] static std::uint64_t point_hash(const std::string& name,
                                                unsigned vnode) noexcept;

  /// Adds `weight * kVnodesPerWeight` points for `name`. Zero weight means
  /// the node is a ring member with no arcs (draining); adding a duplicate
  /// name replaces its previous weight.
  void add_node(const std::string& name, unsigned weight = 1);
  void remove_node(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<std::string> nodes() const;

  /// The node owning `block_addr` — the first ring point at or clockwise of
  /// mix64(addr). Throws std::logic_error on an empty ring (no weighted
  /// node): routing against a memberless cluster is a caller bug.
  [[nodiscard]] const std::string& owner(std::uint64_t block_addr) const;

  /// Order-insensitive digest of the ring's points — equal digests mean
  /// identical placement for every possible address.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  [[nodiscard]] std::size_t point_count() const noexcept { return points_.size(); }

private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  ///< index into nodes_
  };
  void rebuild();

  std::vector<std::pair<std::string, unsigned>> nodes_;  ///< (name, weight)
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace spe::cluster
