#pragma once
// Coverage-vs-size placement frontier (DESIGN.md §14).
//
// One FrontierPoint per crossbar size: the minimum-PoE placement (security
// margin S) solved through the portfolio, with provenance — which backend
// won, with what status, and the tightest anytime bound any member proved.
// Lives in src/ilp (not bench/) so bench/placement_frontier and the golden
// regression test (tests/ilp/golden_frontier_test.cpp) compute and
// serialise rows through the exact same code; the golden file simply omits
// the machine-dependent timing fields.

#include <string>
#include <vector>

#include "ilp/poe_placement.hpp"

namespace spe::ilp {

struct FrontierPoint {
  unsigned rows = 0;
  unsigned cols = 0;
  unsigned security_s = 0;

  bool feasible = false;
  bool optimal = false;
  Solution::Status status = Solution::Status::NoSolution;
  BackendKind backend = BackendKind::BranchAndBound;  ///< winning backend

  unsigned poes = 0;            ///< chosen PoE count
  unsigned total_coverage = 0;  ///< sum of per-cell coverage
  unsigned overlapped_cells = 0;
  unsigned uncovered_cells = 0;

  double best_bound = 0.0;  ///< proven bound on the minimum count
  bool has_bound = false;
  double elapsed_ms = 0.0;  ///< wall-clock across all portfolio members
};

/// Solves the minimum-PoE model for one square size through the portfolio.
/// `base` seeds default_schedule(); security margin S scales as cells/16
/// when `security_s` is negative (a fixed fraction keeps the frontier
/// comparable across sizes), else the given value is used for every size.
[[nodiscard]] FrontierPoint frontier_point(unsigned size, int security_s,
                                           const SolverOptions& base);

/// The full sweep: one point per entry of `sizes` (square crossbars).
[[nodiscard]] std::vector<FrontierPoint> placement_frontier(
    const std::vector<unsigned>& sizes, int security_s, const SolverOptions& base);

/// JSON serialisation metadata. `include_timing` gates the elapsed_ms
/// field: the bench emits it, the golden file omits it so the checked-in
/// bytes are machine-independent.
struct FrontierMeta {
  std::string source = "placement_frontier";
  std::string config;
  std::string git_sha = "unknown";
  bool include_timing = true;
};

inline constexpr const char* kFrontierSchema = "spe.bench.frontier.v1";

/// Serialises the frontier as the spe.bench.frontier.v1 document
/// (validated by scripts/bench_frontier.schema.json). Deterministic byte
/// output for fixed inputs: fixed field order, fixed float formatting.
[[nodiscard]] std::string frontier_json(const std::vector<FrontierPoint>& points,
                                        const FrontierMeta& meta);

}  // namespace spe::ilp
