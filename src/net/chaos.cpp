#include "net/chaos.hpp"

#include <cstdlib>
#include <sstream>

#include "util/rng.hpp"

namespace spe::net {

namespace {

// Per-action stream tags keep the decision classes statistically independent
// even though they hash the same sites (same idiom as fault_plan.cpp).
constexpr std::uint64_t kDropTag = 0xD209F4A3E5C0FFEEull;
constexpr std::uint64_t kDelayTag = 0xDE1A7ED5107712A1ull;
constexpr std::uint64_t kCorruptTag = 0xC0224907B17F11B5ull;
constexpr std::uint64_t kTruncateTag = 0x7249CA7E0FF5E75Dull;
constexpr std::uint64_t kDuplicateTag = 0xD4B11CA7EF2A3E59ull;
constexpr std::uint64_t kResetTag = 0x2E5E7C022EC7104Eull;
// Auxiliary streams (delay width, corrupt offset/mask, truncate point) get
// their own tags so they never correlate with the yes/no decisions.
constexpr std::uint64_t kDelayPickTag = 0xA1B2DE1A79C4D5E6ull;
constexpr std::uint64_t kOffsetTag = 0x0FF5E7B17E5EEDedull;
constexpr std::uint64_t kMaskTag = 0x3A5CF11BB17FA5C9ull;
constexpr std::uint64_t kTruncPickTag = 0x97249CA7E5E0D15Cull;

double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double env_rate(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return 0.0;
  const double v = std::strtod(raw, nullptr);
  if (v < 0.0) return 0.0;
  if (v > 1.0) return 1.0;
  return v;
}

}  // namespace

const char* to_string(ChaosAction action) noexcept {
  switch (action) {
    case ChaosAction::None: return "none";
    case ChaosAction::Drop: return "drop";
    case ChaosAction::Delay: return "delay";
    case ChaosAction::Corrupt: return "corrupt";
    case ChaosAction::Truncate: return "truncate";
    case ChaosAction::Duplicate: return "duplicate";
    case ChaosAction::Reset: return "reset";
  }
  return "none";
}

bool ChaosConfig::enabled() const noexcept {
  if (rates.any()) return true;
  for (const auto& override_rates : per_opcode) {
    if (override_rates.has_value() && override_rates->any()) return true;
  }
  return false;
}

ChaosConfig ChaosConfig::from_env() {
  ChaosConfig config;
  if (const char* raw = std::getenv("SPE_CHAOS_SEED"); raw != nullptr && *raw != '\0') {
    config.seed = std::strtoull(raw, nullptr, 0);
  }
  config.rates.drop = env_rate("SPE_CHAOS_DROP");
  config.rates.delay = env_rate("SPE_CHAOS_DELAY");
  config.rates.corrupt = env_rate("SPE_CHAOS_CORRUPT");
  config.rates.truncate = env_rate("SPE_CHAOS_TRUNCATE");
  config.rates.duplicate = env_rate("SPE_CHAOS_DUPLICATE");
  config.rates.reset = env_rate("SPE_CHAOS_RESET");
  if (const char* raw = std::getenv("SPE_CHAOS_DELAY_MS_MAX");
      raw != nullptr && *raw != '\0') {
    const long long ms = std::strtoll(raw, nullptr, 10);
    if (ms > 0) config.delay_max = std::chrono::milliseconds(ms);
    if (config.delay_max < config.delay_min) config.delay_min = config.delay_max;
  }
  return config;
}

void ChaosStats::note(ChaosAction action) noexcept {
  switch (action) {
    case ChaosAction::None: break;
    case ChaosAction::Drop: dropped.fetch_add(1, std::memory_order_relaxed); break;
    case ChaosAction::Delay: delayed.fetch_add(1, std::memory_order_relaxed); break;
    case ChaosAction::Corrupt: corrupted.fetch_add(1, std::memory_order_relaxed); break;
    case ChaosAction::Truncate: truncated.fetch_add(1, std::memory_order_relaxed); break;
    case ChaosAction::Duplicate: duplicated.fetch_add(1, std::memory_order_relaxed); break;
    case ChaosAction::Reset: reset.fetch_add(1, std::memory_order_relaxed); break;
  }
}

std::uint64_t ChaosStats::total() const noexcept {
  return dropped.load(std::memory_order_relaxed) +
         delayed.load(std::memory_order_relaxed) +
         corrupted.load(std::memory_order_relaxed) +
         truncated.load(std::memory_order_relaxed) +
         duplicated.load(std::memory_order_relaxed) +
         reset.load(std::memory_order_relaxed);
}

std::string ChaosStats::to_string() const {
  std::ostringstream out;
  out << "drop=" << dropped.load(std::memory_order_relaxed)
      << " delay=" << delayed.load(std::memory_order_relaxed)
      << " corrupt=" << corrupted.load(std::memory_order_relaxed)
      << " truncate=" << truncated.load(std::memory_order_relaxed)
      << " duplicate=" << duplicated.load(std::memory_order_relaxed)
      << " reset=" << reset.load(std::memory_order_relaxed);
  return out.str();
}

ChaosPolicy::ChaosPolicy(ChaosConfig config)
    : config_(config), enabled_(config.enabled()) {}

std::uint64_t ChaosPolicy::site_hash(std::uint64_t tag,
                                     const ChaosSite& site) const noexcept {
  std::uint64_t h = util::mix64(config_.seed ^ tag);
  h = util::mix64(h ^ site.stream);
  h = util::mix64(h ^ site.event);
  return util::mix64(h ^ ((std::uint64_t{site.opcode} << 1) | (site.rx ? 1u : 0u)));
}

ChaosAction ChaosPolicy::decide(const ChaosSite& site) const noexcept {
  if (!enabled_) return ChaosAction::None;
  const ChaosRates* rates = &config_.rates;
  if (site.opcode < config_.per_opcode.size() &&
      config_.per_opcode[site.opcode].has_value()) {
    rates = &*config_.per_opcode[site.opcode];
  }
  if (!rates->any()) return ChaosAction::None;
  // Fixed precedence, each action on its own hash stream: the first action
  // whose independent coin lands wins. Precedence puts the most disruptive
  // outcomes first so raising e.g. the delay rate never masks a reset.
  if (rates->reset > 0.0 &&
      unit_interval(site_hash(kResetTag, site)) < rates->reset) {
    return ChaosAction::Reset;
  }
  if (rates->drop > 0.0 &&
      unit_interval(site_hash(kDropTag, site)) < rates->drop) {
    return ChaosAction::Drop;
  }
  if (rates->truncate > 0.0 &&
      unit_interval(site_hash(kTruncateTag, site)) < rates->truncate) {
    return ChaosAction::Truncate;
  }
  if (rates->corrupt > 0.0 &&
      unit_interval(site_hash(kCorruptTag, site)) < rates->corrupt) {
    return ChaosAction::Corrupt;
  }
  if (rates->duplicate > 0.0 &&
      unit_interval(site_hash(kDuplicateTag, site)) < rates->duplicate) {
    return ChaosAction::Duplicate;
  }
  if (rates->delay > 0.0 &&
      unit_interval(site_hash(kDelayTag, site)) < rates->delay) {
    return ChaosAction::Delay;
  }
  return ChaosAction::None;
}

std::chrono::milliseconds ChaosPolicy::delay_for(const ChaosSite& site) const noexcept {
  const auto lo = config_.delay_min.count();
  const auto hi = config_.delay_max.count();
  if (hi <= lo) return config_.delay_min;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  const std::uint64_t pick = site_hash(kDelayPickTag, site) % span;
  return std::chrono::milliseconds(lo + static_cast<long long>(pick));
}

std::size_t ChaosPolicy::corrupt_offset(const ChaosSite& site,
                                        std::size_t len) const noexcept {
  if (len == 0) return 0;
  return static_cast<std::size_t>(site_hash(kOffsetTag, site) % len);
}

std::uint8_t ChaosPolicy::corrupt_mask(const ChaosSite& site) const noexcept {
  const auto mask = static_cast<std::uint8_t>(site_hash(kMaskTag, site) & 0xFF);
  return mask == 0 ? std::uint8_t{0x01} : mask;
}

std::size_t ChaosPolicy::truncate_len(const ChaosSite& site,
                                      std::size_t len) const noexcept {
  if (len == 0) return 0;
  return static_cast<std::size_t>(site_hash(kTruncPickTag, site) % len);
}

}  // namespace spe::net
