#include "xbar/sneak_path.hpp"

#include <stdexcept>

namespace spe::xbar {

namespace {
std::vector<LineDrive> poe_row_drives(const Crossbar& xbar, PoE poe, double voltage) {
  std::vector<LineDrive> drives(xbar.rows(), LineDrive::floating());
  drives.at(poe.row) = LineDrive::driven(voltage);
  return drives;
}

std::vector<LineDrive> poe_col_drives(const Crossbar& xbar, PoE poe) {
  std::vector<LineDrive> drives(xbar.cols(), LineDrive::floating());
  drives.at(poe.col) = LineDrive::driven(0.0);
  return drives;
}
}  // namespace

NodalSolution solve_poe(Crossbar& xbar, PoE poe, double voltage) {
  if (poe.row >= xbar.rows() || poe.col >= xbar.cols())
    throw std::out_of_range("solve_poe: PoE outside crossbar");
  xbar.set_all_gates(true);
  return solve_crossbar(xbar, poe_row_drives(xbar, poe, voltage), poe_col_drives(xbar, poe));
}

NodalSolution apply_poe_pulse(Crossbar& xbar, PoE poe, const spe::device::Pulse& pulse,
                              int substeps) {
  if (substeps <= 0) throw std::invalid_argument("apply_poe_pulse: substeps must be > 0");
  xbar.set_all_gates(true);
  const auto row_drives = poe_row_drives(xbar, poe, pulse.voltage);
  const auto col_drives = poe_col_drives(xbar, poe);
  const double dt = pulse.width / substeps;

  NodalSolution sol = solve_crossbar(xbar, row_drives, col_drives);
  for (int s = 0; s < substeps; ++s) {
    if (s > 0) sol = solve_crossbar(xbar, row_drives, col_drives);
    for (unsigned r = 0; r < xbar.rows(); ++r)
      for (unsigned c = 0; c < xbar.cols(); ++c)
        xbar.cell({r, c}).apply_cell_voltage(sol.cell_voltage(r, c), dt, 50);
  }
  return solve_crossbar(xbar, row_drives, col_drives);
}

NodalSolution solve_normal_read(Crossbar& xbar, unsigned row, unsigned col, double voltage) {
  if (row >= xbar.rows() || col >= xbar.cols())
    throw std::out_of_range("solve_normal_read");
  xbar.select_row(row);
  std::vector<LineDrive> row_drives(xbar.rows(), LineDrive::floating());
  row_drives[row] = LineDrive::driven(voltage);
  std::vector<LineDrive> col_drives(xbar.cols(), LineDrive::floating());
  col_drives[col] = LineDrive::driven(0.0);
  return solve_crossbar(xbar, row_drives, col_drives);
}

}  // namespace spe::xbar
