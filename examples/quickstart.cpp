// Quickstart: the five-minute tour of the SPE library.
//
//  1. Manufacture a memristor NVMM (device parameters + per-chip variation).
//  2. Provision its SPE key into the platform TPM.
//  3. Power up the SPECU, write and read cache blocks.
//  4. Power down — everything in the array is ciphertext.
//  5. Power back up and read the data (instant-on).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/specu.hpp"

int main() {
  using namespace spe;
  std::printf("== SPE quickstart ==\n\n");

  // 1. The NVMM. device_seed models the manufacturing instance: another
  //    seed is physically another chip with another fingerprint.
  core::SnvmmConfig config;
  config.device_seed = 20260704;
  core::Snvmm nvmm(config);
  std::printf("NVMM device id %llu, fingerprint %016llx, %u-byte blocks\n",
              static_cast<unsigned long long>(nvmm.device_id()),
              static_cast<unsigned long long>(nvmm.fingerprint()), nvmm.block_bytes());

  // 2. TPM provisioning: the 88-bit key is sealed against this device and a
  //    platform integrity measurement.
  util::Xoshiro256ss rng(7);
  const core::SpeKey key = core::SpeKey::random(rng);
  const std::uint64_t platform_measurement = 0x0123456789ABCDEF;
  core::Tpm tpm;
  tpm.provision(nvmm.device_id(), platform_measurement, key);
  std::printf("Sealed key %s into the TPM\n\n", key.to_hex().c_str());

  // 3. Power on and use the memory. (First power-on builds the physics
  //    calibration for this chip — a few hundred milliseconds.)
  core::Specu specu(nvmm, core::SpeMode::Parallel);
  if (!specu.power_on(tpm, platform_measurement)) {
    std::printf("TPM refused the key!\n");
    return 1;
  }
  std::printf("SPECU powered on (SPE-parallel mode)\n");

  const std::string secret = "user=alice password=correct-horse-battery";
  std::vector<std::uint8_t> block(64, 0);
  std::copy(secret.begin(), secret.end(), block.begin());
  specu.write_block(/*block address=*/0x40, block);
  std::printf("wrote:  \"%s\"\n", secret.c_str());

  const auto read_back = specu.read_block(0x40);
  std::printf("read:   \"%.*s\"\n", 42, reinterpret_cast<const char*>(read_back.data()));

  // What is *physically* in the array right now?
  const auto probe = nvmm.probe_block(0x40);
  std::printf("array:  ");
  for (int i = 0; i < 16; ++i) std::printf("%02x", probe[i]);
  std::printf("... (ciphertext, even while powered)\n\n");

  // 4. Power down: the key evaporates from the SPECU's volatile store.
  specu.power_down();
  std::printf("powered down; array still holds only ciphertext\n");

  // 5. Instant-on: power up, TPM releases the key, data decrypts in place.
  core::Specu again(nvmm, core::SpeMode::Parallel);
  again.power_on(tpm, platform_measurement);
  const auto recovered = again.read_block(0x40);
  std::printf("recovered after power cycle: \"%.*s\"\n", 42,
              reinterpret_cast<const char*>(recovered.data()));
  std::printf("\nroundtrip %s\n", recovered == block ? "OK" : "FAILED");
  return recovered == block ? 0 : 1;
}
