#include "runtime/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/lut.hpp"
#include "ecc/level_ecc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spe::runtime {

namespace {
core::SnvmmConfig shard_memory_config(unsigned id, const ServiceConfig& config) {
  core::SnvmmConfig mem = config.shard_memory;
  mem.device_seed = config.device_seed_base + id;  // distinct manufactured instance
  return mem;
}

/// PoE set for this shard's crossbar geometry. The 8x8 default geometry
/// passes {} through so Specu keeps using its built-in table (identical
/// behaviour to before the portfolio existed); any other geometry is solved
/// once via the placement portfolio and memoised process-wide.
std::vector<unsigned> shard_poes(const core::Snvmm& memory, const ServiceConfig& config) {
  const auto& params = memory.device_params();
  if (params.rows == 8 && params.cols == 8) return {};
  return core::poes_for_crossbar(params.rows, params.cols, config.placement_seed,
                                 config.placement_time_limit_ms);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  char buf[8];
  in.read(buf, 8);
  if (static_cast<std::size_t>(in.gcount()) != 8 || !in)
    throw std::runtime_error(std::string("shard state: truncated while reading ") + what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

/// Like read_u64, but a clean end-of-stream yields nullopt instead of
/// throwing — fields appended to the blob format (the rotation records) are
/// simply absent in blobs written before they existed.
std::optional<std::uint64_t> read_u64_opt(std::istream& in, const char* what) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() == 0) return std::nullopt;
  if (static_cast<std::size_t>(in.gcount()) != 8)
    throw std::runtime_error(std::string("shard state: truncated while reading ") + what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}
}  // namespace

BankShard::BankShard(unsigned id, const ServiceConfig& config,
                     std::shared_ptr<const fault::FaultPlan> fault_plan)
    : id_(id),
      config_(config),
      queue_(id, config.queue_capacity, config.backpressure, config.coalesce_writes,
             counters_),
      memory_(shard_memory_config(id, config)),
      specu_(memory_, config.mode, shard_poes(memory_, config)),
      batch_(specu_) {
  if (fault_plan)
    injector_ = std::make_unique<fault::FaultInjector>(std::move(fault_plan),
                                                       memory_.device_id());
}

BankShard::BankShard(unsigned id, const ServiceConfig& config,
                     std::shared_ptr<const fault::FaultPlan> fault_plan,
                     std::istream& in)
    : BankShard(id, config, std::move(fault_plan), read_state(in)) {}

BankShard::BankShard(unsigned id, const ServiceConfig& config,
                     std::shared_ptr<const fault::FaultPlan> fault_plan,
                     RestoredState state)
    : id_(id),
      config_(config),
      queue_(id, config.queue_capacity, config.backpressure, config.coalesce_writes,
             counters_),
      memory_(std::move(state.image.nvmm)),
      specu_(memory_, config.mode, shard_poes(memory_, config)),
      batch_(specu_) {
  if (memory_.device_id() != config.device_seed_base + id)
    throw std::runtime_error(
        "shard state: device seed mismatch (checkpoint is for a different "
        "shard or fleet)");
  if (fault_plan) {
    injector_ = std::make_unique<fault::FaultInjector>(std::move(fault_plan),
                                                       memory_.device_id());
    for (const auto& [addr, epoch] : state.remap_table)
      injector_->set_remap_epoch(addr, epoch);
  }
  // Restored quarantines are resident state, not new events: bypass the
  // quarantine counter (it counts what happens in *this* process).
  quarantined_ = std::move(state.quarantined);
  restored_crc_corrupt_ = std::move(state.image.corrupt_blocks);
  scrub_cursor_ = state.scrub_cursor;
  restored_domains_ = std::move(state.domains);
}

BankShard::RestoredState BankShard::read_state(std::istream& in) {
  RestoredState state{core::load_image_checked(in), {}, {}, 0};
  const std::uint64_t quarantined = read_u64(in, "quarantine count");
  for (std::uint64_t i = 0; i < quarantined; ++i) {
    const std::uint64_t addr = read_u64(in, "quarantine address");
    const std::uint64_t reason = read_u64(in, "quarantine reason");
    if (reason != static_cast<std::uint64_t>(QuarantineReason::Uncorrectable) &&
        reason != static_cast<std::uint64_t>(QuarantineReason::Torn))
      throw std::runtime_error("shard state: unknown quarantine reason");
    state.quarantined.emplace(addr, static_cast<QuarantineReason>(reason));
  }
  const std::uint64_t remaps = read_u64(in, "remap table size");
  for (std::uint64_t i = 0; i < remaps; ++i) {
    const std::uint64_t addr = read_u64(in, "remap address");
    const std::uint64_t epoch = read_u64(in, "remap epoch");
    state.remap_table.emplace_back(addr, static_cast<std::uint32_t>(epoch));
  }
  state.scrub_cursor = read_u64(in, "scrub cursor");
  // Rotation records (appended by the multi-tenant format revision): a
  // pre-tenant blob simply ends at the scrub cursor.
  if (const auto domain_count = read_u64_opt(in, "domain record count")) {
    for (std::uint64_t d = 0; d < *domain_count; ++d) {
      DomainRecord rec;
      rec.tenant = static_cast<tenant::TenantId>(read_u64(in, "domain tenant id"));
      rec.key_epoch = static_cast<std::uint32_t>(read_u64(in, "domain key epoch"));
      rec.old_active = read_u64(in, "domain old-epoch flag") != 0;
      rec.old_key_epoch = static_cast<std::uint32_t>(read_u64(in, "domain old epoch"));
      const std::uint64_t rotating = read_u64(in, "domain rotating count");
      rec.rotating.reserve(rotating);
      for (std::uint64_t i = 0; i < rotating; ++i)
        rec.rotating.push_back(read_u64(in, "domain rotating address"));
      state.domains.push_back(std::move(rec));
    }
  }
  return state;
}

void BankShard::save_state_locked(std::ostream& out) const {
  core::save_image(memory_, out);
  // Quarantine map in address order so identical state yields identical
  // bytes (the crash campaign diffs blobs).
  const std::map<std::uint64_t, QuarantineReason> ordered(quarantined_.begin(),
                                                          quarantined_.end());
  write_u64(out, ordered.size());
  for (const auto& [addr, reason] : ordered) {
    write_u64(out, addr);
    write_u64(out, static_cast<std::uint64_t>(reason));
  }
  const auto remaps =
      injector_ ? injector_->remap_table() : std::map<std::uint64_t, std::uint32_t>{};
  write_u64(out, remaps.size());
  for (const auto& [addr, epoch] : remaps) {
    write_u64(out, addr);
    write_u64(out, epoch);
  }
  write_u64(out, scrub_cursor_);
  // Rotation records: per-domain key epochs plus the addresses still
  // resting under the previous key. Deterministic (both containers sorted),
  // and written even when empty so restored state round-trips byte-for-byte.
  write_u64(out, domains_.size());
  for (const auto& [tid, domain] : domains_) {
    write_u64(out, tid);
    write_u64(out, domain.key_epoch);
    write_u64(out, domain.old_specu ? 1 : 0);
    write_u64(out, domain.old_key_epoch);
    write_u64(out, domain.rotating.size());
    for (const std::uint64_t addr : domain.rotating) write_u64(out, addr);
  }
  if (!out) throw std::runtime_error("shard state: write failure");
}

void BankShard::save_state(std::ostream& out) const {
  std::lock_guard lock(state_mutex_);
  save_state_locked(out);
}

void BankShard::set_crash_hook(std::function<void(unsigned, const std::string&)> hook) {
  std::lock_guard lock(state_mutex_);
  crash_hook_ = std::move(hook);
  if (crash_hook_) {
    // The observer fires inside Specu operations, i.e. on the worker thread
    // with state_mutex_ already held — hence the _locked serialiser.
    memory_.journal().set_observer([this] {
      std::ostringstream blob;
      save_state_locked(blob);
      crash_hook_(id_, blob.str());
    });
  } else {
    memory_.journal().set_observer(nullptr);
  }
}

bool BankShard::power_on(const core::Tpm& tpm, std::uint64_t measurement) {
  std::lock_guard lock(state_mutex_);
  return specu_.power_on(tpm, measurement);
}

std::unique_ptr<core::Specu> BankShard::make_domain_specu() {
  return std::make_unique<core::Specu>(memory_, config_.mode,
                                       shard_poes(memory_, config_));
}

bool BankShard::power_on_tenants(const core::Tpm& tpm, std::uint64_t measurement) {
  std::lock_guard lock(state_mutex_);
  const auto& registry = config_.tenants;
  if (!registry) {
    restored_domains_.clear();
    return true;
  }
  std::map<tenant::TenantId, const DomainRecord*> restored;
  for (const DomainRecord& rec : restored_domains_) restored[rec.tenant] = &rec;
  domains_.clear();
  for (const tenant::TenantId tid : registry->ids()) {
    const auto rit = restored.find(tid);
    const DomainRecord* rec = rit == restored.end() ? nullptr : rit->second;
    Domain domain;
    domain.key_epoch = rec != nullptr ? rec->key_epoch : registry->key_epoch(tid);
    // Restore path: the shard blob carries the authoritative epoch (a fresh
    // registry starts every tenant at 0); raise the registry to match.
    registry->restore_epoch(tid, domain.key_epoch);
    domain.specu = make_domain_specu();
    if (!domain.specu->power_on(tpm, measurement,
                                tenant::TenantRegistry::key_handle(
                                    memory_.device_id(), tid, domain.key_epoch)))
      return false;
    // The constructor conservatively adopted EVERY plaintext resident block;
    // this controller re-encrypts only what its tenant owns.
    domain.specu->retain_plaintext(
        [&](std::uint64_t addr) { return registry->owner_of(addr) == tid; });
    domain.batch = std::make_unique<core::SpecuBatch>(*domain.specu);
    if (rec != nullptr && rec->old_active) {
      domain.old_key_epoch = rec->old_key_epoch;
      domain.old_specu = make_domain_specu();
      if (!domain.old_specu->power_on(tpm, measurement,
                                      tenant::TenantRegistry::key_handle(
                                          memory_.device_id(), tid,
                                          domain.old_key_epoch)))
        return false;
      // Old-epoch controllers never own pending plaintext: a handoff decrypt
      // moves the block straight into the current controller's pending set.
      domain.old_specu->retain_plaintext([](std::uint64_t) { return false; });
      for (const std::uint64_t addr : rec->rotating) {
        // A block whose decrypt committed before the crash (now plaintext,
        // pending in the current controller) or that vanished has already
        // left the old key domain.
        if (memory_.has_block(addr) && memory_.block(addr).encrypted)
          domain.rotating.insert(addr);
      }
      finish_rotation_locked(domain);
    }
    domains_.emplace(tid, std::move(domain));
  }
  // What remains pending in the default controller is default-owned only.
  specu_.retain_plaintext([&](std::uint64_t addr) {
    return registry->owner_of(addr) == tenant::kDefaultTenant;
  });
  restored_domains_.clear();
  return true;
}

std::uint64_t BankShard::begin_rotation(tenant::TenantId tenant, std::uint32_t new_epoch,
                                        const core::Tpm& tpm, std::uint64_t measurement) {
  std::lock_guard lock(state_mutex_);
  const auto& registry = config_.tenants;
  if (!registry) throw std::logic_error("BankShard::begin_rotation: no tenant registry");
  const auto it = domains_.find(tenant);
  if (it == domains_.end())
    throw std::invalid_argument("BankShard::begin_rotation: unknown tenant domain");
  Domain& domain = it->second;
  // At most one old epoch is live per domain: a still-draining previous
  // rotation finishes synchronously before the new one begins.
  while (domain.old_specu && !domain.rotating.empty()) {
    const std::uint64_t addr = *domain.rotating.begin();
    domain.old_specu->decrypt_for_handoff(addr);
    domain.rotating.erase(addr);
    domain.specu->resume_encrypt(addr, 0);
    if (config_.ecc_enabled) refresh_checks(addr);
  }
  finish_rotation_locked(domain);

  auto fresh = make_domain_specu();
  if (!fresh->power_on(tpm, measurement,
                       tenant::TenantRegistry::key_handle(memory_.device_id(),
                                                          tenant, new_epoch)))
    throw std::runtime_error("BankShard::begin_rotation: key release refused");
  // Pending plaintext follows the NEW controller — it re-encrypts under the
  // new key; the outgoing controller keeps none.
  fresh->retain_plaintext(
      [&](std::uint64_t addr) { return registry->owner_of(addr) == tenant; });
  domain.old_specu = std::move(domain.specu);
  domain.old_specu->retain_plaintext([](std::uint64_t) { return false; });
  domain.old_key_epoch = domain.key_epoch;
  domain.specu = std::move(fresh);
  domain.batch = std::make_unique<core::SpecuBatch>(*domain.specu);
  domain.key_epoch = new_epoch;

  domain.rotating.clear();
  for (const auto& [addr, block] : std::as_const(memory_).blocks()) {
    if (!block.encrypted || quarantined_.contains(addr)) continue;
    if (registry->owner_of(addr) == tenant) domain.rotating.insert(addr);
  }
  const std::uint64_t scheduled = domain.rotating.size();
  finish_rotation_locked(domain);
  return scheduled;
}

std::uint64_t BankShard::rotation_pending(tenant::TenantId tenant) const {
  std::lock_guard lock(state_mutex_);
  const auto it = domains_.find(tenant);
  return it == domains_.end() ? 0 : it->second.rotating.size();
}

std::vector<std::pair<tenant::TenantId, std::uint32_t>> BankShard::restored_epochs()
    const {
  std::lock_guard lock(state_mutex_);
  std::vector<std::pair<tenant::TenantId, std::uint32_t>> out;
  for (const DomainRecord& rec : restored_domains_) {
    out.emplace_back(rec.tenant, rec.key_epoch);
    if (rec.old_active) out.emplace_back(rec.tenant, rec.old_key_epoch);
  }
  return out;
}

BankShard::Domain* BankShard::domain_of(std::uint64_t addr) {
  if (domains_.empty() || !config_.tenants) return nullptr;
  const tenant::TenantId owner = config_.tenants->owner_of(addr);
  if (owner == tenant::kDefaultTenant) return nullptr;
  const auto it = domains_.find(owner);
  return it == domains_.end() ? nullptr : &it->second;
}

void BankShard::finish_rotation_locked(Domain& domain) {
  if (domain.old_specu && domain.rotating.empty()) {
    domain.old_specu.reset();
    domain.old_key_epoch = 0;
  }
}

std::optional<std::uint64_t> BankShard::rotation_drain_one_locked() {
  for (auto& [tid, domain] : domains_) {
    if (!domain.old_specu || domain.rotating.empty()) continue;
    const std::uint64_t addr = *domain.rotating.begin();
    // Decrypt under the old key (journaled: a crash rolls back to the
    // old-epoch ciphertext and the address is still scheduled), then
    // re-encrypt under the current key (journaled: a crash resumes under
    // the new epoch — the address left the rotating set in the same durable
    // snapshot, so recovery stays consistent either side).
    domain.old_specu->decrypt_for_handoff(addr);
    domain.rotating.erase(addr);
    domain.specu->resume_encrypt(addr, 0);
    finish_rotation_locked(domain);
    return addr;
  }
  return std::nullopt;
}

ShardRecovery BankShard::recover() {
  std::lock_guard lock(state_mutex_);
  if (!specu_.powered())
    throw std::logic_error("BankShard::recover: power the shard on first");
  obs::ShardScope shard_scope(id_);
  obs::Span span("shard.recover", memory_.journal().size());

  ShardRecovery rec;
  rec.shard = id_;
  rec.journal_entries = memory_.journal().size();
  std::set<std::uint64_t> touched;

  // Blocks whose image record failed its CRC: quarantine, and drop any
  // intent pointing at them (replaying pulses over corrupt levels would
  // only launder the corruption).
  for (std::uint64_t addr : restored_crc_corrupt_) {
    if (touched.insert(addr).second) ++rec.crc_quarantined;
    quarantine(addr, QuarantineReason::Uncorrectable);
    memory_.journal().commit(addr);
    for (auto& [tid, domain] : domains_) domain.rotating.erase(addr);
  }
  restored_crc_corrupt_.clear();

  const auto entries = memory_.journal().entries();  // copy: applying mutates
  for (const auto& [addr, entry] : entries) {
    touched.insert(addr);
    const bool resident = memory_.has_block(addr);
    // Multi-tenant: the intent may have been journaled by any powered
    // controller — the default domain, a tenant's current epoch, or (mid
    // rotation) a tenant's previous epoch. The schedule-epoch digest picks
    // the one whose pulses were recorded.
    core::Specu* owner = nullptr;
    Domain* owner_domain = nullptr;
    bool owner_is_old = false;
    if (entry.epoch == specu_.schedule_epoch()) {
      owner = &specu_;
    } else {
      for (auto& [tid, domain] : domains_) {
        if (domain.specu && entry.epoch == domain.specu->schedule_epoch()) {
          owner = domain.specu.get();
          owner_domain = &domain;
        } else if (domain.old_specu &&
                   entry.epoch == domain.old_specu->schedule_epoch()) {
          owner = domain.old_specu.get();
          owner_domain = &domain;
          owner_is_old = true;
        }
        if (owner != nullptr) break;
      }
    }
    const bool program_complete =
        entry.op == core::JournalOp::Program && entry.progress == entry.total;
    if (!resident || owner == nullptr ||
        (entry.op == core::JournalOp::Program && !program_complete)) {
      // Unrecoverable: the block vanished, the pulses were journaled under
      // a key schedule no powered controller holds, or the crash landed
      // mid-write-phase (old contents overwritten, new ones incomplete).
      quarantine(addr, QuarantineReason::Torn);
      memory_.journal().commit(addr);
      ++rec.torn_quarantined;
      for (auto& [tid, domain] : domains_) domain.rotating.erase(addr);
      continue;
    }
    switch (entry.op) {
      case core::JournalOp::Encrypt:
        owner->resume_encrypt(addr, entry.progress);
        ++rec.replayed_forward;
        break;
      case core::JournalOp::Program:
        // Write phase finished, encryption never started: the plaintext is
        // fully programmed, so encrypt it from pulse 0.
        owner->resume_encrypt(addr, 0);
        ++rec.replayed_forward;
        break;
      case core::JournalOp::Decrypt:
        owner->rollback_decrypt(addr, entry.pre_image);
        ++rec.rolled_back;
        break;
    }
    // Reconcile the rotation set with the block's recovered resting epoch:
    // replayed under the old key => still scheduled for the drain; replayed
    // under the tenant's current key => the rotation is done with it.
    if (owner_domain != nullptr) {
      if (owner_is_old)
        owner_domain->rotating.insert(addr);
      else
        owner_domain->rotating.erase(addr);
    }
  }
  for (auto& [tid, domain] : domains_) finish_rotation_locked(domain);

  // The SEC-DED shadows are volatile (derived state); rebuild them for the
  // post-recovery resting levels of every surviving block.
  if (config_.ecc_enabled) {
    for (const auto& [addr, block] : memory_.blocks())
      if (!quarantined_.contains(addr)) refresh_checks(addr);
  }
  const std::size_t resident = memory_.block_count();
  std::size_t touched_resident = 0;
  for (std::uint64_t addr : touched)
    if (memory_.has_block(addr)) ++touched_resident;
  rec.clean_blocks = resident - touched_resident;

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& replayed = registry.counter(
      "spe_recovery_replayed_forward_total", "journal intents replayed forward");
  static obs::Counter& rolled = registry.counter(
      "spe_recovery_rolled_back_total", "journal intents rolled back to pre-image");
  static obs::Counter& torn = registry.counter(
      "spe_recovery_torn_quarantined_total", "blocks torn by a crash and quarantined");
  static obs::Counter& crc = registry.counter(
      "spe_recovery_crc_quarantined_total", "image records failing CRC at restore");
  replayed.add(rec.replayed_forward);
  rolled.add(rec.rolled_back);
  torn.add(rec.torn_quarantined);
  crc.add(rec.crc_quarantined);
  span.set_a1(rec.replayed_forward + rec.rolled_back + rec.torn_quarantined);
  return rec;
}

void BankShard::backoff(unsigned attempt) const {
  if (config_.retry_backoff_base.count() <= 0) return;
  // Exponential: base, 2*base, 4*base ... for attempt 1, 2, 3 ...
  const unsigned shift = attempt > 0 ? attempt - 1 : 0;
  std::this_thread::sleep_for(config_.retry_backoff_base * (1u << std::min(shift, 10u)));
}

void BankShard::refresh_checks(std::uint64_t addr) {
  checks_[addr] = ecc::level_checks(memory_.block(addr).levels);
}

void BankShard::quarantine(std::uint64_t addr, QuarantineReason reason) {
  if (quarantined_.emplace(addr, reason).second)
    counters_.blocks_quarantined.fetch_add(1, std::memory_order_relaxed);
}

std::optional<QuarantineReason> BankShard::quarantine_reason(std::uint64_t addr) const {
  std::lock_guard lock(state_mutex_);
  const auto it = quarantined_.find(addr);
  return it == quarantined_.end() ? std::nullopt : std::optional(it->second);
}

bool BankShard::verify_block(std::uint64_t addr, core::Snvmm::Block& block,
                             const std::vector<std::uint8_t>& checks) {
  for (unsigned attempt = 0; attempt <= config_.max_read_retries; ++attempt) {
    if (attempt > 0) {
      counters_.read_retries.fetch_add(1, std::memory_order_relaxed);
      obs::Tracer::instance().instant("ecc.retry", addr, attempt);
      backoff(attempt);
    }
    // Sense a copy: transient noise lives only in the read-out, so a
    // re-sense of the untouched array can succeed where the first failed.
    std::vector<std::uint8_t> sensed = block.levels;
    if (injector_ && injector_->enabled()) injector_->corrupt_sense(addr, sensed);
    const ecc::LevelDecodeResult result = ecc::verify_levels(sensed, checks);
    if (!result.ok || result.corrected_cells > 0)
      counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
    if (result.ok) {
      counters_.faults_corrected.fetch_add(result.corrected_cells,
                                           std::memory_order_relaxed);
      // Scrub-on-read: the verified copy is the ground truth; writing it
      // back heals drift accumulated in the array (stuck cells re-pin at
      // the next sense and are re-corrected then).
      block.levels = std::move(sensed);
      return true;
    }
  }
  return false;
}

std::vector<std::uint8_t> BankShard::read_block_guarded(std::uint64_t addr, bool fast) {
  if (const auto it = quarantined_.find(addr); it != quarantined_.end()) {
    if (it->second == QuarantineReason::Torn) throw TornBlockError(id_, addr);
    throw QuarantinedBlockError(id_, addr);
  }
  if (config_.ecc_enabled && memory_.has_block(addr)) {
    const auto shadow = checks_.find(addr);
    if (shadow != checks_.end() &&
        !verify_block(addr, memory_.block(addr), shadow->second)) {
      counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
      quarantine(addr, QuarantineReason::Uncorrectable);
      throw UncorrectableFaultError(id_, addr);
    }
  }
  Domain* const domain = domain_of(addr);
  std::vector<std::uint8_t> data;
  if (domain != nullptr && domain->old_specu != nullptr &&
      domain->rotating.contains(addr)) {
    // Rotation window: the resting ciphertext is still old-epoch, so the
    // old-key controller serves the read. Serial mode leaves plaintext
    // behind — hand it to the current-epoch controller, which re-encrypts
    // it under the new key (the scavenger finishes the migration). Parallel
    // mode re-encrypts under the old key immediately, so the block stays
    // scheduled for the drain.
    data = domain->old_specu->read_block(addr);
    if (config_.mode == core::SpeMode::Serial) {
      domain->old_specu->drop_pending(addr);
      domain->rotating.erase(addr);
      domain->specu->adopt_pending(addr);
      finish_rotation_locked(*domain);
    }
  } else if (domain != nullptr) {
    data = fast ? domain->batch->read_block(addr) : domain->specu->read_block(addr);
  } else {
    data = fast ? batch_.read_block(addr) : specu_.read_block(addr);
  }
  // The read changed the resting state (decrypted in serial mode,
  // re-encrypted in parallel mode); re-shadow it.
  if (config_.ecc_enabled) refresh_checks(addr);
  return data;
}

void BankShard::write_block_guarded(std::uint64_t addr,
                                    std::span<const std::uint8_t> data, bool fast) {
  // Quota: a write that creates a block charges the owner's resident-block
  // budget before anything is programmed (the default domain never rejects,
  // it only counts).
  if (config_.tenants && !memory_.has_block(addr)) {
    const tenant::TenantId owner = config_.tenants->owner_of(addr);
    if (!config_.tenants->try_charge_block(owner))
      throw QuotaExceededError(id_, addr, owner);
  }
  Domain* const domain = domain_of(addr);
  if (domain != nullptr) {
    // The rewrite programs + encrypts under the current key; whatever epoch
    // the block rested under before is gone.
    domain->rotating.erase(addr);
    if (domain->old_specu) domain->old_specu->drop_pending(addr);
    finish_rotation_locked(*domain);
  }
  // A rewrite lifts quarantine (fault-induced or torn) by remapping the
  // block to a spare physical location (fresh fault draws under the bumped
  // epoch).
  if (quarantined_.erase(addr) > 0 && injector_) {
    injector_->remap(addr);
    counters_.blocks_remapped.fetch_add(1, std::memory_order_relaxed);
  }

  for (unsigned round = 0;; ++round) {
    for (unsigned attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
      if (attempt > 0) {
        counters_.write_retries.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::instance().instant("ecc.retry", addr, attempt);
        backoff(attempt);
      }
      if (fast)
        (domain != nullptr ? *domain->batch : batch_).write_block(addr, data);
      else
        (domain != nullptr ? *domain->specu : specu_).write_block(addr, data);
      core::Snvmm::Block& block = memory_.block(addr);
      if (config_.ecc_enabled) refresh_checks(addr);
      if (!injector_ || !injector_->enabled()) return;
      injector_->corrupt_program(addr, block.levels);
      if (!config_.ecc_enabled || !config_.verify_writes) return;  // faults stay latent
      // Program-verify: correcting in place models re-programming the
      // cells that missed their target.
      const ecc::LevelDecodeResult result =
          ecc::verify_levels(block.levels, checks_.at(addr));
      if (!result.ok || result.corrected_cells > 0)
        counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
      if (result.ok) {
        counters_.faults_corrected.fetch_add(result.corrected_cells,
                                             std::memory_order_relaxed);
        return;
      }
    }
    if (round > 0 || !injector_) break;  // one remap round, then give up
    injector_->remap(addr);
    counters_.blocks_remapped.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
  quarantine(addr, QuarantineReason::Uncorrectable);
  throw UncorrectableFaultError(id_, addr);
}

void BankShard::execute_batch(std::vector<Request> batch) {
  std::lock_guard lock(state_mutex_);
  obs::ShardScope shard_scope(id_);
  // Drain-time batching: runs of >= batch_min_size consecutive same-kind
  // requests execute through the SpecuBatch fast path. Requests still run
  // one at a time in FIFO order — coalescing, ECC guards, summaries and
  // journal semantics are untouched; only the cipher math inside each op is
  // the hoisted batch variant (bit-identical, per the differential suite).
  std::vector<bool> use_fast(batch.size(), false);
  if (config_.batch_cipher) {
    const std::size_t min_run = std::max<std::size_t>(config_.batch_min_size, 1);
    for (std::size_t i = 0; i < batch.size();) {
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].kind == batch[i].kind) ++j;
      if (j - i >= min_run)
        for (std::size_t k = i; k < j; ++k) use_fast[k] = true;
      i = j;
    }
  }
  for (std::size_t req_index = 0; req_index < batch.size(); ++req_index) {
    Request& req = batch[req_index];
    const bool fast = use_fast[req_index];
    // Summaries are built from counter deltas across the op, so the
    // baselines are only sampled when someone will read the result (a
    // traced submit or an armed slow-op threshold).
    const bool slow_armed = config_.obs.slow_op_threshold.count() > 0;
    bool want_summary = slow_armed || req.summary != nullptr;
    for (const Request::WriteWaiter& waiter : req.write_waiters)
      want_summary = want_summary || waiter.summary != nullptr;
    const auto exec_start = std::chrono::steady_clock::now();
    core::Specu::Stats pre_specu;
    std::uint64_t pre_corrected = 0;
    std::uint64_t pre_retries = 0;
    if (want_summary) {
      pre_specu = specu_stats_locked();
      pre_corrected = counters_.faults_corrected.load(std::memory_order_relaxed);
      pre_retries = counters_.read_retries.load(std::memory_order_relaxed) +
                    counters_.write_retries.load(std::memory_order_relaxed);
    }
    const auto summarize = [&](bool is_write,
                               std::chrono::steady_clock::time_point done) {
      OpSummary s;
      s.block_addr = req.block_addr;
      s.shard = id_;
      s.is_write = is_write;
      s.execute_ns = done - exec_start;
      const core::Specu::Stats post = specu_stats_locked();
      s.pulses = (post.encrypt_pulses + post.decrypt_pulses) -
                 (pre_specu.encrypt_pulses + pre_specu.decrypt_pulses);
      s.cells_corrected =
          counters_.faults_corrected.load(std::memory_order_relaxed) - pre_corrected;
      s.retries = counters_.read_retries.load(std::memory_order_relaxed) +
                  counters_.write_retries.load(std::memory_order_relaxed) - pre_retries;
      return s;
    };
    // Stats are recorded before the promise is fulfilled so a client that
    // returns from .get() and immediately snapshots sees its own op counted.
    // Spans close (and record their tick) before set_value too, keeping a
    // blocking client's next submit strictly after this op's worker events.
    if (req.kind == Request::Kind::Read) {
      try {
        std::vector<std::uint8_t> data;
        {
          obs::Span span("shard.read", req.block_addr);
          data = read_block_guarded(req.block_addr, fast);
        }
        const auto done = std::chrono::steady_clock::now();
        counters_.read_latency.record(done - req.enqueued);
        counters_.reads_completed.fetch_add(1, std::memory_order_relaxed);
        if (fast) counters_.cipher_batched.fetch_add(1, std::memory_order_relaxed);
        if (want_summary) {
          OpSummary s = summarize(false, done);
          s.queue_ns = exec_start - req.enqueued;
          if (req.summary) *req.summary = s;
          note_slow_op(s);
        }
        req.read_promise.set_value(std::move(data));
      } catch (...) {
        req.read_promise.set_exception(std::current_exception());
      }
    } else {
      try {
        {
          obs::Span span("shard.write", req.block_addr);
          write_block_guarded(req.block_addr, req.data, fast);
        }
        const auto done = std::chrono::steady_clock::now();
        counters_.writes_completed.fetch_add(req.write_waiters.size(),
                                             std::memory_order_relaxed);
        if (fast) counters_.cipher_batched.fetch_add(1, std::memory_order_relaxed);
        OpSummary s;
        if (want_summary) {
          s = summarize(true, done);
          s.queue_ns = exec_start - req.write_waiters.front().enqueued;
          note_slow_op(s);
        }
        for (Request::WriteWaiter& waiter : req.write_waiters) {
          counters_.write_latency.record(done - waiter.enqueued);
          if (waiter.summary) {
            s.queue_ns = exec_start - waiter.enqueued;
            *waiter.summary = s;
          }
          waiter.promise.set_value();
        }
      } catch (...) {
        for (Request::WriteWaiter& waiter : req.write_waiters)
          waiter.promise.set_exception(std::current_exception());
      }
    }
    counters_.note_execute_ns(static_cast<std::uint64_t>(
        (std::chrono::steady_clock::now() - exec_start).count()));
  }
}

void BankShard::note_slow_op(const OpSummary& summary) {
  if (config_.obs.slow_op_threshold.count() <= 0 ||
      summary.execute_ns < config_.obs.slow_op_threshold)
    return;
  counters_.slow_ops.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs.slow_op_capacity > 0) {
    std::lock_guard lock(slow_mutex_);
    if (slow_ring_.size() >= config_.obs.slow_op_capacity) slow_ring_.pop_front();
    slow_ring_.push_back(summary);
  }
  if (config_.obs.log_slow_ops) {
    std::fprintf(stderr,
                 "[spe] slow %s shard=%u block=%llu exec=%.1fus queue=%.1fus "
                 "pulses=%llu corrected=%llu retries=%llu\n",
                 summary.is_write ? "write" : "read", id_,
                 static_cast<unsigned long long>(summary.block_addr),
                 static_cast<double>(summary.execute_ns.count()) / 1000.0,
                 static_cast<double>(summary.queue_ns.count()) / 1000.0,
                 static_cast<unsigned long long>(summary.pulses),
                 static_cast<unsigned long long>(summary.cells_corrected),
                 static_cast<unsigned long long>(summary.retries));
  }
}

std::vector<OpSummary> BankShard::slow_ops() const {
  std::lock_guard lock(slow_mutex_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

unsigned BankShard::scavenge(unsigned max_blocks) {
  unsigned secured = 0;
  for (unsigned i = 0; i < max_blocks; ++i) {
    // One block per lock acquisition so foreground requests never wait for
    // a whole sweep (the paper's engine likewise steps between accesses).
    std::lock_guard lock(state_mutex_);
    obs::ShardScope shard_scope(id_);
    obs::Span span("shard.scavenge");
    const auto start = std::chrono::steady_clock::now();
    std::optional<std::uint64_t> addr = specu_.background_encrypt_one();
    if (!addr) {
      for (auto& [tid, domain] : domains_) {
        if (domain.specu) addr = domain.specu->background_encrypt_one();
        if (addr) break;
      }
    }
    // Nothing pending anywhere: put the cycle into a rotation drain (one
    // old-key block decrypted and re-encrypted under the new key).
    if (!addr) addr = rotation_drain_one_locked();
    if (!addr) break;
    span.set_a1(1);
    if (config_.ecc_enabled) refresh_checks(*addr);
    counters_.background_latency.record(std::chrono::steady_clock::now() - start);
    counters_.background_encrypted.fetch_add(1, std::memory_order_relaxed);
    ++secured;
  }
  return secured;
}

unsigned BankShard::scrub(unsigned max_blocks) {
  std::lock_guard lock(state_mutex_);
  if (!config_.ecc_enabled) return 0;
  auto& blocks = memory_.blocks();
  const std::size_t resident = blocks.size();
  if (resident == 0) return 0;
  obs::ShardScope shard_scope(id_);
  obs::Span span("shard.scrub", scrub_cursor_);

  unsigned scrubbed = 0;
  auto it = blocks.lower_bound(scrub_cursor_);
  const std::size_t visits = std::min<std::size_t>(max_blocks, resident);
  for (std::size_t v = 0; v < visits; ++v) {
    if (it == blocks.end()) it = blocks.begin();
    const std::uint64_t addr = it->first;
    core::Snvmm::Block& block = it->second;
    ++it;
    const auto shadow = checks_.find(addr);
    if (quarantined_.contains(addr) || shadow == checks_.end()) continue;
    // One scrub tick: time passes for this block (drift accumulates, stuck
    // cells re-pin), then the code repairs what it can.
    if (injector_ && injector_->enabled()) injector_->age_block(addr, block.levels);
    const ecc::LevelDecodeResult result =
        ecc::verify_levels(block.levels, shadow->second);
    counters_.blocks_scrubbed.fetch_add(1, std::memory_order_relaxed);
    ++scrubbed;
    if (!result.ok || result.corrected_cells > 0)
      counters_.faults_detected.fetch_add(1, std::memory_order_relaxed);
    if (result.ok) {
      counters_.faults_corrected.fetch_add(result.corrected_cells,
                                           std::memory_order_relaxed);
    } else {
      counters_.faults_uncorrectable.fetch_add(1, std::memory_order_relaxed);
      quarantine(addr, QuarantineReason::Uncorrectable);
    }
  }
  scrub_cursor_ = it == blocks.end() ? 0 : it->first;
  span.set_a1(scrubbed);
  return scrubbed;
}

ShardStatsSnapshot BankShard::stats_snapshot() const {
  ShardStatsSnapshot snap = snapshot_counters(id_, counters_);
  std::lock_guard lock(state_mutex_);
  snap.plaintext_blocks = specu_.plaintext_blocks();
  for (const auto& [tid, domain] : domains_) {
    if (domain.specu) snap.plaintext_blocks += domain.specu->plaintext_blocks();
    if (domain.old_specu) snap.plaintext_blocks += domain.old_specu->plaintext_blocks();
  }
  snap.resident_blocks = memory_.block_count();
  snap.quarantined_now = quarantined_.size();
  snap.injected_faults = injector_ ? injector_->counts().total() : 0;
  return snap;
}

std::vector<std::uint64_t> BankShard::resident_blocks() const {
  std::lock_guard lock(state_mutex_);
  std::vector<std::uint64_t> addrs;
  addrs.reserve(memory_.block_count());
  for (const auto& [addr, block] : memory_.blocks()) addrs.push_back(addr);
  return addrs;
}

double BankShard::encrypted_fraction() const {
  std::lock_guard lock(state_mutex_);
  return specu_.encrypted_fraction();
}

core::Specu::Stats BankShard::specu_stats_locked() const {
  core::Specu::Stats total = specu_.stats();
  const auto fold = [&total](const core::Specu::Stats& s) {
    total.reads += s.reads;
    total.writes += s.writes;
    total.decrypt_ops += s.decrypt_ops;
    total.encrypt_ops += s.encrypt_ops;
    total.encrypt_pulses += s.encrypt_pulses;
    total.decrypt_pulses += s.decrypt_pulses;
  };
  for (const auto& [tid, domain] : domains_) {
    if (domain.specu) fold(domain.specu->stats());
    if (domain.old_specu) fold(domain.old_specu->stats());
  }
  return total;
}

core::Specu::Stats BankShard::specu_stats() const {
  std::lock_guard lock(state_mutex_);
  return specu_stats_locked();
}

}  // namespace spe::runtime
