# Empty dependencies file for spe_device.
# This may be replaced when dependencies are built.
