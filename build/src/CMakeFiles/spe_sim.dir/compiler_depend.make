# Empty compiler generated dependencies file for spe_sim.
# This may be replaced when dependencies are built.
