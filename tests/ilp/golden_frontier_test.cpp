// Golden regression for the placement frontier (DESIGN.md §14): the sweep
// over 8..64 crossbars with the default seed must serialise byte-for-byte
// to the checked-in tests/ilp/golden_frontier.json. The golden copy is
// machine-independent on purpose — work-based budgets only
// (time_limit_ms = 0), timing fields omitted, fixed "golden" git_sha.
//
// Refresh after an intentional solver/bench change:
//   SPE_ILP_UPDATE_GOLDEN=1 ctest -R GoldenFrontier
// then commit the rewritten file alongside the change that moved it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "ilp/frontier.hpp"

#ifndef SPE_GOLDEN_FRONTIER_PATH
#error "SPE_GOLDEN_FRONTIER_PATH must point at tests/ilp/golden_frontier.json"
#endif

namespace spe::ilp {
namespace {

std::string compute_frontier_json() {
  SolverOptions base;
  base.seed = 0x51EED;
  base.time_limit_ms = 0.0;  // determinism contract: work-based budgets only
  base.node_limit = 200'000;  // same cap as bench/placement_frontier
  const std::vector<unsigned> sizes = {8, 16, 32, 64};
  const auto points = placement_frontier(sizes, /*security_s=*/-1, base);

  FrontierMeta meta;
  meta.source = "placement_frontier";
  meta.config = "sizes=8,16,32,64 security=cells/16 seed=335597 time_limit_ms=0";
  meta.git_sha = "golden";          // fixed: checked-in bytes outlive commits
  meta.include_timing = false;      // elapsed_ms is machine-dependent
  return frontier_json(points, meta);
}

TEST(GoldenFrontier, MatchesCheckedInBytes) {
  const std::string fresh = compute_frontier_json();
  const char* path = SPE_GOLDEN_FRONTIER_PATH;

  if (const char* update = std::getenv("SPE_ILP_UPDATE_GOLDEN");
      update && update[0] == '1') {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out) << "cannot rewrite " << path;
    out << fresh;
    GTEST_SKIP() << "golden frontier rewritten: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with SPE_ILP_UPDATE_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  EXPECT_EQ(fresh, golden)
      << "placement frontier drifted from tests/ilp/golden_frontier.json; if "
         "the solver change is intentional, refresh with SPE_ILP_UPDATE_GOLDEN=1";
}

TEST(GoldenFrontier, RowsAreFeasibleAndAttributed) {
  // Independent of the byte comparison: every golden-size row must be
  // feasible, carry a truthful status string, and attribute a backend.
  SolverOptions base;
  base.seed = 0x51EED;
  base.node_limit = 200'000;
  for (const unsigned size : {8u, 32u}) {
    const FrontierPoint pt = frontier_point(size, -1, base);
    EXPECT_TRUE(pt.feasible) << size;
    EXPECT_EQ(pt.uncovered_cells, 0u) << size;
    EXPECT_EQ(pt.rows, size);
    EXPECT_EQ(pt.security_s, size * size / 16) << size;
    EXPECT_GT(pt.poes, 0u) << size;
    EXPECT_GE(pt.total_coverage, size * size + pt.security_s) << size;
  }
}

}  // namespace
}  // namespace spe::ilp
