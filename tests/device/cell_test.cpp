#include "device/cell.hpp"

#include <gtest/gtest.h>

namespace spe::device {
namespace {

Cell make_cell(double state = 0.5) { return Cell({}, {}, state); }

TEST(Cell, SeriesResistanceDependsOnGate) {
  Cell cell = make_cell();
  cell.set_gate(true);
  const double on = cell.series_resistance();
  cell.set_gate(false);
  const double off = cell.series_resistance();
  EXPECT_LT(on, 200e3);
  EXPECT_GT(off, 1e8);  // transistor leakage dominates
}

TEST(Cell, SubThresholdCellVoltageIsIgnored) {
  Cell cell = make_cell();
  cell.set_gate(true);
  const double w0 = cell.memristor().state();
  cell.apply_cell_voltage(0.40, 0.1e-6);  // below Vt = 0.45
  EXPECT_EQ(cell.memristor().state(), w0);
}

TEST(Cell, AboveThresholdMovesState) {
  Cell cell = make_cell();
  cell.set_gate(true);
  const double w0 = cell.memristor().state();
  cell.apply_cell_voltage(1.0, 0.05e-6);
  EXPECT_GT(cell.memristor().state(), w0);
}

TEST(Cell, TransistorDividerReducesDrive) {
  // Same voltage, gate off: the 1e9-ohm series path starves the memristor.
  Cell on = make_cell(), off = make_cell();
  on.set_gate(true);
  off.set_gate(false);
  on.apply_cell_voltage(1.0, 0.05e-6);
  off.apply_cell_voltage(1.0, 0.05e-6);
  EXPECT_GT(on.memristor().state(), 0.5);
  EXPECT_NEAR(off.memristor().state(), 0.5, 1e-6);
}

TEST(Cell, NegativePulsesMoveDown) {
  Cell cell = make_cell(0.7);
  cell.set_gate(true);
  cell.apply_cell_voltage(-1.0, 0.02e-6);
  EXPECT_LT(cell.memristor().state(), 0.7);
}

TEST(FindInversePulseWidth, RestoresOriginalState) {
  Cell cell = make_cell(0.375);  // logic "10"
  cell.set_gate(true);
  const double start = cell.memristor().state();
  cell.apply_cell_voltage(1.0, 0.071e-6);
  ASSERT_GT(cell.memristor().state(), start + 0.1);

  const double width = find_inverse_pulse_width(cell, -1.0, start);
  // The cell state must be restored by the search (it probes in place).
  const double encrypted = cell.memristor().state();
  cell.apply_cell_voltage(-1.0, width);
  EXPECT_NEAR(cell.memristor().state(), start, 5e-3);
  EXPECT_GT(encrypted, start);
}

TEST(FindInversePulseWidth, Figure5HysteresisAsymmetry) {
  // Paper Fig. 5: encrypt +1V/0.071us, decrypt -1V/~0.015us — the decrypt
  // width must be several times shorter than the encrypt width.
  Cell cell = make_cell(0.375);
  cell.set_gate(true);
  const double start = cell.memristor().state();
  cell.apply_cell_voltage(1.0, 0.071e-6);
  const double width = find_inverse_pulse_width(cell, -1.0, start);
  EXPECT_LT(width, 0.03e-6);
  EXPECT_GT(width, 0.005e-6);
}

TEST(FindInversePulseWidth, LeavesCellStateUntouched) {
  Cell cell = make_cell(0.6);
  cell.set_gate(true);
  const double w0 = cell.memristor().state();
  (void)find_inverse_pulse_width(cell, -1.0, 0.3);
  EXPECT_EQ(cell.memristor().state(), w0);
}

TEST(FindInversePulseWidth, BadArgsThrow) {
  Cell cell = make_cell();
  EXPECT_THROW((void)find_inverse_pulse_width(cell, -1.0, 0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace spe::device
