#include "core/specu_batch.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace spe::core {

void SpecuBatch::encrypt_block_fast(std::uint64_t addr, Snvmm::Block& block) {
  Specu& u = specu_;
  const unsigned cells = u.calibration_->cell_count();
  const unsigned sched = u.schedule_length();
  obs::Span span("specu.encrypt", addr);
  span.set_a1(u.pulses_per_block());
  u.stats_.encrypt_pulses += u.pulses_per_block();
  IntentJournal& journal = u.memory_.journal();
  scratch_.resize(u.ciphers_.size());
  for (unsigned unit = 0; unit < u.ciphers_.size(); ++unit) {
    const SpeCipher& cipher = *u.ciphers_[unit];
    const std::span<std::uint8_t> levels(block.levels.data() + unit * cells, cells);
    cipher.init_fast_scratch(levels, scratch_[unit]);
    for (unsigned s = 0; s < sched; ++s) {
      // Same advance cadence as the scalar path: the array state between any
      // two advances is exactly what a power loss there would leave behind.
      cipher.encrypt_step_fast(levels, s, scratch_[unit]);
      journal.advance(addr);
    }
    ++u.stats_.encrypt_ops;
    block.wear += Specu::kPulseWear * static_cast<double>(sched);
  }
  block.encrypted = true;
  journal.commit(addr);
}

void SpecuBatch::decrypt_block_fast(std::uint64_t addr, Snvmm::Block& block) {
  Specu& u = specu_;
  const unsigned cells = u.calibration_->cell_count();
  const unsigned sched = u.schedule_length();
  obs::Span span("specu.decrypt", addr);
  span.set_a1(u.pulses_per_block());
  u.stats_.decrypt_pulses += u.pulses_per_block();
  IntentJournal& journal = u.memory_.journal();
  u.begin_intent(addr, JournalOp::Decrypt, 0, u.pulses_per_block(), block.levels);
  scratch_.resize(u.ciphers_.size());
  for (unsigned unit = 0; unit < u.ciphers_.size(); ++unit) {
    const SpeCipher& cipher = *u.ciphers_[unit];
    const std::span<std::uint8_t> levels(block.levels.data() + unit * cells, cells);
    cipher.init_fast_scratch(levels, scratch_[unit]);
    for (unsigned s = sched; s-- > 0;) {
      cipher.decrypt_step_fast(levels, s, scratch_[unit]);
      journal.advance(addr);
    }
    ++u.stats_.decrypt_ops;
    block.wear += Specu::kPulseWear * static_cast<double>(sched);
  }
  block.encrypted = false;
  journal.commit(addr);
}

void SpecuBatch::write_block(std::uint64_t block_addr, std::span<const std::uint8_t> data) {
  Specu& u = specu_;
  if (!u.powered()) throw std::logic_error("Specu::write_block: not powered / no key");
  if (data.size() != u.memory_.block_bytes())
    throw std::invalid_argument("Specu::write_block: bad block size");

  obs::Span span("specu.write", block_addr);
  Snvmm::Block& block = u.memory_.block(block_addr);
  const auto units = static_cast<std::uint32_t>(u.ciphers_.size());
  u.begin_intent(block_addr, JournalOp::Program, 0, units);
  block.wear += 1.0;
  const unsigned cells = u.calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  for (unsigned unit = 0; unit < u.ciphers_.size(); ++unit) {
    const UnitLevels levels =
        u.cipher(unit).levels_from_bytes(data.subspan(unit * unit_bytes, unit_bytes));
    std::copy(levels.begin(), levels.end(), block.levels.begin() + unit * cells);
    u.memory_.journal().advance(block_addr);
  }
  block.encrypted = false;
  u.plaintext_.erase(block_addr);
  u.begin_intent(block_addr, JournalOp::Encrypt, 0, u.pulses_per_block());
  encrypt_block_fast(block_addr, block);
  ++u.stats_.writes;
}

std::vector<std::uint8_t> SpecuBatch::read_block(std::uint64_t block_addr) {
  Specu& u = specu_;
  if (!u.powered()) throw std::logic_error("Specu::read_block: not powered / no key");
  obs::Span span("specu.read", block_addr);
  Snvmm::Block& block = u.memory_.block(block_addr);
  if (block.encrypted) decrypt_block_fast(block_addr, block);

  const unsigned cells = u.calibration_->cell_count();
  const unsigned unit_bytes = cells / 4;
  std::vector<std::uint8_t> out(u.memory_.block_bytes(), 0);
  for (unsigned unit = 0; unit < u.ciphers_.size(); ++unit) {
    const UnitLevels levels(block.levels.begin() + unit * cells,
                            block.levels.begin() + (unit + 1) * cells);
    u.cipher(unit).bytes_from_levels(
        levels, std::span(out).subspan(unit * unit_bytes, unit_bytes));
  }
  ++u.stats_.reads;

  if (u.mode_ == SpeMode::Parallel) {
    u.begin_intent(block_addr, JournalOp::Encrypt, 0, u.pulses_per_block());
    encrypt_block_fast(block_addr, block);
  } else {
    u.plaintext_.insert(block_addr);
  }
  return out;
}

void SpecuBatch::write_blocks(std::span<const std::uint64_t> addrs,
                              std::span<const std::uint8_t> data) {
  const std::size_t block_bytes = specu_.memory_.block_bytes();
  if (data.size() != addrs.size() * block_bytes)
    throw std::invalid_argument("SpecuBatch::write_blocks: bad data size");
  for (std::size_t i = 0; i < addrs.size(); ++i)
    write_block(addrs[i], data.subspan(i * block_bytes, block_bytes));
}

std::vector<std::vector<std::uint8_t>> SpecuBatch::read_blocks(
    std::span<const std::uint64_t> addrs) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(addrs.size());
  for (const std::uint64_t addr : addrs) out.push_back(read_block(addr));
  return out;
}

}  // namespace spe::core
