#pragma once
// Named metrics for the SPE stack: monotonic counters, gauges, and
// power-of-two histograms behind a registry with deterministic (sorted)
// Prometheus-text and JSON export. Instruments are created once and live
// for the registry's lifetime — callers cache the returned reference, so
// the hot path is one relaxed atomic RMW with no map lookup.
//
// Labels ride inside the metric name ("spe_reads_total{shard=\"0\"}"): the
// registry sorts full names, and the Prometheus writer emits one HELP/TYPE
// header per family (the name up to '{'). The process-global registry
// (MetricsRegistry::global()) collects cross-layer counters (crossbar
// solves, journal transitions) that have no per-service home; the runtime's
// MemoryService::export_metrics() builds a fresh registry per call from its
// stats snapshot and merges those globals in.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace spe::obs {

/// Monotonic counter. add() of a delta only — no decrement exists, so a
/// sampled value can never go backwards (tests/obs/metrics_test pins this).
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time gauge (double, so fractions export losslessly).
class Gauge {
public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<double> v_{0.0};
};

/// Lock-free histogram over the same power-of-two bucket layout as the
/// runtime's LatencyHistogram (bucket b covers [2^(b-1), 2^b)), so latency
/// snapshots transplant bucket-for-bucket.
class Histogram {
public:
  static constexpr unsigned kBuckets = 64;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bulk merge of a pre-bucketed snapshot (e.g. LatencyHistogram::Snapshot
  /// fields) — bucket layouts must match.
  void merge_buckets(std::span<const std::uint64_t, kBuckets> buckets,
                     std::uint64_t count, std::uint64_t sum) noexcept {
    for (unsigned b = 0; b < kBuckets; ++b)
      buckets_[b].fetch_add(buckets[b], std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    Snapshot& operator+=(const Snapshot& other) noexcept {
      for (unsigned b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
      count += other.count;
      sum += other.sum;
      return *this;
    }
    [[nodiscard]] friend Snapshot operator+(Snapshot a, const Snapshot& b) noexcept {
      a += b;
      return a;
    }
    [[nodiscard]] bool operator==(const Snapshot&) const noexcept = default;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    for (unsigned b = 0; b < kBuckets; ++b)
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] static unsigned bucket_for(std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v) - 1);
  }
  [[nodiscard]] static std::uint64_t upper_edge(unsigned bucket) noexcept {
    return bucket >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (bucket + 1)) - 1;
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricsFormat { Prometheus, Json };

class MetricsRegistry {
public:
  /// Labeled series allowed per family before new label values are dropped
  /// (see set_series_cap). Generous: per-shard labels are tens of series,
  /// per-tenant labels hundreds — only an unbounded label source (a tenant
  /// id echoed from the wire, say) ever reaches this.
  static constexpr std::size_t kDefaultSeriesCap = 1024;

  MetricsRegistry();

  /// Finds or creates the named instrument. The reference stays valid for
  /// the registry's lifetime (instruments are never removed). A name may be
  /// "family{label=\"v\"}"; help is taken from the first registration of
  /// the family. Throws std::logic_error if the name already exists with a
  /// different instrument type.
  ///
  /// Cardinality guard: once a family holds `series_cap` distinct labeled
  /// names, further *new* labeled names in that family are not registered —
  /// the call counts into `spe_obs_dropped_series_total` and returns a
  /// hidden sink instrument (never exported), so callers keep a valid
  /// reference and the hot path stays branch-free. Existing names are
  /// always served.
  [[nodiscard]] Counter& counter(const std::string& name, const std::string& help = "");
  [[nodiscard]] Gauge& gauge(const std::string& name, const std::string& help = "");
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::string& help = "");

  /// Deterministic (name-sorted) export.
  void write_prometheus(std::ostream& out) const;
  void write_json(std::ostream& out) const;
  void write(std::ostream& out, MetricsFormat format) const;
  [[nodiscard]] std::string render(MetricsFormat format) const;

  /// Sorted full metric names (test hook).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Folds this registry's current values into `dest`: counter values are
  /// added, gauges overwrite, histogram snapshots merge bucket-for-bucket.
  /// MemoryService::export_metrics uses this to absorb the process-global
  /// registry into its per-call export registry.
  void merge_into(MetricsRegistry& dest) const;

  /// Process-wide registry for cross-layer counters (xbar solves, journal
  /// transitions). Instruments here accumulate for the process lifetime.
  static MetricsRegistry& global();

  /// Reconfigures the per-family labeled-series cap (0 = unlimited).
  /// Existing series survive a lowered cap; only new names are affected.
  void set_series_cap(std::size_t cap);

  /// Labeled registrations refused by the cardinality cap so far.
  [[nodiscard]] std::uint64_t dropped_series() const;

private:
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< sorted => deterministic export
  std::map<std::string, std::size_t> family_series_;  ///< labeled names per family
  std::size_t series_cap_ = kDefaultSeriesCap;
  std::array<Entry, 3> sinks_;  ///< per-kind bit bucket for capped series
};

}  // namespace spe::obs
