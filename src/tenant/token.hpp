#pragma once
// Wire-level tenant authentication token (DESIGN.md §15). Wire v4 frames
// carry `(tenant_id, token)` where the token is a 64-bit MAC binding the
// tenant's shared secret to the exact request it authenticates: the request
// id and opcode, both of which sit inside the CRC-covered header. Replaying
// a captured token against another request id or opcode therefore fails,
// and a bit-flipped header fails CRC before the token is even checked.
//
// The MAC is a keyed mix64 sponge — deliberately *not* a standards-track
// HMAC (no crypto library in the dependency budget), but with the same
// shape: secret absorbed first and last so extension of the middle words
// never yields a valid tag for a different message. Verification is
// constant-time so a byte-guessing client learns nothing from latency.

#include <cstdint>

#include "util/rng.hpp"

namespace spe::tenant {

/// Domain-separation constant ("TNT-MAC-1" as little-endian bytes) so the
/// token sponge can never collide with the key-schedule epoch digest, which
/// reuses the same mix64 core.
inline constexpr std::uint64_t kTokenDomain = 0x312D43414D2D544Eull;

/// MAC over (tenant id, request id, opcode) under `secret`.
[[nodiscard]] inline std::uint64_t make_token(std::uint64_t secret,
                                              std::uint32_t tenant_id,
                                              std::uint64_t request_id,
                                              std::uint8_t opcode) noexcept {
  std::uint64_t h = util::mix64(secret ^ kTokenDomain);
  h = util::mix64(h ^ tenant_id);
  h = util::mix64(h ^ request_id);
  h = util::mix64(h ^ opcode);
  return util::mix64(h ^ secret);
}

/// Branch-free 64-bit compare: cost independent of which bits differ.
[[nodiscard]] inline bool ct_equal(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t diff = a ^ b;
  diff |= diff >> 32;
  diff |= diff >> 16;
  diff |= diff >> 8;
  diff |= diff >> 4;
  diff |= diff >> 2;
  diff |= diff >> 1;
  return (diff & 1u) == 0;
}

}  // namespace spe::tenant
