#include "cluster/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "net/client.hpp"

namespace spe::cluster {

using net::Frame;
using net::Opcode;
using net::Status;

ClusterCoordinator::ClusterCoordinator(runtime::MemoryService& service,
                                       ClusterTopology initial,
                                       CoordinatorConfig config)
    : service_(service),
      config_(std::move(config)),
      topology_(std::move(initial)),
      ring_(topology_.ring()),
      journal_(config_.journal_path) {
  if (config_.node_name.empty() || topology_.find(config_.node_name) == nullptr)
    throw std::invalid_argument(
        "spe::cluster: node '" + config_.node_name +
        "' is not a member of the initial topology");
  if (config_.pull_batch == 0) config_.pull_batch = 1;
}

MigrationRecovery ClusterCoordinator::recover() {
  std::lock_guard lock(mutex_);
  MigrationRecovery recovery = journal_.load();
  const MigrationState& state = journal_.state();
  if (!state.adopted_topology.empty()) {
    ClusterTopology adopted;
    if (decode_topology(state.adopted_topology, adopted) &&
        adopted.epoch >= topology_.epoch) {
      topology_ = std::move(adopted);
      ring_ = topology_.ring();
    }
  }
  return recovery;
}

ClusterTopology ClusterCoordinator::topology() const {
  std::lock_guard lock(mutex_);
  return topology_;
}

NodeInfo ClusterCoordinator::self() const {
  std::lock_guard lock(mutex_);
  if (const NodeInfo* node = topology_.find(config_.node_name)) return *node;
  // A node that has left the cluster keeps running to drain its frozen
  // ranges; it routes everything away but still names itself in Export.
  NodeInfo ghost;
  ghost.name = config_.node_name;
  return ghost;
}

ClusterCoordinator::Route ClusterCoordinator::route_locked(std::uint64_t addr) const {
  const MigrationState& state = journal_.state();
  Route route;
  if (const auto out = state.outgoing.find(addr); out != state.outgoing.end()) {
    route.owner = out->second.peer;  // frozen: immutable here, pull in flight
    return route;
  }
  if (state.incoming_committed.contains(addr)) {
    route.local = true;  // durable here, epoch not yet adopted cluster-wide
    return route;
  }
  const std::string& owner_name = ring_.owner(addr);
  if (owner_name == config_.node_name) {
    route.local = true;
    return route;
  }
  if (const NodeInfo* node = topology_.find(owner_name)) route.owner = *node;
  return route;
}

net::ClusterHandler::Verdict ClusterCoordinator::fast_path(const Frame& request,
                                                           Frame& response) {
  switch (request.opcode) {
    case Opcode::Read:
    case Opcode::Write: {
      std::uint64_t addr = 0;
      net::WireErrorCode err = net::WireErrorCode::None;
      if (request.opcode == Opcode::Read) {
        if (!net::parse_read_request(request, addr, err)) return Verdict::NotMine;
      } else {
        std::span<const std::uint8_t> data;
        if (!net::parse_write_request(request, addr, data, err))
          return Verdict::NotMine;
      }
      Route route;
      {
        std::lock_guard lock(mutex_);
        route = route_locked(addr);
      }
      if (route.local) return Verdict::NotMine;
      counters_.moved_bounced.fetch_add(1, std::memory_order_relaxed);
      response = net::make_moved_response(request.opcode, request.request_id,
                                          encode_node(route.owner));
      response.version = request.version;
      return Verdict::Respond;
    }
    case Opcode::Topology:
      if (request.payload.empty()) {
        // Fetch: snapshot under the lock, no I/O — safe on the event loop.
        std::vector<std::uint8_t> bytes;
        {
          std::lock_guard lock(mutex_);
          bytes = encode_topology(topology_);
        }
        response = net::make_topology_response(request.request_id, bytes);
        response.version = request.version;
        return Verdict::Respond;
      }
      return Verdict::Defer;  // propose: journals an ADOPT (fsync)
    case Opcode::MigrateRange:
      return Verdict::Defer;
    case Opcode::Ping:
    case Opcode::Scrub:
    case Opcode::Metrics:
      return Verdict::NotMine;
  }
  return Verdict::NotMine;
}

Frame ClusterCoordinator::slow_path(Frame&& request) {
  Frame response;
  switch (request.opcode) {
    case Opcode::Topology:
      response = handle_topology(request);
      break;
    case Opcode::MigrateRange:
      response = handle_migrate(request);
      break;
    default:
      response = net::make_error_response(request, Status::Internal,
                                          "opcode is not deferrable");
      break;
  }
  response.version = request.version;
  return response;
}

Frame ClusterCoordinator::handle_topology(const Frame& request) {
  ClusterTopology proposed;
  if (!decode_topology(request.payload, proposed))
    return net::make_error_response(request, Status::BadRequest,
                                    "malformed topology payload");
  std::lock_guard lock(mutex_);
  if (proposed.epoch > topology_.epoch) {
    journal_.adopt(proposed);  // fsync'd before the ring switches
    topology_ = std::move(proposed);
    ring_ = topology_.ring();
    counters_.topology_adoptions.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.topology_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  // Either way the response is the truth this node now holds — a proposer
  // with a stale epoch learns the newer membership from it.
  return net::make_topology_response(request.request_id,
                                     encode_topology(topology_));
}

Frame ClusterCoordinator::handle_migrate(const Frame& request) {
  MigrateSpec spec;
  if (!decode_migrate_spec(request.payload, spec))
    return net::make_error_response(request, Status::BadRequest,
                                    "malformed migrate spec");
  try {
    switch (spec.mode) {
      case MigrateSpec::Mode::Freeze: return do_freeze(request, spec);
      case MigrateSpec::Mode::Unfreeze: return do_unfreeze(request, spec);
      case MigrateSpec::Mode::Export: return do_export(request, spec);
      case MigrateSpec::Mode::Pull: return do_pull(request, spec);
      case MigrateSpec::Mode::Checkpoint: return do_checkpoint(request);
    }
  } catch (const std::exception& e) {
    counters_.migrate_failures.fetch_add(1, std::memory_order_relaxed);
    return net::make_error_response(request, Status::Internal, e.what());
  }
  return net::make_error_response(request, Status::BadRequest, "bad migrate mode");
}

Frame ClusterCoordinator::do_freeze(const Frame& request, const MigrateSpec& spec) {
  std::lock_guard lock(mutex_);
  journal_.out_freeze(spec.addrs, spec.peer, spec.epoch);
  return net::make_migrate_response(request.request_id, spec.addrs.size(), 0, 0);
}

Frame ClusterCoordinator::do_unfreeze(const Frame& request, const MigrateSpec& spec) {
  std::lock_guard lock(mutex_);
  journal_.out_unfreeze(spec.addrs);
  return net::make_migrate_response(request.request_id, spec.addrs.size(), 0, 0);
}

Frame ClusterCoordinator::do_export(const Frame& request, const MigrateSpec& spec) {
  const std::vector<std::uint64_t> resident = service_.resident_blocks();
  const std::unordered_set<std::uint64_t> resident_set(resident.begin(),
                                                       resident.end());
  std::vector<ExportedBlock> blocks;
  blocks.reserve(spec.addrs.size());
  for (const std::uint64_t addr : spec.addrs) {
    ExportedBlock block;
    block.addr = addr;
    if (resident_set.contains(addr)) {
      try {
        // Decrypts under THIS device's fingerprint; the destination
        // re-encrypts under its own on write. Bypasses the freeze bounce by
        // construction (only client READ/WRITE frames are routed).
        block.data = service_.read(addr);
        block.present = true;
        counters_.blocks_exported.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        // Quarantined / uncorrectable: there is no data to move. Exported
        // as absent so the destination skips it instead of aborting the
        // whole range; the failure counter makes the loss visible.
        counters_.migrate_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    blocks.push_back(std::move(block));
  }
  Frame response;
  response.opcode = Opcode::MigrateRange;
  response.request_id = request.request_id;
  response.payload = encode_export(blocks);
  return response;
}

Frame ClusterCoordinator::do_pull(const Frame& request, const MigrateSpec& spec) {
  net::ClientConfig peer_config;
  peer_config.host = spec.peer.host;
  peer_config.port = spec.peer.port;
  peer_config.io_deadline = config_.peer_io_deadline;
  net::Client peer(peer_config);
  try {
    peer.connect();
  } catch (const net::NetError& e) {
    counters_.migrate_failures.fetch_add(1, std::memory_order_relaxed);
    return net::make_error_response(request, Status::Internal, e.what());
  }

  const NodeInfo self_info = self();
  std::vector<std::uint64_t> pulled;
  pulled.reserve(spec.addrs.size());
  std::uint64_t skipped = 0;
  for (std::size_t off = 0; off < spec.addrs.size(); off += config_.pull_batch) {
    const std::size_t end = std::min(off + config_.pull_batch, spec.addrs.size());
    MigrateSpec export_spec;
    export_spec.mode = MigrateSpec::Mode::Export;
    export_spec.epoch = spec.epoch;
    export_spec.peer = self_info;
    export_spec.addrs.assign(spec.addrs.begin() + static_cast<std::ptrdiff_t>(off),
                             spec.addrs.begin() + static_cast<std::ptrdiff_t>(end));
    Frame reply;
    try {
      reply = peer.call(net::make_migrate_request(0, encode_migrate_spec(export_spec)));
    } catch (const net::NetError& e) {
      counters_.migrate_failures.fetch_add(1, std::memory_order_relaxed);
      return net::make_error_response(request, Status::Internal, e.what());
    }
    if (reply.status != Status::Ok)
      return net::make_error_response(
          request, Status::Internal,
          std::string("export refused by peer: ") + net::to_string(reply.status));
    std::vector<ExportedBlock> blocks;
    if (!decode_export(reply.payload, service_.block_bytes(), blocks))
      return net::make_error_response(request, Status::Internal,
                                      "malformed export payload from peer");
    for (ExportedBlock& block : blocks) {
      if (!block.present) {
        ++skipped;
        counters_.blocks_skipped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      {
        std::lock_guard lock(mutex_);
        journal_.in_begin(block.addr, spec.peer, spec.epoch);
      }
      service_.write(block.addr, block.data);  // re-encrypt under local device
      {
        std::lock_guard lock(mutex_);
        journal_.in_copied(block.addr);
      }
      pulled.push_back(block.addr);
      counters_.blocks_pulled.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Durability order: the pulled blocks must be in the checkpoint BEFORE the
  // commit record exists, so a kill -9 after commit still finds the data.
  if (!pulled.empty() && !config_.checkpoint_path.empty())
    service_.checkpoint_file(config_.checkpoint_path);
  if (!pulled.empty()) {
    std::lock_guard lock(mutex_);
    journal_.in_commit(pulled);
  }
  return net::make_migrate_response(request.request_id, pulled.size(), skipped, 0);
}

Frame ClusterCoordinator::do_checkpoint(const Frame& request) {
  if (config_.checkpoint_path.empty())
    return net::make_error_response(request, Status::BadRequest,
                                    "node has no checkpoint path configured");
  service_.checkpoint_file(config_.checkpoint_path);
  return net::make_migrate_response(request.request_id, 0, 0, 0);
}

void ClusterCoordinator::fill_metrics(obs::MetricsRegistry& registry) const {
  const auto get = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  registry
      .counter("spe_cluster_moved_total",
               "requests bounced with MOVED to their owning node")
      .add(get(counters_.moved_bounced));
  registry
      .counter("spe_cluster_blocks_exported_total",
               "blocks shipped out to a pulling destination")
      .add(get(counters_.blocks_exported));
  registry
      .counter("spe_cluster_blocks_pulled_total",
               "blocks pulled in and re-encrypted under this device")
      .add(get(counters_.blocks_pulled));
  registry
      .counter("spe_cluster_blocks_skipped_total",
               "pull addresses absent on the source")
      .add(get(counters_.blocks_skipped));
  registry
      .counter("spe_cluster_migrate_failures_total",
               "migration steps that failed (connect, export, read)")
      .add(get(counters_.migrate_failures));
  registry
      .counter("spe_cluster_topology_adoptions_total",
               "newer topologies journaled and installed")
      .add(get(counters_.topology_adoptions));
  registry
      .counter("spe_cluster_topology_rejected_total",
               "topology proposals at a stale or equal epoch")
      .add(get(counters_.topology_rejected));
  std::lock_guard lock(mutex_);
  const MigrationState& state = journal_.state();
  registry.gauge("spe_cluster_epoch", "topology epoch this node serves")
      .set(static_cast<double>(topology_.epoch));
  registry.gauge("spe_cluster_nodes", "members in the current topology")
      .set(static_cast<double>(topology_.nodes.size()));
  registry
      .gauge("spe_cluster_frozen_blocks", "outgoing addresses bouncing MOVED")
      .set(static_cast<double>(state.outgoing.size()));
  registry
      .gauge("spe_cluster_committed_blocks",
             "incoming addresses committed ahead of epoch adoption")
      .set(static_cast<double>(state.incoming_committed.size()));
}

}  // namespace spe::cluster
