# Empty compiler generated dependencies file for spe_ecc.
# This may be replaced when dependencies are built.
