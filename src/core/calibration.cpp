#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "device/cell.hpp"

namespace spe::core {

CipherCalibration::CipherCalibration(xbar::CrossbarParams params, device::PulseLibrary library)
    : params_(params), library_(std::move(library)), fingerprint_(fingerprint_of(params)) {
  extract_shapes();
  build_perms();
}

void CipherCalibration::extract_shapes() {
  xbar::Crossbar xb(params_);
  // Mid-band reference pattern: every cell at the centre of the level grid.
  for (unsigned i = 0; i < xb.cell_count(); ++i) xb.cell(i).memristor().set_state(0.5);

  const unsigned cells = params_.cell_count();
  shapes_.resize(cells);
  std::array<double, kTiers> tier_sum{};
  std::array<unsigned, kTiers> tier_count{};

  for (unsigned p = 0; p < cells; ++p) {
    const xbar::PoE poe{p / params_.cols, p % params_.cols};
    const xbar::Polyomino poly = xbar::extract_polyomino(xb, poe, 1.0);

    // Collect covered cells with tier classification, ordered tier-major.
    struct Entry {
      std::uint16_t cell;
      std::uint8_t tier;
    };
    std::vector<Entry> entries;
    for (unsigned c = 0; c < cells; ++c) {
      if (!poly.mask[c]) continue;
      std::uint8_t tier;
      if (c == p)
        tier = 0;
      else if (c % params_.cols == poe.col)
        tier = 1;  // same-column arm
      else
        tier = 2;  // same-row arm / residual spill
      entries.push_back({static_cast<std::uint16_t>(c), tier});
      tier_sum[tier] += poly.voltages[c];
      ++tier_count[tier];
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.tier != b.tier) return a.tier < b.tier;
      return a.cell < b.cell;
    });
    Shape& s = shapes_[p];
    s.cells.reserve(entries.size());
    s.tiers.reserve(entries.size());
    for (const Entry& e : entries) {
      s.cells.push_back(e.cell);
      s.tiers.push_back(e.tier);
    }
  }
  for (unsigned t = 0; t < kTiers; ++t) {
    attenuation_[t] = tier_count[t] ? tier_sum[t] / tier_count[t]
                                    : params_.transistor.v_threshold;
  }
}

namespace {

/// Builds the bijective level transform from the TEAM-integrated target
/// map. The physical map is monotone and *compressive* (it saturates at
/// the window boundaries), so it cannot itself be a bijection; the
/// behavioural table therefore abstracts the pulse as a CYCLIC SHIFT by
/// the mean integrated displacement. The shift is exactly invertible, its
/// magnitude carries the physics (polarity, pulse width, tier attenuation,
/// device parameters), and the wrap-around models the write-verify
/// recycling of saturated cells a physical SPECU performs. (See DESIGN.md
/// section 2 — the per-cell *nonlinearity* of SPE comes from the
/// data-dependent transform selection, not from this table alone.)
CipherCalibration::LevelPerm shift_bijection(
    const std::array<int, CipherCalibration::kLevels>& target) {
  constexpr int n = CipherCalibration::kLevels;
  double total = 0.0;
  for (int l = 0; l < n; ++l)
    total += std::clamp(target[static_cast<unsigned>(l)], 0, n - 1) - l;
  const long shift = std::lround(total / n);
  const unsigned s = static_cast<unsigned>(((shift % n) + n) % n);
  CipherCalibration::LevelPerm perm{};
  for (unsigned l = 0; l < static_cast<unsigned>(n); ++l)
    perm[l] = static_cast<std::uint8_t>((l + s) % n);
  return perm;
}

}  // namespace

void CipherCalibration::build_perms() {
  const device::MlcCodec codec(params_.team);
  const unsigned codes = library_.size();
  perms_.resize(static_cast<std::size_t>(codes) * kTiers);
  inv_perms_.resize(perms_.size());
  decrypt_widths_.assign(perms_.size(), 0.0);

  for (unsigned code = 0; code < codes; ++code) {
    const device::Pulse& pulse = library_.pulse(code);
    for (unsigned tier = 0; tier < kTiers; ++tier) {
      // Tier voltage share: the PoE sees (almost) the full drive; arms see
      // the calibrated mean sneak share. Clamp to at least Vt so covered
      // cells always move (they were selected by the Vt cut).
      const double share = tier == 0 ? std::abs(attenuation_[0])
                                     : std::max(std::abs(attenuation_[tier]),
                                                params_.transistor.v_threshold);
      const double v_eff = (pulse.voltage >= 0 ? 1.0 : -1.0) * share;

      std::array<int, kLevels> target{};
      for (unsigned level = 0; level < kLevels; ++level) {
        device::Cell cell(params_.team, params_.transistor, codec.state_for_level(level));
        cell.set_gate(true);
        cell.apply_cell_voltage(v_eff, pulse.width);
        target[level] = static_cast<int>(codec.level_for_state(cell.memristor().state()));
      }
      const LevelPerm perm = shift_bijection(target);
      LevelPerm inv{};
      for (unsigned l = 0; l < kLevels; ++l) inv[perm[l]] = static_cast<std::uint8_t>(l);
      const std::size_t slot = static_cast<std::size_t>(code) * kTiers + tier;
      perms_[slot] = perm;
      inv_perms_[slot] = inv;

      // Physical decrypt width from the band-1 centre representative.
      device::Cell rep(params_.team, params_.transistor,
                       codec.state_for_symbol(1));
      rep.set_gate(true);
      const double start = rep.memristor().state();
      rep.apply_cell_voltage(v_eff, pulse.width);
      decrypt_widths_[slot] =
          device::find_inverse_pulse_width(rep, -v_eff, start);
    }
  }
}

const CipherCalibration::Shape& CipherCalibration::shape(unsigned poe_cell) const {
  if (poe_cell >= shapes_.size()) throw std::out_of_range("CipherCalibration::shape");
  return shapes_[poe_cell];
}

double CipherCalibration::tier_attenuation(unsigned tier) const {
  if (tier >= kTiers) throw std::out_of_range("CipherCalibration::tier_attenuation");
  return attenuation_[tier];
}

const CipherCalibration::LevelPerm& CipherCalibration::perm(unsigned pulse_code,
                                                            unsigned tier) const {
  const std::size_t slot = static_cast<std::size_t>(pulse_code) * kTiers + tier;
  if (slot >= perms_.size()) throw std::out_of_range("CipherCalibration::perm");
  return perms_[slot];
}

const CipherCalibration::LevelPerm& CipherCalibration::inv_perm(unsigned pulse_code,
                                                                unsigned tier) const {
  const std::size_t slot = static_cast<std::size_t>(pulse_code) * kTiers + tier;
  if (slot >= inv_perms_.size()) throw std::out_of_range("CipherCalibration::inv_perm");
  return inv_perms_[slot];
}

double CipherCalibration::decrypt_width(unsigned pulse_code, unsigned tier) const {
  const std::size_t slot = static_cast<std::size_t>(pulse_code) * kTiers + tier;
  if (slot >= decrypt_widths_.size()) throw std::out_of_range("CipherCalibration::decrypt_width");
  return decrypt_widths_[slot];
}

std::shared_ptr<const CipherCalibration> get_calibration(const xbar::CrossbarParams& params) {
  static std::mutex mutex;
  static std::map<DeviceFingerprint, std::shared_ptr<const CipherCalibration>> cache;
  const DeviceFingerprint fp = fingerprint_of(params);
  std::scoped_lock lock(mutex);
  auto it = cache.find(fp);
  if (it != cache.end()) return it->second;
  auto cal = std::make_shared<const CipherCalibration>(params);
  cache.emplace(fp, cal);
  return cal;
}

}  // namespace spe::core
