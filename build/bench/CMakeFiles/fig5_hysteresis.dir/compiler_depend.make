# Empty compiler generated dependencies file for fig5_hysteresis.
# This may be replaced when dependencies are built.
