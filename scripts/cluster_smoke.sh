#!/usr/bin/env bash
# Multi-process cluster smoke test.
#
# Boots a 3-node SPE cluster (separate spe_server processes on loopback),
# writes a verifiable dataset through the cluster client, then drives the
# membership flows end to end:
#
#   1. join: a fourth node boots as a weight-0 member and is brought in by
#      cluster_ctl --join (freeze + pull + epoch bump),
#   2. crash: a node is kill -9'd mid-migration while leaving; the ctl run
#      must FAIL, the node restarts from its checkpoint + journal, and the
#      retried leave must succeed,
#   3. verify: a read-only loadgen pass checks every block still carries the
#      payload written in step 0 — zero silent corruption.
#
# Hardening invariants (kept CI-safe on a shared box):
#   - ports come from the kernel's ephemeral range (bind :0), not a fixed
#     base, so parallel runs don't collide;
#   - every wait is bounded and fails fast when the awaited process has
#     already died (with that node's log tail, not a silent timeout);
#   - children are ALWAYS reaped: kill + wait on every exit path, so no
#     orphan spe_server keeps a port or a mmap'd checkpoint alive.
#
# Usage: scripts/cluster_smoke.sh [path-to-bench-dir]   (default: build/bench)
set -euo pipefail

BIN="${1:-build/bench}"
for tool in spe_server loadgen cluster_ctl; do
  [ -x "$BIN/$tool" ] || { echo "cluster_smoke: missing $BIN/$tool" >&2; exit 2; }
done

WORK="$(mktemp -d)"
declare -A NODE_PID=()
CTL_PID=""
cleanup() {
  local rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "== cluster_smoke FAILED (rc=$rc); node log tails:" >&2
    for log in "$WORK"/*.log; do
      [ -f "$log" ] || continue
      echo "--- $log" >&2
      tail -n 20 "$log" >&2 || true
    done
  fi
  [ -n "$CTL_PID" ] && kill -9 "$CTL_PID" 2>/dev/null || true
  for pid in "${NODE_PID[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  # Reap everything we killed so no zombie outlives the script.
  wait 2>/dev/null || true
  rm -rf "$WORK"
  exit "$rc"
}
trap cleanup EXIT

# Ephemeral ports from the kernel (bind :0, all held concurrently so the
# four are distinct). Falls back to a randomized base when python3 is
# missing — same behaviour this script always had.
reserve_ports() {  # reserve_ports COUNT -> one port per line
  local count=$1
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$count" << 'EOF'
import socket, sys
socks = []
for _ in range(int(sys.argv[1])):
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    socks.append(s)
for s in socks:
    print(s.getsockname()[1])
    s.close()
EOF
  else
    local base=$((42000 + RANDOM % 20000)) i
    for ((i = 0; i < count; ++i)); do echo $((base + i)); done
  fi
}

mapfile -t PORTS < <(reserve_ports 4)
[ "${#PORTS[@]}" -eq 4 ] || { echo "cluster_smoke: port reservation failed" >&2; exit 2; }
PA=${PORTS[0]} PB=${PORTS[1]} PC=${PORTS[2]} PD=${PORTS[3]}
SPEC3="a=127.0.0.1:$PA,b=127.0.0.1:$PB,c=127.0.0.1:$PC"
SEED_ADDR="127.0.0.1:$PA"
CTL="$BIN/cluster_ctl --seed $SEED_ADDR"

start_node() {  # start_node NAME PORT NODES_SPEC EPOCH LOG_SUFFIX
  local name=$1 port=$2 spec=$3 epoch=$4 log=$5
  "$BIN/spe_server" --cluster --cluster-name "$name" --cluster-nodes "$spec" \
    --cluster-epoch "$epoch" --port "$port" \
    --journal "$WORK/$name.jrnl" --checkpoint "$WORK/$name.ckpt" \
    > "$WORK/$name.$log.log" 2>&1 &
  NODE_PID[$name]=$!
}

wait_ready() {  # wait_ready NAME [HOST:PORT]  (default: the seed node)
  local name=$1 addr="${2:-$SEED_ADDR}"
  for _ in $(seq 1 100); do
    "$BIN/cluster_ctl" --seed "$addr" --status > /dev/null 2>&1 && return 0
    # Fail fast when the node already died — a timeout would hide the cause.
    if ! kill -0 "${NODE_PID[$name]}" 2>/dev/null; then
      echo "cluster_smoke: node $name ($addr) exited during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "cluster_smoke: node $name ($addr) never became ready" >&2
  return 1
}

echo "== boot 3 nodes (ports $PA $PB $PC, state in $WORK)"
start_node a "$PA" "$SPEC3" 1 boot
start_node b "$PB" "$SPEC3" 1 boot
start_node c "$PC" "$SPEC3" 1 boot
wait_ready a
wait_ready b "127.0.0.1:$PB"
wait_ready c "127.0.0.1:$PC"

echo "== write the dataset (version-1 payloads, then no more writes)"
"$BIN/loadgen" --cluster-seeds "a=$SEED_ADDR" --connections 4 --stripe 128 \
  --seconds 2 --write-pct 0 --seed 7 | tee "$WORK/loadgen-write.log"
grep -q '^loadgen OK$' "$WORK/loadgen-write.log"

echo "== checkpoint every member (writes are volatile until this)"
$CTL --checkpoint

echo "== join node d (boots weight-0, ctl migrates it in)"
start_node d "$PD" "$SPEC3,d=127.0.0.1:$PD*0" 1 boot
wait_ready d "127.0.0.1:$PD"
$CTL --join "d=127.0.0.1:$PD"
$CTL --checkpoint
$CTL --status | tee "$WORK/status-join.log"
grep -q 'epoch 2' "$WORK/status-join.log"

echo "== kill -9 node c mid-leave"
leave_rc=0
$CTL --leave c > "$WORK/leave-1.log" 2>&1 &
CTL_PID=$!
sleep 0.1
kill -9 "${NODE_PID[c]}"
wait "$CTL_PID" || leave_rc=$?
CTL_PID=""
wait "${NODE_PID[c]}" 2>/dev/null || true  # reap the killed node
cat "$WORK/leave-1.log"
if [ "$leave_rc" -eq 0 ]; then
  # The migration can in principle finish inside the 100ms window; nothing
  # is wrong then, but the crash path was not exercised.
  echo "cluster_smoke: WARNING leave finished before the kill landed"
else
  echo "== leave failed as expected (rc=$leave_rc); restart c and retry"
  start_node c "$PC" "$SPEC3" 1 restart
  wait_ready c "127.0.0.1:$PC"
  grep -q 'restored service from' "$WORK/c.restart.log"
  grep -q 'journal replay' "$WORK/c.restart.log"
  $CTL --leave c
fi
$CTL --status | tee "$WORK/status-leave.log"
grep -q 'epoch 3' "$WORK/status-leave.log"

echo "== verify every block survived join + crash + leave"
"$BIN/loadgen" --cluster-seeds "a=$SEED_ADDR" --connections 4 --stripe 128 \
  --seed 7 --verify-only | tee "$WORK/loadgen-verify.log"
grep -q '^loadgen OK$' "$WORK/loadgen-verify.log"

echo "cluster_smoke PASS"
