# Empty dependencies file for spe_crypto.
# This may be replaced when dependencies are built.
