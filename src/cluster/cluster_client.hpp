#pragma once
// Cluster-aware SPE client (src/cluster). Wraps one net::Client per node
// behind the same read_block / write_block surface as the single-node
// client, adding:
//
//   topology discovery   connect() fetches the epoch-stamped member list
//                        from the first reachable seed; refresh_topology()
//                        re-fetches on demand (and automatically after
//                        routing trouble).
//   consistent routing   every operation is first sent to the ring owner
//                        under the cached topology — in the steady state
//                        that is one hop, no proxying.
//   MOVED chasing        a Status::Moved response carries the owning node;
//                        the client retries there after an exponential
//                        backoff (migration commits a block within a bounded
//                        copy window, so the backoff budget outlasts any
//                        single in-flight block). The retry budget is
//                        bounded; exhaustion throws ClusterRoutingError
//                        rather than spinning on a ping-ponging address.
//   failover             a node that cannot be reached is skipped: the
//                        topology is refreshed from any other member and
//                        the operation retries against the new owner.
//   circuit breaking     one net::CircuitBreaker per endpoint. A node that
//                        keeps failing is skipped without burning deadline
//                        budget on its connect timeout; half-open probes
//                        re-admit it once it recovers.
//   deadline retries     ClusterClientConfig::op_deadline bounds the WHOLE
//                        operation (every attempt, every backoff). The
//                        remaining budget rides each wire-v3 frame so the
//                        server can shed work it cannot finish in time, and
//                        caps each attempt's socket deadline. Exhaustion
//                        surfaces typed: DeadlineExceededError for reads /
//                        never-sent writes, AmbiguousResultError for a write
//                        that reached the network without a conclusive
//                        answer.
//
// Single-owner-thread, like net::Client. Run one ClusterClient per worker.

#include <chrono>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/resilience.hpp"
#include "obs/metrics.hpp"

namespace spe::cluster {

/// The MOVED/failover retry budget ran out without landing on an owner.
class ClusterRoutingError : public net::NetError {
public:
  using NetError::NetError;
};

struct ClusterClientConfig {
  std::vector<NodeInfo> seeds;  ///< any member works; all are tried in order
  unsigned op_retries = 16;     ///< MOVED bounces + failovers per operation
  /// First retry delay after a MOVED bounce; doubled per bounce up to
  /// moved_backoff_max. Total budget (~16 doublings of 5ms capped at 250ms)
  /// comfortably outlasts one block's freeze->commit window.
  std::chrono::milliseconds moved_backoff{5};
  std::chrono::milliseconds moved_backoff_max{250};
  net::ClientConfig net;  ///< template for per-node sockets (host/port overridden)

  /// End-to-end budget for one read_block/write_block, spanning every
  /// attempt, redirect, and backoff. 0 = unbounded (legacy behaviour). When
  /// set, the remaining budget is encoded on each request frame (wire v3
  /// deadline extension) and caps each attempt's socket I/O deadline.
  std::chrono::milliseconds op_deadline{0};
  /// Backoff schedule for transient-failure retries (unreachable node,
  /// dropped connection, BUSY shed). Deterministic per (jitter_seed,
  /// endpoint, attempt) — fixed-seed chaos campaigns replay identical
  /// timing. Distinct from moved_backoff, which paces MOVED chasing.
  net::RetryConfig retry;
  /// Per-endpoint breaker settings (see net/resilience.hpp).
  net::CircuitBreakerConfig breaker;
};

class ClusterClient {
public:
  explicit ClusterClient(ClusterClientConfig config);

  /// Fetches the topology from the first reachable seed. Throws
  /// net::ConnectError when no seed answers.
  void connect();

  [[nodiscard]] std::vector<std::uint8_t> read_block(std::uint64_t addr);
  void write_block(std::uint64_t addr, std::span<const std::uint8_t> data);

  /// Re-fetches the topology from any reachable member (seeds included) and
  /// returns the new epoch. Throws net::ConnectError when nobody answers.
  std::uint64_t refresh_topology();

  /// Pushes `proposed` to every member of the CURRENT cached topology plus
  /// every seed (idempotent on nodes already at that epoch). Returns how
  /// many nodes acknowledged. The admin plane (cluster_ctl) uses this.
  unsigned propose_topology(const ClusterTopology& proposed);

  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return topology_;
  }

  struct Stats {
    std::uint64_t moved_redirects = 0;
    std::uint64_t failovers = 0;  ///< unreachable owner, rerouted
    std::uint64_t topology_refreshes = 0;
    std::uint64_t retries = 0;        ///< transient-failure re-attempts
    std::uint64_t busy_backoffs = 0;  ///< BUSY sheds honoured (retry-after)
    std::uint64_t breaker_trips = 0;  ///< Closed/HalfOpen -> Open transitions
    std::uint64_t breaker_skips = 0;  ///< attempts failed fast on an Open breaker
    std::uint64_t deadline_exceeded = 0;   ///< ops out of budget, outcome known
    std::uint64_t ambiguous_results = 0;   ///< writes out of budget, outcome unknown
  };
  /// Snapshot (breaker_trips is summed over the per-endpoint breakers at
  /// call time; everything else accumulates inline).
  [[nodiscard]] Stats stats() const;

  /// Registers the spe_cluster_client_* counters into `registry` (loadgen's
  /// summary and the chaos campaign report both pull from this).
  void fill_metrics(obs::MetricsRegistry& registry) const;

  /// Direct access to the pooled connection for `node` (admin plane: freeze
  /// / pull / unfreeze RPCs go to specific nodes, not ring owners).
  [[nodiscard]] net::Client& node_client(const NodeInfo& node);

private:
  [[nodiscard]] net::Frame route_call(std::uint64_t addr, net::Frame request,
                                      bool is_write);
  [[nodiscard]] bool try_fetch_topology(const NodeInfo& node);
  void drop_client(const NodeInfo& node);
  [[nodiscard]] net::CircuitBreaker& breaker_for(const NodeInfo& node);
  /// Sleeps for `pause` clipped to the operation deadline (no-op once the
  /// budget is spent).
  void bounded_sleep(std::chrono::milliseconds pause,
                     std::chrono::steady_clock::time_point deadline,
                     bool has_deadline) const;

  ClusterClientConfig config_;
  ClusterTopology topology_;
  HashRing ring_;
  std::map<std::string, net::Client> pool_;  ///< endpoint -> connection
  std::map<std::string, net::CircuitBreaker> breakers_;  ///< endpoint -> breaker
  /// Times each endpoint's pooled client was dropped. Mixed into the chaos
  /// stream id so a re-created client advances the injection schedule
  /// instead of replaying it from event 0 (a reset-on-first-frame decision
  /// would otherwise wedge that endpoint forever).
  std::map<std::string, std::uint64_t> chaos_epochs_;
  Stats stats_;
};

}  // namespace spe::cluster
