#pragma once
// Client-side resilience primitives for the SPE serving stack: deterministic
// jittered exponential backoff, a per-endpoint circuit breaker, and the
// typed errors the retry layer surfaces when an outcome cannot be made
// certain.
//
// Retry safety model: READ and PING are always safe to retry. WRITE is
// idempotent *for the same payload* — the SPE write path programs the full
// block, so replaying an identical WRITE converges to the same state — and
// therefore also retries. What cannot be retried away is *ambiguity*: if a
// WRITE was handed to the network and the deadline expires before any
// conclusive answer, the block may hold either the old or the new bytes.
// That case surfaces as AmbiguousResultError (never a generic timeout), so
// callers can run read-back reconciliation instead of guessing.
//
// The circuit breaker is the standard three-state machine:
//
//   Closed ──(failure_threshold consecutive failures)──▶ Open
//   Open ──(open_timeout elapsed)──▶ HalfOpen
//   HalfOpen ──(any success)──▶ Closed
//   HalfOpen ──(any failure)──▶ Open            (timer restarts)
//
// allow() in Open returns false (callers fail fast with CircuitOpenError
// instead of burning deadline budget on a dead node); in HalfOpen it admits
// at most half_open_probes concurrent trial calls.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace spe::net {

/// A retryable call failed in a way that leaves the outcome unknown (e.g.
/// a write was sent, the connection died, and the deadline expired before
/// a retry could confirm either result).
class AmbiguousResultError : public std::runtime_error {
public:
  explicit AmbiguousResultError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Fail-fast rejection: the target endpoint's breaker is Open.
class CircuitOpenError : public std::runtime_error {
public:
  explicit CircuitOpenError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The op's deadline expired before any attempt produced a conclusive
/// result, and no send was in flight (so the outcome is known: nothing
/// happened). In-flight ambiguity raises AmbiguousResultError instead.
class DeadlineExceededError : public std::runtime_error {
public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

struct RetryConfig {
  unsigned max_attempts = 8;  ///< total tries, including the first
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_max{200};
  /// Fraction of the computed backoff replaced by deterministic jitter in
  /// [1-jitter, 1]: backoff * (1 - jitter * u). 0 disables jitter.
  double jitter = 0.5;
  /// Seed for the jitter stream — deterministic, so a fixed-seed chaos
  /// campaign replays identical retry timing.
  std::uint64_t jitter_seed = 0x5E7241EDB0FFull;
};

/// Deterministic backoff for attempt `attempt` (0-based; attempt 0 is the
/// first retry). Exponential doubling from backoff_base, capped at
/// backoff_max, jittered downward by a hash of (jitter_seed, stream,
/// attempt) so concurrent retry loops decorrelate without shared state.
[[nodiscard]] std::chrono::milliseconds retry_backoff(const RetryConfig& config,
                                                      std::uint64_t stream,
                                                      unsigned attempt) noexcept;

struct CircuitBreakerConfig {
  unsigned failure_threshold = 5;  ///< consecutive failures that open the breaker
  std::chrono::milliseconds open_timeout{1000};
  unsigned half_open_probes = 1;  ///< concurrent trial calls admitted half-open
};

class CircuitBreaker {
public:
  enum class State : std::uint8_t { Closed = 0, Open, HalfOpen };

  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// True if a call may proceed. In HalfOpen this *claims* a probe slot;
  /// the caller must report the outcome via on_success()/on_failure().
  [[nodiscard]] bool allow();
  void on_success();
  void on_failure();

  [[nodiscard]] State state() const;
  /// Times the breaker transitioned Closed/HalfOpen → Open.
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

private:
  void trip_locked(Clock::time_point now);

  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::Closed;
  unsigned consecutive_failures_ = 0;
  unsigned half_open_inflight_ = 0;
  Clock::time_point opened_at_{};
  std::atomic<std::uint64_t> trips_{0};
};

[[nodiscard]] const char* to_string(CircuitBreaker::State state) noexcept;

}  // namespace spe::net
