file(REMOVE_RECURSE
  "CMakeFiles/ablation_avalanche.dir/ablation_avalanche.cpp.o"
  "CMakeFiles/ablation_avalanche.dir/ablation_avalanche.cpp.o.d"
  "ablation_avalanche"
  "ablation_avalanche.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_avalanche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
