#pragma once
// Crash-safe device-bound migration for the SPE cluster (src/cluster).
//
// Moving a block between nodes is not a byte copy: the block is ciphered
// against the SOURCE crossbar's device fingerprint, so migration is
// decrypt-on-source / re-encrypt-on-destination. The cluster runs it as a
// three-step admin-driven protocol, destination-pull:
//
//   FREEZE   (source)      every address in the range is journaled as
//                          outgoing and bounces reads AND writes with
//                          MOVED(dest) — the source copy is immutable for
//                          the rest of the migration, so the destination
//                          can never commit a stale image.
//   PULL     (destination) per block: journal in_begin -> read from the
//                          source over the wire (the source SPECU decrypts
//                          under its fingerprint; migration reads bypass
//                          the freeze) -> write into the local service
//                          (the local SPECU re-encrypts under THIS device's
//                          fingerprint, journaling pulses in the existing
//                          per-device intent journal) -> journal in_copied
//                          -> checkpoint the service -> journal in_commit.
//                          Committed blocks enter the incoming overlay and
//                          are served here.
//   ADOPT    (everyone)    the new topology epoch is pushed to all nodes;
//                          ring ownership takes over and the overlays for
//                          that epoch are dropped.
//
// A kill -9 at ANY point leaves each block either fully source-owned
// (no in_commit journaled: the destination discards the partial copy and
// the admin either re-pulls or unfreezes) or fully destination-owned
// (in_commit durable: the block is in the destination checkpoint) — never
// torn. The MigrationJournal below is the cluster-level write-ahead log
// that makes this classification possible; it composes with the
// device-level intent journal (src/core/intent_journal), which protects
// the pulse sequences inside each single-device write.
//
// The journal is an append-only CRC-framed file: every record is
// (u32 body length, u32 CRC32, body), fsync'd before the operation it
// permits proceeds. load() accepts a torn tail (a crash mid-append) by
// truncating to the last valid record — exactly the semantics of the
// snvmm_io image loader it mirrors.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cluster/topology.hpp"

namespace spe::cluster {

inline constexpr std::size_t kMaxMigrateAddrs = std::size_t{1} << 16;

/// Wire payload of a MIGRATE_RANGE request (v2).
struct MigrateSpec {
  enum class Mode : std::uint8_t {
    Freeze = 1,    ///< to the source: freeze addrs, bounce MOVED(peer)
    Pull = 2,      ///< to the destination: copy addrs from peer
    Unfreeze = 3,  ///< to the source: abandon the migration, serve again
    Export = 4,    ///< destination -> source during Pull: ship block images
                   ///< (decrypted under the source fingerprint, bypassing
                   ///< the freeze bounce)
    Checkpoint = 5,  ///< admin: checkpoint the service to its configured
                     ///< path NOW (epoch/peer/addrs ignored) — cluster_ctl
                     ///< uses it to make client writes durable before a
                     ///< planned kill or migration
  };
  Mode mode = Mode::Freeze;
  std::uint64_t epoch = 0;  ///< the topology epoch this migration prepares
  NodeInfo peer;            ///< Freeze: destination; Pull: source
  std::vector<std::uint64_t> addrs;
};

[[nodiscard]] std::vector<std::uint8_t> encode_migrate_spec(const MigrateSpec& spec);
[[nodiscard]] bool decode_migrate_spec(std::span<const std::uint8_t> in,
                                       MigrateSpec& out);

/// One block image in an Export response. `present` is false for addresses
/// the source never wrote (nothing to copy — the destination skips them).
struct ExportedBlock {
  std::uint64_t addr = 0;
  bool present = false;
  std::vector<std::uint8_t> data;  ///< block_bytes long when present
};

[[nodiscard]] std::vector<std::uint8_t> encode_export(
    std::span<const ExportedBlock> blocks);
/// `block_bytes` pins the expected image size (length confusion on this
/// path would write a wrong-sized block into the destination array).
[[nodiscard]] bool decode_export(std::span<const std::uint8_t> in,
                                 std::size_t block_bytes,
                                 std::vector<ExportedBlock>& out);

/// In-memory migration state rebuilt from (and mutated through) the journal.
struct MigrationState {
  struct Pending {
    NodeInfo peer;
    std::uint64_t epoch = 0;
  };
  std::uint64_t adopted_epoch = 0;
  /// Topology bytes of the newest ADOPT record (empty: none journaled).
  std::vector<std::uint8_t> adopted_topology;
  std::map<std::uint64_t, Pending> outgoing;  ///< frozen here, owned-by-peer soon
  std::map<std::uint64_t, Pending> incoming_inflight;  ///< begun, not committed
  std::map<std::uint64_t, Pending> incoming_committed; ///< durable here, served
};

/// What load() concluded about each address the journal mentions — the
/// replay/rollback classification the recovery tests pin.
struct MigrationRecovery {
  std::size_t records = 0;
  std::size_t truncated_bytes = 0;  ///< torn tail dropped by load()
  std::vector<std::uint64_t> forward;   ///< committed incoming: destination owns
  std::vector<std::uint64_t> rollback;  ///< in-flight incoming discarded: source owns
  std::vector<std::uint64_t> frozen;    ///< outgoing still bouncing MOVED
};

class MigrationJournal {
public:
  /// Opens (creating if absent) the journal at `path`. An empty path makes
  /// an in-memory journal (no durability — single-process tests and
  /// non-cluster servers).
  explicit MigrationJournal(std::string path);
  ~MigrationJournal();

  MigrationJournal(const MigrationJournal&) = delete;
  MigrationJournal& operator=(const MigrationJournal&) = delete;

  /// Replays the file into state() and truncates any torn tail. Call once
  /// before the first append; a missing/empty file yields an empty state.
  /// Throws std::runtime_error on an unreadable file or bad magic.
  MigrationRecovery load();

  // Appends (each fsync'd before returning, then the kill hook fires).
  void out_freeze(std::span<const std::uint64_t> addrs, const NodeInfo& dest,
                  std::uint64_t epoch);
  void out_unfreeze(std::span<const std::uint64_t> addrs);
  void in_begin(std::uint64_t addr, const NodeInfo& source, std::uint64_t epoch);
  void in_copied(std::uint64_t addr);
  void in_commit(std::span<const std::uint64_t> addrs);
  void adopt(const ClusterTopology& topology);

  [[nodiscard]] const MigrationState& state() const noexcept { return state_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Kill-point hook, fired after every durable append — the migration
  /// recovery tests snapshot the journal file here, the same pattern as
  /// BankShard::set_crash_hook. Pass nullptr to clear.
  void set_kill_hook(std::function<void()> hook) { kill_hook_ = std::move(hook); }

private:
  enum class RecordType : std::uint8_t {
    OutFreeze = 1,
    OutUnfreeze = 2,
    InBegin = 3,
    InCopied = 4,
    InCommit = 5,
    Adopt = 6,
  };

  void append(RecordType type, const std::vector<std::uint8_t>& body);
  /// Applies one parsed record to state_; false = malformed body.
  [[nodiscard]] bool apply(RecordType type, std::span<const std::uint8_t> body);

  std::string path_;
  int fd_ = -1;  ///< -1 for the in-memory journal
  MigrationState state_;
  std::function<void()> kill_hook_;
};

}  // namespace spe::cluster
