#pragma once
// Start-Gap wear levelling (Qureshi et al., MICRO 2009 — the paper's
// ref [6]). A region of N logical lines is stored in N+1 physical slots;
// one slot is a GAP. Every psi writes, the line adjacent to the gap moves
// into it, rotating the whole region one slot per N+1 gap moves. The
// logical->physical map is algebraic (two registers: Start and GapPos), so
// no translation table is needed.
//
// Plain Start-Gap only spreads *spatially uniform* hot spots; an adversary
// who hammers one logical line still concentrates wear on a slowly moving
// physical neighbourhood. Randomized Start-Gap therefore composes it with a
// fixed pseudo-random invertible address permutation (here a 2-round
// Feistel network keyed per region), as in the reference design.

#include <cstdint>
#include <optional>
#include <vector>

namespace spe::wear {

/// Algebraic Start-Gap remapper for a region of `lines` logical lines.
class StartGap {
public:
  /// `gap_write_interval` is psi: one gap move per psi writes (ref [6]
  /// uses 100, bounding the write amplification at 1%).
  StartGap(std::size_t lines, unsigned gap_write_interval = 100);

  [[nodiscard]] std::size_t lines() const noexcept { return lines_; }
  [[nodiscard]] std::size_t slots() const noexcept { return lines_ + 1; }
  [[nodiscard]] std::size_t gap_position() const noexcept { return gap_; }
  [[nodiscard]] std::size_t start() const noexcept { return start_; }
  [[nodiscard]] std::uint64_t gap_moves() const noexcept { return gap_moves_; }

  /// Physical slot currently holding logical line `logical`.
  [[nodiscard]] std::size_t physical_of(std::size_t logical) const;

  /// Notifies the leveller of one write. Returns the data movement the
  /// caller must perform if this write triggered a gap move: the line in
  /// physical slot `from` must be copied to slot `to` (the old gap).
  struct GapMove {
    std::size_t from;
    std::size_t to;
  };
  [[nodiscard]] std::optional<GapMove> on_write();

private:
  std::size_t lines_;
  unsigned interval_;
  unsigned writes_since_move_ = 0;
  std::size_t gap_;    ///< physical slot of the gap
  std::size_t start_;  ///< rotation offset
  std::uint64_t gap_moves_ = 0;
};

/// Fixed keyed invertible permutation of line addresses (2-round Feistel),
/// the "randomized" layer of Randomized Start-Gap. Works for any line
/// count: addresses are permuted inside the next power of two and cycled
/// until they land in range (cycle walking), so the map stays a bijection
/// on [0, lines).
class AddressScrambler {
public:
  AddressScrambler(std::size_t lines, std::uint64_t key);

  [[nodiscard]] std::size_t scramble(std::size_t logical) const;
  [[nodiscard]] std::size_t unscramble(std::size_t scrambled) const;
  [[nodiscard]] std::size_t lines() const noexcept { return lines_; }

private:
  [[nodiscard]] std::size_t feistel(std::size_t value, bool inverse) const;

  std::size_t lines_;
  unsigned half_bits_;
  std::uint64_t key_;
};

/// Randomized Start-Gap region with actual data storage: the full ref-[6]
/// device, usable as the NVMM's translation layer. Data integrity across
/// gap moves is the invariant the tests hammer.
class RandomizedStartGapRegion {
public:
  RandomizedStartGapRegion(std::size_t lines, std::size_t line_bytes,
                           std::uint64_t key, unsigned gap_write_interval = 100);

  [[nodiscard]] std::size_t lines() const noexcept { return scrambler_.lines(); }
  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_bytes_; }

  void write(std::size_t logical, const std::vector<std::uint8_t>& data);
  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t logical) const;

  /// Physical-slot write counts (what an endurance model sees); slot
  /// `slots()-1`-sized vector including the gap slot.
  [[nodiscard]] const std::vector<std::uint64_t>& physical_writes() const noexcept {
    return physical_writes_;
  }
  [[nodiscard]] std::uint64_t gap_moves() const noexcept { return gap_.gap_moves(); }

private:
  [[nodiscard]] std::size_t physical_of(std::size_t logical) const;

  AddressScrambler scrambler_;
  StartGap gap_;
  std::size_t line_bytes_;
  std::vector<std::vector<std::uint8_t>> slots_;
  std::vector<std::uint64_t> physical_writes_;
};

}  // namespace spe::wear
