#include "crypto/cipher.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spe::crypto {
namespace {

using BlockData = std::array<std::uint8_t, kCacheBlockBytes>;

BlockData random_block(util::Xoshiro256ss& rng) {
  BlockData b{};
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

template <typename CipherT>
void roundtrip_test(const CipherT& cipher) {
  util::Xoshiro256ss rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t addr = rng() & 0xFFFFFFC0ull;
    BlockData pt = random_block(rng);
    BlockData work = pt;
    cipher.encrypt(addr, work);
    EXPECT_NE(work, pt);
    cipher.decrypt(addr, work);
    EXPECT_EQ(work, pt);
  }
}

std::array<std::uint8_t, 16> aes_key() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
}
std::array<std::uint8_t, 10> stream_key() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}

TEST(AesBlockCipher, RoundTrip) {
  const auto key = aes_key();
  roundtrip_test(AesBlockCipher(key));
}

TEST(StreamBlockCipher, RoundTrip) {
  const auto key = stream_key();
  roundtrip_test(StreamBlockCipher(key));
}

TEST(AesBlockCipher, AddressTweakMatters) {
  const auto key = aes_key();
  AesBlockCipher cipher(key);
  BlockData a{}, b{};
  cipher.encrypt(0x1000, a);
  cipher.encrypt(0x2000, b);
  EXPECT_NE(a, b);  // same (zero) plaintext, different addresses
}

TEST(StreamBlockCipher, AddressTweakMatters) {
  const auto key = stream_key();
  StreamBlockCipher cipher(key);
  BlockData a{}, b{};
  cipher.encrypt(0x1000, a);
  cipher.encrypt(0x2000, b);
  EXPECT_NE(a, b);
}

TEST(AesBlockCipher, SubBlocksDifferWithinBlock) {
  // The XEX tweak includes the sub-block index, so equal 16-byte quarters
  // of a block must encrypt differently.
  const auto key = aes_key();
  AesBlockCipher cipher(key);
  BlockData block{};
  cipher.encrypt(0x40, block);
  EXPECT_FALSE(std::equal(block.begin(), block.begin() + 16, block.begin() + 16));
}

TEST(AesBlockCipher, WrongAddressFailsToDecrypt) {
  const auto key = aes_key();
  AesBlockCipher cipher(key);
  util::Xoshiro256ss rng(3);
  BlockData pt = random_block(rng);
  BlockData work = pt;
  cipher.encrypt(0x40, work);
  cipher.decrypt(0x80, work);
  EXPECT_NE(work, pt);
}

}  // namespace
}  // namespace spe::crypto
