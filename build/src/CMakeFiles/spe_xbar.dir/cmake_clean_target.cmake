file(REMOVE_RECURSE
  "libspe_xbar.a"
)
