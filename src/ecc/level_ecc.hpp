#pragma once
// Bit-plane-interleaved SEC-DED over an array of 6-bit memristor cell
// levels — the level-domain companion to the byte-domain (72,64) code in
// secded.hpp. The SPE cipher's stored state is the *fine* level grid
// (spe_cipher.hpp), and its diffusion means a single corrupted ciphertext
// cell garbles the whole decrypted block, so correction must happen on the
// levels themselves, before decryption.
//
// A naive byte layout cannot do that: a stuck-at or drifted cell changes
// several bits of one level byte, and SEC-DED corrects only one bit per
// codeword. Interleaving by bit plane fixes it — codeword (p, w) covers bit
// p of cells [64w, 64w+64), so an *arbitrary* corruption of any single cell
// in a 64-cell group flips at most one bit in each of its six plane words
// and is fully corrected. This is the standard MLC trick of spreading one
// cell's bits over independent codewords. Two faulty cells in the same
// 64-cell group collide in any plane where their error bits overlap and are
// detected (not corrected) as a SEC-DED double error; three or more can
// miscorrect, as with any Hamming code.
//
// Overhead: 6 planes * ceil(cells/64) check bytes = 24 bytes per 256-cell
// block (9.4% of the 256 level bytes). Levels must stay below 64 — bits 6
// and 7 of the stored bytes are outside the planes and unprotected.

#include <cstdint>
#include <span>
#include <vector>

namespace spe::ecc {

/// Bits per cell level covered by the plane code (levels are 0..63).
inline constexpr unsigned kLevelBits = 6;

/// Check bytes for a level array, plane-major: checks[p * words + w] guards
/// bit p of cells [64w, 64w+64). Size = kLevelBits * ceil(levels.size()/64).
[[nodiscard]] std::vector<std::uint8_t> level_checks(
    std::span<const std::uint8_t> levels);

struct LevelDecodeResult {
  bool ok = false;                 ///< every plane word clean or corrected
  unsigned corrected_bits = 0;     ///< single-bit plane corrections applied
  unsigned corrected_cells = 0;    ///< distinct cells those corrections touched
  unsigned uncorrectable_words = 0;///< plane words with SEC-DED double errors
};

/// Verifies `levels` against `checks` (from level_checks over the pristine
/// array), correcting every correctable plane word in place. `checks` size
/// must match level_checks(levels).size(). When uncorrectable_words > 0 the
/// array is left with all *correctable* planes fixed, but must be treated as
/// lost — SEC-DED cannot localise the double errors.
[[nodiscard]] LevelDecodeResult verify_levels(std::span<std::uint8_t> levels,
                                              std::span<const std::uint8_t> checks);

}  // namespace spe::ecc
