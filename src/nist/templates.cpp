// SP 800-22 2.7 Non-overlapping and 2.8 Overlapping template matching tests.

#include <array>
#include <cmath>

#include "nist/suite.hpp"
#include "util/mathfn.hpp"

namespace spe::nist {

TestResult non_overlapping_template_test(const util::BitVector& bits) {
  TestResult r{"NOTM", {}, true};
  // Template B = 000000001 (m = 9), N = 8 independent blocks (SP 800-22
  // defaults for the one-template variant).
  constexpr unsigned kM = 9;
  constexpr unsigned kBlocks = 8;
  const std::size_t n = bits.size();
  const std::size_t block_len = n / kBlocks;
  if (block_len < kM + 1) {
    r.applicable = false;
    return r;
  }
  const double mu =
      static_cast<double>(block_len - kM + 1) / static_cast<double>(1u << kM);
  const double sigma2 =
      static_cast<double>(block_len) *
      (1.0 / static_cast<double>(1u << kM) -
       (2.0 * kM - 1.0) / std::pow(2.0, 2.0 * kM));

  double chi2 = 0.0;
  for (unsigned b = 0; b < kBlocks; ++b) {
    unsigned hits = 0;
    std::size_t i = 0;
    while (i + kM <= block_len) {
      bool match = true;
      for (unsigned j = 0; j < kM; ++j) {
        const bool expected = (j == kM - 1);  // "000000001"
        if (bits.get(b * block_len + i + j) != expected) {
          match = false;
          break;
        }
      }
      if (match) {
        ++hits;
        i += kM;  // non-overlapping: skip past the match
      } else {
        ++i;
      }
    }
    const double d = static_cast<double>(hits) - mu;
    chi2 += d * d / sigma2;
  }
  r.p_values.push_back(util::igamc(kBlocks / 2.0, chi2 / 2.0));
  return r;
}

TestResult overlapping_template_test(const util::BitVector& bits) {
  TestResult r{"OTM", {}, true};
  // Template = 9 ones, M = 1032, K = 5 classes with tabulated pi.
  constexpr unsigned kM = 9;
  constexpr unsigned kBlockLen = 1032;
  constexpr unsigned kK = 5;
  static constexpr std::array<double, 6> kPi = {0.364091, 0.185659, 0.139381,
                                                0.100571, 0.0704323, 0.139865};
  const std::size_t n = bits.size();
  const std::size_t blocks = n / kBlockLen;
  if (blocks < 5) {
    r.applicable = false;
    return r;
  }
  std::array<double, kK + 1> counts{};
  for (std::size_t b = 0; b < blocks; ++b) {
    unsigned hits = 0;
    for (std::size_t i = 0; i + kM <= kBlockLen; ++i) {
      bool match = true;
      for (unsigned j = 0; j < kM; ++j) {
        if (!bits.get(b * kBlockLen + i + j)) {
          match = false;
          break;
        }
      }
      hits += match ? 1 : 0;
    }
    counts[hits >= kK ? kK : hits] += 1.0;
  }
  double chi2 = 0.0;
  for (unsigned c = 0; c <= kK; ++c) {
    const double expected = static_cast<double>(blocks) * kPi[c];
    const double d = counts[c] - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(util::igamc(kK / 2.0, chi2 / 2.0));
  return r;
}

}  // namespace spe::nist
