#include "sim/system.hpp"

namespace spe::sim {

SimResult simulate(const WorkloadSpec& workload, core::Scheme scheme,
                   const SimConfig& config) {
  CpuModel cpu(config.cpu);
  Cache l1(config.l1);
  Cache l2(config.l2);
  NvmmTiming nvmm(config.nvmm);
  auto scheme_model = make_scheme(scheme);
  TraceGenerator trace(workload, config.seed);

  SimResult result;
  result.workload = workload.name;
  result.scheme = scheme;

  std::uint64_t retired = 0;
  std::uint64_t next_tick = config.tick_interval_cycles;
  double coverage_weighted = 0.0;
  std::uint64_t warm_start_cycle = 0;  // 0 = warm-up not finished yet
  std::uint64_t last_sample_cycle = 0;

  while (retired < config.instructions) {
    const MemAccess access = trace.next();
    retired += access.instruction_gap;
    cpu.retire(access.instruction_gap, workload.base_cpi);

    const auto l1_result = l1.access(access.addr, access.is_write);
    if (!l1_result.hit) {
      ++result.l1_misses;
      cpu.stall(config.l2.latency_cycles);
      // L1 victim writeback is absorbed by the L2 (write-back hierarchy).
      if (l1_result.evicted_dirty) (void)l2.access(l1_result.writeback_addr, true);

      const auto l2_result = l2.access(access.addr, access.is_write);
      if (!l2_result.hit) {
        ++result.l2_misses;
        const std::uint64_t now = cpu.cycles();
        // Demand fill from NVMM through the SPECU.
        const SchemeCharge charge = scheme_model->on_read(now, access.addr);
        const std::uint64_t mem_latency =
            nvmm.access(now, access.addr, false, charge.bank_busy_cycles);
        cpu.stall(mem_latency + charge.critical_cycles);

        // Dirty L2 victim: write back through the SPECU (buffered; bank
        // occupancy only).
        if (l2_result.evicted_dirty) {
          ++result.writebacks;
          const SchemeCharge wb = scheme_model->on_write(now, l2_result.writeback_addr);
          (void)nvmm.access(now, l2_result.writeback_addr, true,
                            wb.bank_busy_cycles + wb.critical_cycles);
        }
      }
    }

    if (cpu.cycles() >= next_tick) {
      scheme_model->tick(cpu.cycles());
      // Coverage is time-averaged only after warm-up (the init sweep and
      // the schemes' cold start would otherwise dominate the Fig. 8 mean).
      const bool warm = retired >= static_cast<std::uint64_t>(
                            config.coverage_warmup_fraction *
                            static_cast<double>(config.instructions));
      if (warm) {
        if (warm_start_cycle == 0) {
          warm_start_cycle = cpu.cycles();
          last_sample_cycle = cpu.cycles();
        }
        coverage_weighted += scheme_model->encrypted_fraction() *
                             static_cast<double>(cpu.cycles() - last_sample_cycle);
        last_sample_cycle = cpu.cycles();
      }
      next_tick = cpu.cycles() + config.tick_interval_cycles;
    }
  }

  if (warm_start_cycle != 0 && cpu.cycles() > last_sample_cycle) {
    coverage_weighted += scheme_model->encrypted_fraction() *
                         static_cast<double>(cpu.cycles() - last_sample_cycle);
    last_sample_cycle = cpu.cycles();
  }

  result.instructions = retired;
  result.cycles = cpu.cycles();
  result.dirty_l1_lines = l1.dirty_lines();
  result.dirty_l2_lines = l2.dirty_lines();
  result.mean_encrypted_fraction =
      warm_start_cycle != 0 && last_sample_cycle > warm_start_cycle
          ? coverage_weighted /
                static_cast<double>(last_sample_cycle - warm_start_cycle)
          : scheme_model->encrypted_fraction();
  result.final_encrypted_fraction = scheme_model->encrypted_fraction();
  return result;
}

std::vector<std::vector<SimResult>> run_grid(const std::vector<core::Scheme>& schemes,
                                             const SimConfig& config) {
  std::vector<std::vector<SimResult>> grid;
  for (const WorkloadSpec& workload : spec2006_suite()) {
    std::vector<SimResult> row;
    row.reserve(schemes.size());
    for (core::Scheme scheme : schemes) row.push_back(simulate(workload, scheme, config));
    grid.push_back(std::move(row));
  }
  return grid;
}

}  // namespace spe::sim
